"""Legacy shim so `pip install -e .` works without the `wheel` package."""
from setuptools import setup, find_packages

setup(
    name="repro",
    version="1.0.0",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.9",
    install_requires=["numpy>=1.21"],
    entry_points={"console_scripts": ["repro=repro.cli:main"]},
)
