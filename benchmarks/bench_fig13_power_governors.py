"""Figure 13: package power vs offered rate under the performance and
ondemand governors, Metronome vs static DPDK.

Thin wrapper over the campaign registry: the sweep grid and rendering
live in ``repro.campaign.registry``, shared with ``repro campaign run``.
"""

from bench_util import emit

from repro.campaign import render_figure, run_figure


def _run():
    return run_figure("fig13")


def test_fig13_power_governors(benchmark):
    rows = benchmark.pedantic(_run, rounds=1, iterations=1)
    emit("fig13", render_figure("fig13", rows))
    by = {(g, s, r): (w, c) for g, s, r, w, c in rows}
    # Metronome draws less power than polling DPDK in every scenario
    # except possibly 10 Gbps under performance (the paper's exception)
    for gov in ("performance", "ondemand"):
        for gbps in (0.0, 0.5, 1.0, 5.0):
            assert by[(gov, "metronome", gbps)][0] < by[(gov, "dpdk", gbps)][0]
    # maximum gain: no traffic under ondemand (paper: ~27%)
    met = by[("ondemand", "metronome", 0.0)][0]
    dpdk = by[("ondemand", "dpdk", 0.0)][0]
    saving = 1 - met / dpdk
    assert 0.10 < saving < 0.45
    # ondemand trades CPU occupancy for power: Metronome's CPU is higher
    # under ondemand than under performance (frequency stretch)
    assert (by[("ondemand", "metronome", 1.0)][1]
            > by[("performance", "metronome", 1.0)][1])
    # polling DPDK always drives its core to max frequency: its power
    # barely depends on the governor
    for gbps in (0.0, 10.0):
        p_perf = by[("performance", "dpdk", gbps)][0]
        p_ond = by[("ondemand", "dpdk", gbps)][0]
        assert abs(p_perf - p_ond) / p_perf < 0.1
