"""Extension: bursty (ON/OFF) traffic — Metronome's standing wakeups
keep burst loss near zero where XDP's cold interrupt path drops tens of
thousands of packets (paper §5.5's reactivity observation, generalized
beyond a single step burst)."""

from bench_util import emit

from repro import config
from repro.harness.experiment import run_metronome, run_xdp
from repro.harness.report import render_table
from repro.nic.traffic import OnOffProcess
from repro.sim.rng import RandomStreams
from repro.sim.units import MS, US


def _run():
    rows = []
    # line-rate bursts, 200us ON / 600us OFF -> 25% duty, ~3.7 Mpps mean
    for system in ("metronome", "xdp"):
        if system == "metronome":
            process = OnOffProcess(
                config.LINE_RATE_PPS, 200 * US, 600 * US,
                RandomStreams(7).stream("bursty"),
            )
            res = run_metronome(process, duration_ms=60,
                                cfg=config.SimConfig(seed=7))
            rows.append((system, res.offered, res.drops,
                         res.loss_fraction * 100, res.cpu_utilization,
                         res.latency.percentile(99) / 1e3))
        else:
            # XDP with 4 queues, cold page pool, same aggregate pattern
            res = run_xdp(int(13.0e6), duration_ms=60,
                          cfg=config.SimConfig(seed=7),
                          num_queues=4, prewarmed=False)
            rows.append((system, res.offered, res.drops,
                         res.loss_fraction * 100, res.cpu_utilization,
                         res.latency.percentile(99) / 1e3))
    return rows


def test_ext_bursty_traffic(benchmark):
    rows = benchmark.pedantic(_run, rounds=1, iterations=1)
    emit(
        "ext_bursty",
        render_table(
            "Extension — burst handling: Metronome vs cold XDP",
            ["system", "offered", "drops", "loss %", "cpu", "p99 us"],
            rows,
            note="Metronome: ON/OFF line-rate bursts; XDP: cold-start "
                 "sustained load (the §5.5 reactivity comparison)",
        ),
    )
    by = {r[0]: r for r in rows}
    # Metronome absorbs line-rate bursts with negligible loss ...
    assert by["metronome"][3] < 0.1
    # ... while consuming CPU proportional to the ~25% duty cycle
    assert by["metronome"][4] < 0.45
    # XDP's cold path drops tens of thousands before the pool warms
    assert by["xdp"][2] > 10_000
