"""Ablations of the eq.-12 controller: adaptive vs fixed T_S under a
load swing, and the EWMA gain α trade-off (eq. 10)."""

from bench_util import emit

from repro.harness.extensions import ablation_adaptivity, ablation_alpha
from repro.harness.report import render_table


def _run_adaptivity():
    return ablation_adaptivity(duration_s=1.0)


def _run_alpha():
    return ablation_alpha(duration_ms=300)


def test_ablation_adaptivity(benchmark):
    out = benchmark.pedantic(_run_adaptivity, rounds=1, iterations=1)
    emit(
        "ablation_adaptivity",
        render_table(
            "Ablation — adaptive vs fixed T_S over a 0→14→0 Mpps ramp",
            ["config", "cpu", "loss %", "mean lat us", "p99 lat us"],
            [(k, v["cpu"], v["loss_pct"], v["mean_latency_us"],
              v["p99_latency_us"]) for k, v in out.items()],
        ),
    )
    adaptive = out["adaptive"]
    fixed_fast = out["fixed_ts=10us"]   # latency-optimal, CPU-hungry
    fixed_slow = out["fixed_ts=30us"]   # CPU-optimal, slow at peak
    # nobody should lose traffic on this ramp
    assert adaptive["loss_pct"] < 0.2
    # the controller buys fixed-10us-like CPU *at the low-load edges*
    # without fixed-30us's worst-case latency: adaptive must not be
    # dominated by either fixed point
    assert adaptive["cpu"] < fixed_fast["cpu"] + 0.02
    assert adaptive["mean_latency_us"] < fixed_slow["mean_latency_us"] + 2


def test_ablation_alpha(benchmark):
    rows = benchmark.pedantic(_run_alpha, rounds=1, iterations=1)
    emit(
        "ablation_alpha",
        render_table(
            "Ablation — EWMA gain α: settling vs ripple (1→13 Mpps step)",
            ["alpha", "settling ms", "rho ripple"],
            rows,
        ),
    )
    by_alpha = {a: (settle, ripple) for a, settle, ripple in rows}
    # higher gain settles faster...
    assert by_alpha[1.0][0] <= by_alpha[0.03][0]
    # ...but carries more steady-state ripple
    assert by_alpha[1.0][1] > by_alpha[0.03][1]
