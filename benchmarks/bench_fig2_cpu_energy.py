"""Figure 2: CPU usage and energy of Metronome loops with each sleep
service (no traffic, fixed 20/100 us timeouts, 1-6 threads)."""

from bench_util import emit

from repro.harness.report import render_table
from repro.harness.scenarios import fig2_cpu_energy

ITERATIONS = 20_000


def _run():
    return fig2_cpu_energy(iterations=ITERATIONS)


def test_fig2_cpu_energy(benchmark):
    points = benchmark.pedantic(_run, rounds=1, iterations=1)
    rows = [
        (p.service, p.timeout_us, p.threads, p.cpu_seconds * 1e3,
         p.energy_j, p.wall_seconds)
        for p in points
    ]
    emit(
        "fig2",
        render_table(
            "Figure 2 — CPU (ms) and energy (J) for 20k-iteration loops",
            ["service", "timeout us", "threads", "cpu ms", "energy J", "wall s"],
            rows,
            note="paper runs 1M iterations; shapes (ratios) are the target",
        ),
    )
    index = {(p.service, p.timeout_us, p.threads): p for p in points}
    for timeout in (20, 100):
        for m in (1, 3, 6):
            ns = index[("nanosleep", timeout, m)]
            hr = index[("hr_sleep", timeout, m)]
            # Figure 2a: hr_sleep uses substantially less CPU
            assert hr.cpu_seconds < 0.6 * ns.cpu_seconds
            # Figure 2b: and substantially less energy
            assert hr.energy_j < 0.8 * ns.energy_j
    # maximal relative CPU gain at the 20 us (finer) timeout
    gain20 = (index[("nanosleep", 20, 3)].cpu_seconds
              / index[("hr_sleep", 20, 3)].cpu_seconds)
    assert gain20 > 2.0
    # energy at 20 us: "consumes a third of the energy" (±)
    ratio = (index[("hr_sleep", 20, 3)].energy_j
             / index[("nanosleep", 20, 3)].energy_j)
    assert ratio < 0.55
    # CPU scales roughly linearly with thread count
    assert (index[("hr_sleep", 20, 6)].cpu_seconds
            > 4 * index[("hr_sleep", 20, 1)].cpu_seconds)
