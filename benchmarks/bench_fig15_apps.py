"""Figure 15: CPU usage of the IPsec security gateway and FloWatcher
under Metronome vs static DPDK across offered rates."""

from bench_util import emit

from repro.harness import paper_data
from repro.harness.report import render_table
from repro.harness.scenarios import fig15_apps


def _run():
    return fig15_apps(duration_ms=80)


def test_fig15_apps(benchmark):
    rows = benchmark.pedantic(_run, rounds=1, iterations=1)
    emit(
        "fig15",
        render_table(
            "Figure 15 — IPsec gateway and FloWatcher CPU usage",
            ["app", "system", "rate Mpps", "cpu", "throughput Mpps"],
            rows,
        ),
    )
    by = {(a, s, r): (cpu, thr) for a, s, r, cpu, thr in rows}
    # IPsec: Metronome matches the static gateway's max throughput
    met_max = by[("ipsec", "metronome", 5.61)][1]
    dpdk_max = by[("ipsec", "dpdk", 5.61)][1]
    assert abs(met_max - dpdk_max) / dpdk_max < 0.03
    assert abs(met_max - paper_data.IPSEC_MAX_MPPS) / paper_data.IPSEC_MAX_MPPS < 0.05
    # at the ceiling one thread polls continuously: CPU near/above 100%
    assert by[("ipsec", "metronome", 5.61)][0] > 0.9
    # at lower rates Metronome clearly beats static polling
    assert by[("ipsec", "metronome", 1.4)][0] < 0.6
    assert by[("ipsec", "dpdk", 1.4)][0] > 0.99
    # FloWatcher: line rate sustained with no loss and a large CPU gain
    met_line = by[("flowatcher", "metronome", 14.88)]
    assert met_line[1] > 14.7
    assert met_line[0] < 0.75  # paper: "50% gain even under line rate"
    assert by[("flowatcher", "metronome", 0.5)][0] < 0.3  # ~5x gain at 0.5Mpps
    for rate in (0.5, 5.0, 14.88):
        assert by[("flowatcher", "dpdk", rate)][0] > 0.99
