"""Event-core and NIC-ring performance microbenchmarks.

Thin wrapper over :mod:`repro.bench.perf` (the same suite ``repro
bench`` runs) so perf numbers are archived next to the figure tables.
Runs the quick profile: the CI gate lives in the ``bench-smoke`` job,
this artifact is for the trajectory record.
"""

import json
import os

from bench_util import RESULTS_DIR

from repro.bench import check_result, run_benches
from repro.campaign.artifacts import atomic_write_text


def test_perf_suite(benchmark):
    result = benchmark.pedantic(
        lambda: run_benches(quick=True, skip_figures=True),
        rounds=1, iterations=1,
    )
    atomic_write_text(
        os.path.join(RESULTS_DIR, "perf.json"),
        json.dumps(result, indent=2, sort_keys=True) + "\n",
    )
    churn = result["benches"]["event_churn"]
    print(f"\nevent churn: {churn['events_per_sec']:,.0f} ev/s "
          f"({churn['speedup']:.2f}x over the pre-calendar heap)")
    assert not check_result(result)
