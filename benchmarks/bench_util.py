"""Shared helpers for the benchmark suite.

Each bench renders its table(s) with paper-vs-measured columns, prints
them, and archives them under ``benchmarks/results/`` so EXPERIMENTS.md
can be assembled from the artifacts.
"""

from __future__ import annotations

import math
import os

from repro.campaign.artifacts import atomic_write_text

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


def emit(name: str, text: str) -> None:
    """Print a rendered table and archive it to results/<name>.txt.

    The write is atomic (temp file + rename): an interrupted run leaves
    either the previous artifact or the complete new one, never a
    truncated table.
    """
    atomic_write_text(os.path.join(RESULTS_DIR, f"{name}.txt"), text + "\n")
    print("\n" + text)


def rel_err(measured: float, paper: float) -> float:
    """Relative error vs the paper's value.

    A paper value of 0 makes the ratio undefined — return ``nan``
    (rendered as ``n/a`` by the table formatter) rather than a silent,
    misleading 0.0.
    """
    if paper == 0:
        return math.nan
    return (measured - paper) / paper
