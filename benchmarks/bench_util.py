"""Shared helpers for the benchmark suite.

Each bench renders its table(s) with paper-vs-measured columns, prints
them, and archives them under ``benchmarks/results/`` so EXPERIMENTS.md
can be assembled from the artifacts.
"""

from __future__ import annotations

import os

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


def emit(name: str, text: str) -> None:
    """Print a rendered table and archive it to results/<name>.txt."""
    os.makedirs(RESULTS_DIR, exist_ok=True)
    with open(os.path.join(RESULTS_DIR, f"{name}.txt"), "w") as fh:
        fh.write(text + "\n")
    print("\n" + text)


def rel_err(measured: float, paper: float) -> float:
    """Relative error vs the paper's value (0 when paper value is 0)."""
    if paper == 0:
        return 0.0
    return (measured - paper) / paper
