"""Figure 9: latency versus the number of threads M — more threads mean
more primary→backup switches and visibly worse latency, especially at
high rate.

Thin wrapper over the campaign registry: the sweep grid and rendering
live in ``repro.campaign.registry``, shared with ``repro campaign run``.
"""

from bench_util import emit

from repro.campaign import render_figure, run_figure


def _run():
    return run_figure("fig9")


def test_fig9_latency_vs_m(benchmark):
    rows = benchmark.pedantic(_run, rounds=1, iterations=1)
    emit("fig9", render_figure("fig9", rows))
    by = {(rate, m): b for rate, m, b in rows}
    # 9a: at high rate, more threads push latency up
    assert by[(14.0, 7)]["median"] > by[(14.0, 2)]["median"]
    # 9b: at low rate the variance penalty is visible
    assert by[(1.0, 7)]["std"] > by[(1.0, 2)]["std"] * 0.8
    # tail grows with M at high rate
    assert by[(14.0, 7)]["p99"] > by[(14.0, 3)]["p99"] * 0.9
