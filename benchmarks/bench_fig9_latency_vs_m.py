"""Figure 9: latency versus the number of threads M — more threads mean
more primary→backup switches and visibly worse latency, especially at
high rate."""

from bench_util import emit

from repro.harness.report import render_table
from repro.harness.scenarios import fig9_latency_vs_m


def _run():
    return fig9_latency_vs_m(duration_ms=80)


def test_fig9_latency_vs_m(benchmark):
    rows = benchmark.pedantic(_run, rounds=1, iterations=1)
    table_rows = [
        (rate, m, b["median"], b["q1"], b["q3"], b["p99"], b["std"])
        for rate, m, b in rows
    ]
    emit(
        "fig9",
        render_table(
            "Figure 9 — latency (us) vs M",
            ["rate Mpps", "M", "median", "q1", "q3", "p99", "std"],
            table_rows,
        ),
    )
    by = {(rate, m): b for rate, m, b in rows}
    # 9a: at high rate, more threads push latency up
    assert by[(14.0, 7)]["median"] > by[(14.0, 2)]["median"]
    # 9b: at low rate the variance penalty is visible
    assert by[(1.0, 7)]["std"] > by[(1.0, 2)]["std"] * 0.8
    # tail grows with M at high rate
    assert by[(14.0, 7)]["p99"] > by[(14.0, 3)]["p99"] * 0.9
