"""Table 2: mean busy/vacation periods, N_V and loss vs target V̄ at
line rate (14.88 Mpps, 64B packets).

Thin wrapper over the campaign registry: the sweep grid and rendering
live in ``repro.campaign.registry``, shared with ``repro campaign run``.
"""

from bench_util import emit

from repro.campaign import render_figure, run_figure


def _run():
    return run_figure("table2")


def test_table2_vbar_sweep(benchmark):
    rows = benchmark.pedantic(_run, rounds=1, iterations=1)
    emit("table2", render_figure("table2", rows))
    by_vbar = {r[0]: r for r in rows}
    # (essentially) no loss at the paper's operating point V̄ = 10 us:
    # sub-0.02% — residual drops come from modelled kernel-daemon bursts
    assert by_vbar[10][4] < 0.2
    assert by_vbar[5][4] < 0.2
    # losses appear as V̄ grows toward ring capacity
    assert by_vbar[20][4] > by_vbar[10][4]
    # measured V and N_V grow monotonically with the target
    vs = [by_vbar[v][1] for v in (5, 10, 12, 15, 20)]
    assert vs == sorted(vs)
    # quantitative proximity to the paper on the headline row (V̄=10)
    _, v, b, nv, _loss = by_vbar[10]
    assert abs(v - 19.55) / 19.55 < 0.25
    assert abs(b - 20.24) / 20.24 < 0.25
    assert abs(nv - 287.77) / 287.77 < 0.25
    # eq. (3) self-consistency: B ≈ V·ρ/(1−ρ) with ρ = B/(V+B)
    rho = b / (v + b)
    assert abs(b - v * rho / (1 - rho)) / b < 0.1
