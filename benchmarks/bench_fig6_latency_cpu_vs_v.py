"""Figure 6: latency and CPU usage versus the target vacation period V̄,
for several traffic volumes — the latency/CPU trade-off knob."""

from bench_util import emit

from repro.harness.report import render_table
from repro.harness.scenarios import fig6_latency_cpu


def _run():
    return fig6_latency_cpu(duration_ms=80)


def test_fig6_latency_cpu_vs_v(benchmark):
    rows = benchmark.pedantic(_run, rounds=1, iterations=1)
    emit(
        "fig6",
        render_table(
            "Figure 6 — latency and CPU vs target V̄",
            ["gbps", "V̄ us", "mean latency us", "p99 us", "cpu"],
            rows,
        ),
    )
    by = {(g, v): (lat, p99, cpu) for g, v, lat, p99, cpu in rows}
    for gbps in (1.0, 5.0, 10.0):
        # longer target vacation -> lower CPU ...
        assert by[(gbps, 20)][2] < by[(gbps, 5)][2]
        # ... but higher latency (the paper's trade-off)
        assert by[(gbps, 20)][0] > by[(gbps, 5)][0]
    # CPU increases with offered load at fixed V̄
    assert by[(10.0, 10)][2] > by[(1.0, 10)][2]
