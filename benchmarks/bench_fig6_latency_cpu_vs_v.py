"""Figure 6: latency and CPU usage versus the target vacation period V̄,
for several traffic volumes — the latency/CPU trade-off knob.

Thin wrapper over the campaign registry: the sweep grid and rendering
live in ``repro.campaign.registry``, shared with ``repro campaign run``.
"""

from bench_util import emit

from repro.campaign import render_figure, run_figure


def _run():
    return run_figure("fig6")


def test_fig6_latency_cpu_vs_v(benchmark):
    rows = benchmark.pedantic(_run, rounds=1, iterations=1)
    emit("fig6", render_figure("fig6", rows))
    by = {(g, v): (lat, p99, cpu) for g, v, lat, p99, cpu in rows}
    for gbps in (1.0, 5.0, 10.0):
        # longer target vacation -> lower CPU ...
        assert by[(gbps, 20)][2] < by[(gbps, 5)][2]
        # ... but higher latency (the paper's trade-off)
        assert by[(gbps, 20)][0] > by[(gbps, 5)][0]
    # CPU increases with offered load at fixed V̄
    assert by[(10.0, 10)][2] > by[(1.0, 10)][2]
