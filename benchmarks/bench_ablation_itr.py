"""Ablation: XDP interrupt moderation (ITR) — the interrupt-path
equivalent of Metronome's V̄ knob.  Short ITR buys latency with
per-interrupt CPU; long ITR the reverse."""

from bench_util import emit

from repro import config
from repro.harness.report import render_table
from repro.nic.traffic import gbps_to_pps


def _run():
    from repro.harness.experiment import default_app
    from repro.kernel.machine import Machine
    from repro.nic.device import NicPort
    from repro.nic.traffic import CbrProcess
    from repro.sim.units import MS
    from repro.xdp.driver import XdpDriver

    rows = []
    rate = gbps_to_pps(1.0)
    for itr_us in (4, 30, 100):
        machine = Machine(config.SimConfig(seed=5))
        port = NicPort(machine.sim, [CbrProcess(rate)],
                       sample_every=machine.cfg.latency_sample_every)
        app = default_app()
        app.per_packet_ns = config.XDP_PKT_NS
        driver = XdpDriver(machine, port, app, cores=[0],
                           itr_ns=itr_us * 1000)
        for q in driver.queues:
            q._warm_remaining = 0
        driver.start()
        machine.run(until=60 * MS)
        rows.append((
            itr_us,
            driver.total_irqs,
            driver.cpu_utilization(),
            driver.latency.mean() / 1e3,
            driver.latency.percentile(99) / 1e3,
            port.loss_fraction() * 100,
        ))
    return rows


def test_ablation_itr(benchmark):
    rows = benchmark.pedantic(_run, rounds=1, iterations=1)
    emit(
        "ablation_itr",
        render_table(
            "Ablation — XDP interrupt moderation at 1 Gbps",
            ["ITR us", "irqs", "cpu", "mean lat us", "p99 us", "loss %"],
            rows,
        ),
    )
    by = {r[0]: r for r in rows}
    # fewer interrupts with a longer ITR ...
    assert by[4][1] > by[30][1] > by[100][1]
    # ... which costs latency ...
    assert by[100][3] > by[4][3]
    # ... and buys CPU
    assert by[100][2] < by[4][2]
    # nobody loses packets at 1 Gbps
    for r in rows:
        assert r[5] < 0.1