"""§3.2's motivation scaled up: a 40GbE-class port (4 RSS queues at
10 GbE line rate each), every queue shared by its own Metronome trio —
CPU stays proportional while throughput scales."""

from bench_util import emit

from repro.harness.extensions import multiqueue_scaling
from repro.harness.report import render_table


def _run():
    return [multiqueue_scaling(num_queues=n, duration_ms=30)
            for n in (1, 2, 4)]


def test_multiqueue_scaling(benchmark):
    rows = benchmark.pedantic(_run, rounds=1, iterations=1)
    emit(
        "ext_multiqueue",
        render_table(
            "Extension — multi-queue scaling (line rate per queue)",
            ["queues", "offered Mpps", "delivered Mpps", "loss %",
             "cpu total", "cpu/queue"],
            [(r["num_queues"], r["offered_mpps"], r["delivered_mpps"],
              r["loss_pct"], r["cpu_total"], r["cpu_per_queue"]) for r in rows],
        ),
    )
    by_n = {r["num_queues"]: r for r in rows}
    for n in (1, 2, 4):
        r = by_n[n]
        assert r["loss_pct"] < 0.05
        assert r["delivered_mpps"] > 14.5 * n
        # per-queue CPU cost stays flat as the port scales
        assert abs(r["cpu_per_queue"] - by_n[1]["cpu_per_queue"]) < 0.12
