"""Figure 11: Metronome's adaptation to a time-varying offered load
(the MoonGen triangle ramp of §5.3): throughput tracking, T_S and ρ
adjustment, CPU proportionality."""

from bench_util import emit

from repro.harness.report import render_table
from repro.harness.scenarios import fig11_adaptation
from repro.sim.units import SEC

DURATION_S = 3.0


def _run():
    return fig11_adaptation(duration_s=DURATION_S, window_ms=50)


def test_fig11_adaptation(benchmark):
    result = benchmark.pedantic(_run, rounds=1, iterations=1)
    s = result.series
    offered = s.get("offered_mpps")
    delivered = s.get("delivered_mpps")
    ts_us = s.get("ts_us")
    rho = s.get("rho")
    cpu = s.get("cpu")
    rows = []
    for i in range(0, len(offered), max(1, len(offered) // 20)):
        rows.append(
            (offered[i][0] / SEC, offered[i][1], delivered[i][1],
             ts_us[i][1], rho[i][1], cpu[i][1] if i < len(cpu) else 0.0)
        )
    emit(
        "fig11",
        render_table(
            "Figure 11 — adaptation over the triangle ramp",
            ["t s", "offered Mpps", "delivered Mpps", "T_S us", "rho", "cpu"],
            rows,
            note=f"{DURATION_S}s compressed ramp (paper: 60s, same shape)",
        ),
    )
    # 11a: Metronome matches the generated rate throughout the ramp
    assert result.total_delivered >= 0.995 * result.total_offered
    for (t_o, o), (_t_d, d) in zip(offered, delivered):
        if o > 1.0:
            assert abs(d - o) / o < 0.1, f"tracking broke at t={t_o}"
    # T_S adapts down as the load climbs: at the peak it nears V̄ (10us),
    # at the valleys it nears M*V̄ (30us)
    mid = len(ts_us) // 2
    peak_ts = min(v for _t, v in ts_us[mid - 3: mid + 3])
    edge_ts = max(v for _t, v in ts_us[:4] + ts_us[-4:])
    # eq. 12 with ρ≈0.5 (μ≈2λ at line rate) gives T_S ≈ 17 us at peak
    assert peak_ts < 20.0
    assert edge_ts > 24.0
    # rho follows the ramp: peaks mid-run
    peak_rho = max(v for _t, v in rho[mid - 3: mid + 3])
    edge_rho = min(v for _t, v in rho[:4])
    assert peak_rho > 0.4
    assert edge_rho < 0.2
    # 11b: CPU rises with traffic and falls back (proportionality)
    cpu_vals = [v for _t, v in cpu]
    mid_cpu = max(cpu_vals[len(cpu_vals) // 2 - 3: len(cpu_vals) // 2 + 3])
    edge_cpu = cpu_vals[0]
    assert mid_cpu > 2.5 * edge_cpu
    assert cpu_vals[-1] < 0.6 * mid_cpu
