"""Table 1: sleep-period precision of nanosleep() vs hr_sleep().

Regenerates the paper's Table 1 (mean and 99th percentile of measured
sleep lengths for 1-200 us targets, SCHED_OTHER thread).

Thin wrapper over the campaign registry: the sweep grid and rendering
live in ``repro.campaign.registry``, shared with ``repro campaign run``.
"""

from bench_util import emit

from repro.campaign import render_figure, run_figure
from repro.harness import paper_data


def _run():
    return run_figure("table1")


def test_table1_sleep_precision(benchmark):
    rows = benchmark.pedantic(_run, rounds=1, iterations=1)
    emit("table1", render_figure("table1", rows))
    by_key = {(s, t): (m, p) for s, t, m, p in rows}
    for target in (1, 5, 10, 50, 100, 200):
        hr_mean = by_key[("hr_sleep", target)][0]
        ns_mean = by_key[("nanosleep", target)][0]
        # headline claim: hr_sleep is far more precise at fine grain
        assert hr_mean < ns_mean
        paper_mean = paper_data.TABLE1[("hr_sleep", target)][0]
        assert abs(hr_mean - paper_mean) / paper_mean < 0.15
        paper_mean = paper_data.TABLE1[("nanosleep", target)][0]
        assert abs(ns_mean - paper_mean) / paper_mean < 0.15
    # the paper's 15x figure: precision gain at 1 us grain
    gain = (by_key[("nanosleep", 1)][0] - 1) / (by_key[("hr_sleep", 1)][0] - 1)
    assert gain > 10
