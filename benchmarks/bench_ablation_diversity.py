"""Ablation: the primary/backup timeout diversity of §4.1 vs the naive
equal-timeout configuration, at line rate."""

from bench_util import emit

from repro.harness.extensions import ablation_diversity
from repro.harness.report import render_table


def _run():
    return ablation_diversity(duration_ms=60)


def test_ablation_diversity(benchmark):
    out = benchmark.pedantic(_run, rounds=1, iterations=1)
    emit(
        "ablation_diversity",
        render_table(
            "Ablation — equal timeouts vs primary/backup diversity",
            ["config", "cpu", "busy-try fraction", "loss %",
             "mean latency us"],
            [(k, v["cpu"], v["busy_try_fraction"], v["loss_pct"],
              v["mean_latency_us"]) for k, v in out.items()],
        ),
    )
    equal, diverse = out["equal"], out["diverse"]
    # §4.1: "when timeouts are all set to a same value, CPU consumption
    # significantly degrades as load increases"
    assert equal["cpu"] > diverse["cpu"] + 0.1
    assert equal["busy_try_fraction"] > 3 * diverse["busy_try_fraction"]
    # both deliver the traffic — the waste is pure overhead
    assert equal["loss_pct"] < 0.2
    assert diverse["loss_pct"] < 0.2
