"""Figure 5: vacation-period PDF — analytical model (eq. 9) vs
simulation, T_S = T_L = 50 us, M ∈ {2, 3, 5}."""

import math

from bench_util import emit

from repro.harness.report import render_table
from repro.harness.scenarios import fig5_vacation_pdf


def _run():
    return fig5_vacation_pdf(duration_ms=250)


def test_fig5_vacation_pdf(benchmark):
    series = benchmark.pedantic(_run, rounds=1, iterations=1)
    rows = []
    for s in series:
        # subsample bins for the printed table
        for i in range(0, len(s.bin_centers_us), 4):
            rows.append(
                (s.m, s.bin_centers_us[i], s.empirical_density[i],
                 s.model_density[i])
            )
    emit(
        "fig5",
        render_table(
            "Figure 5 — vacation PDF: simulation vs eq. (9)",
            ["M", "V us", "empirical density", "model density"],
            rows,
            note="density over the continuous part x < T_S; "
                 "atom at T_S excluded",
        ),
    )
    for s in series:
        # the empirical histogram tracks the analytical density; the fit
        # loosens slightly with M (the model's independence assumption
        # ignores that a thread which just lost the race cannot wake
        # again immediately — see EXPERIMENTS.md)
        pairs = [
            (e, m) for e, m in zip(s.empirical_density, s.model_density)
        ]
        mean_level = sum(m for _e, m in pairs) / len(pairs)
        mae = sum(abs(e - m) for e, m in pairs) / len(pairs)
        budget = 0.45 if s.m <= 3 else 0.7
        assert mae < budget * mean_level, f"M={s.m}: {mae} vs {mean_level}"
        # the decorrelation-model slope: density decreases in x for M>2
        if s.m > 2:
            first = sum(s.empirical_density[:5])
            last = sum(s.empirical_density[-5:])
            assert first > last
        # rare over-T_L reschedules only (the paper's OS-daemon tail)
        assert s.beyond_tl_fraction < 0.02


def test_fig5_model_atom_consistency():
    """The analytic CDF/PDF/atom decomposition integrates to 1."""
    from repro.core.model import pdf_vacation, vacation_atom_at_ts

    for m in (2, 3, 5):
        steps = 4000
        ts = tl = 50.0
        total = vacation_atom_at_ts(ts, tl, m)
        dx = ts / steps
        total += sum(
            pdf_vacation((i + 0.5) * dx, ts, tl, m) * dx for i in range(steps)
        )
        assert math.isclose(total, 1.0, rel_tol=1e-3)
