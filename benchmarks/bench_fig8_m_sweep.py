"""Figure 8: busy tries and CPU usage versus the number of Metronome
threads M at line rate — excessive parallelism is useless."""

from bench_util import emit

from repro.harness.report import render_table
from repro.harness.scenarios import fig8_m_sweep


def _run():
    return fig8_m_sweep(duration_ms=80)


def test_fig8_m_sweep(benchmark):
    rows = benchmark.pedantic(_run, rounds=1, iterations=1)
    emit(
        "fig8",
        render_table(
            "Figure 8 — busy tries and CPU vs M (line rate)",
            ["M", "busy-try fraction", "cpu"],
            rows,
        ),
    )
    by_m = {m: (bt, cpu) for m, bt, cpu in rows}
    # busy-try fraction grows with M (the paper: "increases linearly")
    assert by_m[8][0] > by_m[4][0] > by_m[2][0]
    # CPU rises only slightly with M
    assert by_m[8][1] - by_m[2][1] < 0.35
    # correlation of busy tries with M is strongly positive
    ms = [m for m, _b, _c in rows]
    bts = [b for _m, b, _c in rows]
    mean_m = sum(ms) / len(ms)
    mean_b = sum(bts) / len(bts)
    cov = sum((m - mean_m) * (b - mean_b) for m, b in zip(ms, bts))
    assert cov > 0
