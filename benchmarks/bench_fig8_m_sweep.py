"""Figure 8: busy tries and CPU usage versus the number of Metronome
threads M at line rate — excessive parallelism is useless.

Thin wrapper over the campaign registry: the sweep grid and rendering
live in ``repro.campaign.registry``, shared with ``repro campaign run``.
"""

from bench_util import emit

from repro.campaign import render_figure, run_figure


def _run():
    return run_figure("fig8")


def test_fig8_m_sweep(benchmark):
    rows = benchmark.pedantic(_run, rounds=1, iterations=1)
    emit("fig8", render_figure("fig8", rows))
    by_m = {m: (bt, cpu) for m, bt, cpu in rows}
    # busy-try fraction grows with M (the paper: "increases linearly")
    assert by_m[8][0] > by_m[4][0] > by_m[2][0]
    # CPU rises only slightly with M
    assert by_m[8][1] - by_m[2][1] < 0.35
    # correlation of busy tries with M is strongly positive
    ms = [m for m, _b, _c in rows]
    bts = [b for _m, b, _c in rows]
    mean_m = sum(ms) / len(ms)
    mean_b = sum(bts) / len(bts)
    cov = sum((m - mean_m) * (b - mean_b) for m, b in zip(ms, bts))
    assert cov > 0
