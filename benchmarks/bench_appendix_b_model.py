"""Appendix B validation: with a constant retrieval rate μ, measured
busy periods must satisfy eq. (3) and backlogs Little's law across the
whole load range."""

from bench_util import emit

from repro.harness.extensions import appendix_b_validation
from repro.harness.report import render_table


def _run():
    return appendix_b_validation(duration_ms=60)


def test_appendix_b_renewal_model(benchmark):
    rows = benchmark.pedantic(_run, rounds=1, iterations=1)
    emit(
        "appendix_b",
        render_table(
            "Appendix B — renewal model validation",
            ["rate Mpps", "measured B us", "eq.(3) B us", "N_V / (λ·V)"],
            rows,
        ),
    )
    for rate, measured_b, predicted_b, littles in rows:
        # eq. (3): E[B|V] = V·ρ/(1−ρ) — within 20% across loads
        assert measured_b == __import__("pytest").approx(
            predicted_b, rel=0.25), f"eq.3 broke at {rate} Mpps"
        # Little's law: N_V = λ·E[V] — tight
        assert 0.85 < littles < 1.15, f"Little's law broke at {rate} Mpps"
