"""Figure 10: latency boxplots for hr_sleep vs nanosleep at several
throughputs and two timeout grains (1 us and 10 us)."""

from bench_util import emit

from repro.harness.report import render_table
from repro.harness.scenarios import fig10_latency_boxplots


def _run():
    return fig10_latency_boxplots(duration_ms=80)


def test_fig10_latency_boxplots(benchmark):
    rows = benchmark.pedantic(_run, rounds=1, iterations=1)
    table_rows = [
        (svc, gbps, vbar, b["median"], b["q1"], b["q3"], b["whisk_hi"])
        for svc, gbps, vbar, b in rows
    ]
    emit(
        "fig10",
        render_table(
            "Figure 10 — latency boxplots (us): hr_sleep vs nanosleep",
            ["service", "gbps", "V̄ us", "median", "q1", "q3", "whisker hi"],
            table_rows,
            note="nanosleep runs use the 4096 ring as in the paper's footnote",
        ),
    )
    by = {(svc, gbps, vbar): b for svc, gbps, vbar, b in rows}
    for gbps in (1.0, 5.0, 10.0):
        # at the 1us grain nanosleep's ~58us overhead dominates plainly
        hr = by[("hr_sleep", gbps, 1)]
        ns = by[("nanosleep", gbps, 1)]
        assert ns["median"] > hr["median"] + 10
        # at the 10us grain the ordering still holds (the gap narrows
        # where Metronome's own vacation already dominates)
        assert (by[("nanosleep", gbps, 10)]["median"]
                > by[("hr_sleep", gbps, 10)]["median"])
        # and nanosleep's spread (IQR) is consistently wider
        ns10 = by[("nanosleep", gbps, 10)]
        hr10 = by[("hr_sleep", gbps, 10)]
        assert ns10["q3"] - ns10["q1"] > hr10["q3"] - hr10["q1"]
    # hr_sleep resolves the two grains distinctly at high rate ...
    assert (by[("hr_sleep", 10.0, 10)]["median"]
            > by[("hr_sleep", 10.0, 1)]["median"])
    # ... while nanosleep cannot tell 1 us from 10 us apart (its
    # overhead swamps the target): medians within a few us
    diff = abs(by[("nanosleep", 10.0, 10)]["median"]
               - by[("nanosleep", 10.0, 1)]["median"])
    assert diff < 15
