"""Extension (§2): sleep-based traffic shaping — the precision of
hr_sleep() projected onto a Carousel-style pacer."""

from bench_util import emit

from repro.harness.extensions import pacing_comparison
from repro.harness.report import render_table


def _run():
    return pacing_comparison(count=300)


def test_ext_pacing(benchmark):
    rows = benchmark.pedantic(_run, rounds=1, iterations=1)
    emit(
        "ext_pacing",
        render_table(
            "Extension — sleep-based pacing",
            ["service", "target kpps", "rate error", "jitter us",
             "gap compliance"],
            rows,
            note="compliance = fraction of inter-departure gaps within "
                 "±50% of the ideal interval (bursting scores low)",
        ),
    )
    by = {(s, k): (err, jit, comp) for s, k, err, jit, comp in rows}
    # both services hit the mean rate (absolute deadlines guarantee it)
    for service in ("hr_sleep", "nanosleep"):
        for kpps in (1, 10, 50, 100):
            assert by[(service, kpps)][0] < 0.05
    # but only hr_sleep actually *paces* at fine gaps
    for kpps in (50, 100):
        assert by[("hr_sleep", kpps)][2] > 0.9
        assert by[("nanosleep", kpps)][2] < 0.5
    # nanosleep shapes fine at coarse gaps (1ms ≫ its 58us floor)
    assert by[("nanosleep", 1)][2] > 0.9
    # jitter ordering everywhere
    for kpps in (10, 50, 100):
        assert by[("hr_sleep", kpps)][1] < by[("nanosleep", kpps)][1]
