"""§5.1's bidirectional test: Metronome (3 threads per Rx queue)
matches DPDK's maximum bidirectional throughput of 11.61 Mpps per port
while using half the CPU."""

from bench_util import emit

from repro.harness.extensions import bidirectional_throughput
from repro.harness.report import render_table


def _run():
    return bidirectional_throughput(duration_ms=60)


def test_bidirectional_throughput(benchmark):
    r = benchmark.pedantic(_run, rounds=1, iterations=1)
    emit(
        "bidirectional",
        render_table(
            "§5.1 — bidirectional throughput (11.61 Mpps per port offered)",
            ["system", "Mpps/port", "loss %", "total CPU"],
            [
                ("metronome 3thr/queue", r.metronome_mpps_per_port,
                 r.metronome_loss_pct, r.metronome_cpu),
                ("dpdk 1 lcore/queue", r.dpdk_mpps_per_port,
                 r.dpdk_loss_pct, r.dpdk_cpu),
            ],
        ),
    )
    # the paper's claim: same maximum bidirectional throughput
    assert abs(r.metronome_mpps_per_port - r.dpdk_mpps_per_port) < 0.1
    assert r.metronome_mpps_per_port > 11.4
    assert r.metronome_loss_pct < 0.1
    # at a fraction of the polling CPU (2 dedicated lcores = 200%)
    assert r.dpdk_cpu > 1.95
    assert r.metronome_cpu < 1.3
