"""Table 3: packet loss when Metronome runs on nanosleep() instead of
hr_sleep(), for several ring sizes — adaptive packet retrieval on
nanosleep is not feasible at 10 Gbps."""

from bench_util import emit

from repro.harness import paper_data
from repro.harness.report import render_table
from repro.harness.scenarios import table3_nanosleep_loss


def _run():
    return table3_nanosleep_loss(duration_ms=120)


def test_table3_nanosleep_loss(benchmark):
    rows = benchmark.pedantic(_run, rounds=1, iterations=1)
    table_rows = []
    for ring, vbar, ns_loss, hr_loss in rows:
        paper_loss = paper_data.TABLE3[(ring, vbar)]
        table_rows.append((ring, vbar, ns_loss, paper_loss, hr_loss))
    emit(
        "table3",
        render_table(
            "Table 3 — nanosleep-in-Metronome loss at 10 Gbps (%)",
            ["ring", "V̄ us", "nanosleep loss %", "paper %", "hr_sleep loss %"],
            table_rows,
            note="paper reports hr_sleep achieves no loss in all scenarios",
        ),
    )
    by = {(ring, vbar): (ns, hr) for ring, vbar, ns, hr in rows}
    # headline: substantial loss with nanosleep at the default ring
    assert by[(1024, 10)][0] > 1.0
    # hr_sleep loses (essentially) nothing in every scenario
    for (_ring, _vbar), (_ns, hr) in by.items():
        assert hr < 0.05
    # bigger rings reduce nanosleep loss.  Divergence note: in our model
    # a 4096 ring fully covers the ~68us nanosleep-stretched vacation
    # (λ·V ≈ 1020 descriptors), so the loss vanishes, while the paper
    # still measures ~3.9% — testbed effects outside the model (see
    # EXPERIMENTS.md).  The feasibility claim (nanosleep unusable at the
    # default configuration, hr_sleep lossless) is what we assert.
    assert by[(4096, 10)][0] < by[(1024, 10)][0]
    assert by[(4096, 1)][0] <= by[(4096, 10)][0]
