"""Table 3: packet loss when Metronome runs on nanosleep() instead of
hr_sleep(), for several ring sizes — adaptive packet retrieval on
nanosleep is not feasible at 10 Gbps.

Thin wrapper over the campaign registry: the sweep grid and rendering
live in ``repro.campaign.registry``, shared with ``repro campaign run``.
"""

from bench_util import emit

from repro.campaign import render_figure, run_figure


def _run():
    return run_figure("table3")


def test_table3_nanosleep_loss(benchmark):
    rows = benchmark.pedantic(_run, rounds=1, iterations=1)
    emit("table3", render_figure("table3", rows))
    by = {(ring, vbar): (ns, hr) for ring, vbar, ns, hr in rows}
    # headline: substantial loss with nanosleep at the default ring
    assert by[(1024, 10)][0] > 1.0
    # hr_sleep loses (essentially) nothing in every scenario
    for (_ring, _vbar), (_ns, hr) in by.items():
        assert hr < 0.05
    # bigger rings reduce nanosleep loss.  Divergence note: in our model
    # a 4096 ring fully covers the ~68us nanosleep-stretched vacation
    # (λ·V ≈ 1020 descriptors), so the loss vanishes, while the paper
    # still measures ~3.9% — testbed effects outside the model (see
    # EXPERIMENTS.md).  The feasibility claim (nanosleep unusable at the
    # default configuration, hr_sleep lossless) is what we assert.
    assert by[(4096, 10)][0] < by[(1024, 10)][0]
    assert by[(4096, 1)][0] <= by[(4096, 10)][0]
