"""Figure 12: the headline comparison — latency and total CPU usage for
Metronome, static-polling DPDK and XDP across offered rates.

Thin wrapper over the campaign registry: the sweep grid and rendering
live in ``repro.campaign.registry``, shared with ``repro campaign run``.
"""

from bench_util import emit

from repro.campaign import render_figure, run_figure
from repro.harness import paper_data


def _run():
    return run_figure("fig12")


def test_fig12_dpdk_metronome_xdp(benchmark):
    rows = benchmark.pedantic(_run, rounds=1, iterations=1)
    emit("fig12", render_figure("fig12", rows))
    by = {(s, g): (lat, p99, cpu, loss) for s, g, lat, p99, cpu, loss in rows}
    for gbps in (0.5, 1.0, 5.0, 10.0):
        met = by[("metronome", gbps)]
        dpdk = by[("dpdk", gbps)]
        xdp = by[("xdp", gbps)]
        # 12b: DPDK pins a core at 100%; Metronome is always cheaper
        assert dpdk[2] > 0.99
        assert met[2] < 0.75
        # 12a: DPDK's continuous polling wins on latency
        assert dpdk[0] < met[0]
        # nobody loses packets at these operating points
        assert met[3] < 0.1 and dpdk[3] < 0.1 and xdp[3] < 0.5
    # 40% CPU saving even at line rate (paper: Metronome ~60% there)
    assert by[("metronome", 10.0)][2] < 0.70
    # >4x saving at 0.5 Gbps (paper: 18.6%, "more than 5x")
    assert by[("metronome", 0.5)][2] < 0.25
    # XDP's CPU exceeds Metronome's at every rate (per-interrupt tax),
    # and explodes at high rates (4 saturated cores)
    for gbps in (0.5, 1.0, 5.0, 10.0):
        assert by[("xdp", gbps)][2] > by[("metronome", gbps)][2]
    assert by[("xdp", 10.0)][2] > 3.0
    # XDP latency inflates at line rate (§5.5)
    assert by[("xdp", 10.0)][0] > 2 * by[("metronome", 10.0)][0]
    # DPDK's minimum latency lands near the paper's 6.83 us
    assert abs(by[("dpdk", 10.0)][0] - paper_data.DPDK_MIN_LATENCY_US) < 3.0
