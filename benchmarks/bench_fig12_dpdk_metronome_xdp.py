"""Figure 12: the headline comparison — latency and total CPU usage for
Metronome, static-polling DPDK and XDP across offered rates."""

from bench_util import emit

from repro.harness import paper_data
from repro.harness.report import render_table
from repro.harness.scenarios import fig12_compare


def _run():
    return fig12_compare(duration_ms=80)


def test_fig12_dpdk_metronome_xdp(benchmark):
    rows = benchmark.pedantic(_run, rounds=1, iterations=1)
    table_rows = []
    for system, gbps, lat, p99, cpu, loss in rows:
        idx = {"metronome": 0, "dpdk": 1, "xdp": 2}[system]
        paper_cpu = paper_data.FIG12B_CPU[gbps][idx]
        table_rows.append((system, gbps, lat, p99, cpu, paper_cpu, loss))
    emit(
        "fig12",
        render_table(
            "Figure 12 — L3 forwarder: Metronome vs DPDK vs XDP",
            ["system", "gbps", "mean lat us", "p99 us", "cpu",
             "paper cpu", "loss %"],
            table_rows,
        ),
    )
    by = {(s, g): (lat, p99, cpu, loss) for s, g, lat, p99, cpu, loss in rows}
    for gbps in (0.5, 1.0, 5.0, 10.0):
        met = by[("metronome", gbps)]
        dpdk = by[("dpdk", gbps)]
        xdp = by[("xdp", gbps)]
        # 12b: DPDK pins a core at 100%; Metronome is always cheaper
        assert dpdk[2] > 0.99
        assert met[2] < 0.75
        # 12a: DPDK's continuous polling wins on latency
        assert dpdk[0] < met[0]
        # nobody loses packets at these operating points
        assert met[3] < 0.1 and dpdk[3] < 0.1 and xdp[3] < 0.5
    # 40% CPU saving even at line rate (paper: Metronome ~60% there)
    assert by[("metronome", 10.0)][2] < 0.70
    # >4x saving at 0.5 Gbps (paper: 18.6%, "more than 5x")
    assert by[("metronome", 0.5)][2] < 0.25
    # XDP's CPU exceeds Metronome's at every rate (per-interrupt tax),
    # and explodes at high rates (4 saturated cores)
    for gbps in (0.5, 1.0, 5.0, 10.0):
        assert by[("xdp", gbps)][2] > by[("metronome", gbps)][2]
    assert by[("xdp", 10.0)][2] > 3.0
    # XDP latency inflates at line rate (§5.5)
    assert by[("xdp", 10.0)][0] > 2 * by[("metronome", 10.0)][0]
    # DPDK's minimum latency lands near the paper's 6.83 us
    assert abs(by[("dpdk", 10.0)][0] - paper_data.DPDK_MIN_LATENCY_US) < 3.0
