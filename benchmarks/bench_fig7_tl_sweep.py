"""Figure 7: busy tries and CPU usage versus the backup timeout T_L at
line rate — longer T_L means fewer wasted wakeups.

Thin wrapper over the campaign registry: the sweep grid and rendering
live in ``repro.campaign.registry``, shared with ``repro campaign run``.
"""

from bench_util import emit

from repro.campaign import render_figure, run_figure


def _run():
    return run_figure("fig7")


def test_fig7_tl_sweep(benchmark):
    rows = benchmark.pedantic(_run, rounds=1, iterations=1)
    emit("fig7", render_figure("fig7", rows))
    by_tl = {tl: (bt, cpu) for tl, bt, cpu in rows}
    # busy tries monotonically (modulo noise) decrease with T_L
    assert by_tl[700][0] < by_tl[100][0]
    assert by_tl[500][0] < by_tl[200][0]
    # most of the benefit is reached by 500 us (the paper's choice):
    # 500->700 changes busy tries by much less than 100->500
    drop_to_500 = by_tl[100][0] - by_tl[500][0]
    drop_after = by_tl[500][0] - by_tl[700][0]
    assert drop_after < 0.5 * drop_to_500
    # CPU decreases too, but only slightly past 500 us (paper: ~1%)
    assert abs(by_tl[700][1] - by_tl[500][1]) < 0.04
