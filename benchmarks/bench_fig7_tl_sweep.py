"""Figure 7: busy tries and CPU usage versus the backup timeout T_L at
line rate — longer T_L means fewer wasted wakeups."""

from bench_util import emit

from repro.harness.report import render_table
from repro.harness.scenarios import fig7_tl_sweep


def _run():
    return fig7_tl_sweep(duration_ms=80)


def test_fig7_tl_sweep(benchmark):
    rows = benchmark.pedantic(_run, rounds=1, iterations=1)
    emit(
        "fig7",
        render_table(
            "Figure 7 — busy tries and CPU vs T_L (line rate, V̄=10us)",
            ["T_L us", "busy-try fraction", "cpu"],
            rows,
        ),
    )
    by_tl = {tl: (bt, cpu) for tl, bt, cpu in rows}
    # busy tries monotonically (modulo noise) decrease with T_L
    assert by_tl[700][0] < by_tl[100][0]
    assert by_tl[500][0] < by_tl[200][0]
    # most of the benefit is reached by 500 us (the paper's choice):
    # 500->700 changes busy tries by much less than 100->500
    drop_to_500 = by_tl[100][0] - by_tl[500][0]
    drop_after = by_tl[500][0] - by_tl[700][0]
    assert drop_after < 0.5 * drop_to_500
    # CPU decreases too, but only slightly past 500 us (paper: ~1%)
    assert abs(by_tl[700][1] - by_tl[500][1]) < 0.04
