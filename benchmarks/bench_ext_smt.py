"""Extension: hyper-threading interference (paper §1) — a polling DPDK
lcore derates its SMT sibling for the entire run; a Metronome thread
only during its duty cycle."""

from bench_util import emit

from repro import config
from repro.harness.extensions import smt_interference
from repro.harness.report import render_table


def _run():
    return smt_interference(job_work_ms=60)


def test_ext_smt_interference(benchmark):
    r = benchmark.pedantic(_run, rounds=1, iterations=1)
    slowdown_dpdk = r["dpdk_sibling"] / r["alone"]
    slowdown_met = r["metronome_sibling"] / r["alone"]
    emit(
        "ext_smt",
        render_table(
            "Extension — SMT sibling interference (1 Gbps workload)",
            ["sibling runs", "job completion ms", "slowdown"],
            [
                ("nothing", r["alone"], 1.0),
                ("polling DPDK", r["dpdk_sibling"], slowdown_dpdk),
                ("metronome thread", r["metronome_sibling"], slowdown_met),
            ],
        ),
    )
    # polling pins the sibling: the job runs at SMT_SLOWDOWN throughout
    assert slowdown_dpdk > 0.9 / config.SMT_SLOWDOWN
    # a Metronome thread only costs its duty cycle
    assert slowdown_met < 1.25
    assert slowdown_met < 0.8 * slowdown_dpdk