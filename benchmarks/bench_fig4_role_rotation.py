"""Figure 4 (and §4.1): at high load a single thread serves the queue
at a time, with the primary role randomly rotating in the long term."""

from bench_util import emit

from repro.harness.extensions import role_rotation
from repro.harness.report import render_table


def _run():
    return role_rotation(duration_ms=80)


def test_fig4_role_rotation(benchmark):
    r = benchmark.pedantic(_run, rounds=1, iterations=1)
    spell_lengths = [n for _t, n in r.serving_spells]
    mean_spell = sum(spell_lengths) / len(spell_lengths)
    rows = [(t, f"{share:.3f}") for t, share in sorted(r.share_by_thread.items())]
    rows.append(("(switches)", r.switches))
    rows.append(("(mean spell, cycles)", f"{mean_spell:.1f}"))
    emit(
        "fig4_rotation",
        render_table(
            "Figure 4 — primary-role rotation at line rate",
            ["thread / metric", "value"],
            rows,
        ),
    )
    # the primary role rotates: many switches, spells are finite
    assert r.switches > 20
    assert mean_spell < 60
    # long-term fairness: every thread serves a substantial share
    assert len(r.share_by_thread) == 3
    for share in r.share_by_thread.values():
        assert 0.15 < share < 0.55
