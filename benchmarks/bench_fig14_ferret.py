"""Figure 14 + Table 4: coexistence with the ferret CPU-bound workload —
static polling starves co-located work and loses throughput; Metronome
shares cores with a ~10-25% ferret slowdown and no packet loss."""

from bench_util import emit

from repro.harness import paper_data
from repro.harness.report import render_table
from repro.harness.scenarios import ferret_coexistence


def _run():
    return ferret_coexistence(ferret_work_ms=150, throughput_ms=300)


def test_fig14_table4_ferret(benchmark):
    r = benchmark.pedantic(_run, rounds=1, iterations=1)
    slow_dpdk = r.ferret_with_dpdk_ms / r.ferret_alone_ms
    slow_met = r.ferret_with_metronome_ms / r.ferret_alone_ms
    emit(
        "fig14_table4",
        render_table(
            "Figure 14 / Table 4 — coexistence with ferret",
            ["metric", "measured", "paper"],
            [
                ("ferret alone (ms)", r.ferret_alone_ms, "-"),
                ("ferret + static DPDK slowdown", slow_dpdk,
                 paper_data.FERRET_SLOWDOWN_WITH_POLLING),
                ("ferret + Metronome slowdown", slow_met,
                 paper_data.FERRET_SLOWDOWN_WITH_METRONOME),
                ("DPDK shared throughput (Mpps)", r.dpdk_shared_mpps,
                 paper_data.TABLE4["dpdk_static_shared"]),
                ("Metronome shared throughput (Mpps)", r.metronome_shared_mpps,
                 paper_data.TABLE4["metronome_shared"]),
                ("Metronome shared loss (%)", r.metronome_shared_loss_pct, 0),
            ],
            note="static-DPDK case runs both tasks at nice 0 "
                 "(see EXPERIMENTS.md)",
        ),
    )
    # Figure 14: polling DPDK at least doubles ferret's runtime;
    # Metronome costs it far less
    assert slow_dpdk > 1.8
    assert slow_met < 1.45
    assert slow_met < 0.75 * slow_dpdk
    # Table 4: static DPDK sharing a core cannot keep line rate ...
    assert r.dpdk_shared_mpps < 9.0
    # ... Metronome forwards at line rate with no loss
    assert r.metronome_shared_mpps > 14.5
    assert r.metronome_shared_loss_pct < 0.5
