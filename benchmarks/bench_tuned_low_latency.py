"""§5.4's tuned configuration: Tx batch = 1 plus the sub-microsecond
hr_sleep() patch brings Metronome's latency within ~0.5 us of DPDK's
minimum while retaining a CPU advantage."""

from bench_util import emit

from repro.harness.report import render_table
from repro.harness.scenarios import tuned_low_latency


def _run():
    return tuned_low_latency(duration_ms=80)


def test_tuned_low_latency(benchmark):
    out = benchmark.pedantic(_run, rounds=1, iterations=1)
    rows = [
        (name, d["mean_us"], d["std_us"], d["cpu"])
        for name, d in out.items()
    ]
    emit(
        "tuned_low_latency",
        render_table(
            "§5.4 — tuned low-latency Metronome vs defaults vs DPDK",
            ["config", "mean latency us", "std us", "cpu"],
            rows,
            note="paper: tuned Metronome 7.21us vs DPDK 6.83us, "
                 "~10% CPU advantage",
        ),
    )
    tuned = out["metronome_tuned"]
    default = out["metronome_default"]
    dpdk = out["dpdk"]
    # the tuned config closes most of the latency gap to DPDK
    assert tuned["mean_us"] < default["mean_us"] * 0.5
    assert tuned["mean_us"] - dpdk["mean_us"] < 4.0
    # variance also collapses (paper: 0.62us vs 0.43us)
    assert tuned["std_us"] < default["std_us"]
    # and it still undercuts DPDK's 100% CPU
    assert tuned["cpu"] < 0.95
