"""A unified registry of named counters, gauges and histograms.

Before this module every subsystem kept its own ad-hoc stats
(``MetronomeThreadStats`` fields, ``SleepService.calls``, ring drop
counters, ...).  The registry puts them behind one queryable interface:
components either own a registry primitive directly (a
:class:`Counter` they increment) or register a read-through
:class:`Gauge` callback over state they already keep, and reporting
code renders the whole machine's metrics from a single snapshot.

Conventions: dotted lowercase names (``sleep.hr_sleep.calls``,
``rxq0.drops``, ``metronome.0.packets``); a name maps to exactly one
primitive — :meth:`MetricsRegistry.unique_name` derives a free variant
for per-instance metrics.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional

from repro.metrics.latency import LatencyStats


class Counter:
    """A monotonically increasing integer."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def inc(self, n: int = 1) -> None:
        self.value += n

    def __repr__(self) -> str:
        return f"<Counter {self.name}={self.value}>"


class Gauge:
    """A point-in-time value: either set explicitly or read through a
    callback over state the owning component already maintains."""

    __slots__ = ("name", "_value", "_fn")

    def __init__(self, name: str, fn: Optional[Callable[[], Any]] = None):
        self.name = name
        self._value: Any = 0
        self._fn = fn

    def set(self, value: Any) -> None:
        if self._fn is not None:
            raise ValueError(f"gauge {self.name!r} is callback-backed")
        self._value = value

    @property
    def value(self) -> Any:
        return self._fn() if self._fn is not None else self._value

    def __repr__(self) -> str:
        return f"<Gauge {self.name}={self.value}>"


class Histogram:
    """A distribution of observations (thin wrapper over LatencyStats)."""

    __slots__ = ("name", "stats")

    def __init__(self, name: str):
        self.name = name
        self.stats = LatencyStats()

    def observe(self, value: int) -> None:
        self.stats.add(value)

    @property
    def value(self) -> Dict[str, float]:
        """Summary dict (count/mean/p50/p99/max); empty → zeros."""
        st = self.stats
        if st.count == 0:
            return {"count": 0, "mean": 0.0, "p50": 0.0, "p99": 0.0, "max": 0.0}
        return {
            "count": st.count,
            "mean": st.mean(),
            "p50": st.percentile(50),
            "p99": st.percentile(99),
            "max": st.percentile(100),
        }

    def __repr__(self) -> str:
        return f"<Histogram {self.name} n={self.stats.count}>"


class MetricsRegistry:
    """Named metric primitives with get-or-create semantics."""

    def __init__(self) -> None:
        self._metrics: Dict[str, object] = {}

    # ------------------------------------------------------------------ #
    # creation / lookup
    # ------------------------------------------------------------------ #

    def _get_or_create(self, name: str, cls, factory):
        metric = self._metrics.get(name)
        if metric is None:
            metric = factory()
            self._metrics[name] = metric
        elif not isinstance(metric, cls):
            raise TypeError(
                f"metric {name!r} already registered as "
                f"{type(metric).__name__}, not {cls.__name__}"
            )
        return metric

    def counter(self, name: str) -> Counter:
        return self._get_or_create(name, Counter, lambda: Counter(name))

    def gauge(self, name: str, fn: Optional[Callable[[], Any]] = None) -> Gauge:
        """Get or create a gauge; with ``fn`` the gauge is read-through
        (``fn`` replaces any previous callback under the same name)."""
        gauge = self._get_or_create(name, Gauge, lambda: Gauge(name, fn))
        if fn is not None:
            gauge._fn = fn
        return gauge

    def histogram(self, name: str) -> Histogram:
        return self._get_or_create(name, Histogram, lambda: Histogram(name))

    def unique_name(self, base: str) -> str:
        """``base`` if free, else ``base.2``, ``base.3``, ... (so
        per-instance metrics never silently share a primitive)."""
        if base not in self._metrics:
            return base
        n = 2
        while f"{base}.{n}" in self._metrics:
            n += 1
        return f"{base}.{n}"

    # ------------------------------------------------------------------ #
    # querying
    # ------------------------------------------------------------------ #

    def get(self, name: str) -> object:
        return self._metrics[name]

    def value(self, name: str) -> Any:
        return self._metrics[name].value

    def names(self) -> List[str]:
        return sorted(self._metrics)

    def snapshot(self, prefix: str = "") -> Dict[str, Any]:
        """Current value of every metric (optionally name-filtered)."""
        return {
            name: metric.value
            for name, metric in sorted(self._metrics.items())
            if name.startswith(prefix)
        }

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def __len__(self) -> int:
        return len(self._metrics)
