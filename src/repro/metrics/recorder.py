"""A minimal named time-series recorder.

Used by the adaptation experiment to log ρ estimates, T_S settings and
throughput over the run, and by tests to assert on trajectories.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, List, Tuple


class TimeSeries:
    """Append-only (t, value) series keyed by name."""

    def __init__(self) -> None:
        self._series: Dict[str, List[Tuple[int, float]]] = defaultdict(list)

    def record(self, name: str, t: int, value: float) -> None:
        series = self._series[name]
        if series and t < series[-1][0]:
            raise ValueError(f"time going backwards in series {name!r}")
        series.append((t, value))

    def names(self) -> List[str]:
        return sorted(self._series)

    def get(self, name: str) -> List[Tuple[int, float]]:
        return list(self._series.get(name, []))

    def values(self, name: str) -> List[float]:
        return [v for _t, v in self._series.get(name, [])]

    def last(self, name: str) -> float:
        series = self._series.get(name)
        if not series:
            raise KeyError(name)
        return series[-1][1]

    def window_mean(self, name: str, t0: int, t1: int) -> float:
        """Mean of samples with t in [t0, t1]."""
        vals = [v for t, v in self._series.get(name, []) if t0 <= t <= t1]
        if not vals:
            raise ValueError(f"no samples for {name!r} in [{t0}, {t1}]")
        return sum(vals) / len(vals)
