"""Latency distribution accounting (percentiles, boxplot stats).

Samples are stored raw (tagged packets are a small fraction of traffic,
so memory stays modest) which keeps percentiles exact rather than
sketch-approximated.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional


@dataclass
class BoxplotStats:
    """The five-number summary the paper's boxplots show, plus mean/std."""

    count: int
    mean: float
    std: float
    minimum: float
    q1: float
    median: float
    q3: float
    maximum: float
    whisker_low: float
    whisker_high: float


class LatencyStats:
    """Collects latency samples (ns) and summarizes them."""

    def __init__(self) -> None:
        self._samples: List[int] = []
        #: lazily built sorted copy; never sorts _samples in place, so
        #: observation (time) order survives percentile queries
        self._sorted_view: Optional[List[int]] = None

    def add(self, value_ns: int) -> None:
        if value_ns < 0:
            raise ValueError(f"negative latency {value_ns}")
        self._samples.append(value_ns)
        self._sorted_view = None

    def extend(self, values) -> None:
        for v in values:
            self.add(v)

    def _ensure_sorted(self) -> List[int]:
        if self._sorted_view is None:
            self._sorted_view = sorted(self._samples)
        return self._sorted_view

    @property
    def count(self) -> int:
        return len(self._samples)

    def samples(self) -> List[int]:
        """All raw samples, in observation (insertion) order."""
        return list(self._samples)

    def sorted_samples(self) -> List[int]:
        """All samples in ascending order (copy; does not alias state)."""
        return list(self._ensure_sorted())

    def mean(self) -> float:
        if not self._samples:
            raise ValueError("no samples")
        return sum(self._samples) / len(self._samples)

    def std(self) -> float:
        if len(self._samples) < 2:
            return 0.0
        mu = self.mean()
        var = sum((x - mu) ** 2 for x in self._samples) / (len(self._samples) - 1)
        return math.sqrt(var)

    def percentile(self, p: float) -> float:
        """Linear-interpolated percentile, p in [0, 100]."""
        if not self._samples:
            raise ValueError("no samples")
        if not 0 <= p <= 100:
            raise ValueError(f"percentile {p} outside [0, 100]")
        s = self._ensure_sorted()
        if len(s) == 1:
            return float(s[0])
        rank = (len(s) - 1) * p / 100.0
        lo = int(rank)
        hi = min(lo + 1, len(s) - 1)
        frac = rank - lo
        return s[lo] * (1 - frac) + s[hi] * frac

    def boxplot(self) -> BoxplotStats:
        """Five-number summary with 1.5·IQR whiskers (Tukey style)."""
        s = self._ensure_sorted()
        if not s:
            raise ValueError("no samples")
        q1 = self.percentile(25)
        med = self.percentile(50)
        q3 = self.percentile(75)
        iqr = q3 - q1
        lo_fence = q1 - 1.5 * iqr
        hi_fence = q3 + 1.5 * iqr
        whisk_lo = min((x for x in s if x >= lo_fence), default=s[0])
        whisk_hi = max((x for x in s if x <= hi_fence), default=s[-1])
        return BoxplotStats(
            count=len(s),
            mean=self.mean(),
            std=self.std(),
            minimum=float(s[0]),
            q1=q1,
            median=med,
            q3=q3,
            maximum=float(s[-1]),
            whisker_low=float(whisk_lo),
            whisker_high=float(whisk_hi),
        )

    def summary_us(self) -> str:
        """One-line human summary in microseconds."""
        if not self._samples:
            return "no samples"
        b = self.boxplot()
        return (
            f"n={b.count} mean={b.mean/1e3:.2f}us std={b.std/1e3:.2f}us "
            f"p50={b.median/1e3:.2f} p99={self.percentile(99)/1e3:.2f}"
        )
