"""Windowed CPU-utilization sampling.

The adaptation experiment (§5.3, Figure 11b) plots CPU usage over time;
:class:`CpuSampler` takes periodic snapshots of per-core busy counters
and reports per-window utilization in the paper's convention
(100% = one fully busy core).
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.kernel.machine import Machine


class CpuSampler:
    """Samples utilization of selected cores every ``period_ns``."""

    def __init__(
        self,
        machine: Machine,
        period_ns: int,
        cores: Optional[List[int]] = None,
    ):
        if period_ns <= 0:
            raise ValueError("period must be positive")
        self.machine = machine
        self.period_ns = period_ns
        self.cores = list(range(len(machine.cores))) if cores is None else cores
        #: (window_end_ns, utilization) pairs; util in core-fractions
        self.samples: List[Tuple[int, float]] = []
        self._last_busy = self._read_busy()
        self._last_t = machine.sim.now
        self._running = False

    def start(self) -> None:
        if self._running:
            return
        self._running = True
        self.machine.sim.call_after(self.period_ns, self._tick)

    def _read_busy(self) -> int:
        return sum(
            self.machine.cores[i].total_busy_ns()
            - self.machine.cores[i].exit_stall_ns
            for i in self.cores
        )

    def _tick(self) -> None:
        now = self.machine.sim.now
        busy = self._read_busy()
        window = now - self._last_t
        if window > 0:
            self.samples.append(((now), (busy - self._last_busy) / window))
        self._last_busy = busy
        self._last_t = now
        self.machine.sim.call_after(self.period_ns, self._tick)

    def mean_utilization(self) -> float:
        if not self.samples:
            return 0.0
        return sum(u for _t, u in self.samples) / len(self.samples)
