"""Latency breakdown: where does a packet's delay come from?

Splits every tagged packet's wire-to-wire latency into the three
components the paper's latency discussion (§5.4) reasons about:

* **ring wait** — arrival → retrieval: the vacation the packet landed
  in plus its share of the drain (Metronome's knob, V̄);
* **egress wait** — retrieval → Tx stamp minus the constant floor:
  processing plus any Tx-batching park (the Tx-batch knob);
* **floor** — the constant hardware measurement path.

Attach via :meth:`LatencyBreakdown.on_tx` in place of a plain stats
callback.
"""

from __future__ import annotations

from repro import config
from repro.metrics.latency import LatencyStats
from repro.nic.packet import TaggedPacket


class LatencyBreakdown:
    """Aggregates the per-stage latency components of tagged packets."""

    def __init__(self, floor_ns: int = config.HW_LATENCY_FLOOR_NS):
        self.floor_ns = floor_ns
        self.total = LatencyStats()
        self.ring_wait = LatencyStats()
        self.egress_wait = LatencyStats()

    def on_tx(self, pkt: TaggedPacket) -> None:
        """Record one transmitted packet (TxBuffer callback signature)."""
        self.total.add(pkt.latency_ns)
        self.ring_wait.add(pkt.ring_wait_ns)
        self.egress_wait.add(max(0, pkt.egress_wait_ns - self.floor_ns))

    @property
    def count(self) -> int:
        return self.total.count

    def mean_components_us(self) -> dict:
        """Mean of each component, microseconds."""
        if self.count == 0:
            raise ValueError("no packets recorded")
        return {
            "ring_wait": self.ring_wait.mean() / 1e3,
            "egress_wait": self.egress_wait.mean() / 1e3,
            "floor": self.floor_ns / 1e3,
            "total": self.total.mean() / 1e3,
        }

    def consistency_error_us(self) -> float:
        """|total − (ring + egress + floor)| — should be ~0 by
        construction; exposed so tests can pin the invariant."""
        parts = (self.ring_wait.mean() + self.egress_wait.mean()
                 + self.floor_ns)
        return abs(self.total.mean() - parts) / 1e3
