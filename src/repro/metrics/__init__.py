"""Measurement utilities: latency distributions, CPU sampling, energy.

These mirror the paper's instrumentation: MoonGen-style sampled latency
percentiles/boxplots, getrusage-style CPU accounting, RAPL energy reads,
and a generic time-series recorder for the adaptation plots (§5.3).
"""

from repro.metrics.breakdown import LatencyBreakdown
from repro.metrics.cpu import CpuSampler
from repro.metrics.latency import BoxplotStats, LatencyStats
from repro.metrics.recorder import TimeSeries
from repro.metrics.registry import Counter, Gauge, Histogram, MetricsRegistry

__all__ = [
    "LatencyStats",
    "BoxplotStats",
    "LatencyBreakdown",
    "CpuSampler",
    "TimeSeries",
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
]
