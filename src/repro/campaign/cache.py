"""Content-addressed result cache for campaign tasks.

A task's cache key is ``sha256(spec identity + code fingerprint)``:

* **spec identity** — the task's canonical JSON (figure, scenario,
  params, seed; see :meth:`~repro.campaign.spec.TaskSpec.canonical`);
* **code fingerprint** — a hash of the scenario *function's* source
  combined with a digest of every other ``repro`` source file.  The
  scenarios module itself contributes its module-level residue (source
  minus the registered function bodies) to the package digest, so the
  constants and helpers scenarios share are covered too.

Editing one scenario's body therefore invalidates only that figure's
tasks, while touching anything shared — the engine underneath (kernel
model, NIC, metrics, ...) or module-level code in the scenarios file —
invalidates everything: the conservative direction.
Entries live as flat JSON files under ``benchmarks/results/cache/`` and
are written atomically, so an interrupted campaign never leaves a
truncated entry behind (corrupt files read as misses).
"""

from __future__ import annotations

import hashlib
import inspect
import json
import os
from dataclasses import dataclass
from typing import Any, Dict, Optional

from repro.campaign.spec import TaskSpec, json_normalize

#: path fragments excluded from the byte-for-byte package walk: the
#: scenarios module is split instead — registered function bodies are
#: fingerprinted per-function (so one scenario edit does not invalidate
#: every figure's cache) while the module-level residue joins the
#: package digest via :func:`_scenarios_residue`.
_PER_SCENARIO_FILES = ("harness" + os.sep + "scenarios.py",)

_package_digest: Optional[str] = None


def _scenarios_residue() -> bytes:
    """The scenarios module's source minus registered function bodies.

    Constants and helpers defined at module level (``LINE``, shared
    closures, the registry table itself) are dependencies of *every*
    scenario, so they belong in the package digest — otherwise editing
    them would silently serve stale cache entries.  A function whose
    source cannot be located in the module (e.g. a test monkeypatching
    a toy scenario into ``SCENARIOS``) simply leaves the module text
    untouched, which errs toward invalidation.
    """
    from repro.harness import scenarios as module

    try:
        src = inspect.getsource(module)
    except (OSError, TypeError):
        return b""
    for fn in module.SCENARIOS.values():
        try:
            body = inspect.getsource(fn)
        except (OSError, TypeError):
            continue
        src = src.replace(body, "", 1)
    return src.encode()


def package_digest() -> str:
    """Digest of every ``repro`` source file, with the scenarios module
    contributing only its module-level residue (per-function bodies are
    hashed separately by :func:`scenario_fingerprint`).

    Computed once per process; campaigns are short-lived so there is no
    staleness window worth tracking.
    """
    global _package_digest
    if _package_digest is None:
        import repro

        root = os.path.dirname(os.path.abspath(repro.__file__))
        h = hashlib.sha256()
        for dirpath, dirnames, filenames in sorted(os.walk(root)):
            dirnames.sort()
            for fname in sorted(filenames):
                if not fname.endswith(".py"):
                    continue
                path = os.path.join(dirpath, fname)
                rel = os.path.relpath(path, root)
                if rel in _PER_SCENARIO_FILES:
                    continue
                h.update(rel.encode())
                with open(path, "rb") as fh:
                    h.update(fh.read())
        h.update(_scenarios_residue())
        _package_digest = h.hexdigest()
    return _package_digest


def scenario_fingerprint(scenario: str) -> str:
    """Code fingerprint for one scenario: its own source + the package."""
    from repro.harness.scenarios import SCENARIOS

    fn = SCENARIOS[scenario]
    src = inspect.getsource(fn)
    h = hashlib.sha256()
    h.update(package_digest().encode())
    h.update(src.encode())
    return h.hexdigest()


def task_key(spec: TaskSpec, fingerprint: Optional[str] = None) -> str:
    """The task's content address (64 hex chars)."""
    if fingerprint is None:
        fingerprint = scenario_fingerprint(spec.scenario)
    h = hashlib.sha256()
    h.update(spec.canonical().encode())
    h.update(b":")
    h.update(fingerprint.encode())
    return h.hexdigest()


@dataclass
class CacheEntry:
    record: Any
    elapsed_s: float


class ResultCache:
    """Flat on-disk store of task records, one JSON file per key."""

    def __init__(self, root: str):
        self.root = root
        self.hits = 0
        self.misses = 0

    def _path(self, key: str) -> str:
        return os.path.join(self.root, f"{key}.json")

    def get(self, spec: TaskSpec,
            fingerprint: Optional[str] = None) -> Optional[CacheEntry]:
        path = self._path(task_key(spec, fingerprint))
        try:
            with open(path) as fh:
                entry = json.load(fh)
            record = entry["record"]
            elapsed = float(entry["elapsed_s"])
        except OSError:
            self.misses += 1
            return None
        except (ValueError, KeyError, TypeError):
            # the file opened but does not parse as an entry — it can
            # only get in the way (``put`` skips existing paths), so
            # evict it and let a fresh result take the slot
            try:
                os.unlink(path)
            except OSError:
                pass
            self.misses += 1
            return None
        self.hits += 1
        return CacheEntry(record=record, elapsed_s=elapsed)

    def put(self, spec: TaskSpec, record: Any, elapsed_s: float,
            fingerprint: Optional[str] = None) -> str:
        """Store a record under its content address.

        Safe against concurrent writers — e.g. two shard campaigns
        sharing one cache dir: each writes its own ``mkstemp`` temp
        file and publishes with atomic ``os.replace``, so readers never
        see a partial entry and the last writer simply wins.  The key
        is content-addressed (spec + code fingerprint), so a colliding
        writer is computing the *same* deterministic record and an
        already-present entry can be kept as-is.
        """
        from repro.campaign.artifacts import atomic_write_text

        key = task_key(spec, fingerprint)
        path = self._path(key)
        if os.path.exists(path):
            return key
        body = json.dumps(
            {
                "spec": spec.to_dict(),
                "record": json_normalize(record),
                "elapsed_s": elapsed_s,
            },
            sort_keys=True,
        )
        atomic_write_text(path, body + "\n")
        return key

    @property
    def hit_rate(self) -> float:
        seen = self.hits + self.misses
        return self.hits / seen if seen else 0.0

    def stats(self) -> Dict[str, Any]:
        entries = 0
        size = 0
        try:
            with os.scandir(self.root) as it:
                for e in it:
                    if e.is_file() and e.name.endswith(".json"):
                        entries += 1
                        size += e.stat().st_size
        except OSError:
            pass
        return {"dir": self.root, "entries": entries, "bytes": size}

    def clear(self) -> int:
        """Delete every entry; returns how many were removed."""
        removed = 0
        try:
            names = os.listdir(self.root)
        except OSError:
            return 0
        for name in names:
            if name.endswith(".json"):
                try:
                    os.unlink(os.path.join(self.root, name))
                    removed += 1
                except OSError:
                    pass
        return removed
