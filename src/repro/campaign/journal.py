"""Crash-safe campaign journal: an append-only, fsynced WAL of outcomes.

A campaign killed mid-wave (SIGKILL, OOM, CI timeout) loses its process
but not its progress: every resolved task outcome was already appended
to the journal and fsynced before the next wave proceeded.  ``repro
campaign run --resume`` replays the journal, skips the recorded
successes, and re-executes only the unfinished tail — producing
artifacts byte-identical to an uninterrupted run, because each task's
record is deterministic per spec and the merge is order-independent.

Format: one JSON object per line (JSONL).

* line 1 — a ``header`` record binding the journal to a campaign
  identity (the digest of its full spec list + seed + scale + figures
  + shard) and to the code that wrote it (``package_digest``).  Resume
  refuses a journal whose package digest no longer matches: replaying
  decisions made by different code is how subtle corruption happens.
* ``task`` records — one per *resolved* task (success, terminal
  failure, or quarantine), keyed by ``sha256(spec.canonical())``;
  successes carry the full record so resume does not depend on the
  result cache surviving.
* ``retry`` records — one per failed attempt, with the failure class
  (``error`` / ``timeout`` / ``crash``) and the backoff applied; these
  are the campaign's crash forensics.

A torn final line (the crash happened mid-append) is tolerated and
ignored on load; a torn line anywhere else means real corruption and
raises :class:`JournalError`.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.campaign.spec import TaskSpec

JOURNAL_VERSION = 1

#: journal files live here under the results dir
JOURNAL_SUBDIR = "journal"


class JournalError(RuntimeError):
    """A journal is corrupt or does not match the requesting campaign."""


def journal_key(spec: TaskSpec) -> str:
    """The spec's journal identity: ``sha256`` of its canonical JSON.

    Unlike :func:`repro.campaign.cache.task_key` this excludes the code
    fingerprint — the journal binds to code once, in its header.
    """
    return hashlib.sha256(spec.canonical().encode()).hexdigest()


def campaign_identity(
    specs: Sequence[TaskSpec],
    *,
    seed: int,
    scale: float,
    figures: Sequence[str],
    shard: Tuple[int, int] = (1, 1),
) -> str:
    """Digest naming one campaign invocation (stable across code edits,
    so a resume after a crash finds the same journal file)."""
    h = hashlib.sha256()
    h.update(json.dumps(
        {
            "seed": seed,
            "scale": scale,
            "figures": sorted(figures),
            "shard": list(shard),
        },
        sort_keys=True, separators=(",", ":"),
    ).encode())
    for spec in specs:
        h.update(spec.canonical().encode())
        h.update(b"\n")
    return h.hexdigest()


def journal_path(journal_dir: str, identity: str,
                 shard: Tuple[int, int] = (1, 1)) -> str:
    i, n = shard
    return os.path.join(journal_dir,
                        f"{identity[:16]}.s{i}of{n}.wal")


@dataclass
class JournalState:
    """Everything a loaded journal knows."""

    header: Dict[str, Any]
    #: journal key -> the final ``task`` record (last write wins)
    tasks: Dict[str, Dict[str, Any]] = field(default_factory=dict)
    retries: List[Dict[str, Any]] = field(default_factory=list)

    def completed(self) -> Dict[str, Dict[str, Any]]:
        """Successful task records, by journal key."""
        return {k: r for k, r in self.tasks.items() if r["status"] == "ok"}

    def quarantined(self) -> Dict[str, Dict[str, Any]]:
        return {k: r for k, r in self.tasks.items()
                if r["status"] == "quarantined"}


class CampaignJournal:
    """The writer side: append-only, one fsync per record.

    Opened in append mode so a resumed campaign extends the same file —
    the header is written only when the file is fresh (or was torn
    before the header landed).
    """

    def __init__(self, path: str, header: Dict[str, Any]):
        self.path = path
        os.makedirs(os.path.dirname(os.path.abspath(path)), exist_ok=True)
        fresh = not os.path.exists(path) or os.path.getsize(path) == 0
        self._fh = open(path, "a")
        if fresh:
            self._append({"type": "header",
                          "version": JOURNAL_VERSION, **header})

    def _append(self, record: Dict[str, Any]) -> None:
        self._fh.write(json.dumps(record, sort_keys=True,
                                  separators=(",", ":")) + "\n")
        self._fh.flush()
        os.fsync(self._fh.fileno())

    def task_resolved(self, spec: TaskSpec, *, status: str,
                      attempts: int, record: Any = None,
                      elapsed_s: float = 0.0,
                      error: Optional[str] = None,
                      classes: Sequence[str] = ()) -> None:
        """Record a task's final outcome (``ok``/``failed``/``quarantined``)."""
        if status not in ("ok", "failed", "quarantined"):
            raise ValueError(f"unknown status {status!r}")
        self._append({
            "type": "task",
            "key": journal_key(spec),
            "label": spec.label(),
            "spec": spec.to_dict(),
            "status": status,
            "attempts": attempts,
            "classes": list(classes),
            "error": error,
            "record": record,
            "elapsed_s": elapsed_s,
        })

    def retry(self, spec: TaskSpec, *, attempt: int, failure_class: str,
              error: str, backoff_s: float = 0.0,
              isolated: bool = False) -> None:
        """Record one failed attempt and the retry decision."""
        self._append({
            "type": "retry",
            "key": journal_key(spec),
            "label": spec.label(),
            "attempt": attempt,
            "class": failure_class,
            "error": error,
            "backoff_s": round(backoff_s, 4),
            "isolated": isolated,
        })

    def close(self) -> None:
        if not self._fh.closed:
            self._fh.close()

    def __enter__(self) -> "CampaignJournal":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()


def load_journal(path: str) -> Optional[JournalState]:
    """Read a journal back; ``None`` if the file does not exist.

    The final line may be torn (the writer died mid-append) and is then
    ignored; a torn line anywhere earlier raises :class:`JournalError`.
    """
    try:
        with open(path) as fh:
            lines = fh.read().splitlines()
    except OSError:
        return None
    records: List[Dict[str, Any]] = []
    for lineno, line in enumerate(lines):
        if not line.strip():
            continue
        try:
            records.append(json.loads(line))
        except ValueError:
            if lineno == len(lines) - 1:
                break  # torn tail: the crash interrupted this append
            raise JournalError(
                f"{path}: corrupt record at line {lineno + 1} "
                "(not the tail — the journal is damaged)"
            )
    if not records:
        return None
    header = records[0]
    if header.get("type") != "header":
        raise JournalError(f"{path}: first record is not a header")
    state = JournalState(header=header)
    for rec in records[1:]:
        kind = rec.get("type")
        if kind == "task":
            state.tasks[rec["key"]] = rec
        elif kind == "retry":
            state.retries.append(rec)
    return state


def open_for_resume(
    path: str,
    *,
    identity: str,
    package: str,
) -> Tuple[Optional[JournalState], Dict[str, Any]]:
    """Validate an existing journal against the resuming campaign.

    Returns ``(state, header)`` where ``state`` is ``None`` when there
    is nothing to resume.  Raises :class:`JournalError` if the journal
    belongs to a different campaign or was written by different code —
    a resume must never mix decisions across code versions.
    """
    state = load_journal(path)
    header = {"identity": identity, "package_digest": package}
    if state is None:
        return None, header
    if state.header.get("identity") != identity:
        raise JournalError(
            f"{path}: journal identity {state.header.get('identity', '?')[:16]} "
            f"does not match this campaign ({identity[:16]})"
        )
    if state.header.get("package_digest") != package:
        raise JournalError(
            f"{path}: journal was written by a different code version "
            "(package digest changed); re-run without --resume"
        )
    return state, header
