"""The campaign executor: sharded, cached, journaled, retrying execution.

Tasks run across N worker processes (``ProcessPoolExecutor``).  Each
task is independent — a scenario call at one grid point with an
explicit seed — so execution order cannot affect results; the merge
step reassembles records in serial order and the output is
byte-identical to running the sweep in one process (asserted by
``tests/campaign/test_determinism.py``).

**Failure taxonomy.**  A failed attempt is classified and handled by
class:

* ``error`` — the task raised; deterministic unless the scenario
  consults the environment, so it is retried on a fresh pool up to
  ``retries`` times and then quarantined;
* ``timeout`` — the attempt exceeded ``timeout_s``; the worker
  underneath may be hung, so its slot stays pinned for the rest of the
  wave and the pool is torn down (processes terminated) at wave end;
* ``crash`` — the worker process died (SIGKILL, OOM, segfault), which
  ``ProcessPoolExecutor`` reports by poisoning *every* in-flight future
  with ``BrokenProcessPool``.  With exactly one task in flight the
  culprit is known and the attempt is charged; with several in flight
  the victims are indistinguishable from the culprit, so nobody is
  charged — instead every involved task re-runs **isolated** (its own
  single-worker pool) where a crash has exactly one possible culprit.
  Isolation guarantees termination: innocents succeed, a genuinely
  poisoned task accumulates charged attempts and is quarantined.

Retries back off exponentially with jitter drawn from the dedicated
``campaign.backoff`` RNG stream (deterministic per seed, independent of
every simulation stream).  A task that exhausts its attempts is
**quarantined**: recorded with its failure history, excluded from the
figure merge, and reported — the campaign completes with partial
results and a non-zero exit instead of aborting the whole grid.

With a :class:`~repro.campaign.journal.CampaignJournal` attached, every
resolved outcome is appended and fsynced before the campaign proceeds,
so a SIGKILLed campaign resumes from its journal re-executing only the
unfinished tail (see :mod:`repro.campaign.journal`).

Tasks are submitted to the pool at most ``workers`` at a time (the
backlog stays in the executor's own queue), so a submitted future is
genuinely executing and its timeout clock is fair — over-submitting
would let ``ProcessPoolExecutor``'s call-queue buffer mark queued
futures as running and time them out without them ever executing.  A
hung worker pins its slot for the rest of the wave; if every slot is
pinned, the still-queued tasks roll over to the next wave's fresh pool
uncharged (they never ran), so a systematic hang occupying every worker
degrades into bounded retries instead of an infinite poll.

With a :class:`~repro.campaign.cache.ResultCache` attached, tasks whose
content address (spec + code fingerprint) already has an entry are
served from disk without touching a worker.
"""

from __future__ import annotations

import os
import sys
import time
from collections import deque
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures import TimeoutError as FuturesTimeout
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from repro import config
from repro.campaign.cache import ResultCache, package_digest, scenario_fingerprint
from repro.campaign.journal import (
    CampaignJournal,
    campaign_identity,
    journal_key,
    journal_path,
    load_journal,
    open_for_resume,
)
from repro.campaign.spec import FigureSpec, TaskSpec, json_normalize
from repro.sim.rng import RandomStreams

#: how often the wave loop polls futures / repaints the progress line
_POLL_S = 0.2

#: ceiling on one retry's backoff sleep, seconds
BACKOFF_CAP_S = 8.0

#: the failure classes the executor distinguishes
FAILURE_CLASSES = ("error", "timeout", "crash")


class InjectedFailure(RuntimeError):
    """Raised by a task selected via ``fail_tasks`` (test/CI hook)."""


def execute_task(spec: TaskSpec, fail_tasks: Optional[str] = None) -> Any:
    """Run one task in the current process and return its record.

    The record is JSON-normalized so the in-process, subprocess, and
    cached paths are indistinguishable downstream.
    """
    from repro.harness.scenarios import SCENARIOS

    if fail_tasks and fail_tasks in (spec.figure, spec.scenario):
        raise InjectedFailure(f"injected failure for {spec.label()}")
    fn = SCENARIOS[spec.scenario]
    record = fn(seed=spec.seed, **spec.params)
    return json_normalize(record)


def _worker(spec_dict: Dict, fail_tasks: Optional[str]) -> Tuple[Any, float]:
    """Subprocess entry point: returns (record, elapsed_s)."""
    spec = TaskSpec.from_dict(spec_dict)
    t0 = time.perf_counter()
    record = execute_task(spec, fail_tasks=fail_tasks)
    return record, time.perf_counter() - t0


@dataclass
class TaskOutcome:
    """What happened to one task, however it was resolved."""

    spec: TaskSpec
    record: Any = None
    elapsed_s: float = 0.0
    attempts: int = 0
    from_cache: bool = False
    error: Optional[str] = None
    #: last failure class seen (``error``/``timeout``/``crash``); None
    #: for tasks that never failed an attempt
    failure_class: Optional[str] = None
    #: True when the task exhausted its attempts and was excluded from
    #: the merge (the campaign still completes, with non-zero exit)
    quarantined: bool = False
    #: True when the outcome was replayed from a journal (``--resume``)
    #: or a shard merge rather than executed in this run
    resumed: bool = False

    @property
    def ok(self) -> bool:
        return self.error is None


@dataclass
class CampaignResult:
    """All task outcomes plus run-level accounting."""

    outcomes: List[TaskOutcome] = field(default_factory=list)
    figures: Tuple[str, ...] = ()
    wall_s: float = 0.0
    workers: int = 0
    scale: float = 1.0
    seed: int = config.DEFAULT_SEED
    #: this invocation's slice of the grid (``--shard i/N``)
    shard: Tuple[int, int] = (1, 1)
    #: the campaign's identity digest (names the journal files)
    identity: str = ""

    @property
    def cache_hits(self) -> int:
        return sum(1 for o in self.outcomes if o.from_cache)

    @property
    def cache_misses(self) -> int:
        return sum(1 for o in self.outcomes
                   if not o.from_cache and not o.resumed)

    @property
    def cache_hit_rate(self) -> float:
        return self.cache_hits / len(self.outcomes) if self.outcomes else 0.0

    @property
    def failures(self) -> List[TaskOutcome]:
        return [o for o in self.outcomes if not o.ok]

    @property
    def quarantined(self) -> List[TaskOutcome]:
        return [o for o in self.outcomes if o.quarantined]

    @property
    def resumed_count(self) -> int:
        return sum(1 for o in self.outcomes if o.resumed)

    def record_for(self, figure: str) -> Optional[List]:
        """The figure's merged record (serial order), or ``None`` if any
        of its tasks failed."""
        tasks = [o for o in self.outcomes if o.spec.figure == figure]
        if not tasks or any(not o.ok for o in tasks):
            return None
        merged: List = []
        for o in sorted(tasks, key=lambda o: o.spec.index):
            merged.extend(o.record)
        return merged

    def figure_outcomes(self, figure: str) -> List[TaskOutcome]:
        return [o for o in self.outcomes if o.spec.figure == figure]

    def quarantine_report(self) -> str:
        """Human-readable list of quarantined tasks (empty string when
        the whole grid resolved)."""
        quarantined = self.quarantined
        if not quarantined:
            return ""
        lines = [f"quarantined {len(quarantined)} task(s):"]
        for o in quarantined:
            lines.append(
                f"  {o.spec.label():12s} after {o.attempts} attempt(s) "
                f"[{o.failure_class or '?'}] {o.error}"
            )
        return "\n".join(lines)

    def summary(self) -> Dict[str, Any]:
        """The ``BENCH_campaign.json`` body."""
        return {
            "wall_s": self.wall_s,
            "workers": self.workers,
            "scale": self.scale,
            "seed": self.seed,
            "shard": list(self.shard),
            "identity": self.identity[:16] if self.identity else "",
            "figures": list(self.figures),
            "tasks_total": len(self.outcomes),
            "failures": len(self.failures),
            "quarantined": len(self.quarantined),
            "resumed": self.resumed_count,
            "cache": {
                "hits": self.cache_hits,
                "misses": self.cache_misses,
                "hit_rate": self.cache_hit_rate,
            },
            "tasks": [
                {
                    "figure": o.spec.figure,
                    "index": o.spec.index,
                    "scenario": o.spec.scenario,
                    "elapsed_s": o.elapsed_s,
                    "attempts": o.attempts,
                    "from_cache": o.from_cache,
                    "resumed": o.resumed,
                    "error": o.error,
                    "failure_class": o.failure_class,
                    "quarantined": o.quarantined,
                }
                for o in self.outcomes
            ],
        }


class _Progress:
    """A single live line on stderr (repainted in a tty, quiet runs
    print only the final state)."""

    def __init__(self, enabled: bool, total: int):
        self.enabled = enabled
        self.total = total
        self.tty = enabled and sys.stderr.isatty()

    def update(self, done: int, cached: int, running: int,
               failed: int) -> None:
        if not self.tty:
            return
        sys.stderr.write(
            f"\rcampaign: {done}/{self.total} tasks done "
            f"({cached} cached, {running} running, {failed} failed) "
        )
        sys.stderr.flush()

    def finish(self, done: int, cached: int, failed: int,
               wall_s: float) -> None:
        if not self.enabled:
            return
        if self.tty:
            sys.stderr.write("\r\x1b[K")
        sys.stderr.write(
            f"campaign: {done}/{self.total} tasks in {wall_s:.1f}s "
            f"({cached} cached, {failed} failed)\n"
        )
        sys.stderr.flush()


def _terminate_pool(pool: ProcessPoolExecutor) -> None:
    """Best-effort kill of a pool that may hold hung workers.

    The process dict must be captured *before* ``shutdown()``, which
    drops the pool's reference to it — otherwise hung workers survive,
    their work items never resolve, and the pool's manager thread
    (non-daemon) blocks interpreter exit forever.
    """
    procs = dict(getattr(pool, "_processes", None) or {})
    pool.shutdown(wait=False, cancel_futures=True)
    for proc in procs.values():
        try:
            proc.terminate()
        except Exception:
            pass


def run_tasks(
    specs: Sequence[TaskSpec],
    *,
    workers: int = 4,
    cache: Optional[ResultCache] = None,
    timeout_s: float = 300.0,
    retries: int = 2,
    fail_tasks: Optional[str] = None,
    progress: bool = False,
    journal: Optional[CampaignJournal] = None,
    completed: Optional[Mapping[str, Mapping[str, Any]]] = None,
    backoff_base_s: float = 0.0,
    backoff_seed: int = config.DEFAULT_SEED,
) -> List[TaskOutcome]:
    """Execute ``specs`` and return one outcome per spec, same order.

    ``workers=0`` runs everything serially in the current process
    (no per-task timeout there — nothing to kill).  ``retries`` is the
    number of *re*-attempts after the first failure or timeout.

    ``journal`` receives one fsynced record per resolved task plus the
    retry trail; ``completed`` (journal key -> prior ``task`` record,
    from :meth:`JournalState.completed`) short-circuits tasks a
    previous run already finished — the ``--resume`` path.  Retries
    sleep ``min(cap, backoff_base_s * 2^(attempt-1)) * (0.5 + u)``
    seconds with ``u`` from the dedicated ``campaign.backoff`` stream,
    so backoff timing is reproducible per seed and never touches any
    simulation stream.
    """
    t0 = time.perf_counter()
    # everything is keyed by the spec's *position* in ``specs`` — specs
    # are not required to be unique, and keying by identity would let
    # duplicates share (and inflate) one attempts counter
    outcomes: Dict[int, TaskOutcome] = {}
    fingerprints = {s.scenario: scenario_fingerprint(s.scenario)
                    for s in specs} if cache is not None else {}
    backoff_rng = (RandomStreams(backoff_seed).stream("campaign.backoff")
                   if backoff_base_s > 0 else None)
    #: per-position failure-class history across attempts
    classes: Dict[int, List[str]] = {}
    #: pending backoff sleep (seconds) owed before a task's next attempt
    backoff_due: Dict[int, float] = {}

    pending: List[Tuple[int, TaskSpec]] = []
    for pos, spec in enumerate(specs):
        prior = completed.get(journal_key(spec)) if completed else None
        if prior is not None:
            outcomes[pos] = TaskOutcome(
                spec=spec, record=prior["record"],
                elapsed_s=prior.get("elapsed_s", 0.0),
                attempts=prior.get("attempts", 1), resumed=True)
            continue
        entry = cache.get(spec, fingerprints[spec.scenario]) \
            if cache is not None else None
        if entry is not None:
            outcomes[pos] = TaskOutcome(
                spec=spec, record=entry.record, elapsed_s=entry.elapsed_s,
                from_cache=True)
            if journal is not None:
                journal.task_resolved(
                    spec, status="ok", attempts=0, record=entry.record,
                    elapsed_s=entry.elapsed_s)
        else:
            pending.append((pos, spec))

    prog = _Progress(progress, len(specs))

    def _done_counts() -> Tuple[int, int, int]:
        done = len(outcomes)
        cached = sum(1 for o in outcomes.values() if o.from_cache)
        failed = sum(1 for o in outcomes.values() if not o.ok)
        return done, cached, failed

    def _store_success(pos: int, spec: TaskSpec, record: Any,
                       elapsed: float, attempts: int) -> None:
        outcomes[pos] = TaskOutcome(
            spec=spec, record=record, elapsed_s=elapsed, attempts=attempts,
            failure_class=classes[pos][-1] if classes.get(pos) else None)
        if cache is not None:
            cache.put(spec, record, elapsed, fingerprints[spec.scenario])
        if journal is not None:
            journal.task_resolved(
                spec, status="ok", attempts=attempts, record=record,
                elapsed_s=elapsed, classes=classes.get(pos, ()))

    def _quarantine(pos: int, spec: TaskSpec, attempts_n: int,
                    error: str) -> None:
        last = classes[pos][-1] if classes.get(pos) else None
        outcomes[pos] = TaskOutcome(
            spec=spec, attempts=attempts_n, error=error,
            failure_class=last, quarantined=True)
        if journal is not None:
            journal.task_resolved(
                spec, status="quarantined", attempts=attempts_n,
                error=error, classes=classes.get(pos, ()))

    def _note_failure(pos: int, spec: TaskSpec, failure_class: str,
                      error: str, attempt: int,
                      isolated: bool = False) -> float:
        """Record one failed attempt; returns the backoff it earns."""
        classes.setdefault(pos, []).append(failure_class)
        owed = 0.0
        if backoff_rng is not None and attempt > 0:
            owed = min(BACKOFF_CAP_S,
                       backoff_base_s * (2.0 ** (attempt - 1)))
            owed *= 0.5 + backoff_rng.random()
        backoff_due[pos] = owed
        if journal is not None:
            journal.retry(spec, attempt=attempt, failure_class=failure_class,
                          error=error, backoff_s=owed, isolated=isolated)
        return owed

    def _sleep_backoff(batch: Sequence[Tuple[int, TaskSpec]]) -> None:
        """Pay the largest backoff owed by this wave's retries, once —
        the wave is a barrier anyway, so per-task sleeps would only
        serialize it further."""
        owed = max((backoff_due.pop(pos, 0.0) for pos, _ in batch),
                   default=0.0)
        if owed > 0:
            time.sleep(owed)

    attempts: Dict[int, int] = {pos: 0 for pos, _ in pending}

    if workers <= 0:
        for pos, spec in pending:
            while True:
                _sleep_backoff([(pos, spec)])
                attempts[pos] += 1
                t_task = time.perf_counter()
                try:
                    record = execute_task(spec, fail_tasks=fail_tasks)
                except Exception as exc:
                    err = f"{type(exc).__name__}: {exc}"
                    _note_failure(pos, spec, "error", err, attempts[pos])
                    if attempts[pos] <= retries:
                        continue
                    _quarantine(pos, spec, attempts[pos], err)
                    break
                _store_success(pos, spec, record,
                               time.perf_counter() - t_task,
                               attempts[pos])
                break
            done, cached, failed = _done_counts()
            prog.update(done, cached, 0, failed)
    else:
        todo = pending
        #: positions that must re-run isolated (crash suspects)
        isolate: set = set()
        while todo:
            _sleep_backoff(todo)
            # crash suspects first, each in its own single-worker pool:
            # a crash there has exactly one possible culprit, so the
            # attempt can be charged fairly (see module docstring)
            iso_batch = [(p, s) for p, s in todo if p in isolate]
            pool_batch = [(p, s) for p, s in todo if p not in isolate]
            next_round: List[Tuple[int, TaskSpec]] = []

            for pos, spec in iso_batch:
                attempts[pos] += 1
                failure: Optional[Tuple[str, str]] = None
                pool = ProcessPoolExecutor(max_workers=1)
                fut = pool.submit(_worker, spec.to_dict(), fail_tasks)
                try:
                    record, elapsed = fut.result(timeout=timeout_s)
                except FuturesTimeout:
                    failure = ("timeout",
                               f"timeout after {timeout_s:.0f}s (isolated)")
                    _terminate_pool(pool)
                except BrokenProcessPool:
                    failure = ("crash", "worker process died (isolated)")
                    pool.shutdown(wait=False, cancel_futures=True)
                except Exception as exc:
                    failure = ("error", f"{type(exc).__name__}: {exc}")
                    pool.shutdown(wait=True, cancel_futures=True)
                else:
                    pool.shutdown(wait=True)
                    isolate.discard(pos)
                    _store_success(pos, spec, record, elapsed,
                                   attempts[pos])
                    continue
                fclass, err = failure
                _note_failure(pos, spec, fclass, err, attempts[pos],
                              isolated=True)
                if attempts[pos] <= retries:
                    next_round.append((pos, spec))
                else:
                    _quarantine(pos, spec, attempts[pos], err)
                done, cached, failed = _done_counts()
                prog.update(done, cached, 0, failed)

            if not pool_batch:
                todo = sorted(next_round, key=lambda e: e[0])
                continue

            pool = ProcessPoolExecutor(
                max_workers=min(workers, len(pool_batch)))
            queue = deque(pool_batch)
            slots = min(workers, len(pool_batch))
            futures: Dict[Any, Tuple[int, TaskSpec]] = {}
            started: Dict[Any, float] = {}
            waiting: set = set()
            hung = False
            broken = False

            def _fill() -> None:
                # submit from the backlog, never more than one task per
                # free worker slot: an in-flight future is then really
                # executing, so its timeout clock starts honestly here
                # (ProcessPoolExecutor's call-queue buffer would flag
                # over-submitted futures as running while they sit
                # behind a hung worker, uncancellable and untimeable)
                nonlocal slots, broken
                while slots > 0 and queue and not broken:
                    pos, spec = queue.popleft()
                    try:
                        fut = pool.submit(_worker, spec.to_dict(),
                                          fail_tasks)
                    except Exception:
                        # the pool broke between waits; the task never
                        # started, so it rolls over uncharged
                        broken = True
                        queue.appendleft((pos, spec))
                        return
                    futures[fut] = (pos, spec)
                    started[fut] = time.monotonic()
                    waiting.add(fut)
                    slots -= 1

            _fill()
            while waiting:
                done_set, _ = wait(waiting, timeout=_POLL_S,
                                   return_when=FIRST_COMPLETED)
                now = time.monotonic()
                crashed: List[Tuple[int, TaskSpec]] = []
                for fut in done_set:
                    waiting.discard(fut)
                    slots += 1
                    pos, spec = futures[fut]
                    try:
                        record, elapsed = fut.result()
                    except BrokenProcessPool:
                        broken = True
                        crashed.append((pos, spec))
                        continue
                    except Exception as exc:
                        attempts[pos] += 1
                        err = f"{type(exc).__name__}: {exc}"
                        _note_failure(pos, spec, "error", err,
                                      attempts[pos])
                        if attempts[pos] <= retries:
                            next_round.append((pos, spec))
                        else:
                            _quarantine(pos, spec, attempts[pos], err)
                        continue
                    attempts[pos] += 1
                    _store_success(pos, spec, record, elapsed,
                                   attempts[pos])
                if broken:
                    # the remaining in-flight futures are poisoned too
                    for fut in waiting:
                        crashed.append(futures[fut])
                    waiting.clear()
                    if len(crashed) == 1:
                        # one task in flight: the culprit is known
                        pos, spec = crashed[0]
                        attempts[pos] += 1
                        err = "worker process died"
                        _note_failure(pos, spec, "crash", err,
                                      attempts[pos])
                        if attempts[pos] <= retries:
                            next_round.append((pos, spec))
                        else:
                            _quarantine(pos, spec, attempts[pos], err)
                    else:
                        # victims and culprit are indistinguishable:
                        # nobody is charged, everybody re-runs isolated
                        for pos, spec in crashed:
                            isolate.add(pos)
                            _note_failure(
                                pos, spec, "crash",
                                "worker process died (shared pool)",
                                attempts[pos], isolated=True)
                            next_round.append((pos, spec))
                    break
                for fut in list(waiting):
                    if now - started[fut] <= timeout_s:
                        continue
                    # stop waiting; the worker underneath may be hung,
                    # so its slot stays pinned for the rest of the wave
                    # and its process is dealt with at pool teardown
                    waiting.discard(fut)
                    hung = True
                    pos, spec = futures[fut]
                    attempts[pos] += 1
                    err = f"timeout after {timeout_s:.0f}s"
                    _note_failure(pos, spec, "timeout", err,
                                  attempts[pos])
                    if attempts[pos] <= retries:
                        next_round.append((pos, spec))
                    else:
                        _quarantine(pos, spec, attempts[pos], err)
                _fill()
                done, cached, failed = _done_counts()
                prog.update(done, cached, len(waiting), failed)
            # tasks still queued once every slot is pinned by a hung
            # worker (or the pool broke) can never start this wave:
            # roll them over to the next wave's fresh pool (never
            # submitted, so no attempt is charged).  Every submitted
            # future completes, times out, or is poisoned within
            # timeout_s, so the wave loop always drains.
            next_round.extend(queue)
            if hung or broken:
                _terminate_pool(pool)
            else:
                pool.shutdown(wait=True, cancel_futures=True)
            # retries run on the next wave's freshly created pool
            todo = sorted(next_round, key=lambda e: e[0])

    done, cached, failed = _done_counts()
    prog.finish(done, cached, failed, time.perf_counter() - t0)
    return [outcomes[pos] for pos in range(len(specs))]


def campaign_specs(
    figures: Optional[Sequence[str]] = None,
    *,
    scale: float = 1.0,
    seed: int = config.DEFAULT_SEED,
    registry: Optional[Mapping[str, FigureSpec]] = None,
) -> Tuple[Tuple[str, ...], List[TaskSpec]]:
    """Resolve a figure selection to ``(names, full task list)``.

    The task list is the campaign's canonical serial order — sharding,
    journaling, and merging all partition exactly this sequence.
    """
    from repro.campaign.registry import FIGURES

    registry = registry if registry is not None else FIGURES
    # dedupe, first occurrence wins: `--figures fig7,fig7` must not run
    # (and account) the same sweep twice
    names = tuple(dict.fromkeys(figures)) if figures else tuple(registry)
    specs: List[TaskSpec] = []
    for name in names:
        if name not in registry:
            known = ", ".join(registry)
            raise KeyError(f"unknown figure {name!r} (known: {known})")
        specs.extend(registry[name].tasks(scale=scale, seed=seed))
    return names, specs


def run_campaign(
    figures: Optional[Sequence[str]] = None,
    *,
    workers: int = 4,
    scale: float = 1.0,
    seed: int = config.DEFAULT_SEED,
    cache: Optional[ResultCache] = None,
    timeout_s: float = 300.0,
    retries: int = 2,
    fail_tasks: Optional[str] = None,
    progress: bool = False,
    registry: Optional[Mapping[str, FigureSpec]] = None,
    shard: Tuple[int, int] = (1, 1),
    journal_dir: Optional[str] = None,
    resume: bool = False,
    backoff_base_s: float = 0.0,
) -> CampaignResult:
    """Run a sweep over ``figures`` (default: every registered figure).

    Pure compute + cache: artifact emission is the caller's job (the
    CLI renders tables and writes the JSON surfaces; benches only want
    the records).

    ``shard=(i, N)`` runs the i-th of N deterministic partitions of the
    full task list (position modulo N), so CI matrices or multiple
    machines can split a grid and ``merge_shards`` reassembles it.
    ``journal_dir`` enables the crash-safe WAL (one file per campaign
    identity and shard); with ``resume=True`` an existing journal's
    completed tasks are replayed instead of re-executed.  Raises
    :class:`~repro.campaign.journal.JournalError` if the journal
    belongs to different code or a different campaign.
    """
    names, all_specs = campaign_specs(
        figures, scale=scale, seed=seed, registry=registry)
    i, n = shard
    if not (1 <= i <= n):
        raise ValueError(f"shard must be (i, N) with 1 <= i <= N, got {shard}")
    specs = [s for pos, s in enumerate(all_specs) if pos % n == i - 1]
    identity = campaign_identity(
        all_specs, seed=seed, scale=scale, figures=names)

    journal: Optional[CampaignJournal] = None
    completed: Optional[Dict[str, Dict[str, Any]]] = None
    if journal_dir is not None:
        package = package_digest()
        path = journal_path(journal_dir, identity, shard)
        if resume:
            state, _ = open_for_resume(path, identity=identity,
                                       package=package)
            if state is not None:
                completed = state.completed()
        elif os.path.exists(path):
            # a fresh (non-resume) run must not inherit stale decisions
            os.unlink(path)
        journal = CampaignJournal(path, {
            "identity": identity,
            "package_digest": package,
            "shard": [i, n],
            "total_tasks": len(specs),
            "figures": list(names),
            "seed": seed,
            "scale": scale,
        })

    t0 = time.perf_counter()
    try:
        outcomes = run_tasks(
            specs, workers=workers, cache=cache, timeout_s=timeout_s,
            retries=retries, fail_tasks=fail_tasks, progress=progress,
            journal=journal, completed=completed,
            backoff_base_s=backoff_base_s, backoff_seed=seed)
    finally:
        if journal is not None:
            journal.close()
    return CampaignResult(
        outcomes=outcomes,
        figures=names,
        wall_s=time.perf_counter() - t0,
        workers=workers,
        scale=scale,
        seed=seed,
        shard=shard,
        identity=identity,
    )


def merge_shards(
    figures: Optional[Sequence[str]] = None,
    *,
    shards: int,
    scale: float = 1.0,
    seed: int = config.DEFAULT_SEED,
    journal_dir: str,
    cache: Optional[ResultCache] = None,
    registry: Optional[Mapping[str, FigureSpec]] = None,
) -> CampaignResult:
    """Reassemble a sharded campaign from its journals (plus the cache).

    Loads every shard journal for the campaign's identity, validates
    that each was written by the same code version as is running now,
    and rebuilds the full-grid :class:`CampaignResult` — byte-identical
    to an unsharded run of the same campaign, because each record is
    deterministic per spec and the merge is pure reassembly.  Tasks
    found in no journal fall back to the result cache; tasks found
    nowhere come back as failures (``error`` starting with
    ``"missing"``), and quarantined tasks keep their verdict.
    """
    from repro.campaign.journal import JournalError

    names, all_specs = campaign_specs(
        figures, scale=scale, seed=seed, registry=registry)
    identity = campaign_identity(
        all_specs, seed=seed, scale=scale, figures=names)
    package = package_digest()

    done: Dict[str, Dict[str, Any]] = {}
    quarantined: Dict[str, Dict[str, Any]] = {}
    shards_seen = 0
    for i in range(1, shards + 1):
        state = load_journal(journal_path(journal_dir, identity,
                                          (i, shards)))
        if state is None:
            continue
        if state.header.get("identity") != identity:
            raise JournalError(
                f"shard {i}/{shards}: journal identity does not match "
                "this campaign"
            )
        if state.header.get("package_digest") != package:
            raise JournalError(
                f"shard {i}/{shards}: journal was written by a different "
                "code version; re-run the shard before merging"
            )
        shards_seen += 1
        done.update(state.completed())
        quarantined.update(state.quarantined())

    fingerprints = {s.scenario: scenario_fingerprint(s.scenario)
                    for s in all_specs} if cache is not None else {}
    outcomes: List[TaskOutcome] = []
    for spec in all_specs:
        key = journal_key(spec)
        rec = done.get(key)
        if rec is not None:
            outcomes.append(TaskOutcome(
                spec=spec, record=rec["record"],
                elapsed_s=rec.get("elapsed_s", 0.0),
                attempts=rec.get("attempts", 1), resumed=True))
            continue
        rec = quarantined.get(key)
        if rec is not None:
            klass = rec["classes"][-1] if rec.get("classes") else None
            outcomes.append(TaskOutcome(
                spec=spec, attempts=rec.get("attempts", 0),
                error=rec.get("error") or "quarantined",
                failure_class=klass, quarantined=True, resumed=True))
            continue
        entry = cache.get(spec, fingerprints[spec.scenario]) \
            if cache is not None else None
        if entry is not None:
            outcomes.append(TaskOutcome(
                spec=spec, record=entry.record,
                elapsed_s=entry.elapsed_s, from_cache=True))
            continue
        outcomes.append(TaskOutcome(
            spec=spec,
            error=f"missing: {spec.label()} resolved by none of "
                  f"{shards_seen}/{shards} shard journal(s) or the cache"))
    return CampaignResult(
        outcomes=outcomes,
        figures=names,
        workers=0,
        scale=scale,
        seed=seed,
        shard=(shards_seen, shards),
        identity=identity,
    )
