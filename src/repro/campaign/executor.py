"""The campaign executor: sharded, cached, retrying task execution.

Tasks run across N worker processes (``ProcessPoolExecutor``).  Each
task is independent — a scenario call at one grid point with an
explicit seed — so execution order cannot affect results; the merge
step reassembles records in serial order and the output is
byte-identical to running the sweep in one process (asserted by
``tests/campaign/test_determinism.py``).

Robustness follows the :mod:`repro.faults` idiom of bounded retries
with a clean slate: a task that raises or exceeds the per-task timeout
is retried up to ``retries`` times, always on a freshly created pool —
a hung or poisoned worker from a previous attempt is never reused (its
pool is torn down and its processes terminated at the end of the wave).
Tasks are submitted to the pool at most ``workers`` at a time (the
backlog stays in the executor's own queue), so a submitted future is
genuinely executing and its timeout clock is fair — over-submitting
would let ``ProcessPoolExecutor``'s call-queue buffer mark queued
futures as running and time them out without them ever executing.  A
hung worker pins its slot for the rest of the wave; if every slot is
pinned, the still-queued tasks roll over to the next wave's fresh pool
uncharged (they never ran), so a systematic hang occupying every worker
degrades into bounded retries instead of an infinite poll.

With a :class:`~repro.campaign.cache.ResultCache` attached, tasks whose
content address (spec + code fingerprint) already has an entry are
served from disk without touching a worker.
"""

from __future__ import annotations

import sys
import time
from collections import deque
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from repro import config
from repro.campaign.cache import ResultCache, scenario_fingerprint
from repro.campaign.spec import FigureSpec, TaskSpec, json_normalize

#: how often the wave loop polls futures / repaints the progress line
_POLL_S = 0.2


class InjectedFailure(RuntimeError):
    """Raised by a task selected via ``fail_tasks`` (test/CI hook)."""


def execute_task(spec: TaskSpec, fail_tasks: Optional[str] = None) -> Any:
    """Run one task in the current process and return its record.

    The record is JSON-normalized so the in-process, subprocess, and
    cached paths are indistinguishable downstream.
    """
    from repro.harness.scenarios import SCENARIOS

    if fail_tasks and fail_tasks in (spec.figure, spec.scenario):
        raise InjectedFailure(f"injected failure for {spec.label()}")
    fn = SCENARIOS[spec.scenario]
    record = fn(seed=spec.seed, **spec.params)
    return json_normalize(record)


def _worker(spec_dict: Dict, fail_tasks: Optional[str]) -> Tuple[Any, float]:
    """Subprocess entry point: returns (record, elapsed_s)."""
    spec = TaskSpec.from_dict(spec_dict)
    t0 = time.perf_counter()
    record = execute_task(spec, fail_tasks=fail_tasks)
    return record, time.perf_counter() - t0


@dataclass
class TaskOutcome:
    """What happened to one task, however it was resolved."""

    spec: TaskSpec
    record: Any = None
    elapsed_s: float = 0.0
    attempts: int = 0
    from_cache: bool = False
    error: Optional[str] = None

    @property
    def ok(self) -> bool:
        return self.error is None


@dataclass
class CampaignResult:
    """All task outcomes plus run-level accounting."""

    outcomes: List[TaskOutcome] = field(default_factory=list)
    figures: Tuple[str, ...] = ()
    wall_s: float = 0.0
    workers: int = 0
    scale: float = 1.0
    seed: int = config.DEFAULT_SEED

    @property
    def cache_hits(self) -> int:
        return sum(1 for o in self.outcomes if o.from_cache)

    @property
    def cache_misses(self) -> int:
        return sum(1 for o in self.outcomes if not o.from_cache)

    @property
    def cache_hit_rate(self) -> float:
        return self.cache_hits / len(self.outcomes) if self.outcomes else 0.0

    @property
    def failures(self) -> List[TaskOutcome]:
        return [o for o in self.outcomes if not o.ok]

    def record_for(self, figure: str) -> Optional[List]:
        """The figure's merged record (serial order), or ``None`` if any
        of its tasks failed."""
        tasks = [o for o in self.outcomes if o.spec.figure == figure]
        if not tasks or any(not o.ok for o in tasks):
            return None
        merged: List = []
        for o in sorted(tasks, key=lambda o: o.spec.index):
            merged.extend(o.record)
        return merged

    def figure_outcomes(self, figure: str) -> List[TaskOutcome]:
        return [o for o in self.outcomes if o.spec.figure == figure]

    def summary(self) -> Dict[str, Any]:
        """The ``BENCH_campaign.json`` body."""
        return {
            "wall_s": self.wall_s,
            "workers": self.workers,
            "scale": self.scale,
            "seed": self.seed,
            "figures": list(self.figures),
            "tasks_total": len(self.outcomes),
            "failures": len(self.failures),
            "cache": {
                "hits": self.cache_hits,
                "misses": self.cache_misses,
                "hit_rate": self.cache_hit_rate,
            },
            "tasks": [
                {
                    "figure": o.spec.figure,
                    "index": o.spec.index,
                    "scenario": o.spec.scenario,
                    "elapsed_s": o.elapsed_s,
                    "attempts": o.attempts,
                    "from_cache": o.from_cache,
                    "error": o.error,
                }
                for o in self.outcomes
            ],
        }


class _Progress:
    """A single live line on stderr (repainted in a tty, quiet runs
    print only the final state)."""

    def __init__(self, enabled: bool, total: int):
        self.enabled = enabled
        self.total = total
        self.tty = enabled and sys.stderr.isatty()

    def update(self, done: int, cached: int, running: int,
               failed: int) -> None:
        if not self.tty:
            return
        sys.stderr.write(
            f"\rcampaign: {done}/{self.total} tasks done "
            f"({cached} cached, {running} running, {failed} failed) "
        )
        sys.stderr.flush()

    def finish(self, done: int, cached: int, failed: int,
               wall_s: float) -> None:
        if not self.enabled:
            return
        if self.tty:
            sys.stderr.write("\r\x1b[K")
        sys.stderr.write(
            f"campaign: {done}/{self.total} tasks in {wall_s:.1f}s "
            f"({cached} cached, {failed} failed)\n"
        )
        sys.stderr.flush()


def _terminate_pool(pool: ProcessPoolExecutor) -> None:
    """Best-effort kill of a pool that may hold hung workers.

    The process dict must be captured *before* ``shutdown()``, which
    drops the pool's reference to it — otherwise hung workers survive,
    their work items never resolve, and the pool's manager thread
    (non-daemon) blocks interpreter exit forever.
    """
    procs = dict(getattr(pool, "_processes", None) or {})
    pool.shutdown(wait=False, cancel_futures=True)
    for proc in procs.values():
        try:
            proc.terminate()
        except Exception:
            pass


def run_tasks(
    specs: Sequence[TaskSpec],
    *,
    workers: int = 4,
    cache: Optional[ResultCache] = None,
    timeout_s: float = 300.0,
    retries: int = 2,
    fail_tasks: Optional[str] = None,
    progress: bool = False,
) -> List[TaskOutcome]:
    """Execute ``specs`` and return one outcome per spec, same order.

    ``workers=0`` runs everything serially in the current process
    (no per-task timeout there — nothing to kill).  ``retries`` is the
    number of *re*-attempts after the first failure or timeout.
    """
    t0 = time.perf_counter()
    # everything is keyed by the spec's *position* in ``specs`` — specs
    # are not required to be unique, and keying by identity would let
    # duplicates share (and inflate) one attempts counter
    outcomes: Dict[int, TaskOutcome] = {}
    fingerprints = {s.scenario: scenario_fingerprint(s.scenario)
                    for s in specs} if cache is not None else {}

    pending: List[Tuple[int, TaskSpec]] = []
    for pos, spec in enumerate(specs):
        entry = cache.get(spec, fingerprints[spec.scenario]) \
            if cache is not None else None
        if entry is not None:
            outcomes[pos] = TaskOutcome(
                spec=spec, record=entry.record, elapsed_s=entry.elapsed_s,
                from_cache=True)
        else:
            pending.append((pos, spec))

    prog = _Progress(progress, len(specs))

    def _done_counts() -> Tuple[int, int, int]:
        done = len(outcomes)
        cached = sum(1 for o in outcomes.values() if o.from_cache)
        failed = sum(1 for o in outcomes.values() if not o.ok)
        return done, cached, failed

    def _store_success(pos: int, spec: TaskSpec, record: Any,
                       elapsed: float, attempts: int) -> None:
        outcomes[pos] = TaskOutcome(
            spec=spec, record=record, elapsed_s=elapsed, attempts=attempts)
        if cache is not None:
            cache.put(spec, record, elapsed, fingerprints[spec.scenario])

    attempts: Dict[int, int] = {pos: 0 for pos, _ in pending}

    if workers <= 0:
        for pos, spec in pending:
            while True:
                attempts[pos] += 1
                t_task = time.perf_counter()
                try:
                    record = execute_task(spec, fail_tasks=fail_tasks)
                except Exception as exc:
                    if attempts[pos] <= retries:
                        continue
                    outcomes[pos] = TaskOutcome(
                        spec=spec, attempts=attempts[pos],
                        error=f"{type(exc).__name__}: {exc}")
                    break
                _store_success(pos, spec, record,
                               time.perf_counter() - t_task,
                               attempts[pos])
                break
            done, cached, failed = _done_counts()
            prog.update(done, cached, 0, failed)
    else:
        todo = pending
        while todo:
            pool = ProcessPoolExecutor(max_workers=min(workers, len(todo)))
            queue = deque(todo)
            slots = min(workers, len(todo))
            futures: Dict[Any, Tuple[int, TaskSpec]] = {}
            started: Dict[Any, float] = {}
            waiting: set = set()
            next_round: List[Tuple[int, TaskSpec]] = []
            hung = False

            def _fill() -> None:
                # submit from the backlog, never more than one task per
                # free worker slot: an in-flight future is then really
                # executing, so its timeout clock starts honestly here
                # (ProcessPoolExecutor's call-queue buffer would flag
                # over-submitted futures as running while they sit
                # behind a hung worker, uncancellable and untimeable)
                nonlocal slots
                while slots > 0 and queue:
                    pos, spec = queue.popleft()
                    fut = pool.submit(_worker, spec.to_dict(), fail_tasks)
                    futures[fut] = (pos, spec)
                    started[fut] = time.monotonic()
                    waiting.add(fut)
                    slots -= 1

            _fill()
            while waiting:
                done_set, _ = wait(waiting, timeout=_POLL_S,
                                   return_when=FIRST_COMPLETED)
                now = time.monotonic()
                for fut in done_set:
                    waiting.discard(fut)
                    slots += 1
                    pos, spec = futures[fut]
                    attempts[pos] += 1
                    try:
                        record, elapsed = fut.result()
                    except Exception as exc:
                        if attempts[pos] <= retries:
                            next_round.append((pos, spec))
                        else:
                            outcomes[pos] = TaskOutcome(
                                spec=spec, attempts=attempts[pos],
                                error=f"{type(exc).__name__}: {exc}")
                        continue
                    _store_success(pos, spec, record, elapsed,
                                   attempts[pos])
                for fut in list(waiting):
                    if now - started[fut] <= timeout_s:
                        continue
                    # stop waiting; the worker underneath may be hung,
                    # so its slot stays pinned for the rest of the wave
                    # and its process is dealt with at pool teardown
                    waiting.discard(fut)
                    hung = True
                    pos, spec = futures[fut]
                    attempts[pos] += 1
                    if attempts[pos] <= retries:
                        next_round.append((pos, spec))
                    else:
                        outcomes[pos] = TaskOutcome(
                            spec=spec, attempts=attempts[pos],
                            error=f"timeout after {timeout_s:.0f}s")
                _fill()
                done, cached, failed = _done_counts()
                prog.update(done, cached, len(waiting), failed)
            # tasks still queued once every slot is pinned by a hung
            # worker can never start this wave: roll them over to the
            # next wave's fresh pool (never submitted, so no attempt is
            # charged).  Every submitted future completes or times out
            # within timeout_s, so the wave loop always drains.
            next_round.extend(queue)
            if hung:
                _terminate_pool(pool)
            else:
                pool.shutdown(wait=True, cancel_futures=True)
            # retries run on the next wave's freshly created pool
            todo = sorted(next_round, key=lambda e: e[0])

    done, cached, failed = _done_counts()
    prog.finish(done, cached, failed, time.perf_counter() - t0)
    return [outcomes[pos] for pos in range(len(specs))]


def run_campaign(
    figures: Optional[Sequence[str]] = None,
    *,
    workers: int = 4,
    scale: float = 1.0,
    seed: int = config.DEFAULT_SEED,
    cache: Optional[ResultCache] = None,
    timeout_s: float = 300.0,
    retries: int = 2,
    fail_tasks: Optional[str] = None,
    progress: bool = False,
    registry: Optional[Mapping[str, FigureSpec]] = None,
) -> CampaignResult:
    """Run a sweep over ``figures`` (default: every registered figure).

    Pure compute + cache: artifact emission is the caller's job (the
    CLI renders tables and writes the JSON surfaces; benches only want
    the records).
    """
    from repro.campaign.registry import FIGURES

    registry = registry if registry is not None else FIGURES
    # dedupe, first occurrence wins: `--figures fig7,fig7` must not run
    # (and account) the same sweep twice
    names = tuple(dict.fromkeys(figures)) if figures else tuple(registry)
    specs: List[TaskSpec] = []
    for name in names:
        if name not in registry:
            known = ", ".join(registry)
            raise KeyError(f"unknown figure {name!r} (known: {known})")
        specs.extend(registry[name].tasks(scale=scale, seed=seed))

    t0 = time.perf_counter()
    outcomes = run_tasks(
        specs, workers=workers, cache=cache, timeout_s=timeout_s,
        retries=retries, fail_tasks=fail_tasks, progress=progress)
    return CampaignResult(
        outcomes=outcomes,
        figures=names,
        wall_s=time.perf_counter() - t0,
        workers=workers,
        scale=scale,
        seed=seed,
    )
