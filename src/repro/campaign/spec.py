"""Declarative sweep specifications for the campaign engine.

A campaign decomposes each figure's parameter sweep into independent
:class:`TaskSpec` units — one grid point each — that can run in any
order, in any process, and be cached individually.  Every scenario in
:mod:`repro.harness.scenarios` already builds a fresh
:class:`~repro.kernel.machine.Machine` per grid point, so splitting the
sweep loop across workers yields records identical to the serial run.

The layer mirrors :class:`repro.faults.plan.FaultPlan`: specs are plain
data with ``to_dict``/``from_dict`` JSON round-trip, so campaigns can be
shipped as files, diffed, and hashed for the result cache.

``FigureSpec`` is the registry side (see :mod:`repro.campaign.registry`)
— it holds the grid *and* the rendering recipe (title, headers, a row
post-processor that may splice in paper values), so the campaign's
tables are byte-identical to the benchmark scripts'.
"""

from __future__ import annotations

import itertools
import json
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from repro import config
from repro.harness.report import render_table
from repro.harness.scaling import scaled


def json_normalize(value: Any) -> Any:
    """Round-trip ``value`` through JSON (tuples become lists, ...).

    Every task record crosses this boundary — whether it was produced
    in-process, in a worker subprocess, or read back from the cache —
    so all three paths render identically down to the byte.
    """
    return json.loads(json.dumps(value))


@dataclass(frozen=True)
class TaskSpec:
    """One unit of campaign work: a scenario call at one grid point.

    ``index`` is the task's position in its figure's serial iteration
    order; the merge step concatenates records by index so parallel
    output equals the serial sweep.
    """

    figure: str
    scenario: str
    params: Mapping[str, Any]
    seed: int = config.DEFAULT_SEED
    index: int = 0

    def __post_init__(self):
        if not self.figure or not self.scenario:
            raise ValueError("task needs a figure and a scenario name")
        if self.index < 0:
            raise ValueError("index must be >= 0")
        object.__setattr__(self, "params", json_normalize(dict(self.params)))

    # -- JSON round-trip ------------------------------------------------- #

    def to_dict(self) -> Dict:
        return {
            "figure": self.figure,
            "scenario": self.scenario,
            "params": json_normalize(dict(self.params)),
            "seed": self.seed,
            "index": self.index,
        }

    @classmethod
    def from_dict(cls, d: Dict) -> "TaskSpec":
        return cls(**d)

    def canonical(self) -> str:
        """Deterministic JSON identity (excludes ``index``: reordering a
        grid must not invalidate cached results)."""
        return json.dumps(
            {
                "figure": self.figure,
                "scenario": self.scenario,
                "params": json_normalize(dict(self.params)),
                "seed": self.seed,
            },
            sort_keys=True,
            separators=(",", ":"),
        )

    @property
    def key(self) -> Tuple[str, int]:
        return (self.figure, self.index)

    def label(self) -> str:
        return f"{self.figure}[{self.index}]"


@dataclass(frozen=True)
class FigureSpec:
    """A figure's sweep grid plus its table-rendering recipe.

    ``axes`` names the scenario keyword(s) being sharded, outermost
    loop first; ``grid`` gives the value tuple for each axis.  Tasks
    are the cross product in nested-loop order, each calling the
    scenario with one-element tuples for the sharded axes, so the
    concatenated records equal one serial call over the full grid.

    ``duration_param`` / ``duration_base`` / ``duration_floor`` feed
    the shared ``--fast`` clamp (:func:`repro.harness.scaling.scaled`).
    ``row_fn`` maps the merged record to the rows actually rendered
    (e.g. splicing in paper columns); ``None`` renders records as-is.
    """

    name: str
    scenario: str
    title: str
    headers: Tuple[str, ...]
    axes: Tuple[str, ...]
    grid: Tuple[Tuple, ...]
    base_params: Mapping[str, Any] = field(default_factory=dict)
    duration_param: str = "duration_ms"
    duration_base: int = 80
    duration_floor: int = 20
    row_fn: Optional[Callable[[List], List]] = None
    note: Optional[str] = None

    def __post_init__(self):
        if len(self.axes) != len(self.grid):
            raise ValueError("axes and grid must align")
        if not self.axes:
            raise ValueError("need at least one sharded axis")

    def task_count(self) -> int:
        n = 1
        for values in self.grid:
            n *= len(values)
        return n

    def tasks(self, scale: float = 1.0,
              seed: int = config.DEFAULT_SEED) -> List[TaskSpec]:
        """The figure's grid as independent tasks, serial order."""
        out: List[TaskSpec] = []
        for index, combo in enumerate(itertools.product(*self.grid)):
            params = dict(self.base_params)
            for axis, value in zip(self.axes, combo):
                params[axis] = (value,)
            params[self.duration_param] = scaled(
                self.duration_base, scale, self.duration_floor)
            out.append(
                TaskSpec(figure=self.name, scenario=self.scenario,
                         params=params, seed=seed, index=index)
            )
        return out

    def render(self, record: List) -> str:
        """Render a merged record as the figure's benchmark table."""
        rows = self.row_fn(record) if self.row_fn is not None else record
        return render_table(self.title, list(self.headers), rows,
                            note=self.note)


@dataclass(frozen=True)
class SweepSpec:
    """A whole campaign request: which figures, at what scale and seed.

    Plain data with JSON round-trip, like
    :class:`~repro.faults.plan.FaultPlan`, so campaign definitions can
    be stored next to their artifacts and replayed exactly.
    """

    figures: Tuple[str, ...] = ()
    scale: float = 1.0
    seed: int = config.DEFAULT_SEED

    def __post_init__(self):
        if self.scale <= 0:
            raise ValueError("scale must be positive")
        object.__setattr__(self, "figures", tuple(self.figures))

    def to_dict(self) -> Dict:
        return {"figures": list(self.figures), "scale": self.scale,
                "seed": self.seed}

    @classmethod
    def from_dict(cls, d: Dict) -> "SweepSpec":
        return cls(figures=tuple(d.get("figures", ())),
                   scale=d.get("scale", 1.0),
                   seed=d.get("seed", config.DEFAULT_SEED))

    def tasks(self, registry: Mapping[str, FigureSpec]) -> List[TaskSpec]:
        names: Sequence[str] = self.figures or tuple(registry)
        out: List[TaskSpec] = []
        for name in names:
            if name not in registry:
                raise KeyError(f"unknown figure {name!r}")
            out.extend(registry[name].tasks(scale=self.scale, seed=self.seed))
        return out
