"""``repro.campaign`` — parallel sweep engine with result caching.

Turns the benchmark suite's serial per-figure loops into a sharded,
cached, observable experiment pipeline:

* **specs** (:mod:`~repro.campaign.spec`) — figures register their
  parameter grids as data; tasks round-trip through JSON;
* **executor** (:mod:`~repro.campaign.executor`) — process-pool
  sharding with per-task timeouts and fresh-worker retries; merged
  records are byte-identical to the serial sweep;
* **cache** (:mod:`~repro.campaign.cache`) — content-addressed result
  store keyed by spec + code fingerprint;
* **artifacts** (:mod:`~repro.campaign.artifacts`) — atomic ``.txt`` /
  ``.json`` tables and the ``BENCH_campaign.json`` roll-up.

The benchmark scripts are thin wrappers over :func:`run_figure` /
:func:`render_figure`; ``repro campaign`` is the operational CLI.
See ``docs/CAMPAIGN.md``.
"""

from __future__ import annotations

from typing import List, Optional

from repro import config
from repro.campaign.artifacts import (
    CAMPAIGN_SUMMARY,
    atomic_write_json,
    atomic_write_text,
    default_cache_dir,
    default_results_dir,
    figure_payload,
    read_campaign_summary,
    write_campaign_summary,
    write_figure_artifacts,
)
from repro.campaign.cache import (
    ResultCache,
    package_digest,
    scenario_fingerprint,
    task_key,
)
from repro.campaign.executor import (
    CampaignResult,
    InjectedFailure,
    TaskOutcome,
    campaign_specs,
    execute_task,
    merge_shards,
    run_campaign,
    run_tasks,
)
from repro.campaign.journal import (
    JOURNAL_SUBDIR,
    CampaignJournal,
    JournalError,
    JournalState,
    campaign_identity,
    journal_key,
    journal_path,
    load_journal,
    open_for_resume,
)
from repro.campaign.registry import FIGURES, get_figure
from repro.campaign.spec import FigureSpec, SweepSpec, TaskSpec, json_normalize

__all__ = [
    "CAMPAIGN_SUMMARY",
    "JOURNAL_SUBDIR",
    "CampaignJournal",
    "CampaignResult",
    "FIGURES",
    "FigureSpec",
    "InjectedFailure",
    "JournalError",
    "JournalState",
    "ResultCache",
    "SweepSpec",
    "TaskOutcome",
    "TaskSpec",
    "atomic_write_json",
    "atomic_write_text",
    "campaign_identity",
    "campaign_specs",
    "default_cache_dir",
    "default_results_dir",
    "execute_task",
    "figure_payload",
    "get_figure",
    "journal_key",
    "journal_path",
    "json_normalize",
    "load_journal",
    "merge_shards",
    "open_for_resume",
    "package_digest",
    "read_campaign_summary",
    "render_figure",
    "run_campaign",
    "run_figure",
    "run_tasks",
    "scenario_fingerprint",
    "task_key",
    "write_campaign_summary",
    "write_figure_artifacts",
]


def run_figure(name: str, scale: float = 1.0,
               seed: Optional[int] = None) -> List:
    """Run one figure's sweep serially in-process (no cache) and return
    the merged record — the benchmark scripts' entry point."""
    fig = get_figure(name)
    record: List = []
    for task in fig.tasks(scale=scale,
                          seed=seed if seed is not None
                          else config.DEFAULT_SEED):
        record.extend(execute_task(task))
    return record


def render_figure(name: str, record: List) -> str:
    """Render a merged record as the figure's benchmark table."""
    return get_figure(name).render(record)
