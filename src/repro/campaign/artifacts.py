"""Campaign artifact emission: atomic writes, JSON surfaces, summaries.

Every write goes temp-file-then-``os.replace`` so an interrupted or
crashed campaign can never leave a truncated table or summary behind —
readers either see the old artifact or the complete new one.

Per figure the campaign writes both surfaces side by side:

* ``<figure>.txt`` — the rendered paper-vs-measured table, identical to
  what the benchmark script archives;
* ``<figure>.json`` — the merged raw record plus run metadata, for
  plotting and regression tooling.

The campaign-level roll-up lands in ``BENCH_campaign.json``: wall
clock, per-task timings/attempts, and the cache hit rate.
"""

from __future__ import annotations

import json
import os
import tempfile
from typing import Any, Dict, List, Optional

#: summary artifact name (next to the per-figure tables)
CAMPAIGN_SUMMARY = "BENCH_campaign.json"


def default_results_dir() -> str:
    """``benchmarks/results`` at the repo root (``REPRO_RESULTS_DIR``
    overrides, e.g. for tests and external checkouts)."""
    env = os.environ.get("REPRO_RESULTS_DIR")
    if env:
        return env
    here = os.path.abspath(__file__)
    repo_root = os.path.dirname(os.path.dirname(os.path.dirname(
        os.path.dirname(here))))
    return os.path.join(repo_root, "benchmarks", "results")


def default_cache_dir(results_dir: Optional[str] = None) -> str:
    return os.path.join(results_dir or default_results_dir(), "cache")


def atomic_write_text(path: str, text: str) -> None:
    """Write ``text`` to ``path`` atomically **and durably**.

    Temp file + ``os.replace`` keeps the write atomic against readers;
    fsyncing the temp file before the rename and the directory after it
    keeps it durable against power loss — without the first fsync the
    rename can land before the data, leaving a complete-looking but
    empty/garbage artifact after a crash, and without the second the
    rename itself may not have reached the journal.
    """
    directory = os.path.dirname(path) or "."
    os.makedirs(directory, exist_ok=True)
    fd, tmp = tempfile.mkstemp(dir=directory,
                               prefix=os.path.basename(path) + ".",
                               suffix=".tmp")
    try:
        with os.fdopen(fd, "w") as fh:
            fh.write(text)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)
        dir_fd = os.open(directory, os.O_RDONLY)
        try:
            os.fsync(dir_fd)
        finally:
            os.close(dir_fd)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


def atomic_write_json(path: str, obj: Any) -> None:
    atomic_write_text(path, json.dumps(obj, indent=2, sort_keys=True) + "\n")


def write_figure_artifacts(results_dir: str, name: str, text: str,
                           payload: Dict[str, Any]) -> None:
    """Archive one figure's rendered table and its JSON record."""
    atomic_write_text(os.path.join(results_dir, f"{name}.txt"), text + "\n")
    atomic_write_json(os.path.join(results_dir, f"{name}.json"), payload)


def write_campaign_summary(results_dir: str, summary: Dict[str, Any]) -> str:
    path = os.path.join(results_dir, CAMPAIGN_SUMMARY)
    atomic_write_json(path, summary)
    return path


def read_campaign_summary(results_dir: str) -> Optional[Dict[str, Any]]:
    path = os.path.join(results_dir, CAMPAIGN_SUMMARY)
    try:
        with open(path) as fh:
            return json.load(fh)
    except (OSError, ValueError):
        return None


def figure_payload(name: str, scenario: str, record: List, *,
                   seed: int, scale: float, tasks: int,
                   elapsed_s: float, from_cache: int) -> Dict[str, Any]:
    """The per-figure JSON artifact body."""
    return {
        "figure": name,
        "scenario": scenario,
        "seed": seed,
        "scale": scale,
        "tasks": tasks,
        "from_cache": from_cache,
        "elapsed_s": elapsed_s,
        "record": record,
    }
