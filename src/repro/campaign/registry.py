"""The shipped figure registrations.

Each entry mirrors the corresponding ``benchmarks/bench_*.py`` exactly
— same scenario parameters, same table title/headers/note, same paper
columns — so ``repro campaign run`` regenerates artifacts that are
byte-identical to what the serial benchmark scripts archive.  The
benchmark scripts themselves are thin wrappers over this registry (see
``repro.campaign.run_figure``), which keeps the two from diverging.

Only loop-decomposable scenarios with JSON-friendly row records are
registered; scenarios returning rich dataclass series (fig2, fig5,
fig11, fig14, fig15) still run through ``repro run`` / their benches.
"""

from __future__ import annotations

from typing import Dict, List

from repro.campaign.spec import FigureSpec
from repro.harness import paper_data


def _table1_rows(record: List) -> List:
    return [
        (s, t, mean, paper_data.TABLE1[(s, t)][0],
         p99, paper_data.TABLE1[(s, t)][1])
        for s, t, mean, p99 in record
    ]


def _table2_rows(record: List) -> List:
    out = []
    for vbar, v, b, nv, loss in record:
        pv, pb, pnv, ploss = paper_data.TABLE2[vbar]
        out.append((vbar, v, pv, b, pb, nv, pnv, loss, ploss))
    return out


def _table3_rows(record: List) -> List:
    return [
        (ring, vbar, ns_loss, paper_data.TABLE3[(ring, vbar)], hr_loss)
        for ring, vbar, ns_loss, hr_loss in record
    ]


def _fig9_rows(record: List) -> List:
    return [
        (rate, m, b["median"], b["q1"], b["q3"], b["p99"], b["std"])
        for rate, m, b in record
    ]


def _fig12_rows(record: List) -> List:
    out = []
    for system, gbps, lat, p99, cpu, loss in record:
        idx = {"metronome": 0, "dpdk": 1, "xdp": 2}[system]
        out.append((system, gbps, lat, p99, cpu,
                    paper_data.FIG12B_CPU[gbps][idx], loss))
    return out


def _figures() -> Dict[str, FigureSpec]:
    figures = [
        FigureSpec(
            name="table1",
            scenario="table1_sleep_precision",
            title="Table 1 — measured sleep period (us)",
            headers=("service", "target us", "mean", "paper mean",
                     "99p", "paper 99p"),
            axes=("services", "targets_us"),
            grid=(("nanosleep", "hr_sleep"), (1, 5, 10, 50, 100, 200)),
            duration_param="samples",
            duration_base=20_000,
            duration_floor=500,
            row_fn=_table1_rows,
            note="20000 samples per point (paper: 1M)",
        ),
        FigureSpec(
            name="table2",
            scenario="table2_vbar_sweep",
            title="Table 2 — V̄ sweep at line rate",
            headers=("target V us", "V us", "paper", "B us", "paper",
                     "N_V", "paper", "loss permille", "paper"),
            axes=("vbars_us",),
            grid=((5, 10, 12, 15, 20),),
            duration_base=120,
            row_fn=_table2_rows,
        ),
        FigureSpec(
            name="table3",
            scenario="table3_nanosleep_loss",
            title="Table 3 — nanosleep-in-Metronome loss at 10 Gbps (%)",
            headers=("ring", "V̄ us", "nanosleep loss %", "paper %",
                     "hr_sleep loss %"),
            axes=("cases",),
            grid=(((1024, 10), (2048, 10), (4096, 10), (4096, 1)),),
            duration_base=120,
            row_fn=_table3_rows,
            note="paper reports hr_sleep achieves no loss in all scenarios",
        ),
        FigureSpec(
            name="fig6",
            scenario="fig6_latency_cpu",
            title="Figure 6 — latency and CPU vs target V̄",
            headers=("gbps", "V̄ us", "mean latency us", "p99 us", "cpu"),
            axes=("rates_gbps", "vbars_us"),
            grid=((1.0, 5.0, 10.0), (5, 10, 15, 20)),
            duration_base=80,
        ),
        FigureSpec(
            name="fig7",
            scenario="fig7_tl_sweep",
            title="Figure 7 — busy tries and CPU vs T_L (line rate, V̄=10us)",
            headers=("T_L us", "busy-try fraction", "cpu"),
            axes=("tls_us",),
            grid=((100, 200, 300, 400, 500, 600, 700),),
            duration_base=80,
        ),
        FigureSpec(
            name="fig8",
            scenario="fig8_m_sweep",
            title="Figure 8 — busy tries and CPU vs M (line rate)",
            headers=("M", "busy-try fraction", "cpu"),
            axes=("m_values",),
            grid=((2, 3, 4, 5, 6, 7, 8),),
            duration_base=80,
        ),
        FigureSpec(
            name="fig9",
            scenario="fig9_latency_vs_m",
            title="Figure 9 — latency (us) vs M",
            headers=("rate Mpps", "M", "median", "q1", "q3", "p99", "std"),
            axes=("rates_mpps", "m_values"),
            grid=((14.0, 1.0), (2, 3, 5, 7)),
            duration_base=80,
            row_fn=_fig9_rows,
        ),
        FigureSpec(
            name="fig12",
            scenario="fig12_compare",
            title="Figure 12 — L3 forwarder: Metronome vs DPDK vs XDP",
            headers=("system", "gbps", "mean lat us", "p99 us", "cpu",
                     "paper cpu", "loss %"),
            axes=("rates_gbps",),
            grid=((0.5, 1.0, 5.0, 10.0),),
            duration_base=80,
            row_fn=_fig12_rows,
        ),
        FigureSpec(
            name="trace_phases",
            scenario="trace_phase_tracking",
            title="Trace replay — per-phase tracking: Metronome vs DPDK vs XDP",
            headers=("system", "phase", "dur ms", "offered Mpps", "loss %",
                     "mean us", "p99 us", "ts us @end"),
            axes=("systems",),
            grid=(("metronome", "dpdk", "xdp"),),
            duration_base=100,
            duration_floor=25,
            note="benign phased trace: HTTP peak -> DNS burst -> SSH -> "
                 "light UDP; ts = adaptive T_S at phase end",
        ),
        FigureSpec(
            name="trace_adversary",
            scenario="trace_adversary",
            title="T_S-aware adversary vs rate-matched naive flood",
            headers=("mode", "offered Mpps", "overlay Mpps", "loss %",
                     "mean us", "p99 us", "strikes"),
            axes=("modes",),
            grid=(("aware", "naive"),),
            duration_base=100,
            duration_floor=25,
            note="same average attack budget; 'aware' concentrates it in "
                 "slugs sized to the published T_S",
        ),
        FigureSpec(
            name="scale_queue_count",
            scenario="scale_queue_count",
            title="Scale-out — loss/latency/CPU vs queue count (100G, 64B)",
            headers=("queues", "threads", "loss %", "mean us", "p99 us",
                     "cpu", "ts us", "V̄ err %"),
            axes=("num_queues_values",),
            grid=((2, 4, 8, 16, 32, 64),),
            duration_base=24,
            duration_floor=6,
            note="aggregate 100G split across queues; threads = queues/2 "
                 "(floor 3, cap 48) on 2 NUMA nodes; V̄ err = measured "
                 "vacation vs eq.-7 target (-1 = no cycles)",
        ),
        FigureSpec(
            name="scale_thread_ratio",
            scenario="scale_thread_ratio",
            title="Scale-out — thread:queue ratio at 100G (16 queues)",
            headers=("ratio", "threads", "loss %", "mean us", "p99 us",
                     "cpu", "busy-try frac", "V̄ err %"),
            axes=("ratios",),
            grid=((0.5, 1.0, 2.0, 3.0),),
            duration_base=24,
            duration_floor=6,
            note="16 queues, 2 NUMA nodes; busy-try fraction is the §3.2 "
                 "trylock-diversity metric",
        ),
        FigureSpec(
            name="fig13",
            scenario="fig13_power_governors",
            title="Figure 13 — power (W) vs rate under both governors",
            headers=("governor", "system", "gbps", "watts", "cpu"),
            axes=("governors", "rates_gbps"),
            grid=(("performance", "ondemand"), (0.0, 0.5, 1.0, 5.0, 10.0)),
            duration_base=100,
        ),
    ]
    return {f.name: f for f in figures}


#: the shipped figure sweeps, by name (insertion order = run order)
FIGURES: Dict[str, FigureSpec] = _figures()


def get_figure(name: str) -> FigureSpec:
    if name not in FIGURES:
        known = ", ".join(FIGURES)
        raise KeyError(f"unknown campaign figure {name!r} (known: {known})")
    return FIGURES[name]
