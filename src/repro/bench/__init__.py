"""``repro bench`` — performance tracking as a first-class artifact.

This package lives in wall-clock time by design (it measures it); it is
on the lint engine's wall-clock allowlist alongside ``campaign/`` and
``tools/``.  Everything simulated that it drives still runs on virtual
time.
"""

from repro.bench.perf import check_result, load_baseline, run_benches

__all__ = ["check_result", "load_baseline", "run_benches"]
