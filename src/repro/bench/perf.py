"""Microbenchmarks for the event core, the NIC ring, and whole figures.

The suite emits ``BENCH_perf.json`` (see ``docs/PERF.md`` for the
schema) and can gate CI against a committed baseline.  Two kinds of
numbers are reported:

* **speedups** — the calendar-queue :class:`~repro.sim.core.Simulator`
  measured against the frozen pre-calendar heap loop
  (:class:`~repro.sim.reference.HeapSimulator`) *on the same machine, in
  the same process*.  Ratios cancel out host speed, so they are the
  numbers CI gates on.
* **absolutes** (events/sec, packets/sec, per-figure wall seconds) —
  machine-dependent, recorded for the PR-over-PR trajectory only.

The churn workload is the simulator-level shape of a Metronome
deployment: a steady tick of near-future work (sleep expiries) plus a
fan of long-horizon watchdog timers that are almost always cancelled
and re-armed (the paper's backup timeout).  Under the old heap every
cancelled watchdog stayed buried until its far-future expiry, so the
heap grew without bound; the calendar queue compacts tombstones away,
which is where the large speedup comes from.
"""

from __future__ import annotations

import json
import os
import platform
import time
from typing import Callable, Dict, List, Optional

SCHEMA_VERSION = 1

#: regression tolerance against the committed baseline (CI gate)
RATIO_TOLERANCE = 0.8
#: hard floor for the churn speedup in full mode (the headline claim)
CHURN_SPEEDUP_FLOOR = 3.0
#: softer floor for the short quick-mode run (more variance)
CHURN_SPEEDUP_FLOOR_QUICK = 2.0

#: representative figures timed wall-clock (cheap, mid, multi-queue XDP)
BENCH_FIGURES = ("fig7", "fig9", "fig12")


# --------------------------------------------------------------------- #
# event-core microbenchmarks
# --------------------------------------------------------------------- #


def _churn_workload(sim, iters: int, watchdogs: int,
                    tick_ns: int = 5_000,
                    watchdog_ns: int = 10_000_000_000) -> int:
    """Tick every ``tick_ns``; each tick cancels and re-arms ``watchdogs``
    far-future timers (the T_S re-arm / backup-watchdog pattern).

    Returns the number of callbacks actually fired.
    """
    state = {"n": 0, "wd": []}

    def noop() -> None:
        pass

    def tick() -> None:
        n = state["n"] = state["n"] + 1
        for handle in state["wd"]:
            handle.cancel()
        if n < iters:
            state["wd"] = [
                sim.call_after(watchdog_ns, noop) for _ in range(watchdogs)
            ]
            sim.call_after(tick_ns, tick)

    sim.call_after(tick_ns, tick)
    sim.run()
    return state["n"]


def _fire_workload(sim, iters: int, chains: int = 32,
                   tick_ns: int = 5_000) -> int:
    """Pure schedule→fire, no cancels: ``chains`` interleaved 5 µs tick
    chains, the shape of M metronome threads plus per-queue timers all
    live at once (a single chain would just benchmark a 1-element heap).
    """
    state = {"n": 0}

    def tick() -> None:
        n = state["n"] = state["n"] + 1
        if n < iters:
            sim.call_after(tick_ns, tick)

    for i in range(chains):
        sim.call_after(tick_ns + i * 157, tick)
    sim.run()
    return state["n"]


def _time_events(sim_factory: Callable[[], object],
                 workload: Callable[..., int], *args,
                 repeats: int = 2) -> float:
    """Events fired per wall-clock second, best of ``repeats`` runs.

    Best-of damps scheduler noise, which matters because the CI gate
    reads the *ratio* of two of these measurements.
    """
    best = 0.0
    for _ in range(repeats):
        sim = sim_factory()
        t0 = time.perf_counter()
        fired = workload(sim, *args)
        eps = fired / (time.perf_counter() - t0)
        if eps > best:
            best = eps
    return best


def bench_event_churn(quick: bool) -> Dict[str, float]:
    from repro.sim.core import Simulator
    from repro.sim.reference import HeapSimulator

    iters = 30_000 if quick else 100_000
    watchdogs = 16
    new_eps = _time_events(Simulator, _churn_workload, iters, watchdogs)
    old_eps = _time_events(HeapSimulator, _churn_workload, iters, watchdogs)
    return {
        "iters": iters,
        "watchdogs_per_tick": watchdogs,
        "events_per_sec": round(new_eps, 1),
        "heap_events_per_sec": round(old_eps, 1),
        "speedup": round(new_eps / old_eps, 3),
    }


def bench_event_fire(quick: bool) -> Dict[str, float]:
    from repro.sim.core import Simulator
    from repro.sim.reference import HeapSimulator

    iters = 100_000 if quick else 300_000
    new_eps = _time_events(Simulator, _fire_workload, iters)
    old_eps = _time_events(HeapSimulator, _fire_workload, iters)
    return {
        "iters": iters,
        "events_per_sec": round(new_eps, 1),
        "heap_events_per_sec": round(old_eps, 1),
        "speedup": round(new_eps / old_eps, 3),
    }


# --------------------------------------------------------------------- #
# NIC ring throughput
# --------------------------------------------------------------------- #


def bench_nic_ring(quick: bool) -> Dict[str, float]:
    """Packets/sec drained through one Rx ring by a poll loop.

    CBR at 10 Mpps simulated; the wall-clock cost per packet is the
    queue's lazy arrival accounting plus the burst drain.
    """
    from repro.nic.rxqueue import RxQueue
    from repro.nic.traffic import CbrProcess
    from repro.sim.core import Simulator

    target = 2_000_000 if quick else 8_000_000
    sim = Simulator()
    queue = RxQueue(sim, CbrProcess(10_000_000), sample_every=64)
    state = {"drained": 0}

    def poll() -> None:
        got, _tagged = queue.rx_burst(32)
        state["drained"] += got
        if state["drained"] < target:
            sim.call_after(3_000, poll)

    sim.call_after(3_000, poll)
    t0 = time.perf_counter()
    sim.run()
    dt = time.perf_counter() - t0
    return {
        "packets": state["drained"],
        "packets_per_sec": round(state["drained"] / dt, 1),
    }


# --------------------------------------------------------------------- #
# trace replay throughput
# --------------------------------------------------------------------- #


def bench_trace_replay(quick: bool) -> Dict[str, float]:
    """Replayed packets/sec through one Rx ring, vs a Poisson baseline.

    Measures the cost of trace-driven arrival counting (bisect over a
    materialized schedule) against the same poll loop fed by a
    :class:`~repro.nic.traffic.PoissonProcess` at the matched mean
    rate.  Trajectory data only — never gated: the ratio depends on
    trace density, not on a code-quality invariant.
    """
    from repro.nic.rxqueue import RxQueue
    from repro.nic.traffic import PoissonProcess
    from repro.sim.core import Simulator
    from repro.sim.rng import RandomStreams
    from repro.sim.units import MS
    from repro.traffic import TraceReplayProcess, benign_phased, generate

    trace = generate(benign_phased((20 if quick else 60) * MS), seed=2020)

    def drain(process) -> Dict[str, float]:
        sim = Simulator()
        queue = RxQueue(sim, process, sample_every=64)
        state = {"drained": 0}
        horizon = trace.duration_ns

        def poll() -> None:
            got, _tagged = queue.rx_burst(32)
            state["drained"] += got
            if sim.now < horizon:
                sim.call_after(3_000, poll)

        sim.call_after(3_000, poll)
        t0 = time.perf_counter()
        sim.run()
        dt = time.perf_counter() - t0
        return {"packets": state["drained"],
                "packets_per_sec": round(state["drained"] / dt, 1)}

    replay = drain(TraceReplayProcess(trace, loop=True))
    rate = max(1, int(trace.mean_rate_pps()))
    poisson = drain(
        PoissonProcess(rate, RandomStreams(2020).numpy_stream("bench.replay"))
    )
    return {
        "trace_packets": trace.packet_count,
        "replayed": replay,
        "poisson": poisson,
        "vs_poisson": round(
            replay["packets_per_sec"] / poisson["packets_per_sec"], 3
        ),
    }


# --------------------------------------------------------------------- #
# checkpoint overhead
# --------------------------------------------------------------------- #


def bench_checkpoint(quick: bool) -> Dict[str, object]:
    """Cost of the sim-state checkpoint at fig7-like scale.

    Reports the capture time (pure state walk over a live Metronome
    machine), the serialized state size, the JSON round-trip time, and
    the verify time on a freshly replayed machine — the restore path's
    fingerprint comparison.  Never gated: checkpointing is a debugging
    and resilience surface, the numbers are trajectory data.
    """
    from repro import config
    from repro.harness.experiment import run_metronome
    from repro.sim.snapshot import MachineState, verify
    from repro.sim.units import MS

    duration_ms = 8 if quick else 20
    t_ck = (duration_ms // 2) * MS
    reps = 3 if quick else 5
    timings: Dict[str, float] = {}

    def time_capture(machine, _state) -> None:
        best = float("inf")
        for _ in range(reps):
            t0 = time.perf_counter()
            machine.snapshot(label="bench")
            best = min(best, time.perf_counter() - t0)
        timings["capture_ms"] = best * 1e3

    cfg = config.SimConfig(seed=2020)
    res = run_metronome(2_000_000, duration_ms=duration_ms, cfg=cfg,
                        num_threads=2, cores=[0, 1],
                        checkpoint_at_ns=t_ck, at_checkpoint=time_capture)
    state = res.checkpoint

    t0 = time.perf_counter()
    blob = json.dumps(state.to_dict())
    round_tripped = MachineState.from_dict(json.loads(blob))
    serialize_ms = (time.perf_counter() - t0) * 1e3
    round_trip_ok = not state.diff(round_tripped)

    def time_verify(machine, _state) -> None:
        best = float("inf")
        for _ in range(reps):
            t0 = time.perf_counter()
            mismatches = verify(machine, state)
            best = min(best, time.perf_counter() - t0)
        timings["verify_ms"] = best * 1e3
        timings["verify_ok"] = not mismatches

    run_metronome(2_000_000, duration_ms=duration_ms,
                  cfg=config.SimConfig(seed=2020),
                  num_threads=2, cores=[0, 1],
                  checkpoint_at_ns=t_ck, at_checkpoint=time_verify)
    return {
        "duration_ms": duration_ms,
        "checkpoint_at_ms": t_ck // MS,
        "capture_ms": round(timings["capture_ms"], 3),
        "state_kb": round(state.size_bytes() / 1024, 2),
        "json_round_trip_ms": round(serialize_ms, 3),
        "verify_ms": round(timings["verify_ms"], 3),
        "round_trip_ok": bool(round_trip_ok and timings["verify_ok"]),
    }


# --------------------------------------------------------------------- #
# many-queue scale-out cost
# --------------------------------------------------------------------- #


def bench_scale(quick: bool) -> Dict[str, float]:
    """Wall-clock cost of the 64-queue / 32-thread 100G machine.

    The ISSUE-9 scale-out configuration: one port, 64 RSS queues on 2
    NUMA nodes, 32 Metronome threads.  Reports simulator events/sec and
    packets/sec at that scale so the cost of the many-queue machine is
    visible PR-over-PR.  Never gated: the absolute rates are
    machine-dependent trajectory data.
    """
    from repro.harness.scale import run_metronome_scaled

    duration_ms = 2 if quick else 6
    t0 = time.perf_counter()
    res = run_metronome_scaled(64, 32, gbps=100.0,
                               duration_ms=duration_ms, numa_nodes=2,
                               seed=2020)
    wall = time.perf_counter() - t0
    events = res.machine.sim.events_scheduled
    return {
        "num_queues": 64,
        "num_threads": 32,
        "duration_ms": duration_ms,
        "events": events,
        "events_per_sec": round(events / wall, 1),
        "packets": res.delivered,
        "loss_pct": round(res.loss_fraction * 100, 3),
        "wall_s": round(wall, 3),
    }


# --------------------------------------------------------------------- #
# whole-tree lint cost
# --------------------------------------------------------------------- #


def bench_lint(quick: bool) -> Dict[str, object]:
    """Wall-clock of the interprocedural whole-tree lint, cold vs
    summary-cached.

    The cold run parses every module, runs the file rules, and extracts
    effect facts; the warm run replays all of that from the
    content-hashed cache and pays only for the call-graph link plus the
    program rules.  The warm/cold ratio is the cache's value and the
    link step's cost, PR over PR.  Never gated: both are
    machine-dependent trajectory data.
    """
    import shutil
    import tempfile

    import repro
    from repro.lint.cache import SummaryCache
    from repro.lint.engine import LintConfig, run_lint

    # src/repro/__init__.py -> src/repro -> src -> repo root
    root = os.path.dirname(os.path.dirname(os.path.dirname(
        os.path.abspath(repro.__file__))))
    cfg = LintConfig(root=root)
    cache_dir = tempfile.mkdtemp(prefix="bench-lint-cache-")
    try:
        cache = SummaryCache(cache_dir)
        t0 = time.perf_counter()
        cold_result = run_lint(cfg, cache=cache)
        cold = time.perf_counter() - t0

        reps = 1 if quick else 3
        warm = float("inf")
        for _ in range(reps):
            cache = SummaryCache(cache_dir)
            t0 = time.perf_counter()
            warm_result = run_lint(cfg, cache=cache)
            warm = min(warm, time.perf_counter() - t0)
        hit_rate = cache.hits / max(1, cache.hits + cache.misses)
    finally:
        shutil.rmtree(cache_dir, ignore_errors=True)
    return {
        "files": cold_result.files,
        "findings": len(cold_result.findings) + len(warm_result.findings),
        "cold_s": round(cold, 3),
        "warm_s": round(warm, 3),
        "warm_over_cold": round(warm / cold, 3) if cold > 0 else 0.0,
        "cache_hit_rate": round(hit_rate, 3),
    }


# --------------------------------------------------------------------- #
# whole-figure wall clock
# --------------------------------------------------------------------- #


def bench_figures(quick: bool) -> Dict[str, Dict[str, float]]:
    from repro.campaign import run_figure

    scale = 0.25 if quick else 0.5
    out: Dict[str, Dict[str, float]] = {}
    for name in BENCH_FIGURES:
        t0 = time.perf_counter()
        run_figure(name, scale=scale, seed=2020)
        out[name] = {
            "scale": scale,
            "wall_s": round(time.perf_counter() - t0, 3),
        }
    return out


# --------------------------------------------------------------------- #
# suite driver + baseline gate
# --------------------------------------------------------------------- #


def run_benches(quick: bool = False,
                skip_figures: bool = False,
                progress: Optional[Callable[[str], None]] = None) -> Dict:
    """Run the full suite and return the ``BENCH_perf.json`` payload."""
    say = progress or (lambda _msg: None)
    say("event churn (calendar vs frozen heap)...")
    churn = bench_event_churn(quick)
    say(f"  {churn['events_per_sec']:,.0f} ev/s, speedup {churn['speedup']:.2f}x")
    say("event fire (pure schedule->fire chain)...")
    fire = bench_event_fire(quick)
    say(f"  {fire['events_per_sec']:,.0f} ev/s, speedup {fire['speedup']:.2f}x")
    say("nic ring (poll-mode burst drain)...")
    nic = bench_nic_ring(quick)
    say(f"  {nic['packets_per_sec']:,.0f} pkt/s")
    say("trace replay (trace-driven drain vs poisson baseline)...")
    replay = bench_trace_replay(quick)
    say(f"  {replay['replayed']['packets_per_sec']:,.0f} pkt/s "
        f"({replay['vs_poisson']:.2f}x of poisson)")
    say("checkpoint (snapshot capture / round-trip / verify)...")
    checkpoint = bench_checkpoint(quick)
    say(f"  capture {checkpoint['capture_ms']:.1f} ms, "
        f"{checkpoint['state_kb']:.0f} KB, "
        f"verify {checkpoint['verify_ms']:.1f} ms")
    say("scale (64 queues / 32 threads at 100G)...")
    scale = bench_scale(quick)
    say(f"  {scale['events_per_sec']:,.0f} ev/s, "
        f"wall {scale['wall_s']:.1f} s")
    say("lint (whole-tree interprocedural, cold vs cached)...")
    lint = bench_lint(quick)
    say(f"  cold {lint['cold_s']:.2f} s, warm {lint['warm_s']:.2f} s "
        f"({lint['warm_over_cold']:.2f}x)")
    benches: Dict[str, object] = {
        "event_churn": churn,
        "event_fire": fire,
        "nic_ring": nic,
        "trace_replay": replay,
        "checkpoint": checkpoint,
        "scale": scale,
        "lint": lint,
    }
    if not skip_figures:
        say(f"figures {', '.join(BENCH_FIGURES)} wall-clock...")
        benches["figures"] = bench_figures(quick)
    return {
        "schema": SCHEMA_VERSION,
        "mode": "quick" if quick else "full",
        "python": platform.python_version(),
        "unix_time": round(time.time(), 1),
        "benches": benches,
    }


def load_baseline(path: str) -> Dict:
    with open(path) as fh:
        return json.load(fh)


def check_result(result: Dict, baseline: Optional[Dict] = None) -> List[str]:
    """Regression gate.  Returns human-readable failures (empty = pass).

    Only machine-independent ratios are gated: the churn speedup has a
    hard floor (the PR's headline claim) and both speedups must stay
    within ``RATIO_TOLERANCE`` of the committed baseline.  Absolute
    events/sec and packets/sec are trajectory data, never gated.
    """
    failures: List[str] = []
    benches = result["benches"]
    quick = result.get("mode") == "quick"
    floor = CHURN_SPEEDUP_FLOOR_QUICK if quick else CHURN_SPEEDUP_FLOOR
    churn = benches["event_churn"]["speedup"]
    if churn < floor:
        failures.append(
            f"event_churn speedup {churn:.2f}x below the {floor:.1f}x floor"
        )
    if baseline is not None:
        base = baseline["benches"]
        for name in ("event_churn", "event_fire"):
            if name not in base:
                continue
            ref = base[name]["speedup"]
            got = benches[name]["speedup"]
            if got < ref * RATIO_TOLERANCE:
                failures.append(
                    f"{name} speedup {got:.2f}x regressed >20% against "
                    f"baseline {ref:.2f}x"
                )
    return failures
