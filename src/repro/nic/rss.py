"""Receive-Side Scaling: the Toeplitz hash.

Real NICs (including the paper's Intel X520) steer packets to Rx queues
by hashing the 5-tuple with the Microsoft Toeplitz algorithm over a
40-byte secret key and indexing a redirection table with the low bits.
This is that algorithm, bit-exact — verified in the tests against the
published Microsoft/Intel verification vectors.

Used by the multi-queue scenarios to decide which queue a tagged
packet's flow belongs to, replacing the "independent process per queue"
approximation with the NIC's real steering function when desired.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.nic.packet import PacketHeader

#: The verification RSS key from the Microsoft RSS specification
#: (also Intel's default in many drivers).
MICROSOFT_KEY = bytes(
    [
        0x6D, 0x5A, 0x56, 0xDA, 0x25, 0x5B, 0x0E, 0xC2,
        0x41, 0x67, 0x25, 0x3D, 0x43, 0xA3, 0x8F, 0xB0,
        0xD0, 0xCA, 0x2B, 0xCB, 0xAE, 0x7B, 0x30, 0xB4,
        0x77, 0xCB, 0x2D, 0xA3, 0x80, 0x30, 0xF2, 0x0C,
        0x6A, 0x42, 0xB7, 0x3B, 0xBE, 0xAC, 0x01, 0xFA,
    ]
)


def toeplitz_hash(key: bytes, data: bytes) -> int:
    """The Toeplitz hash: for every set bit of ``data``, XOR in the
    32-bit window of the key starting at that bit position."""
    if len(data) * 8 + 32 > len(key) * 8:
        raise ValueError(
            f"key too short: need {len(data) * 8 + 32} bits, "
            f"have {len(key) * 8}"
        )
    key_int = int.from_bytes(key, "big")
    key_bits = len(key) * 8
    result = 0
    for byte_index, byte in enumerate(data):
        for bit in range(8):
            if byte & (0x80 >> bit):
                shift = key_bits - 32 - (byte_index * 8 + bit)
                result ^= (key_int >> shift) & 0xFFFFFFFF
    return result


def hash_ipv4_tuple(
    src_ip: int, dst_ip: int, src_port: int, dst_port: int,
    key: bytes = MICROSOFT_KEY,
) -> int:
    """RSS input for TCP/UDP over IPv4: src ip, dst ip, src port, dst
    port, big-endian concatenated (the Microsoft canonical layout)."""
    data = (
        src_ip.to_bytes(4, "big")
        + dst_ip.to_bytes(4, "big")
        + src_port.to_bytes(2, "big")
        + dst_port.to_bytes(2, "big")
    )
    return toeplitz_hash(key, data)


def hash_ipv4_only(src_ip: int, dst_ip: int, key: bytes = MICROSOFT_KEY) -> int:
    """RSS input for non-TCP/UDP IPv4: addresses only."""
    data = src_ip.to_bytes(4, "big") + dst_ip.to_bytes(4, "big")
    return toeplitz_hash(key, data)


class RssSteering:
    """The NIC's queue-steering function: hash + redirection table."""

    def __init__(self, num_queues: int, key: bytes = MICROSOFT_KEY,
                 table_size: int = 128):
        if num_queues < 1:
            raise ValueError("need at least one queue")
        self.num_queues = num_queues
        self.key = key
        #: the indirection table (ethtool -x); default round-robin fill
        self.table: List[int] = [i % num_queues for i in range(table_size)]

    def queue_for(self, header: PacketHeader) -> int:
        """Queue index the NIC would deliver this packet to."""
        if header.proto in (6, 17):
            h = hash_ipv4_tuple(header.src_ip, header.dst_ip,
                                header.src_port, header.dst_port, self.key)
        else:
            h = hash_ipv4_only(header.src_ip, header.dst_ip, self.key)
        return self.table[h % len(self.table)]

    def retarget(self, entries: Sequence[int]) -> None:
        """Rewrite the redirection table (the ethtool flow-steering the
        paper's XDP section leans on)."""
        if any(not 0 <= q < self.num_queues for q in entries):
            raise ValueError("entry outside queue range")
        if len(entries) != len(self.table):
            raise ValueError("table size mismatch")
        self.table = list(entries)
