"""Multi-port, multi-socket NIC topology (ROADMAP item 2).

The paper's testbed is one port with 2 RSS queues on one NUMA node
(§3.3); production 100G deployments spread 16–64 queues across sockets.
This module generalizes the NIC layer without touching the single-port
fast path:

* :class:`PortSpec` / :class:`NicDevice` — a device aggregating several
  :class:`~repro.nic.device.NicPort` objects with globally contiguous
  queue numbering and per-queue NUMA placement;
* :func:`rss_shard` — partition one replayed trace across N queues via
  the real Toeplitz redirection table, lifting ``run_xdp``'s
  single-queue restriction for stateful arrival processes;
* :class:`ReplayShard` — the per-queue arrival process a shard becomes:
  a subsequence of the master schedule that shares the master's loop
  cycle, so the shards stay mutually aligned forever.

Everything here is pure construction-time arithmetic: no simulator
events, no RNG draws, so building a topology never perturbs a run.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro import config
from repro.nic.device import NicPort
from repro.nic.flows import FlowSet
from repro.nic.rss import MICROSOFT_KEY, RssSteering
from repro.nic.rxqueue import RxQueue
from repro.nic.traffic import ArrivalProcess
from repro.sim.core import Simulator
from repro.sim.units import SEC


@dataclass
class PortSpec:
    """Recipe for one port of a :class:`NicDevice`.

    ``queue_nodes`` places individual queues on NUMA nodes (default:
    every queue on the port's ``node``).  ``rss`` attaches a steering
    function; ``flows`` shares a flow population with other ports
    (needed when a sharded trace and the tagger must agree on headers).
    """

    processes: List[ArrivalProcess]
    node: int = 0
    queue_nodes: Optional[List[int]] = None
    flows: Optional[FlowSet] = None
    rss: Optional[RssSteering] = None


@dataclass
class NicDevice:
    """Several ports, queues numbered contiguously across all of them.

    The flattened :attr:`queues` list is what a
    :class:`~repro.core.metronome.MetronomeGroup` consumes — a group
    draining a whole device is exactly the many-queue scale-out
    configuration the scale figures measure.
    """

    sim: Simulator
    specs: Sequence[PortSpec]
    ring_size: int = config.DEFAULT_RX_RING
    sample_every: int = config.LATENCY_SAMPLE_EVERY
    ports: List[NicPort] = field(init=False)

    def __post_init__(self) -> None:
        if not self.specs:
            raise ValueError("a device needs at least one port")
        self.ports = []
        first = 0
        for spec in self.specs:
            port = NicPort(
                self.sim,
                spec.processes,
                flows=spec.flows,
                ring_size=self.ring_size,
                sample_every=self.sample_every,
                node=spec.node,
                rss=spec.rss,
                queue_nodes=spec.queue_nodes,
                first_queue_index=first,
            )
            self.ports.append(port)
            first += len(port.queues)

    @property
    def queues(self) -> List[RxQueue]:
        """All queues of all ports, in global index order."""
        return [q for port in self.ports for q in port.queues]

    @property
    def num_queues(self) -> int:
        return sum(len(port.queues) for port in self.ports)

    def total_drops(self) -> int:
        return sum(port.total_drops() for port in self.ports)

    def total_arrived(self) -> int:
        return sum(port.total_arrived() for port in self.ports)

    def loss_fraction(self) -> float:
        arrived = self.total_arrived()
        if arrived == 0:
            return 0.0
        return self.total_drops() / arrived


class ReplayShard(ArrivalProcess):
    """One RSS queue's slice of a replayed trace.

    Holds the subsequence of the master schedule steered to this queue
    but keeps the *master's* loop cycle, so on every loop iteration the
    shards replay their slices in mutual alignment — the union of all
    shards reproduces the master schedule exactly (tested in
    ``tests/scale``).  Counting logic mirrors
    :class:`~repro.traffic.replay.TraceReplayProcess`.
    """

    def __init__(
        self,
        times: List[int],
        flows: List[int],
        lens: List[int],
        cycle: int,
        loop: bool,
        start: int = 0,
        label: str = "shard",
    ):
        self._times = times
        self._flows = flows
        self._lens = lens
        self._n = len(times)
        self._cycle = max(1, cycle)
        self.loop = loop
        self.start = start
        self.last_t = start
        self.total = 0
        self.label = label

    # -- counting (same arithmetic as TraceReplayProcess) --------------- #

    def _count_at(self, t: int) -> int:
        rel = t - self.start
        if rel <= 0 or self._n == 0:
            return 0
        if not self.loop:
            return bisect_right(self._times, rel)
        cycles, rem = divmod(rel, self._cycle)
        return cycles * self._n + bisect_right(self._times, rem)

    def advance(self, t1: int) -> int:
        if t1 < self.last_t:
            raise ValueError(f"advance moving backwards: {t1} < {self.last_t}")
        n = self._count_at(t1) - self.total
        self.total += n
        self.last_t = t1
        return n

    def next_arrival_after(self, t: int) -> Optional[int]:
        if self._n == 0:
            return None
        rel = t - self.start
        if rel < 0:
            return self.start + self._times[0]
        if not self.loop:
            idx = bisect_right(self._times, rel)
            if idx >= self._n:
                return None
            return self.start + self._times[idx]
        cycles, rem = divmod(rel, self._cycle)
        idx = bisect_right(self._times, rem)
        if idx < self._n:
            return self.start + cycles * self._cycle + self._times[idx]
        return self.start + (cycles + 1) * self._cycle + self._times[0]

    def rate_at(self, t: int) -> float:
        """Nominal mean rate of the shard (reporting/pacing only)."""
        if self._n == 0:
            return 0.0
        rel = t - self.start
        if self.loop:
            return self._n * SEC / self._cycle
        if 0 <= rel <= self._times[-1]:
            return self._n * SEC / max(1, self._times[-1])
        return 0.0

    def time_for_count(self, t: int, k: int) -> Optional[int]:
        """Exact: the arrival time of the k-th packet after ``t``."""
        if k <= 0:
            return t
        if self._n == 0:
            return None
        idx = self._count_at(t) + k - 1
        if not self.loop:
            if idx >= self._n:
                return None
            return self.start + self._times[idx]
        cycles, j = divmod(idx, self._n)
        return self.start + cycles * self._cycle + self._times[j]

    # -- flow plumbing --------------------------------------------------- #

    def flow_of(self, seq: int) -> Optional[int]:
        if self._n == 0:
            return None
        if self.loop:
            return self._flows[seq % self._n]
        if seq >= self._n:
            return None
        return self._flows[seq]

    def len_of(self, seq: int) -> Optional[int]:
        if self._n == 0:
            return None
        if self.loop:
            return self._lens[seq % self._n]
        if seq >= self._n:
            return None
        return self._lens[seq]

    # -- checkpointing ---------------------------------------------------- #

    def snapshot_state(self) -> dict:
        return {
            "kind": "replay-shard",
            "label": self.label,
            "n": self._n,
            "cycle": self._cycle,
            "loop": self.loop,
            "start": self.start,
            "total": self.total,
            "last_t": self.last_t,
        }


def rss_shard(
    process: ArrivalProcess,
    num_queues: int,
    flows: Optional[FlowSet] = None,
    key: bytes = MICROSOFT_KEY,
    table_size: int = 128,
) -> List[ReplayShard]:
    """Partition a replayed trace across ``num_queues`` RSS queues.

    Resolves each scheduled arrival's flow id to a header through
    ``flows`` (the same mapping :meth:`RxQueue._tag_interval` applies:
    ``flow % flows.num_flows``), steers the header through a default
    round-robin Toeplitz redirection table, and emits one
    :class:`ReplayShard` per queue.  The shards conserve packets: their
    schedule lengths sum to the master's, and under ``loop`` they share
    the master cycle so alignment holds across iterations.

    Only schedule-backed processes can be sharded — the process must
    expose ``schedule_times``/``schedule_flows``/``schedule_lens`` and
    ``cycle_ns`` (:class:`~repro.traffic.replay.TraceReplayProcess`
    does).  Synthetic processes (CBR/Poisson) have no per-packet flow
    schedule; split their *rate* across queues instead.
    """
    if num_queues < 1:
        raise ValueError("need at least one queue")
    times = getattr(process, "schedule_times", None)
    flow_ids = getattr(process, "schedule_flows", None)
    lens = getattr(process, "schedule_lens", None)
    cycle = getattr(process, "cycle_ns", None)
    if times is None or flow_ids is None or lens is None or cycle is None:
        raise ValueError(
            f"cannot RSS-shard {type(process).__name__}: the process has "
            "no fixed per-packet schedule (only trace replays do); for "
            "synthetic sources split the rate across queues instead"
        )
    flows = flows or FlowSet()
    steering = RssSteering(num_queues, key=key, table_size=table_size)
    nf = flows.num_flows
    # flow id -> queue, cached: traces carry few distinct flows relative
    # to packets, and the Toeplitz hash is the expensive part
    queue_of_flow: dict = {}
    per_times: List[List[int]] = [[] for _ in range(num_queues)]
    per_flows: List[List[int]] = [[] for _ in range(num_queues)]
    per_lens: List[List[int]] = [[] for _ in range(num_queues)]
    for t, flow, length in zip(times, flow_ids, lens):
        q = queue_of_flow.get(flow)
        if q is None:
            q = steering.queue_for(flows.header_of_flow(flow % nf))
            queue_of_flow[flow] = q
        per_times[q].append(t)
        per_flows[q].append(flow)
        per_lens[q].append(length)
    loop = bool(getattr(process, "loop", False))
    start = getattr(process, "start", 0)
    return [
        ReplayShard(
            per_times[q],
            per_flows[q],
            per_lens[q],
            cycle,
            loop,
            start=start,
            label=f"shard{q}",
        )
        for q in range(num_queues)
    ]
