"""The Rx descriptor ring.

Models an Intel X520-style receive ring: a fixed number of descriptors
(32–4096, paper Appendix B), FIFO semantics, tail-drop when no free
descriptor is available.  Per-packet state is not stored — the ring
tracks occupancy and the sequence-number window [head_seq, tail_seq).
"""

from __future__ import annotations

from repro import config


class DescriptorRing:
    """Occupancy-counting FIFO ring with tail-drop."""

    def __init__(self, capacity: int = config.DEFAULT_RX_RING):
        if not config.MIN_RX_RING <= capacity <= config.MAX_RX_RING:
            raise ValueError(
                f"ring size {capacity} outside "
                f"[{config.MIN_RX_RING}, {config.MAX_RX_RING}]"
            )
        self.capacity = capacity
        #: sequence number of the next packet to be popped (retrieved)
        self.head_seq = 0
        #: sequence number the next accepted packet will get
        self.tail_seq = 0
        #: total packets dropped for lack of descriptors
        self.drops = 0
        #: high-water mark of occupancy
        self.max_occupancy = 0

    @property
    def occupancy(self) -> int:
        return self.tail_seq - self.head_seq

    @property
    def free(self) -> int:
        return self.capacity - self.occupancy

    @property
    def accepted_total(self) -> int:
        """All packets that ever entered the ring."""
        return self.tail_seq

    def offer(self, n: int) -> int:
        """Offer ``n`` arriving packets; returns how many were accepted.

        The first ``accepted`` packets (FIFO) enter the ring; the rest
        are tail-dropped.
        """
        if n < 0:
            raise ValueError("negative packet count")
        accepted = min(n, self.free)
        self.tail_seq += accepted
        self.drops += n - accepted
        if self.occupancy > self.max_occupancy:
            self.max_occupancy = self.occupancy
        return accepted

    def pop(self, n: int) -> int:
        """Retrieve up to ``n`` packets; returns how many were popped."""
        if n < 0:
            raise ValueError("negative burst")
        got = min(n, self.occupancy)
        self.head_seq += got
        return got
