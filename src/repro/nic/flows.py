"""Synthetic flow populations.

A :class:`FlowSet` deterministically maps a packet's sequence number to
one of N flows, so tagged packets get stable, reproducible headers
without storing per-packet state.  The mapping uses a multiplicative
hash: successive packets spread across flows the way an IXIA/MoonGen
profile with randomized tuples would.
"""

from __future__ import annotations

from typing import List

from repro.nic.packet import PacketHeader, ipv4

_GOLDEN = 0x9E3779B97F4A7C15
_MASK64 = (1 << 64) - 1


def _mix(x: int) -> int:
    """SplitMix64 finalizer: a cheap, well-distributed 64-bit mixer."""
    x = (x + _GOLDEN) & _MASK64
    x = ((x ^ (x >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    x = ((x ^ (x >> 27)) * 0x94D049BB133111EB) & _MASK64
    return x ^ (x >> 31)


class FlowSet:
    """A population of ``num_flows`` UDP flows with synthesized 5-tuples.

    Destination addresses are drawn from ``num_prefixes`` /24 subnets so
    l3fwd's LPM table has realistic route diversity.
    """

    def __init__(
        self,
        num_flows: int = 1024,
        num_prefixes: int = 64,
        pkt_len: int = 64,
        seed: int = 1,
    ):
        if num_flows <= 0:
            raise ValueError("num_flows must be positive")
        self.num_flows = num_flows
        self.num_prefixes = max(1, num_prefixes)
        self.pkt_len = pkt_len
        self.seed = seed
        self._headers: List[PacketHeader] = [
            self._make_header(i) for i in range(num_flows)
        ]

    def _make_header(self, flow_id: int) -> PacketHeader:
        h = _mix(flow_id * 2654435761 + self.seed)
        prefix = flow_id % self.num_prefixes
        # sources in 10/8; each destination /24 is a function of the
        # prefix index alone, so the population spans exactly
        # num_prefixes routable subnets
        src = ipv4(10, (h >> 8) & 255, (h >> 16) & 255, (h >> 24) & 255)
        dst = ipv4(192, prefix & 255, (prefix * 37) & 255, (h >> 40) & 255)
        sport = 1024 + ((h >> 48) & 0x3FFF)
        dport = 1024 + ((h >> 52) & 0x3FFF)
        return PacketHeader(src, dst, sport, dport, proto=17, length=self.pkt_len)

    def flow_of(self, seq: int) -> int:
        """Deterministic flow id for a packet sequence number."""
        return _mix(seq ^ (self.seed << 32)) % self.num_flows

    def header_for(self, seq: int) -> PacketHeader:
        """Header carried by packet ``seq``."""
        return self._headers[self.flow_of(seq)]

    def header_of_flow(self, flow_id: int) -> PacketHeader:
        """Header of a specific flow (for table setup and assertions)."""
        return self._headers[flow_id]

    def all_destinations(self) -> List[int]:
        """Distinct destination /24 network addresses across the set."""
        nets = {h.dst_ip & 0xFFFFFF00 for h in self._headers}
        return sorted(nets)
