"""Traffic generators (the MoonGen stand-in).

Arrival processes are *monotonic lazy counters*: the Rx queue calls
``advance(t1)`` whenever it touches the ring, receiving the number of
packets that arrived since the previous touch, in O(1) — this is what
makes 14.88 Mpps simulable (DESIGN.md §4, "lazy arrival counting").

``next_arrival_after(t)`` supports the empty-poll fast-forward and the
XDP interrupt model, which need to know when the wire next becomes
non-idle.

Implementations:

* :class:`CbrProcess` — constant bit rate, exact integer arithmetic
  (the paper's throughput/latency tests);
* :class:`PoissonProcess` — memoryless arrivals for model validation;
* :class:`RampProfile` — piecewise-CBR, e.g. the 60 s up/down ramp of
  §5.3's rate-control-methods.lua experiment, or a step burst for the
  XDP reactivity test.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.sim.units import SEC


def gbps_to_pps(gbps: float, frame_len: int = 64) -> int:
    """Packets/s on an Ethernet wire at ``gbps`` with ``frame_len`` frames.

    Accounts for the 20B per-frame overhead (preamble + IPG), so
    ``gbps_to_pps(10, 64)`` = 14,880,952 — the paper's line rate.
    """
    return int(gbps * 1e9 / ((frame_len + 20) * 8))


def mpps(million: float) -> int:
    """Convenience: mega-packets-per-second to pps."""
    return int(million * 1e6)


#: the link speeds production NICs actually ship (ROADMAP item 2)
STANDARD_LINK_RATES_GBPS = (10, 25, 40, 100)


def serialization_ns(frame_len: int, gbps: float) -> float:
    """Wire serialization time of one frame, in nanoseconds.

    The :func:`gbps_to_pps` companion: counts the same 20B preamble+IPG
    overhead, so ``SEC / serialization_ns`` equals the pps of a
    saturated wire.  ``serialization_ns(1518, 10)`` ≈ 1230.4 ns — the
    ~1.23 µs/frame figure of the 10G link-rate table — and 100G cuts it
    to ~123 ns.
    """
    if frame_len <= 0:
        raise ValueError("frame_len must be positive")
    if gbps <= 0:
        raise ValueError("gbps must be positive")
    return (frame_len + 20) * 8 / gbps


def link_rate_table(frame_len: int = 64) -> List[Tuple[float, int, float]]:
    """``(gbps, line-rate pps, serialization ns)`` for the standard rates."""
    return [
        (float(gbps), gbps_to_pps(gbps, frame_len),
         serialization_ns(frame_len, gbps))
        for gbps in STANDARD_LINK_RATES_GBPS
    ]


class ArrivalProcess:
    """Interface: a monotonic counting process of packet arrivals."""

    #: total arrivals delivered through advance() so far
    total = 0
    #: the time up to which arrivals have been counted
    last_t = 0

    def advance(self, t1: int) -> int:
        """Arrivals in ``(last_t, t1]``.  ``t1`` must be >= ``last_t``."""
        raise NotImplementedError

    def next_arrival_after(self, t: int) -> Optional[int]:
        """Earliest arrival strictly after ``t`` (>= ``last_t``), if any."""
        raise NotImplementedError

    def rate_at(self, t: int) -> float:
        """Nominal rate (pps) at time ``t`` (reporting only)."""
        raise NotImplementedError

    def time_for_count(self, t: int, k: int) -> Optional[int]:
        """Approximate time ≥ t by which ~k more arrivals will exist.

        Used only for *pacing* (the poll-mode driver's event batching),
        never for statistics, so the generic rate-based estimate is
        acceptable; subclasses may provide exact versions.
        """
        if k <= 0:
            return t
        rate = self.rate_at(t)
        if rate <= 0:
            return self.next_arrival_after(t)
        return t + int(k * SEC / rate) + 1

    def flow_of(self, seq: int) -> Optional[int]:
        """Flow id of arrival ``seq``, when the source dictates one.

        ``None`` (the default) lets the Rx queue fall back to its
        :class:`~repro.nic.flows.FlowSet` hash; trace replay overrides
        this so tagged packets carry the trace's own flow keys.
        """
        return None


class CbrProcess(ArrivalProcess):
    """Constant-rate arrivals: packet k arrives at ``start + ceil(k/rate)``."""

    def __init__(self, rate_pps: int, start: int = 0, end: Optional[int] = None):
        if rate_pps < 0:
            raise ValueError("negative rate")
        self.rate_pps = rate_pps
        self.start = start
        self.end = end
        self.last_t = start
        self.total = 0

    def _count_at(self, t: int) -> int:
        if self.rate_pps == 0 or t <= self.start:
            return 0
        if self.end is not None:
            t = min(t, self.end)
        return (t - self.start) * self.rate_pps // SEC

    def advance(self, t1: int) -> int:
        if t1 < self.last_t:
            raise ValueError(f"advance moving backwards: {t1} < {self.last_t}")
        n = self._count_at(t1) - self.total
        self.total += n
        self.last_t = t1
        return n

    def next_arrival_after(self, t: int) -> Optional[int]:
        if self.rate_pps == 0:
            return None
        k = self._count_at(t) + 1
        when = self.start + (k * SEC + self.rate_pps - 1) // self.rate_pps
        if self.end is not None and when > self.end:
            return None
        return when

    def rate_at(self, t: int) -> float:
        if t < self.start or (self.end is not None and t > self.end):
            return 0.0
        return float(self.rate_pps)

    def time_for_count(self, t: int, k: int) -> Optional[int]:
        """Exact: time at which the (count_at(t)+k)-th arrival lands."""
        if k <= 0:
            return t
        if self.rate_pps == 0:
            return None
        target = self._count_at(t) + k
        when = self.start + (target * SEC + self.rate_pps - 1) // self.rate_pps
        if self.end is not None and when > self.end:
            return None
        return when


class PoissonProcess(ArrivalProcess):
    """Memoryless arrivals at mean rate ``rate_pps``.

    ``next_arrival_after`` samples and *commits* the next arrival time so
    that a later ``advance`` past it stays consistent with what the
    caller was told.
    """

    def __init__(self, rate_pps: int, rng: np.random.Generator, start: int = 0):
        if rate_pps < 0:
            raise ValueError("negative rate")
        self.rate_pps = rate_pps
        self._rng = rng
        self.last_t = start
        self.total = 0
        self._committed_next: Optional[int] = None

    def _poisson(self, dt: int) -> int:
        if dt <= 0 or self.rate_pps == 0:
            return 0
        return int(self._rng.poisson(dt * self.rate_pps / SEC))

    def advance(self, t1: int) -> int:
        if t1 < self.last_t:
            raise ValueError(f"advance moving backwards: {t1} < {self.last_t}")
        n = 0
        if self._committed_next is not None and self._committed_next <= t1:
            n = 1 + self._poisson(t1 - self._committed_next)
            self._committed_next = None
        elif self._committed_next is None:
            n = self._poisson(t1 - self.last_t)
        # else: committed arrival still in the future — nothing yet
        self.total += n
        self.last_t = t1
        return n

    def next_arrival_after(self, t: int) -> Optional[int]:
        if self.rate_pps == 0:
            return None
        if self._committed_next is not None and self._committed_next > t:
            return self._committed_next
        gap = self._rng.exponential(SEC / self.rate_pps)
        self._committed_next = t + max(1, int(gap))
        return self._committed_next

    def rate_at(self, t: int) -> float:
        return float(self.rate_pps)


class RampProfile(ArrivalProcess):
    """Piecewise-constant rate: ``segments = [(start_ns, rate_pps), ...]``.

    Exact integer fluid accumulator: the fractional packet position is
    carried in units of pps·ns so segment boundaries never drop or
    duplicate arrivals.
    """

    def __init__(self, segments: Sequence[Tuple[int, int]]):
        if not segments:
            raise ValueError("empty profile")
        starts = [s for s, _r in segments]
        if starts != sorted(starts) or len(set(starts)) != len(starts):
            raise ValueError("segment starts must be strictly increasing")
        self.segments: List[Tuple[int, int]] = list(segments)
        self.last_t = segments[0][0]
        self.total = 0
        self._acc = 0  # pps·ns accumulated

    # -- helpers --------------------------------------------------------- #

    def _segment_rate(self, t: int) -> int:
        rate = 0
        for start, seg_rate in self.segments:
            if t >= start:
                rate = seg_rate
            else:
                break
        return rate

    def _iter_pieces(self, t0: int, t1: int):
        """Yield (piece_start, piece_end, rate) covering (t0, t1]."""
        boundaries = [s for s, _ in self.segments if t0 < s < t1]
        edges = [t0] + boundaries + [t1]
        for a, b in zip(edges, edges[1:]):
            yield a, b, self._segment_rate(a)

    # -- ArrivalProcess -------------------------------------------------- #

    def advance(self, t1: int) -> int:
        if t1 < self.last_t:
            raise ValueError(f"advance moving backwards: {t1} < {self.last_t}")
        for a, b, rate in self._iter_pieces(self.last_t, t1):
            self._acc += (b - a) * rate
        new_total = self._acc // SEC
        n = new_total - self.total
        self.total = new_total
        self.last_t = t1
        return n

    def next_arrival_after(self, t: int) -> Optional[int]:
        if t < self.last_t:
            raise ValueError("next_arrival_after before sync point")
        # accumulate virtually from last_t to t, then walk forward
        acc = self._acc
        for a, b, rate in self._iter_pieces(self.last_t, t):
            acc += (b - a) * rate
        needed = (self.total_at_acc(acc) + 1) * SEC
        cursor = t
        # walk segments until the accumulator can reach `needed`
        remaining_starts = [s for s, _ in self.segments if s > cursor]
        while True:
            rate = self._segment_rate(cursor)
            seg_end = remaining_starts[0] if remaining_starts else None
            if rate > 0:
                dt = (needed - acc + rate - 1) // rate
                when = cursor + dt
                if seg_end is None or when <= seg_end:
                    return when
                acc += (seg_end - cursor) * rate
            elif seg_end is None:
                return None
            if seg_end is None:
                return None
            cursor = seg_end
            remaining_starts.pop(0)

    @staticmethod
    def total_at_acc(acc: int) -> int:
        return acc // SEC

    def rate_at(self, t: int) -> float:
        return float(self._segment_rate(t))


class OnOffProcess(ArrivalProcess):
    """Bursty traffic: exponential ON/OFF phases, CBR while ON.

    The classic interrupted-Poisson-style burst model: ON periods of
    mean ``mean_on_ns`` at ``burst_rate_pps``, silent OFF periods of
    mean ``mean_off_ns``.  Used by the burst-reactivity extension
    (Metronome vs XDP on cold bursts) and for stressing the adaptive
    controller with load swings faster than the paper's 2 s ramp steps.
    """

    def __init__(
        self,
        burst_rate_pps: int,
        mean_on_ns: int,
        mean_off_ns: int,
        rng: "random.Random",
        start: int = 0,
        start_on: bool = False,
    ):
        if burst_rate_pps < 0:
            raise ValueError("negative rate")
        if mean_on_ns <= 0 or mean_off_ns <= 0:
            raise ValueError("phase means must be positive")
        self.burst_rate_pps = burst_rate_pps
        self.mean_on_ns = mean_on_ns
        self.mean_off_ns = mean_off_ns
        self._rng = rng
        self.last_t = start
        self.total = 0
        self._acc = 0
        # committed phase timeline: list of (start, rate); extended lazily
        self._segments: List[Tuple[int, int]] = [
            (start, burst_rate_pps if start_on else 0)
        ]
        self._horizon = start  # time at which the next phase begins

    def mean_rate_pps(self) -> float:
        """Long-run average rate (duty cycle × burst rate)."""
        duty = self.mean_on_ns / (self.mean_on_ns + self.mean_off_ns)
        return self.burst_rate_pps * duty

    def _extend_to(self, t: int) -> None:
        """Commit phase boundaries until the timeline covers ``t``."""
        while self._horizon <= t:
            _last_start, last_rate = self._segments[-1]
            if last_rate:
                gap = self._rng.expovariate(1.0 / self.mean_on_ns)
                next_rate = 0
            else:
                gap = self._rng.expovariate(1.0 / self.mean_off_ns)
                next_rate = self.burst_rate_pps
            self._horizon = max(self._horizon + max(1, int(gap)),
                                self._segments[-1][0] + 1)
            self._segments.append((self._horizon, next_rate))

    def _rate_at(self, t: int) -> int:
        rate = 0
        for seg_start, seg_rate in self._segments:
            if t >= seg_start:
                rate = seg_rate
            else:
                break
        return rate

    def advance(self, t1: int) -> int:
        if t1 < self.last_t:
            raise ValueError(f"advance moving backwards: {t1} < {self.last_t}")
        self._extend_to(t1)
        boundaries = [s for s, _r in self._segments
                      if self.last_t < s < t1]
        edges = [self.last_t] + boundaries + [t1]
        for a, b in zip(edges, edges[1:]):
            self._acc += (b - a) * self._rate_at(a)
        new_total = self._acc // SEC
        n = new_total - self.total
        self.total = new_total
        self.last_t = t1
        # trim consumed segments (keep the one covering last_t)
        while len(self._segments) > 1 and self._segments[1][0] <= self.last_t:
            self._segments.pop(0)
        return n

    def _next_boundary(self, cursor: int) -> int:
        """First committed phase boundary strictly after ``cursor``."""
        while True:
            for seg_start, _rate in self._segments:
                if seg_start > cursor:
                    return seg_start
            self._extend_to(self._horizon + 1)

    def next_arrival_after(self, t: int) -> Optional[int]:
        if t < self.last_t:
            raise ValueError("next_arrival_after before sync point")
        self._extend_to(t)
        # virtual accumulator value at time t
        acc = self._acc
        cursor = self.last_t
        while cursor < t:
            end = min(t, self._next_boundary(cursor))
            acc += (end - cursor) * self._rate_at(cursor)
            cursor = end
        needed = (acc // SEC + 1) * SEC
        # walk forward until the accumulator reaches the next packet
        for _ in range(100_000):  # guard against pathological parameters
            rate = self._rate_at(cursor)
            boundary = self._next_boundary(cursor)
            if rate > 0:
                dt = (needed - acc + rate - 1) // rate
                if cursor + dt <= boundary:
                    return cursor + dt
                acc += (boundary - cursor) * rate
            cursor = boundary
        raise RuntimeError("no arrival found within the search horizon")

    def rate_at(self, t: int) -> float:
        self._extend_to(t)
        return float(self._rate_at(t))


class FaultableProcess(ArrivalProcess):
    """A transparent wrapper that lets fault injectors perturb the wire.

    Two perturbations, both controlled by explicit edge calls (the
    injectors own the randomness; this class is deterministic):

    * **microburst overlay** — ``set_burst(rate_pps)`` superimposes a
      CBR stream on top of the inner process (0 switches it off);
    * **pause episode** — ``set_paused(True)`` models NIC flow-control /
      PCIe back-pressure: arrivals counted while paused are *held* and
      delivered in one slug when the pause lifts, which is exactly the
      post-pause burst real pause frames produce.

    ``checkpoint(now)`` must be called at every rate edge so the overlay
    accumulator integrates each segment at the rate actually in force.
    With no edges ever applied the wrapper is an identity: every count
    delegates to the inner process.
    """

    def __init__(self, inner: ArrivalProcess):
        self.inner = inner
        self.last_t = inner.last_t
        self.total = 0
        self._paused = False
        self._held = 0
        self._burst_rate = 0
        self._overlay_t = inner.last_t
        self._overlay_acc = 0      # pps·ns fractional accumulator
        self._overlay_total = 0
        #: episode statistics for chaos reports
        self.burst_packets = 0
        self.held_peak = 0

    # -- injector edge calls -------------------------------------------- #

    def checkpoint(self, now: int) -> None:
        """Integrate the overlay up to ``now`` at the current rate."""
        if now > self._overlay_t:
            self._overlay_acc += (now - self._overlay_t) * self._burst_rate
            self._overlay_t = now

    def set_burst(self, rate_pps: int) -> None:
        if rate_pps < 0:
            raise ValueError("negative burst rate")
        self._burst_rate = rate_pps

    def set_paused(self, paused: bool) -> None:
        self._paused = paused

    @property
    def paused(self) -> bool:
        return self._paused

    # -- ArrivalProcess -------------------------------------------------- #

    def advance(self, t1: int) -> int:
        if t1 < self.last_t:
            raise ValueError(f"advance moving backwards: {t1} < {self.last_t}")
        n = self.inner.advance(t1)
        self.checkpoint(t1)
        overlay_now = self._overlay_acc // SEC
        extra = overlay_now - self._overlay_total
        self._overlay_total = overlay_now
        self.burst_packets += extra
        n += extra
        if self._paused:
            self._held += n
            self.held_peak = max(self.held_peak, self._held)
            n = 0
        else:
            n += self._held
            self._held = 0
        self.total += n
        self.last_t = t1
        return n

    def next_arrival_after(self, t: int) -> Optional[int]:
        """Delegates to the inner process (overlay/pause ignored): the
        polling-driver fast-forward only needs a lower bound, and a
        pause can only move the first visible arrival later."""
        return self.inner.next_arrival_after(t)

    def rate_at(self, t: int) -> float:
        if self._paused:
            return 0.0
        return self.inner.rate_at(t) + float(self._burst_rate)

    def flow_of(self, seq: int) -> Optional[int]:
        """Delegates to the inner process.

        Overlay packets share the inner sequence space, so under an
        active burst the per-packet attribution is approximate — which
        matches reality: injected attack packets carry whatever flow
        keys the generator forged.
        """
        return self.inner.flow_of(seq)

    def snapshot_state(self) -> dict:
        """Wrapper counters + the inner process's own state (if any).

        Only defined state is captured: inner processes without a
        ``snapshot_state`` contribute their ``(total, last_t)`` sync
        point, which the queue already pins.
        """
        inner_extra = getattr(self.inner, "snapshot_state", None)
        return {
            "kind": "faultable",
            "total": self.total,
            "last_t": self.last_t,
            "paused": self._paused,
            "held": self._held,
            "burst_rate": self._burst_rate,
            "overlay_t": self._overlay_t,
            "overlay_acc": self._overlay_acc,
            "overlay_total": self._overlay_total,
            "burst_packets": self.burst_packets,
            "held_peak": self.held_peak,
            "inner": inner_extra() if inner_extra is not None else None,
        }


def triangle_ramp(
    duration_ns: int,
    peak_pps: int,
    steps: int = 15,
    floor_pps: int = 0,
) -> RampProfile:
    """The §5.3 MoonGen experiment: rate climbs in equal steps to the
    peak at mid-run, then descends symmetrically."""
    if steps < 1:
        raise ValueError("steps must be >= 1")
    half = duration_ns // 2
    step_ns = max(1, half // steps)
    segments: List[Tuple[int, int]] = []
    for i in range(steps):
        rate = floor_pps + (peak_pps - floor_pps) * (i + 1) // steps
        segments.append((i * step_ns, rate))
    for i in range(steps):
        rate = floor_pps + (peak_pps - floor_pps) * (steps - 1 - i) // steps
        segments.append((half + i * step_ns, rate))
    return RampProfile(segments)
