"""IPv4 header construction, checksumming, and router rewrite.

The l3fwd datapath does real forwarding work on sampled packets: it
builds the 20-byte IPv4 header, verifies the checksum, decrements the
TTL and patches the checksum *incrementally* per RFC 1624 — the same
arithmetic a production router (or DPDK's l3fwd) performs.
"""

from __future__ import annotations

import struct
from typing import Tuple

from repro.nic.packet import PacketHeader

HEADER_LEN = 20
_HDR = struct.Struct("!BBHHHBBH4s4s")


def ones_complement_sum(data: bytes) -> int:
    """RFC 1071 16-bit ones'-complement sum (without final inversion)."""
    if len(data) % 2:
        data += b"\x00"
    total = 0
    for i in range(0, len(data), 2):
        total += (data[i] << 8) | data[i + 1]
        total = (total & 0xFFFF) + (total >> 16)
    return total


def checksum(header: bytes) -> int:
    """The IPv4 header checksum of ``header`` (checksum field zeroed or
    included — including it over a valid header yields 0xFFFF)."""
    return (~ones_complement_sum(header)) & 0xFFFF


def build_header(pkt: PacketHeader, ttl: int = 64, ident: int = 0) -> bytes:
    """A valid 20-byte IPv4 header for a synthesized packet."""
    if not 0 <= ttl <= 255:
        raise ValueError(f"bad TTL {ttl}")
    total_len = max(HEADER_LEN, pkt.length)
    base = _HDR.pack(
        0x45,             # version 4, IHL 5
        0,                # DSCP/ECN
        total_len,
        ident,
        0,                # flags/fragment
        ttl,
        pkt.proto,
        0,                # checksum placeholder
        pkt.src_ip.to_bytes(4, "big"),
        pkt.dst_ip.to_bytes(4, "big"),
    )
    csum = checksum(base)
    return base[:10] + csum.to_bytes(2, "big") + base[12:]


def verify(header: bytes) -> bool:
    """True iff the header checksum validates (RFC 1071: sum == 0xFFFF)."""
    if len(header) != HEADER_LEN:
        return False
    return ones_complement_sum(header) == 0xFFFF


def forward_rewrite(header: bytes) -> Tuple[bytes, bool]:
    """Router forwarding rewrite: TTL−1 with RFC 1624 incremental
    checksum update.

    Returns ``(new_header, alive)``; ``alive`` is False when the TTL
    expired (the packet must be dropped / ICMP'd, not forwarded).
    """
    if len(header) != HEADER_LEN:
        raise ValueError("not an IPv4 base header")
    ttl = header[8]
    if ttl <= 1:
        return header, False
    # RFC 1624: HC' = ~(~HC + ~m + m') over the changed 16-bit word.
    old_word = (header[8] << 8) | header[9]
    new_word = ((ttl - 1) << 8) | header[9]
    old_csum = (header[10] << 8) | header[11]
    acc = (~old_csum & 0xFFFF) + (~old_word & 0xFFFF) + new_word
    acc = (acc & 0xFFFF) + (acc >> 16)
    acc = (acc & 0xFFFF) + (acc >> 16)
    new_csum = ~acc & 0xFFFF
    out = (header[:8] + bytes([ttl - 1]) + header[9:10]
           + new_csum.to_bytes(2, "big") + header[12:])
    return out, True
