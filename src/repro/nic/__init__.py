"""The NIC model: packets, descriptor rings, Rx/Tx queues, traffic sources.

Performance architecture (DESIGN.md §4): packets are *counted*, not
individually materialized.  Arrival processes expose lazy interval
counting, the descriptor ring tracks occupancy and sequence numbers, and
only every Kth packet — exactly like MoonGen's sampled timestamping —
carries a :class:`~repro.nic.packet.TaggedPacket` with an arrival
timestamp and a synthesized header that the applications do real work on
(LPM lookup, AES encryption, flow accounting).
"""

from repro.nic.device import NicPort
from repro.nic.flows import FlowSet
from repro.nic.packet import PacketHeader, TaggedPacket, format_ipv4, ipv4
from repro.nic.ring import DescriptorRing
from repro.nic.rss import RssSteering, toeplitz_hash
from repro.nic.rxqueue import RxQueue
from repro.nic.traffic import (
    ArrivalProcess,
    CbrProcess,
    OnOffProcess,
    PoissonProcess,
    RampProfile,
    gbps_to_pps,
    triangle_ramp,
)
from repro.nic.txqueue import TxBuffer

__all__ = [
    "NicPort",
    "FlowSet",
    "PacketHeader",
    "TaggedPacket",
    "ipv4",
    "format_ipv4",
    "DescriptorRing",
    "RxQueue",
    "TxBuffer",
    "RssSteering",
    "toeplitz_hash",
    "ArrivalProcess",
    "CbrProcess",
    "PoissonProcess",
    "RampProfile",
    "OnOffProcess",
    "triangle_ramp",
    "gbps_to_pps",
]
