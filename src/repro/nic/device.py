"""The NIC port: a set of Rx queues (RSS) plus interrupt support.

Poll-mode users (DPDK, Metronome) simply call ``rx_burst`` on queues.
The XDP baseline additionally uses :meth:`NicPort.irq_arm`: when
interrupts are enabled for a queue, the NIC raises the line as soon as
the next packet hits the wire (interrupt-mitigation pacing is layered on
top by :mod:`repro.xdp.driver`).
"""

from __future__ import annotations

from typing import Callable, List, Optional

from repro import config
from repro.nic.flows import FlowSet
from repro.nic.packet import PacketHeader
from repro.nic.rss import RssSteering
from repro.nic.rxqueue import RxQueue
from repro.nic.traffic import ArrivalProcess
from repro.sim.core import Handle, Simulator


class NicPort:
    """One physical port with ``len(processes)`` RSS receive queues."""

    def __init__(
        self,
        sim: Simulator,
        processes: List[ArrivalProcess],
        flows: Optional[FlowSet] = None,
        ring_size: int = config.DEFAULT_RX_RING,
        sample_every: int = config.LATENCY_SAMPLE_EVERY,
        node: int = 0,
        rss: Optional["RssSteering"] = None,
        queue_nodes: Optional[List[int]] = None,
        first_queue_index: int = 0,
    ):
        if not processes:
            raise ValueError("a port needs at least one queue")
        if queue_nodes is not None and len(queue_nodes) != len(processes):
            raise ValueError(
                f"queue_nodes has {len(queue_nodes)} entries for "
                f"{len(processes)} queues"
            )
        self.sim = sim
        self.flows = flows or FlowSet()
        #: NUMA node the port's PCIe lanes (and default ring memory)
        #: attach to; per-queue placement may override via queue_nodes
        self.node = node
        #: optional RSS indirection (``repro.nic.rss``); queue_for()
        #: resolves a header to one of this port's queues through it
        self.rss = rss
        #: global index of this port's first queue (a multi-port
        #: NicDevice numbers queues contiguously across ports)
        self.first_queue_index = first_queue_index
        self.queues: List[RxQueue] = [
            RxQueue(
                sim,
                proc,
                flows=self.flows,
                ring_size=ring_size,
                sample_every=sample_every,
                index=first_queue_index + i,
                node=node if queue_nodes is None else queue_nodes[i],
            )
            for i, proc in enumerate(processes)
        ]
        #: queue_index -> (due time, arm order, callback) for armed IRQs
        self._irq_pending: dict = {}
        self._irq_arm_seq = 0
        #: the single scheduled drain event covering all armed queues
        self._irq_batch: Optional[Handle] = None
        self._irq_batch_when = 0
        ports = getattr(sim, "nic_ports", None)
        if ports is not None:
            ports.append(self)

    # ------------------------------------------------------------------ #

    def queue_for(self, header: PacketHeader) -> RxQueue:
        """The queue this port's RSS engine steers ``header`` to.

        Requires an :class:`~repro.nic.rss.RssSteering` instance — ports
        built without one model the legacy "independent process per
        queue" approximation and have no steering function.
        """
        if self.rss is None:
            raise ValueError("port has no RSS steering configured")
        return self.queues[self.rss.queue_for(header)]

    # ------------------------------------------------------------------ #

    def irq_arm(self, queue_index: int, callback: Callable[[], None]) -> bool:
        """Enable the Rx interrupt for a queue.

        Fires ``callback`` at the next packet arrival (one-shot, like an
        MSI-X Rx interrupt with auto-mask).  Returns False if the traffic
        source is finished and no interrupt will ever fire.

        All queues of the port share one scheduled drain event at the
        earliest pending due time (re-armed only when a new arm moves
        that minimum earlier), so N concurrently-armed queues cost one
        calendar insertion instead of N.
        """
        pending = self._irq_pending
        pending.pop(queue_index, None)
        queue = self.queues[queue_index]
        queue.sync()
        when = queue.next_arrival_after(self.sim.now)
        if when is None:
            if not pending and self._irq_batch is not None:
                self._irq_batch.cancel()
                self._irq_batch = None
            return False
        self._irq_arm_seq += 1
        pending[queue_index] = (when, self._irq_arm_seq, callback)
        if self._irq_batch is None or when < self._irq_batch_when:
            if self._irq_batch is not None:
                self._irq_batch.cancel()
            self._irq_batch_when = when
            self._irq_batch = self.sim.call_at(when, self._drain_irqs)
        return True

    def irq_disarm(self, queue_index: int) -> None:
        self._irq_pending.pop(queue_index, None)
        if not self._irq_pending and self._irq_batch is not None:
            # a stale later-due drain for the remaining queues is left in
            # place only while some queue is armed; empty means cancel
            self._irq_batch.cancel()
            self._irq_batch = None

    def _drain_irqs(self) -> None:
        now = self.sim.now
        self._irq_batch = None
        pending = self._irq_pending
        due = sorted(
            (seq, qi, cb)
            for qi, (when, seq, cb) in pending.items()
            if when <= now
        )
        for _, qi, _ in due:
            del pending[qi]
        if pending:
            nxt = min(entry[0] for entry in pending.values())
            self._irq_batch_when = nxt
            self._irq_batch = self.sim.call_at(nxt, self._drain_irqs)
        # deliver in arm order (the order the per-queue events fired in
        # before batching); callbacks may re-arm, which is safe because
        # the drain state above is already settled
        for _, _, cb in due:
            cb()

    # ------------------------------------------------------------------ #

    def snapshot_state(self) -> dict:
        """Checkpoint fingerprint of the IRQ machinery (pure read)."""
        return {
            "irq_pending": sorted(
                [qi, when, seq]
                for qi, (when, seq, _cb) in self._irq_pending.items()
            ),
            "irq_arm_seq": self._irq_arm_seq,
            "irq_batch_when": (
                self._irq_batch_when if self._irq_batch is not None else None
            ),
        }

    def total_drops(self) -> int:
        return sum(q.drops for q in self.queues)

    def total_arrived(self) -> int:
        """Offered load so far (materializes pending arrivals first)."""
        for q in self.queues:
            q.sync()
        return sum(q.arrived_total for q in self.queues)

    def loss_fraction(self) -> float:
        arrived = self.total_arrived()
        if arrived == 0:
            return 0.0
        return self.total_drops() / arrived
