"""The NIC port: a set of Rx queues (RSS) plus interrupt support.

Poll-mode users (DPDK, Metronome) simply call ``rx_burst`` on queues.
The XDP baseline additionally uses :meth:`NicPort.irq_arm`: when
interrupts are enabled for a queue, the NIC raises the line as soon as
the next packet hits the wire (interrupt-mitigation pacing is layered on
top by :mod:`repro.xdp.driver`).
"""

from __future__ import annotations

from typing import Callable, List, Optional

from repro import config
from repro.nic.flows import FlowSet
from repro.nic.rxqueue import RxQueue
from repro.nic.traffic import ArrivalProcess
from repro.sim.core import Handle, Simulator


class NicPort:
    """One physical port with ``len(processes)`` RSS receive queues."""

    def __init__(
        self,
        sim: Simulator,
        processes: List[ArrivalProcess],
        flows: Optional[FlowSet] = None,
        ring_size: int = config.DEFAULT_RX_RING,
        sample_every: int = config.LATENCY_SAMPLE_EVERY,
    ):
        if not processes:
            raise ValueError("a port needs at least one queue")
        self.sim = sim
        self.flows = flows or FlowSet()
        self.queues: List[RxQueue] = [
            RxQueue(
                sim,
                proc,
                flows=self.flows,
                ring_size=ring_size,
                sample_every=sample_every,
                index=i,
            )
            for i, proc in enumerate(processes)
        ]
        self._irq_handles: List[Optional[Handle]] = [None] * len(self.queues)

    # ------------------------------------------------------------------ #

    def irq_arm(self, queue_index: int, callback: Callable[[], None]) -> bool:
        """Enable the Rx interrupt for a queue.

        Fires ``callback`` at the next packet arrival (one-shot, like an
        MSI-X Rx interrupt with auto-mask).  Returns False if the traffic
        source is finished and no interrupt will ever fire.
        """
        self.irq_disarm(queue_index)
        queue = self.queues[queue_index]
        queue.sync()
        when = queue.next_arrival_after(self.sim.now)
        if when is None:
            return False
        self._irq_handles[queue_index] = self.sim.call_at(
            when, self._fire_irq, queue_index, callback
        )
        return True

    def irq_disarm(self, queue_index: int) -> None:
        handle = self._irq_handles[queue_index]
        if handle is not None:
            handle.cancel()
            self._irq_handles[queue_index] = None

    def _fire_irq(self, queue_index: int, callback: Callable[[], None]) -> None:
        self._irq_handles[queue_index] = None
        callback()

    # ------------------------------------------------------------------ #

    def total_drops(self) -> int:
        return sum(q.drops for q in self.queues)

    def total_arrived(self) -> int:
        """Offered load so far (materializes pending arrivals first)."""
        for q in self.queues:
            q.sync()
        return sum(q.arrived_total for q in self.queues)

    def loss_fraction(self) -> float:
        arrived = self.total_arrived()
        if arrived == 0:
            return 0.0
        return self.total_drops() / arrived
