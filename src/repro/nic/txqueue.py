"""The transmit buffer with DPDK-style batching.

DPDK applications enqueue outgoing packets into a software buffer that
is flushed to the Tx ring only when a batch threshold is reached
(``rte_eth_tx_buffer``).  Paper §5.4 observes that with Metronome's
vacations a sub-threshold residue can sit in the buffer across a sleep,
inflating low-rate latency variance — and that setting the threshold to
1 removes the effect for a 2-3% CPU cost.  This model reproduces that:
tagged packets receive their ``tx_ns`` stamp at *flush* time, not at
enqueue time.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from repro import config
from repro.nic.packet import TaggedPacket
from repro.sim.core import Simulator


class TxBuffer:
    """Software Tx batching buffer for one port."""

    def __init__(
        self,
        sim: Simulator,
        batch_threshold: int = config.DEFAULT_TX_BATCH,
        on_tx: Optional[Callable[[TaggedPacket], None]] = None,
        latency_floor_ns: int = config.HW_LATENCY_FLOOR_NS,
    ):
        if batch_threshold < 1:
            raise ValueError("batch threshold must be >= 1")
        self.sim = sim
        self.batch_threshold = batch_threshold
        self.on_tx = on_tx
        #: optional hook fired at flush with the packet count (mbuf
        #: return path, accounting, ...)
        self.on_flush = None
        #: hardware measurement-path floor added to every tx stamp
        #: (NIC pipelines + PCIe + generator timestamping; see config)
        self.latency_floor_ns = latency_floor_ns
        self._pending_count = 0
        self._pending_tagged: List[TaggedPacket] = []
        self.tx_total = 0
        self.flushes = 0

    @property
    def pending(self) -> int:
        return self._pending_count

    def enqueue(self, count: int, tagged: List[TaggedPacket]) -> bool:
        """Add ``count`` packets (with their tagged subset) to the buffer.

        Returns True if the threshold was crossed and a flush happened.
        """
        if count < 0:
            raise ValueError("negative count")
        self._pending_count += count
        if tagged:
            self._pending_tagged.extend(tagged)
        if self._pending_count >= self.batch_threshold:
            self.flush()
            return True
        return False

    def flush(self) -> int:
        """Transmit everything pending; stamps tagged packets now."""
        sent = self._pending_count
        if sent == 0:
            return 0
        now = self.sim.now + self.latency_floor_ns
        for pkt in self._pending_tagged:
            pkt.tx_ns = now
            if self.on_tx is not None:
                self.on_tx(pkt)
        self.tx_total += sent
        self.flushes += 1
        self._pending_count = 0
        self._pending_tagged = []
        if self.on_flush is not None:
            self.on_flush(sent)
        return sent
