"""Packets and headers.

Only sampled ("tagged") packets are materialized as objects; see the
package docstring.  Headers carry the fields the three applications
need: IPv4 addresses and ports for l3fwd's LPM lookup and FloWatcher's
flow key, plus a payload length for the IPsec gateway.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class PacketHeader:
    """A synthesized IPv4/UDP header (host byte order throughout)."""

    src_ip: int
    dst_ip: int
    src_port: int
    dst_port: int
    proto: int = 17  # UDP
    length: int = 64

    @property
    def flow_key(self) -> tuple:
        """The 5-tuple used by FloWatcher and RSS hashing."""
        return (self.src_ip, self.dst_ip, self.src_port, self.dst_port, self.proto)


@dataclass
class TaggedPacket:
    """A sampled packet carrying a MoonGen-style timestamp.

    ``seq`` is the global arrival sequence number on its queue (drops
    included); ``ring_seq`` its position in the ring's accepted-packet
    sequence space, which is what retrieval order follows once any
    packet has been tail-dropped.  ``arrival_ns`` is the (interpolated)
    wire arrival time.  Applications set ``tx_ns`` when the packet
    leaves through the Tx buffer, defining the measured latency.
    """

    __slots__ = ("seq", "ring_seq", "arrival_ns", "header", "retrieved_ns",
                 "tx_ns")

    def __init__(self, seq: int, arrival_ns: int, header: PacketHeader,
                 ring_seq: int = -1):
        self.seq = seq
        self.ring_seq = ring_seq if ring_seq >= 0 else seq
        self.arrival_ns = arrival_ns
        self.header = header
        #: when rx_burst popped the packet's descriptor (latency breakdown)
        self.retrieved_ns = -1
        self.tx_ns = -1

    @property
    def latency_ns(self) -> int:
        """Wire-to-wire latency; valid once transmitted."""
        if self.tx_ns < 0:
            raise ValueError(f"packet seq={self.seq} not transmitted yet")
        return self.tx_ns - self.arrival_ns

    @property
    def ring_wait_ns(self) -> int:
        """Time spent in the Rx ring before retrieval (the vacation +
        drain component of the latency)."""
        if self.retrieved_ns < 0:
            raise ValueError(f"packet seq={self.seq} not retrieved yet")
        return self.retrieved_ns - self.arrival_ns

    @property
    def egress_wait_ns(self) -> int:
        """Time from retrieval to the Tx stamp: processing, Tx batching
        park, and the hardware measurement floor."""
        if self.tx_ns < 0 or self.retrieved_ns < 0:
            raise ValueError(f"packet seq={self.seq} incomplete timeline")
        return self.tx_ns - self.retrieved_ns

    def __repr__(self) -> str:
        return f"<TaggedPacket seq={self.seq} t={self.arrival_ns}>"


def ipv4(a: int, b: int, c: int, d: int) -> int:
    """Build an IPv4 address as an int from dotted components."""
    for octet in (a, b, c, d):
        if not 0 <= octet <= 255:
            raise ValueError(f"bad octet {octet}")
    return (a << 24) | (b << 16) | (c << 8) | d


def format_ipv4(addr: int) -> str:
    """Dotted-quad string for an int IPv4 address."""
    return f"{(addr >> 24) & 255}.{(addr >> 16) & 255}.{(addr >> 8) & 255}.{addr & 255}"
