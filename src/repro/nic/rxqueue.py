"""The receive queue: arrival process + descriptor ring + tagged packets.

``sync()`` lazily materializes everything that arrived since the last
touch: it advances the arrival process, offers the new packets to the
ring (tail-dropping the overflow), and enqueues the sampled
:class:`~repro.nic.packet.TaggedPacket` objects whose position landed
inside the accepted prefix.  Tagged arrival timestamps are interpolated
linearly across the interval — for CBR that is exact; for a Poisson
process it is the conditional mean of the order statistics.

``rx_burst(n)`` implements DPDK ``rte_eth_rx_burst`` semantics: sync,
pop up to ``n`` descriptors, and hand back any tagged packets contained
in the popped range.
"""

from __future__ import annotations

from collections import deque
from typing import List, Optional, Tuple

from repro import config
from repro.nic.flows import FlowSet
from repro.nic.packet import TaggedPacket
from repro.nic.ring import DescriptorRing
from repro.nic.traffic import ArrivalProcess
from repro.sim.core import Simulator


class RxQueue:
    """One NIC receive queue."""

    def __init__(
        self,
        sim: Simulator,
        process: ArrivalProcess,
        flows: Optional[FlowSet] = None,
        ring_size: int = config.DEFAULT_RX_RING,
        sample_every: int = config.LATENCY_SAMPLE_EVERY,
        index: int = 0,
        node: int = 0,
    ):
        self.sim = sim
        self.process = process
        self.flows = flows or FlowSet()
        self.ring = DescriptorRing(ring_size)
        self.sample_every = max(1, sample_every)
        self.index = index
        #: NUMA node whose memory holds this queue's ring/mbufs; threads
        #: on another socket pay remote-access surcharges when draining
        self.node = node
        #: accepted tagged packets still inside the ring, FIFO by seq
        self._tagged: deque = deque()
        #: tagged packets that were tail-dropped (loss accounting)
        self.tagged_drops = 0
        #: arrivals offered so far (accepted + dropped)
        self.arrived_total = 0
        #: optional repro.check registry (packet conservation / ring
        #: bounds); queues self-register so every construction path —
        #: Metronome, DPDK baseline, XDP — is covered
        self.checks = getattr(sim, "monitor", None)
        if self.checks is not None:
            self.checks.register_queue(self)
        queues = getattr(sim, "rx_queues", None)
        if queues is not None:
            queues.append(self)

    # ------------------------------------------------------------------ #

    def sync(self) -> int:
        """Materialize arrivals up to now; returns newly accepted count."""
        t1 = self.sim.now
        t0 = self.process.last_t
        n = self.process.advance(t1)
        if n == 0:
            return 0
        first_seq = self.arrived_total
        self.arrived_total += n
        accepted = self.ring.offer(n)
        self._tag_interval(t0, t1, first_seq, n, accepted)
        if self.checks is not None:
            self.checks.on_ring(self)
        return accepted

    def _tag_interval(
        self, t0: int, t1: int, first_seq: int, n: int, accepted: int
    ) -> None:
        k = self.sample_every
        # first multiple of k that is >= first_seq
        seq = ((first_seq + k - 1) // k) * k
        end_seq = first_seq + n
        if seq >= end_seq:
            return
        span = t1 - t0
        # ring seq of the first packet accepted in this interval: the
        # ring counts accepted packets only, so after any tail-drop the
        # arrival and ring sequence spaces diverge permanently
        first_ring_seq = self.ring.tail_seq - accepted
        while seq < end_seq:
            offset = seq - first_seq
            if offset < accepted:
                # +1: arrivals are in (t0, t1]; position idx of n arrivals
                ts = t0 + span * (offset + 1) // n
                # trace-driven sources dictate their own flow keys
                # (RSS / FloWatcher fidelity); synthetic sources return
                # None and fall back to the FlowSet hash
                flow = self.process.flow_of(seq)
                if flow is None:
                    header = self.flows.header_for(seq)
                else:
                    header = self.flows.header_of_flow(
                        flow % self.flows.num_flows)
                self._tagged.append(
                    TaggedPacket(seq, ts, header,
                                 ring_seq=first_ring_seq + offset)
                )
            else:
                self.tagged_drops += 1
            seq += k

    # ------------------------------------------------------------------ #

    def rx_burst(self, burst: int = config.RX_BURST) -> Tuple[int, List[TaggedPacket]]:
        """DPDK rx_burst: returns (#packets, tagged packets among them)."""
        self.sync()
        got = self.ring.pop(burst)
        if got == 0:
            return 0, []
        head = self.ring.head_seq
        tagged: List[TaggedPacket] = []
        dq = self._tagged
        now = self.sim.now
        while dq and dq[0].ring_seq < head:
            pkt = dq.popleft()
            pkt.retrieved_ns = now
            tagged.append(pkt)
        return got, tagged

    def occupancy(self) -> int:
        """Ring occupancy after materializing pending arrivals."""
        self.sync()
        return self.ring.occupancy

    def head_age_ns(self) -> int:
        """Age of the oldest *sampled* packet still waiting in the ring.

        The starvation watchdog's head-of-line measure: how long the
        queue has gone unserved while holding traffic.  Resolution is
        the tagging stride (``sample_every`` packets), so at low rates
        the estimate lags true head age by up to one stride's
        inter-arrival time; 0 when no sampled packet is waiting.
        """
        self.sync()
        if not self._tagged:
            return 0
        return max(0, self.sim.now - self._tagged[0].arrival_ns)

    def snapshot_state(self) -> dict:
        """Checkpoint fingerprint of queue + ring + arrival process.

        Deliberately does **not** call :meth:`sync`: materializing the
        pending interval here would split the tag interpolation at the
        snapshot time and change downstream latency samples — the
        capture must be a pure read.  Two replays that agree on
        ``process.last_t`` and the counters below have materialized
        exactly the same arrivals.
        """
        state = {
            "index": self.index,
            "process_last_t": self.process.last_t,
            "arrived_total": self.arrived_total,
            "tagged_drops": self.tagged_drops,
            "tagged_waiting": len(self._tagged),
            "ring": {
                "head_seq": self.ring.head_seq,
                "tail_seq": self.ring.tail_seq,
                "drops": self.ring.drops,
                "occupancy": self.ring.occupancy,
            },
        }
        # processes carrying their own replay/overlay cursors contribute
        # them; only added when defined so legacy captures keep their
        # exact component layout
        extra = getattr(self.process, "snapshot_state", None)
        if extra is not None:
            state["process"] = extra()
        return state

    @property
    def drops(self) -> int:
        return self.ring.drops

    def next_arrival_after(self, t: int) -> Optional[int]:
        return self.process.next_arrival_after(t)

    def loss_fraction(self) -> float:
        """Dropped / offered, over the whole run so far."""
        if self.arrived_total == 0:
            return 0.0
        return self.ring.drops / self.arrived_total
