"""The assembled testbed node: cores + scheduler + timers + power + noise.

A :class:`Machine` corresponds to the paper's isolated NUMA node (§3.3):
a handful of Xeon Silver cores running Linux 5.4 with either the
``performance`` or ``ondemand`` governor.  It owns the simulator, the
random streams, and every kernel subsystem, and offers the high-level
operations experiments need: spawn threads, create sleep services, read
CPU/energy accounting.
"""

from __future__ import annotations

from typing import List, Optional

from repro import config
from repro.kernel.cpu import Core
from repro.kernel.cpuidle import CpuIdle
from repro.kernel.hrtimer import HrTimerQueue
from repro.kernel.noise import OsNoise
from repro.kernel.power import PowerMeter, make_governor
from repro.kernel.scheduler import CfsScheduler
from repro.kernel.sleep import HrSleep, Nanosleep, SleepService
from repro.kernel.thread import KThread
from repro.metrics.registry import MetricsRegistry
from repro.sim.core import Simulator
from repro.sim.rng import RandomStreams
from repro.trace.tracer import NULL_TRACER, Tracer


class Machine:
    """One simulated server node."""

    def __init__(self, cfg: Optional[config.SimConfig] = None):
        self.cfg = cfg or config.SimConfig()
        self.sim = Simulator()
        self.streams = RandomStreams(self.cfg.seed)
        #: unified counters/gauges/histograms for every subsystem
        self.metrics = MetricsRegistry()
        #: event tracer; the no-op singleton unless enable_tracing() ran
        self.tracer = NULL_TRACER
        #: NUMA socket count; cores split into contiguous blocks, the
        #: timer/IRQ fabric and NIC home on node 0 (docs/SCALE.md)
        self.numa_nodes = max(1, int(self.cfg.numa_nodes))
        if self.numa_nodes > self.cfg.num_cores:
            raise ValueError(
                f"numa_nodes={self.numa_nodes} exceeds "
                f"num_cores={self.cfg.num_cores}"
            )
        self.cores: List[Core] = [Core(self, i) for i in range(self.cfg.num_cores)]
        if self.cfg.smt_pairs:
            for a, b in self.cfg.smt_pairs:
                if a == b:
                    raise ValueError(f"core {a} cannot be its own sibling")
                if self.cores[a].smt_sibling or self.cores[b].smt_sibling:
                    raise ValueError("a core can appear in one SMT pair only")
                self.cores[a].smt_sibling = self.cores[b]
                self.cores[b].smt_sibling = self.cores[a]
        self.power = PowerMeter(self)
        self.cpuidle = CpuIdle(self.streams)
        self.scheduler = CfsScheduler(self)
        self.hrtimers: List[HrTimerQueue] = [
            HrTimerQueue(self, core) for core in self.cores
        ]
        self.governor = make_governor(self, self.cfg.governor)
        self.governor.start()
        self.noise: Optional[OsNoise] = None
        if self.cfg.os_noise:
            self.noise = OsNoise(self)
            self.noise.start()
        #: fault-injection engine (``repro.faults``); None means every
        #: fault hook in the kernel model is dormant — no RNG stream is
        #: touched and no simulator event is added, so runs without an
        #: engine are byte-identical to pre-faults builds
        self.faults = None
        #: invariant-monitor registry (``repro.check``); None means
        #: every check hook is dormant, same zero-perturbation contract
        #: as ``faults``/``tracer``
        self.checks = None
        self.threads: List[KThread] = []

    # ------------------------------------------------------------------ #
    # construction helpers
    # ------------------------------------------------------------------ #

    def spawn(
        self,
        body,
        name: str,
        nice: int = 0,
        core: int = 0,
    ) -> KThread:
        """Create and start a thread pinned to ``core``.

        ``body`` is either a ready generator, or a callable taking the new
        :class:`KThread` and returning the generator (handy when the body
        needs its own thread handle, e.g. to arm timers for itself).
        """
        thread = KThread(self, None, name=name, nice=nice, core_index=core)
        thread.body = body(thread) if callable(body) else body
        self.threads.append(thread)
        self.scheduler.start_thread(thread)
        return thread

    def node_of(self, core_index: int) -> int:
        """NUMA node of a core (0 on the paper's single-node testbed)."""
        return self.cores[core_index].node

    def cores_on_node(self, node: int) -> List[int]:
        """Core indexes belonging to ``node``."""
        return [c.index for c in self.cores if c.node == node]

    def wake_penalty_ns(self, core: Core) -> int:
        """Cross-socket timer-IRQ delivery penalty for ``core``.

        The timer fabric (HPET / the I/O hub forwarding the LAPIC IPI)
        homes on node 0; a sleeper on a remote socket sees its expiry
        that much later.  Exactly 0 on node-0 cores and on single-node
        machines, so default configurations are byte-identical to the
        pre-NUMA model.
        """
        if core.node == 0:
            return 0
        return self.cfg.cross_socket_wake_ns

    def sleep_service(self, name: str) -> SleepService:
        """Instantiate a sleep service (``"hr_sleep"``/``"nanosleep"``)."""
        if name == "hr_sleep":
            return HrSleep(self)
        if name == "nanosleep":
            return Nanosleep(self)
        raise ValueError(f"unknown sleep service {name!r}")

    def enable_tracing(self) -> Tracer:
        """Install a live event tracer (idempotent; returns it).

        Call before building workloads so construction-time hooks (e.g.
        the Metronome trylocks) bind to the live tracer.  Tracing adds
        no simulator events and draws no randomness, so enabling it
        never changes a run's results.
        """
        if not isinstance(self.tracer, Tracer):
            self.tracer = Tracer(self.sim)
        return self.tracer

    def enable_checks(self, monitors=None):
        """Install a :class:`repro.check.CheckRegistry` (idempotent).

        Call before building workloads so construction-time hooks (the
        Metronome trylocks, Rx queues) bind to the live registry.  Like
        tracing, the monitors add no simulator events and draw no
        randomness, so enabling them never changes a run's results.
        ``monitors`` selects a subset of :data:`repro.check.MONITORS`
        (default: all); a second call returns the existing registry
        unchanged.
        """
        from repro.check.registry import CheckRegistry

        if self.checks is None:
            self.checks = CheckRegistry(self, monitors=monitors)
            self.sim.monitor = self.checks
        return self.checks

    def install_faults(self, plan):
        """Install a :class:`repro.faults.FaultEngine` for ``plan``.

        Call before building workloads and before :meth:`run` so every
        episode in the plan can be armed.  Returns the engine (also
        available as :attr:`faults`).  Injector randomness comes from
        dedicated ``faults.*`` streams, so installing a plan never
        perturbs the draws of any other subsystem.
        """
        from repro.faults.engine import FaultEngine

        if self.faults is not None:
            raise RuntimeError("a fault plan is already installed")
        self.faults = FaultEngine(self, plan)
        self.faults.start()
        return self.faults

    # ------------------------------------------------------------------ #
    # checkpoint / restore
    # ------------------------------------------------------------------ #

    def snapshot(self, label: str = ""):
        """Checkpoint this machine's state right now.

        Returns a JSON-serializable
        :class:`~repro.sim.snapshot.MachineState`: exact RNG stream
        states plus structural fingerprints of every subsystem.  Pure
        observation — taking a snapshot never changes a run's results.
        """
        from repro.sim.snapshot import capture

        return capture(self, label=label)

    def restore(self, state, strict: bool = True):
        """Replay this (freshly built) machine to ``state`` and verify.

        The machine must be wired with the same config, seed, and
        workload recipe that produced the snapshot.  See
        :func:`repro.sim.snapshot.restore` for the contract; raises
        :class:`~repro.sim.snapshot.SnapshotMismatch` on divergence.
        """
        from repro.sim.snapshot import restore

        return restore(self, state, strict=strict)

    # ------------------------------------------------------------------ #
    # running
    # ------------------------------------------------------------------ #

    @property
    def now(self) -> int:
        return self.sim.now

    def run(self, until: Optional[int] = None) -> None:
        """Run the simulation (absolute-time bound)."""
        self.sim.run(until=until)

    def run_for(self, duration: int) -> None:
        """Run the simulation for ``duration`` more nanoseconds."""
        self.sim.run(until=self.sim.now + duration)

    def run_until_event(self, event, hard_limit: int) -> None:
        """Run until ``event`` triggers, bounded by ``hard_limit`` ns."""
        event.add_callback(lambda _ev: self.sim.stop())
        self.sim.run(until=hard_limit)

    # ------------------------------------------------------------------ #
    # metrics
    # ------------------------------------------------------------------ #

    def total_cpu_busy_ns(self) -> int:
        """Busy time summed over cores.

        A core's busy span already includes IRQ handling and context-switch
        overhead occurring inside it; ``irq_ns``/``switch_ns`` are
        sub-accounts, not additions.
        """
        return sum(core.total_busy_ns() for core in self.cores)

    def cpu_utilization(self, cores: Optional[List[int]] = None) -> float:
        """Mean *executing* fraction of the selected cores since t=0.

        Expressed the way the paper's figures do: 100% = one fully busy
        core, so three cores at 20% each report 60%.  C-state exit
        stalls are excluded — a core waking from idle is not executing
        instructions and getrusage/mpstat (the paper's instruments) do
        not see that time.
        """
        if self.sim.now == 0:
            return 0.0
        indexes = range(len(self.cores)) if cores is None else cores
        busy = sum(
            self.cores[i].total_busy_ns() - self.cores[i].exit_stall_ns
            for i in indexes
        )
        return busy / self.sim.now

    def energy_joules(self) -> float:
        """Cumulative package energy (RAPL analogue)."""
        return self.power.read_joules()

    def getrusage_ns(self, threads: Optional[List[KThread]] = None) -> int:
        """Total CPU time consumed by the given threads (default: all)."""
        pool = self.threads if threads is None else threads
        return sum(t.cputime_ns for t in pool)
