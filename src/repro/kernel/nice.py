"""Nice levels and CFS load weights.

The weight table is the kernel's ``sched_prio_to_weight`` array: each
nice step changes the CPU share by ~10% relative to a competitor, i.e.
weights follow roughly 1024 * 1.25**(-nice).
"""

from __future__ import annotations

#: sched_prio_to_weight from kernel/sched/core.c, nice -20 .. +19.
PRIO_TO_WEIGHT = [
    88761, 71755, 56483, 46273, 36291,
    29154, 23254, 18705, 14949, 11916,
    9548, 7620, 6100, 4904, 3906,
    3121, 2501, 1991, 1586, 1277,
    1024, 820, 655, 526, 423,
    335, 272, 215, 172, 137,
    110, 87, 70, 56, 45,
    36, 29, 23, 18, 15,
]

NICE_0_WEIGHT = 1024
MIN_NICE = -20
MAX_NICE = 19


def weight_for_nice(nice: int) -> int:
    """CFS load weight for a nice level (clamped to [-20, 19])."""
    if not MIN_NICE <= nice <= MAX_NICE:
        raise ValueError(f"nice {nice} outside [{MIN_NICE}, {MAX_NICE}]")
    return PRIO_TO_WEIGHT[nice - MIN_NICE]
