"""A hierarchical timing wheel (the kernel's low-resolution timer store).

The paper's §3.1 describes the Linux "timer wheel" that sleep requests
are posted to.  Linux's modern wheel has 9 levels of 64 slots each, with
granularity multiplying by 8 per level; timers far in the future land in
coarse levels and *cascade* into finer ones as time advances — which is
why low-resolution timers have bounded but nonzero slack.

:class:`TimerWheel` is the pure data structure (heavily unit- and
property-tested); :class:`DrivenTimerWheel` couples it to the simulator
clock at jiffy granularity and backs the kernel-daemon noise timers
(:mod:`repro.kernel.noise`) — kworker wakeups really are jiffy-resolution
wheel timers.  The high-resolution path (:mod:`repro.kernel.hrtimer`)
bypasses the wheel, exactly like ``hrtimer`` does in Linux.
"""

from __future__ import annotations

from typing import Callable, List, Optional

LEVELS = 9
SLOTS_PER_LEVEL = 64
LEVEL_SHIFT = 6  # log2(SLOTS_PER_LEVEL)
#: granularity multiplier between levels (Linux uses 8 = 2**3)
LEVEL_GRANULARITY_SHIFT = 3


class WheelTimer:
    """A timer registered with :class:`TimerWheel`."""

    __slots__ = ("expiry_tick", "callback", "cancelled", "fired")

    def __init__(self, expiry_tick: int, callback: Callable[[], None]):
        self.expiry_tick = expiry_tick
        self.callback = callback
        self.cancelled = False
        self.fired = False

    def cancel(self) -> None:
        self.cancelled = True


class TimerWheel:
    """Hierarchical timing wheel over an abstract integer tick clock.

    ``tick_ns`` sets the base granularity (Linux: one jiffy).  The caller
    drives it with :meth:`advance_to`, which fires every timer whose slot
    has come due, cascading coarse-level timers downward as needed.
    """

    def __init__(self, tick_ns: int = 1_000_000, start_ns: int = 0):
        if tick_ns <= 0:
            raise ValueError("tick_ns must be positive")
        self.tick_ns = tick_ns
        self.current_tick = start_ns // tick_ns
        self._slots: List[List[List[WheelTimer]]] = [
            [[] for _ in range(SLOTS_PER_LEVEL)] for _ in range(LEVELS)
        ]
        self.pending = 0
        self.fired_total = 0

    # ------------------------------------------------------------------ #

    def _level_shift(self, level: int) -> int:
        return level * LEVEL_GRANULARITY_SHIFT

    def _level_for(self, delta_ticks: int) -> int:
        """Level whose granularity covers a delay of ``delta_ticks``."""
        level = 0
        span = SLOTS_PER_LEVEL
        while level < LEVELS - 1 and delta_ticks >= span:
            level += 1
            span <<= LEVEL_GRANULARITY_SHIFT
        return level

    def _slot_for(self, level: int, expiry_tick: int) -> int:
        return (expiry_tick >> self._level_shift(level)) & (SLOTS_PER_LEVEL - 1)

    def _insert(self, timer: WheelTimer) -> None:
        delta = max(0, timer.expiry_tick - self.current_tick)
        level = self._level_for(delta)
        slot = self._slot_for(level, max(timer.expiry_tick, self.current_tick))
        self._slots[level][slot].append(timer)

    # ------------------------------------------------------------------ #

    def add(self, delay_ns: int, callback: Callable[[], None]) -> WheelTimer:
        """Register ``callback`` to fire ``delay_ns`` from the wheel's now.

        Like the kernel wheel, granularity is the base tick: sub-tick
        delays round **up** to the next tick (a timer never fires early).
        """
        if delay_ns < 0:
            raise ValueError("negative delay")
        expiry_tick = self.current_tick + max(
            1, (delay_ns + self.tick_ns - 1) // self.tick_ns
        )
        timer = WheelTimer(expiry_tick, callback)
        self._insert(timer)
        self.pending += 1
        return timer

    def advance_to(self, now_ns: int) -> int:
        """Advance wheel time, firing due timers.  Returns #fired."""
        target_tick = now_ns // self.tick_ns
        fired = 0
        while self.current_tick < target_tick:
            self.current_tick += 1
            fired += self._expire_tick()
        return fired

    def _expire_tick(self) -> int:
        fired = 0
        tick = self.current_tick
        for level in range(LEVELS):
            shift = self._level_shift(level)
            # a level's slot boundary is crossed when the lower bits wrap
            if level > 0 and tick & ((1 << shift) - 1) != 0:
                break
            slot = (tick >> shift) & (SLOTS_PER_LEVEL - 1)
            bucket = self._slots[level][slot]
            if not bucket:
                continue
            self._slots[level][slot] = []
            for timer in bucket:
                if timer.cancelled:
                    self.pending -= 1
                    continue
                if timer.expiry_tick <= tick:
                    timer.fired = True
                    fired += 1
                    self.fired_total += 1
                    self.pending -= 1
                    timer.callback()
                else:
                    # cascade into a finer level
                    self._insert(timer)
        return fired

    def tick_of(self, now_ns: int) -> int:
        return now_ns // self.tick_ns

    def next_pending_expiry_ns(self) -> Optional[int]:
        """Earliest live expiry, in ns (linear scan; diagnostics only)."""
        best: Optional[int] = None
        for level in self._slots:
            for bucket in level:
                for timer in bucket:
                    if not timer.cancelled:
                        if best is None or timer.expiry_tick < best:
                            best = timer.expiry_tick
        return None if best is None else best * self.tick_ns


class DrivenTimerWheel:
    """A :class:`TimerWheel` advanced by the simulator's clock.

    Ticks are only scheduled while timers are pending, so an idle wheel
    costs nothing.  Callbacks fire with jiffy granularity — the slack
    low-resolution kernel timers genuinely have.
    """

    def __init__(self, sim: "Simulator", tick_ns: int = 1_000_000):  # noqa: F821
        self.sim = sim
        self.wheel = TimerWheel(tick_ns=tick_ns, start_ns=sim.now)
        self._tick_armed = False

    def add(self, delay_ns: int, callback: Callable[[], None]) -> WheelTimer:
        """Arm a low-resolution timer ``delay_ns`` from now."""
        # keep the wheel's notion of now current before inserting
        self.wheel.advance_to(self.sim.now)
        timer = self.wheel.add(delay_ns, callback)
        self._arm_tick()
        return timer

    def _arm_tick(self) -> None:
        if self._tick_armed or self.wheel.pending == 0:
            return
        tick_ns = self.wheel.tick_ns
        next_tick_time = (self.wheel.current_tick + 1) * tick_ns
        self._tick_armed = True
        self.sim.call_at(max(next_tick_time, self.sim.now), self._on_tick)

    def _on_tick(self) -> None:
        self._tick_armed = False
        self.wheel.advance_to(self.sim.now)
        self._arm_tick()

    @property
    def pending(self) -> int:
        return self.wheel.pending
