"""Background OS noise: kernel daemons stealing slices of CPU.

Paper §4.2.4 observes that "actual CPU-reschedules after a sleep period
can occur after the maximum time delay T_L, because of CPU-scheduling
decisions by the OS — for example favoring OS-kernel demons".  This
module injects that interference: on each core, at exponentially
distributed intervals, a burst of kernel work (kworker flushes, RCU
callbacks, ...) steals a uniformly distributed slice of CPU time.

The bursts run in interrupt/softirq context — they stretch whatever the
core is doing and delay pending dispatches, producing exactly the rare
over-``T_L`` tail the paper's Figure 5 shows.
"""

from __future__ import annotations

from repro import config


class OsNoise:
    """Per-core kernel-daemon interference generator.

    Bursts are armed through the low-resolution timer wheel at jiffy
    (1 ms) granularity — kworker timers are wheel timers, so their
    firing times inherit the wheel's rounding, not hrtimer precision.
    """

    def __init__(self, machine: "Machine"):  # noqa: F821
        self.machine = machine
        self.sim = machine.sim
        self._rng = machine.streams.stream("os-noise")
        self.bursts = 0
        self.stolen_ns = 0
        from repro.kernel.timerwheel import DrivenTimerWheel

        self.wheel = DrivenTimerWheel(machine.sim, tick_ns=1_000_000)

    def start(self) -> None:
        """Arm one noise source per core."""
        for core in self.machine.cores:
            self._arm(core)

    def _arm(self, core) -> None:
        gap = self._rng.expovariate(1.0 / config.OS_NOISE_MEAN_PERIOD_NS)
        self.wheel.add(max(1, int(gap)), lambda core=core: self._burst(core))

    def _burst(self, core) -> None:
        duration = self._rng.randint(config.OS_NOISE_MIN_NS, config.OS_NOISE_MAX_NS)
        self.bursts += 1
        self.stolen_ns += duration
        core.inject_irq_time(duration)
        self._arm(core)
