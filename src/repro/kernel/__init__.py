"""A discrete-event model of the Linux kernel facilities Metronome relies on.

Subsystems (mirroring DESIGN.md §2):

* :mod:`repro.kernel.nice` — nice levels and CFS load weights.
* :mod:`repro.kernel.thread` — kernel threads and the action protocol
  their generator bodies speak (compute, spin, suspend, exit).
* :mod:`repro.kernel.cpu` — cores: frequency, busy/idle accounting,
  IRQ time injection, cache-warmup penalty.
* :mod:`repro.kernel.scheduler` — a CFS-like scheduler: per-core
  runqueues ordered by virtual runtime, scheduling ticks, wakeup
  preemption, sleeper fairness.
* :mod:`repro.kernel.hrtimer` — high-resolution per-core timer queues
  (the paper's Figure 1 wakeup path).
* :mod:`repro.kernel.timerwheel` — a hierarchical timing wheel, used by
  the NIC interrupt-mitigation model.
* :mod:`repro.kernel.cpuidle` — C-state exit latency model (menu-governor
  style: deeper states for longer idles).
* :mod:`repro.kernel.sleep` — the two sleep services under study:
  ``nanosleep()`` and the paper's ``hr_sleep()``.
* :mod:`repro.kernel.power` — frequency governors and a RAPL-like
  energy meter.
* :mod:`repro.kernel.noise` — OS background noise (kernel daemons).
* :mod:`repro.kernel.machine` — the assembled testbed node.
"""

from repro.kernel.machine import Machine
from repro.kernel.sleep import HrSleep, Nanosleep, SleepService
from repro.kernel.thread import (
    BusySpin,
    Compute,
    Exit,
    KThread,
    Suspend,
    ThreadState,
    YieldCpu,
)

__all__ = [
    "Machine",
    "KThread",
    "ThreadState",
    "Compute",
    "BusySpin",
    "Suspend",
    "YieldCpu",
    "Exit",
    "SleepService",
    "Nanosleep",
    "HrSleep",
]
