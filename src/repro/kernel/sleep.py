"""The two timed-sleep services under study (paper §3.1, Figure 1).

Both services share the same skeleton — enter the kernel, run a
*preamble*, arm a high-resolution timer, leave the CPU, and on expiry run
a *postamble* on the way back to user space — but differ in three
structural ways that the paper identifies:

``nanosleep()`` (:class:`Nanosleep`)
    * preamble includes the cross-ring ``copy_from_user`` of
      ``struct timespec`` (plus the KPTI-induced TLB miss) and the
      multi-field → ktime conversion;
    * the sleeper entry lives outside the stack (allocator interaction on
      the resume path);
    * most importantly, as a *range* hrtimer it is subject to the
      SCHED_OTHER **timer slack** (50 us by default) — the dominant term
      behind Table 1's ≈58 us overhead.

``hr_sleep()`` (:class:`HrSleep`)
    * single-register argument: no cross-ring move, no conversion;
    * on-stack timer entry: no allocator interaction;
    * a precise (non-range) timer: no slack.

Because the preamble is ordinary preemptible compute, a heavily shared
core can preempt the thread *before the timer is armed* — the
unpredictability the paper describes — and the longer nanosleep preamble
is proportionally more exposed.

The wakeup pipeline (HPET interrupt latency, C-state exit, handler time,
scheduler dispatch) is shared; see :mod:`repro.kernel.hrtimer` and
:mod:`repro.kernel.cpuidle`.
"""

from __future__ import annotations

from typing import Generator, Optional

from repro import config
from repro.kernel.thread import Compute, KThread, Suspend


class SleepService:
    """Base class: a timed sleep entered via syscall.

    Subclasses define the preamble/postamble costs and how the timer
    expiry is derived from the requested duration.
    """

    #: human-readable name used in reports
    name = "sleep"

    def __init__(self, machine: "Machine"):  # noqa: F821
        self.machine = machine
        self._rng = machine.streams.stream(f"sleep.{self.name}")
        #: completed-call counter, owned by the machine's metrics
        #: registry (read back through the ``calls`` property)
        self._calls = machine.metrics.counter(
            machine.metrics.unique_name(f"sleep.{self.name}.calls")
        )
        #: §5.4 patch: if > 0, requests below this granularity return
        #: immediately instead of arming a timer (sub-us hr_sleep patch)
        self.immediate_below_ns = 0

    @property
    def calls(self) -> int:
        """Number of completed sleep calls (all threads)."""
        return self._calls.value

    # -- knobs implemented by subclasses -------------------------------- #

    def preamble_ns(self) -> int:
        raise NotImplementedError

    def postamble_ns(self) -> int:
        raise NotImplementedError

    def expiry_for(self, now: int, duration_ns: int) -> int:
        raise NotImplementedError

    # -- the call itself ------------------------------------------------ #

    def call(self, kt: KThread, duration_ns: int) -> Generator:
        """Generator to be ``yield from``-ed inside a thread body.

        Sequence: syscall entry + preamble (preemptible compute), arm the
        timer, leave the CPU, and on wakeup run the postamble.
        """
        if duration_ns < 0:
            raise ValueError(f"negative sleep {duration_ns}")
        tracer = self.machine.tracer
        if tracer.enabled:
            tracer.sleep_enter(kt, duration_ns, self.name)
        half_entry = config.SYSCALL_ENTRY_EXIT_NS // 2
        if 0 < duration_ns < self.immediate_below_ns:
            # the paper's §5.4 patch: sub-granularity requests return
            # right away (degenerates towards continuous polling)
            yield Compute(config.SYSCALL_ENTRY_EXIT_NS)
            self._calls.inc()
            if tracer.enabled:
                tracer.sleep_return(kt, immediate=True)
            return
        yield Compute(half_entry + self._jitter(self.preamble_ns()))
        now = self.machine.sim.now
        expiry = self.expiry_for(now, duration_ns)
        faults = self.machine.faults
        if faults is not None:
            # clock-drift fault: the timebase the expiry is programmed
            # against runs slow, so the sleep systematically overshoots
            expiry += faults.sleep_skew_ns(duration_ns)
        if expiry <= now:
            # sub-granularity request: return immediately (the paper's
            # §5.4 patch makes hr_sleep return for sub-us requests)
            yield Compute(self._jitter(self.postamble_ns()) + half_entry)
            self._calls.inc()
            if tracer.enabled:
                tracer.sleep_return(kt, immediate=True)
            return
        # cross-socket timer-IRQ delivery: the timer fabric homes on
        # node 0, so sleepers on a remote socket see expiry later
        # (exactly 0 on the paper's single-node testbed — byte-identical)
        expiry += self.machine.wake_penalty_ns(kt.core)
        queue = self.machine.hrtimers[kt.core.index]
        timer = queue.arm(expiry, kt.wake)
        if tracer.enabled:
            tracer.sleep_armed(kt, expiry)
        yield Suspend()
        checks = self.machine.checks
        if checks is not None:
            # timer.fired distinguishes a timer-driven wake (bound by
            # the expiry) from an external early wake (watchdog, fault
            # injection), which is legal at any time
            checks.on_sleep_wake(kt, expiry, self.machine.sim.now,
                                 timer.fired)
        self._calls.inc()
        yield Compute(self._jitter(self.postamble_ns()) + half_entry)
        if tracer.enabled:
            tracer.sleep_return(kt)

    def _jitter(self, mean_ns: int) -> int:
        """±10% uniform jitter on a kernel-path cost."""
        return max(0, int(mean_ns * self._rng.uniform(0.9, 1.1)))

    def cpu_cost_per_call_ns(self) -> int:
        """Mean CPU consumed per call (for analytical cross-checks)."""
        return (
            config.SYSCALL_ENTRY_EXIT_NS + self.preamble_ns() + self.postamble_ns()
        )


class Nanosleep(SleepService):
    """The stock POSIX ``nanosleep()`` path (syscall 35)."""

    name = "nanosleep"

    def __init__(self, machine, timer_slack_ns: Optional[int] = None):
        super().__init__(machine)
        self.timer_slack_ns = (
            machine.cfg.timer_slack_ns if timer_slack_ns is None else timer_slack_ns
        )
        #: probability that another event in the slack range lets the
        #: range timer coalesce and fire before its hard expiry
        self.coalesce_prob = 0.05

    def preamble_ns(self) -> int:
        return config.NANOSLEEP_PREAMBLE_NS

    def postamble_ns(self) -> int:
        return config.NANOSLEEP_POSTAMBLE_NS

    def expiry_for(self, now: int, duration_ns: int) -> int:
        """Range timer: [duration, duration + slack]; fires at the hard
        expiry unless an unrelated timer lets it coalesce earlier."""
        slack = self.timer_slack_ns
        if slack and self._rng.random() < self.coalesce_prob:
            slack = int(slack * self._rng.random())
        return now + duration_ns + slack


class HrSleep(SleepService):
    """The paper's precise sleep service (loadable-module hr_sleep())."""

    name = "hr_sleep"

    def preamble_ns(self) -> int:
        return config.HRSLEEP_PREAMBLE_NS

    def postamble_ns(self) -> int:
        return config.HRSLEEP_POSTAMBLE_NS

    def expiry_for(self, now: int, duration_ns: int) -> int:
        return now + duration_ns


def make_service(machine, name: str) -> SleepService:
    """Factory: ``"hr_sleep"`` or ``"nanosleep"``."""
    if name == "hr_sleep":
        return HrSleep(machine)
    if name == "nanosleep":
        return Nanosleep(machine)
    raise ValueError(f"unknown sleep service {name!r}")
