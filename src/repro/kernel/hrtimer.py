"""High-resolution per-core timers (the paper's Figure 1 wakeup path).

A real hrtimer expiry involves: the hardware timer (HPET / TSC-deadline)
raising an interrupt on the CPU that armed the timer; the CPU — possibly
waking from a C-state — entering ``hrtimer_interrupt``; and the expiry
callback (for sleep services, the wakeup of the sleeping thread).  Each
of those stages contributes latency that Metronome's precision argument
depends on, so each is modelled explicitly:

``expiry``  →  (+ TIMER_IRQ_LATENCY)  →  [C-state exit if core idle]
            →  (+ TIMER_IRQ_HANDLER, stolen from the running thread)
            →  callback

Timers are armed on the calling thread's core, like Linux pins an
``hrtimer_sleeper`` to the CPU that started it.
"""

from __future__ import annotations

from heapq import heappop, heappush
from typing import Callable, Optional

from repro import config
from repro.kernel.cpu import Core


class HrTimer:
    """One armed high-resolution timer."""

    __slots__ = ("queue", "expiry", "callback", "_handle", "cancelled",
                 "fired", "fault_deferred")

    def __init__(self, queue: "HrTimerQueue", expiry: int, callback: Callable[[], None]):
        self.queue = queue
        self.expiry = expiry
        self.callback = callback
        self.cancelled = False
        self.fired = False
        #: set once a fault injector already stretched this fire, so one
        #: timer pays the miss penalty at most once
        self.fault_deferred = False
        self._handle = None

    def cancel(self) -> None:
        """Disarm; the callback will not run.  Idempotent; a no-op once
        the timer fired (the trace then shows fire, never cancel)."""
        if not self.fired and not self.cancelled:
            self.cancelled = True
            if self._handle is not None:
                self._handle.cancel()
            # prune immediately: _fire can no longer run for this timer,
            # so leaving it in _armed would leak it forever
            self.queue._armed.pop(id(self), None)
            tracer = self.queue.machine.tracer
            if tracer.enabled:
                tracer.timer_cancel(self.queue.core.index, self.expiry)


class HrTimerQueue:
    """The per-core hrtimer base.

    Also exposes :meth:`next_expiry` so the cpuidle governor can predict
    idle residency the way the Linux menu governor does.
    """

    def __init__(self, machine: "Machine", core: Core):  # noqa: F821
        self.machine = machine
        self.sim = machine.sim
        self.core = core
        self._armed: dict = {}   # id(timer) -> timer
        #: lazy min-heap of (expiry, seq, timer); stale entries (timer
        #: fired or cancelled) are pruned at the top on read, making
        #: next_expiry() amortized O(1) instead of an O(n) scan
        self._expiry_heap: list = []
        self._arm_seq = 0
        self.fired_count = 0

    def arm(self, expiry: int, callback: Callable[[], None]) -> HrTimer:
        """Arm a timer to fire the callback at absolute time ``expiry``.

        The hardware-interrupt pipeline latency is applied here: the
        callback actually runs at
        ``expiry + IRQ latency [+ C-state exit] + handler time``.
        """
        timer = HrTimer(self, expiry, callback)
        timer._handle = self.sim.call_at(
            expiry + config.TIMER_IRQ_LATENCY_NS, self._fire, timer
        )
        self._armed[id(timer)] = timer
        self._arm_seq += 1
        heappush(self._expiry_heap, (expiry, self._arm_seq, timer))
        tracer = self.machine.tracer
        if tracer.enabled:
            tracer.timer_arm(self.core.index, expiry)
        return timer

    def snapshot_state(self) -> dict:
        """Checkpoint fingerprint: the armed-expiry multiset + counters.

        Timers hold live callbacks, so (like the calendar queue) the
        snapshot pins the observable structure, not the objects.  Pure
        read — nothing is pruned or re-heaped.
        """
        return {
            "core": self.core.index,
            "armed": sorted(t.expiry for t in self._armed.values()),
            "fired_count": self.fired_count,
            "arm_seq": self._arm_seq,
        }

    def next_expiry(self) -> Optional[int]:
        """Earliest pending expiry on this core (menu-governor input)."""
        heap = self._expiry_heap
        while heap:
            expiry, _, timer = heap[0]
            if timer.cancelled or timer.fired:
                heappop(heap)
                continue
            return expiry
        return None

    # ------------------------------------------------------------------ #

    def _fire(self, timer: HrTimer) -> None:
        if timer.cancelled:
            self._armed.pop(id(timer), None)
            return
        faults = self.machine.faults
        if faults is not None and not timer.fault_deferred:
            # hrtimer-miss / IRQ-storm fault: the hardware interrupt is
            # delivered late (the timer stays armed and cancellable)
            extra = faults.timer_extra_latency_ns(self.core.index)
            if extra > 0:
                timer.fault_deferred = True
                # keep _handle pointing at the live event so a cancel
                # during the deferral removes the pending fire too
                timer._handle = self.sim.call_after(extra, self._fire, timer)
                return
        self._armed.pop(id(timer), None)
        timer.fired = True
        self.fired_count += 1
        core = self.core
        checks = self.machine.checks
        if checks is not None:
            checks.on_timer_fire(core.index, timer.expiry, self.sim.now)
        tracer = self.machine.tracer
        if tracer.enabled:
            tracer.timer_fire(core.index, timer.expiry, idle=not core.is_busy)
        if core.is_busy:
            # handler steals time from whatever the core is doing
            core.inject_irq_time(config.TIMER_IRQ_HANDLER_NS)
            self.sim.call_after(config.TIMER_IRQ_HANDLER_NS, self._run_callback, timer)
        else:
            # idle core: pay the C-state exit latency before the handler
            exit_ns = self.machine.cpuidle.exit_latency(core)
            core.exit_stall_ns += exit_ns
            core.irq_ns += config.TIMER_IRQ_HANDLER_NS
            end = self.machine.scheduler.occupy_idle_irq(
                core, exit_ns + config.TIMER_IRQ_HANDLER_NS
            )
            self.sim.call_at(end, self._run_callback_idle, timer)

    def _run_callback(self, timer: HrTimer) -> None:
        if self._wakeup_lost():
            return
        timer.callback()

    def _run_callback_idle(self, timer: HrTimer) -> None:
        if not self._wakeup_lost():
            timer.callback()
        # if the callback did not make anything runnable, drop back to idle
        self.machine.scheduler.settle_idle(self.core)

    def _wakeup_lost(self) -> bool:
        """Lost-wakeup fault: the interrupt ran but the expiry callback
        (the sleeping thread's wake) is dropped, modelling the wakeup
        races the paper's backup-timeout design guards against."""
        faults = self.machine.faults
        return faults is not None and faults.drop_wakeup(self.core.index)
