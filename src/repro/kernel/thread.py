"""Kernel threads and the action protocol their bodies speak.

A thread body is a Python generator.  It yields *actions* describing what
the thread does next on the CPU; the scheduler decides **when** those
actions actually execute (the thread may be preempted, delayed behind
other runnable threads, or slowed by a frequency drop).  The available
actions are:

``Compute(work_ns)``
    Execute ``work_ns`` nanoseconds of work *as measured at the base
    frequency*.  Wall-clock duration stretches if the governor lowered
    the clock, and the chunk can be preempted at any point.

``BusySpin(until)``
    Burn CPU until absolute simulated time ``until`` (used by the
    poll-mode driver's empty-poll fast-forward — the core is genuinely
    100% busy, we just do not simulate each idle poll individually).

``Suspend()``
    Leave the CPU until someone calls :meth:`KThread.wake` (a timer
    callback, an IRQ, another thread).

``YieldCpu()``
    Stay runnable but let the scheduler pick again (sched_yield()).

``Exit()``
    Terminate.  Equivalent to the generator returning.

Side effects (reading a queue, taking a lock) happen in the body *between*
yields, i.e. at the simulated instant when the preceding chunk of work
completed — which is exactly when a real CPU would perform them.
"""

from __future__ import annotations

import enum
from typing import Any, Generator, Optional

from repro.kernel.nice import NICE_0_WEIGHT, weight_for_nice


class ThreadState(enum.Enum):
    """Lifecycle of a :class:`KThread` (subset of Linux task states)."""

    NEW = "new"
    RUNNABLE = "runnable"
    RUNNING = "running"
    SLEEPING = "sleeping"     # suspended, expects a wake()
    DEAD = "dead"


class Compute:
    """Action: execute ``work_ns`` ns of work (at base frequency)."""

    __slots__ = ("work_ns",)

    def __init__(self, work_ns: int):
        if work_ns < 0:
            raise ValueError(f"negative work {work_ns}")
        self.work_ns = work_ns

    def __repr__(self) -> str:
        return f"Compute({self.work_ns}ns)"


class BusySpin:
    """Action: burn CPU until absolute time ``until`` (wall-clock bound)."""

    __slots__ = ("until",)

    def __init__(self, until: int):
        self.until = until

    def __repr__(self) -> str:
        return f"BusySpin(until={self.until})"


class Suspend:
    """Action: deschedule until :meth:`KThread.wake` is called."""

    __slots__ = ()

    def __repr__(self) -> str:
        return "Suspend()"


class YieldCpu:
    """Action: relinquish the CPU but remain runnable."""

    __slots__ = ()

    def __repr__(self) -> str:
        return "YieldCpu()"


class Exit:
    """Action: terminate the thread."""

    __slots__ = ()

    def __repr__(self) -> str:
        return "Exit()"


class KThread:
    """A schedulable thread pinned to one core.

    Attributes of interest to experiments:

    * :attr:`cputime_ns` — total CPU time consumed (getrusage-style).
    * :attr:`vruntime` — CFS virtual runtime (weighted CPU time).
    * :attr:`wakeups` / :attr:`preemptions` — scheduler event counts.
    """

    _next_tid = [1]

    def __init__(
        self,
        machine: "Machine",  # noqa: F821 - circular, resolved at runtime
        body: Generator,
        name: str,
        nice: int = 0,
        core_index: int = 0,
    ):
        self.machine = machine
        self.body = body
        self.name = name
        self.nice = nice
        self.weight = weight_for_nice(nice)
        self.core = machine.cores[core_index]
        self.tid = KThread._next_tid[0]
        KThread._next_tid[0] += 1

        self.state = ThreadState.NEW
        self.vruntime: int = 0
        self.cputime_ns: int = 0
        #: remaining base-frequency work of the current Compute chunk
        self.remaining_work: int = 0
        #: current action (None between actions)
        self.action: Any = None
        #: value to send into the generator on next advance
        self._send_value: Any = None
        #: absolute time until which a BusySpin runs
        self.spin_until: int = 0
        #: one-time cold-cache penalty still to pay (base-frequency ns)
        self.cold_penalty: int = 0
        #: set while the thread sits on a runqueue (heap entry liveness)
        self.rq_entry: Optional[list] = None
        #: time the thread last started running (for slice accounting)
        self.run_since: int = 0
        #: time the thread became runnable (for dispatch-latency stats)
        self.runnable_since: int = 0
        #: set when a wake() arrives while the thread is not sleeping, so
        #: the next Suspend returns immediately (lost-wakeup protection)
        self.pending_wake: bool = False

        # statistics
        self.wakeups = 0
        self.preemptions = 0
        self.dispatch_latency_ns = 0  # cumulative runnable->running wait
        self.exited = machine.sim.event()
        self.exit_value: Any = None

    def __repr__(self) -> str:
        return f"<KThread {self.name} tid={self.tid} {self.state.value}>"

    # ------------------------------------------------------------------ #

    @property
    def inv_weight_num(self) -> int:
        """Numerator for vruntime scaling: delta_v = delta * 1024 / weight."""
        return NICE_0_WEIGHT

    def wake(self) -> None:
        """Make a SLEEPING thread runnable (no-op in any other state).

        This is the single entry point used by timer callbacks, IRQ
        handlers and inter-thread notifications.
        """
        self.machine.scheduler.wake(self)

    def is_alive(self) -> bool:
        return self.state is not ThreadState.DEAD
