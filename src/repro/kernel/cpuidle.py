"""C-state exit-latency model (cpuidle).

When a core idles, the hardware drops into a power-saving C-state; the
deeper the state, the longer the wakeup takes.  Linux's *menu* governor
picks the state from the predicted idle residency, so **longer sleeps
wake up slower** — this is the mechanism behind the growth of
``hr_sleep()``'s overhead from ~2.8 us at a 1 us target to ~8.4 us at
200 us in the paper's Table 1 (see DESIGN.md and
:data:`repro.config.IDLE_EXIT_AMP_NS` for the calibration anchors).

We evaluate the curve on the *actual* idle interval at wakeup time; for
timer-driven sleeps on an otherwise idle core — the Table 1 scenario —
actual and predicted residency coincide.
"""

from __future__ import annotations

import math

from repro import config
from repro.kernel.cpu import Core
from repro.sim.rng import RandomStreams


def mean_exit_latency_ns(idle_ns: int) -> float:
    """Mean C-state exit latency for an idle interval of ``idle_ns``."""
    if idle_ns <= 0:
        return 0.0
    depth = 1.0 - math.exp(-idle_ns / config.IDLE_EXIT_TAU_NS)
    return config.IDLE_EXIT_BASE_NS + config.IDLE_EXIT_AMP_NS * depth


class CpuIdle:
    """Samples per-wakeup exit latencies (Gamma-distributed around the
    residency-dependent mean, CV from config)."""

    def __init__(self, streams: RandomStreams):
        self._rng = streams.stream("cpuidle")
        cv = config.IDLE_EXIT_CV
        #: Gamma shape implied by the coefficient of variation
        self._shape = 1.0 / (cv * cv)

    def exit_latency(self, core: Core) -> int:
        """Exit latency (ns) for ``core`` waking right now."""
        mean = mean_exit_latency_ns(core.idle_duration())
        if mean <= 0:
            return 0
        scale = mean / self._shape
        return max(0, int(self._rng.gammavariate(self._shape, scale)))
