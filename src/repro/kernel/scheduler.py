"""A CFS-like per-core scheduler.

Implements the subset of the Linux Completely Fair Scheduler that the
paper's experiments exercise:

* per-core runqueues ordered by **virtual runtime** (weighted CPU time,
  scaled by the thread's nice weight);
* **scheduling ticks** (1 ms) that preempt a thread once it exceeds its
  fair slice;
* **wakeup preemption**: a woken thread whose vruntime trails the running
  thread's by more than the wakeup granularity preempts it immediately —
  this is what lets a nice −20 Metronome thread displace a nice 19
  ferret the instant its sleep timer fires (§5.6);
* **sleeper fairness**: a woken thread's vruntime is clamped to
  ``min_vruntime − sched_latency/2`` so long sleeps don't bank unbounded
  credit;
* **context-switch and cold-cache costs**, and C-state exit latency when
  waking an idle core (the cpuidle model) — these are the physical
  sources of the sleep services' wakeup imprecision (§3.1).

Threads are pinned to their core (the paper pins all DPDK threads);
there is no load balancer.
"""

from __future__ import annotations

import heapq
from typing import TYPE_CHECKING, List, Optional

from repro import config
from repro.kernel.cpu import Core, default_cold_penalty
from repro.kernel.nice import NICE_0_WEIGHT
from repro.kernel.thread import (
    BusySpin,
    Compute,
    Exit,
    KThread,
    Suspend,
    ThreadState,
    YieldCpu,
)

if TYPE_CHECKING:  # pragma: no cover
    from repro.kernel.machine import Machine


class _CoreSched:
    """Per-core scheduler state (runqueue + running-thread bookkeeping)."""

    __slots__ = (
        "core",
        "runqueue",
        "rq_len",
        "seq",
        "min_vruntime",
        "completion",
        "tick",
        "pending_begin",
        "acct_mark",
        "irq_skip",
        "switching",
        "irq_busy_until",
    )

    def __init__(self, core: Core):
        self.core = core
        self.runqueue: List[list] = []   # [vruntime, seq, thread-or-None]
        self.rq_len = 0                   # live entries (excl. tombstones)
        self.seq = 0
        self.min_vruntime = 0
        self.completion = None            # Handle for chunk completion
        self.tick = None                  # Handle for scheduler tick
        self.pending_begin = None         # Handle for delayed _begin_run
        self.acct_mark = 0                # last accounting timestamp
        self.irq_skip = 0                 # IRQ time to exclude from acct
        self.switching: Optional[KThread] = None  # thread mid-dispatch
        #: end of the current idle-context IRQ window (handlers running
        #: with no thread on the CPU); dispatches serialize behind it
        self.irq_busy_until = 0


class CfsScheduler:
    """The machine-wide scheduler object (one per :class:`Machine`)."""

    def __init__(self, machine: "Machine"):
        self.machine = machine
        self.sim = machine.sim
        self._cs: List[_CoreSched] = [_CoreSched(c) for c in machine.cores]
        self._switch_rng = machine.streams.stream("sched.switch")

    # ------------------------------------------------------------------ #
    # public API
    # ------------------------------------------------------------------ #

    def start_thread(self, thread: KThread) -> None:
        """Admit a NEW thread: it becomes runnable at the current time."""
        if thread.state is not ThreadState.NEW:
            raise RuntimeError(f"{thread} already started")
        cs = self._cs[thread.core.index]
        thread.vruntime = cs.min_vruntime
        thread.state = ThreadState.RUNNABLE
        thread.runnable_since = self.sim.now
        self._enqueue(cs, thread)
        # defer the first dispatch so spawn() returns before the body runs
        self.sim.call_after(0, self._maybe_dispatch, cs)

    def wake(self, thread: KThread) -> None:
        """Wake a SLEEPING thread (timer fired, IRQ, notification).

        Waking a thread that is already RUNNABLE/RUNNING records a pending
        wake so a subsequent ``Suspend`` returns immediately (lost-wakeup
        protection for IRQ-driven threads).
        """
        if thread.state in (ThreadState.RUNNING, ThreadState.RUNNABLE):
            thread.pending_wake = True
            return
        if thread.state is not ThreadState.SLEEPING:
            return  # dead or new: nothing to do
        cs = self._cs[thread.core.index]
        thread.state = ThreadState.RUNNABLE
        thread.wakeups += 1
        thread.runnable_since = self.sim.now
        tracer = self.machine.tracer
        if tracer.enabled:
            tracer.thread_wake(thread)
        # sleeper fairness: don't let long sleepers bank unbounded credit
        floor = cs.min_vruntime - config.SCHED_LATENCY_NS // 2
        if thread.vruntime < floor:
            thread.vruntime = floor
        self._enqueue(cs, thread)
        if cs.core.current is None and cs.switching is None:
            self._dispatch(cs)
        else:
            self._check_preempt_wakeup(cs, thread)

    def on_irq_injected(self, core: Core, duration_ns: int) -> None:
        """Splice interrupt-handler time into the core's timeline."""
        cs = self._cs[core.index]
        if core.current is not None and cs.completion is not None:
            # stretch the running chunk; the window is excluded from the
            # thread's own accounting via irq_skip.  Re-programming uses
            # the *total* outstanding skip so back-to-back injections
            # (e.g. two wheel timers on one jiffy) don't lose time.
            self._account(cs)
            cs.irq_skip += duration_ns
            self._program_completion(cs)
        elif cs.switching is not None and cs.pending_begin is not None:
            # mid-context-switch: the IRQ delays the dispatch completion
            begin_at = cs.pending_begin.time + duration_ns
            cs.pending_begin.cancel()
            cs.pending_begin = self.sim.call_at(
                begin_at, self._begin_run, cs, cs.switching
            )
        elif core.current is None and cs.switching is None:
            # no thread context: IRQ handlers queue back-to-back (a
            # second handler arriving mid-window runs after the first)
            self.occupy_idle_irq(core, duration_ns)

    def on_freq_change(self, core: Core) -> None:
        """Re-program the running chunk after a governor frequency change."""
        self.account_core(core)
        self.reprogram_core(core)

    def account_core(self, core: Core) -> None:
        """Charge the running thread's progress up to now (at the speed
        still in effect).  Public for speed-coupling transitions (SMT)."""
        cs = self._cs[core.index]
        if core.current is not None and cs.completion is not None:
            self._account(cs)

    def reprogram_core(self, core: Core) -> None:
        """Recompute the running chunk's completion at the current speed."""
        cs = self._cs[core.index]
        if core.current is not None and cs.completion is not None:
            self._program_completion(cs)

    def runnable_count(self, core: Core) -> int:
        """Live runqueue length (excluding the running thread)."""
        return self._cs[core.index].rq_len

    def occupy_idle_irq(self, core: Core, duration_ns: int) -> int:
        """Reserve an idle-context IRQ window on ``core``.

        Returns the absolute end time of the window (queued behind any
        handler already in flight).  The caller is responsible for the
        irq/stall sub-accounting; this method owns the busy-span and
        serialization bookkeeping.
        """
        cs = self._cs[core.index]
        start = max(self.sim.now, cs.irq_busy_until)
        cs.irq_busy_until = start + duration_ns
        core.mark_busy()
        self.sim.call_at(cs.irq_busy_until, self._irq_idle_done, cs)
        return cs.irq_busy_until

    def inflight_irq_ns(self, core: Core) -> int:
        """IRQ handler time already charged to ``core.irq_ns`` whose busy
        window has not elapsed yet (pending stretch or an idle-context
        window running past the current instant).  Accounting audits
        subtract this when sampling mid-flight."""
        cs = self._cs[core.index]
        pending = cs.irq_skip
        if cs.irq_busy_until > self.sim.now:
            pending += cs.irq_busy_until - self.sim.now
        return pending

    def settle_idle(self, core: Core) -> None:
        """Return the core to idle if nothing is running or queued.

        Called after IRQ handlers whose callback turned out not to make
        anything runnable on this core.
        """
        cs = self._cs[core.index]
        if core.current is None and cs.switching is None and cs.rq_len == 0:
            core.mark_idle()

    # ------------------------------------------------------------------ #
    # runqueue mechanics
    # ------------------------------------------------------------------ #

    def _enqueue(self, cs: _CoreSched, thread: KThread) -> None:
        cs.seq += 1
        entry = [thread.vruntime, cs.seq, thread]
        thread.rq_entry = entry
        heapq.heappush(cs.runqueue, entry)
        cs.rq_len += 1

    def _pop_next(self, cs: _CoreSched) -> Optional[KThread]:
        rq = cs.runqueue
        while rq:
            _v, _s, thread = heapq.heappop(rq)
            if thread is None:
                continue
            thread.rq_entry = None
            cs.rq_len -= 1
            return thread
        return None

    def _peek_vruntime(self, cs: _CoreSched) -> Optional[int]:
        rq = cs.runqueue
        while rq and rq[0][2] is None:
            heapq.heappop(rq)
        return rq[0][0] if rq else None

    def _remove_from_rq(self, thread: KThread) -> None:
        entry = thread.rq_entry
        if entry is not None:
            entry[2] = None
            thread.rq_entry = None
            self._cs[thread.core.index].rq_len -= 1

    # ------------------------------------------------------------------ #
    # dispatch path
    # ------------------------------------------------------------------ #

    def _maybe_dispatch(self, cs: _CoreSched) -> None:
        if cs.core.current is None and cs.switching is None:
            self._dispatch(cs)
        elif cs.core.current is not None:
            self._check_preempt_wakeup(cs, cs.core.current)

    def _flush_residual_skip(self, cs: _CoreSched) -> None:
        """Convert un-elapsed stolen IRQ time into a serialized
        idle-context window.

        A thread leaving the CPU (preempt/suspend/exit) while an
        injected handler stretch is still pending must not take that
        time with it: the handler keeps the core busy and delays the
        next dispatch instead.
        """
        if cs.irq_skip > 0:
            start = max(self.sim.now, cs.irq_busy_until)
            cs.irq_busy_until = start + cs.irq_skip
            cs.irq_skip = 0
            self.sim.call_at(cs.irq_busy_until, self._irq_idle_done, cs)

    def _dispatch(self, cs: _CoreSched) -> None:
        """Pick the next thread and begin running it (possibly after a
        context-switch / C-state-exit delay)."""
        thread = self._pop_next(cs)
        core = cs.core
        if thread is None:
            if cs.irq_busy_until > self.sim.now:
                return  # an IRQ window is still running; it settles idle
            core.mark_idle()
            return
        checks = self.machine.checks
        if checks is not None:
            # fairness is checked at pop time: by _begin_run a
            # context-switch delay may have let smaller-vruntime
            # threads enqueue, which would false-positive pick-is-min
            checks.on_pick(thread, cs)

        delay = 0
        was_idle = not core.is_busy
        if was_idle:
            stall = self.machine.cpuidle.exit_latency(core)
            core.exit_stall_ns += stall
            delay += stall
        elif cs.irq_busy_until > self.sim.now:
            # wait out the in-flight IRQ handler(s) before switching in
            delay += cs.irq_busy_until - self.sim.now
        if core.last_thread is not thread and core.last_thread is not None:
            delay += config.CONTEXT_SWITCH_NS
            core.switch_ns += config.CONTEXT_SWITCH_NS
            thread.cold_penalty = 1  # marker: pay cold penalty on next chunk
        core.mark_busy()
        cs.switching = thread
        if delay:
            cs.pending_begin = self.sim.call_after(delay, self._begin_run, cs, thread)
        else:
            self._begin_run(cs, thread)

    def _begin_run(self, cs: _CoreSched, thread: KThread) -> None:
        cs.pending_begin = None
        cs.switching = None
        core = cs.core
        if thread.state is not ThreadState.RUNNABLE:
            # should not happen: the thread left the runqueue for us
            raise RuntimeError(f"{thread} dispatched in state {thread.state}")
        now = self.sim.now
        thread.state = ThreadState.RUNNING
        thread.dispatch_latency_ns += now - thread.runnable_since
        tracer = self.machine.tracer
        if tracer.enabled:
            tracer.thread_dispatch(thread, now - thread.runnable_since)
        thread.run_since = now
        core.current = thread
        core.last_thread = thread
        cs.acct_mark = now
        cs.irq_skip = 0
        if thread.action is None:
            # fresh thread or returning from Suspend/Yield: fetch next action
            self._advance(cs, thread)
        else:
            self._resume_action(cs, thread)

    def _resume_action(self, cs: _CoreSched, thread: KThread) -> None:
        """Continue a partially executed action after preemption."""
        action = thread.action
        if isinstance(action, Compute):
            if thread.cold_penalty == 1:
                thread.remaining_work += default_cold_penalty(thread.remaining_work)
                thread.cold_penalty = 0
            self._program_completion(cs)
        elif isinstance(action, BusySpin):
            thread.cold_penalty = 0
            if action.until <= self.sim.now:
                self._advance(cs, thread)
            else:
                self._program_completion(cs)
        else:  # pragma: no cover - only compute-like actions are resumable
            raise RuntimeError(f"cannot resume action {action!r}")

    def _program_completion(self, cs: _CoreSched) -> None:
        """(Re)schedule the running chunk's completion.

        Caller contract: accounting is current (``acct_mark == now``).
        Outstanding stolen IRQ time (``irq_skip``) extends a Compute
        chunk; a BusySpin is wall-clock-bound and absorbs it instead.
        """
        if cs.completion is not None:
            cs.completion.cancel()
        thread = cs.core.current
        action = thread.action
        if isinstance(action, BusySpin):
            wall = max(0, action.until - self.sim.now)
        else:
            wall = cs.core.work_to_wall(thread.remaining_work) + cs.irq_skip
        cs.completion = self.sim.call_after(wall, self._on_complete, cs)
        self._ensure_tick(cs)

    def _on_complete(self, cs: _CoreSched) -> None:
        cs.completion = None
        thread = cs.core.current
        self._account(cs)
        thread.remaining_work = 0
        self._advance(cs, thread)

    # ------------------------------------------------------------------ #
    # generator advance
    # ------------------------------------------------------------------ #

    def _advance(self, cs: _CoreSched, thread: KThread) -> None:
        """Pull actions from the thread body until one occupies the CPU."""
        core = cs.core
        while True:
            try:
                action = thread.body.send(thread._send_value)
            except StopIteration as stop:
                self._exit_thread(cs, thread, stop.value)
                return
            thread._send_value = None
            thread.action = action

            if isinstance(action, Compute):
                if action.work_ns == 0:
                    continue
                thread.remaining_work = action.work_ns
                if thread.cold_penalty == 1:
                    thread.remaining_work += default_cold_penalty(action.work_ns)
                    thread.cold_penalty = 0
                self._program_completion(cs)
                return
            if isinstance(action, BusySpin):
                thread.cold_penalty = 0
                if action.until <= self.sim.now:
                    continue
                self._program_completion(cs)
                return
            if isinstance(action, Suspend):
                if getattr(thread, "pending_wake", False):
                    thread.pending_wake = False
                    continue  # wakeup raced ahead: don't sleep
                self._deschedule(cs, thread, ThreadState.SLEEPING)
                return
            if isinstance(action, YieldCpu):
                thread.state = ThreadState.RUNNABLE
                thread.runnable_since = self.sim.now
                thread.action = None
                core.current = None
                if cs.completion is not None:
                    cs.completion.cancel()
                    cs.completion = None
                self._enqueue(cs, thread)
                self._dispatch(cs)
                return
            if isinstance(action, Exit):
                self._exit_thread(cs, thread, None)
                return
            raise RuntimeError(f"{thread} yielded unknown action {action!r}")

    def _deschedule(self, cs: _CoreSched, thread: KThread, state: ThreadState) -> None:
        tracer = self.machine.tracer
        if tracer.enabled and state is ThreadState.SLEEPING:
            tracer.thread_sleep(thread)
        thread.state = state
        thread.action = None
        cs.core.current = None
        if cs.completion is not None:
            cs.completion.cancel()
            cs.completion = None
        self._flush_residual_skip(cs)
        self._dispatch(cs)

    def _exit_thread(self, cs: _CoreSched, thread: KThread, value) -> None:
        tracer = self.machine.tracer
        if tracer.enabled:
            tracer.thread_exit(thread)
        thread.state = ThreadState.DEAD
        thread.action = None
        thread.exit_value = value
        cs.core.current = None
        if cs.completion is not None:
            cs.completion.cancel()
            cs.completion = None
        self._flush_residual_skip(cs)
        thread.exited.succeed(value)
        self._dispatch(cs)

    # ------------------------------------------------------------------ #
    # accounting
    # ------------------------------------------------------------------ #

    def _account(self, cs: _CoreSched) -> None:
        """Charge the running thread for CPU time since the last mark.

        ``irq_skip`` holds stolen interrupt time that must not be billed
        to the thread; when the whole elapsed interval (or more) was
        stolen — an accounting point landing *inside* an IRQ stretch —
        the residual skip carries forward instead of being clobbered.
        """
        thread = cs.core.current
        now = self.sim.now
        raw = now - cs.acct_mark
        dt = raw - cs.irq_skip
        cs.acct_mark = now
        if dt <= 0:
            cs.irq_skip -= raw
            return
        cs.irq_skip = 0
        if thread is None:
            return
        thread.cputime_ns += dt
        thread.vruntime += dt * NICE_0_WEIGHT // thread.weight
        if isinstance(thread.action, Compute):
            done = cs.core.wall_to_work(dt)
            thread.remaining_work = max(0, thread.remaining_work - done)
        self._update_min_vruntime(cs)

    def _update_min_vruntime(self, cs: _CoreSched) -> None:
        candidates = []
        if cs.core.current is not None:
            candidates.append(cs.core.current.vruntime)
        head = self._peek_vruntime(cs)
        if head is not None:
            candidates.append(head)
        if candidates:
            cs.min_vruntime = max(cs.min_vruntime, min(candidates))

    # ------------------------------------------------------------------ #
    # preemption
    # ------------------------------------------------------------------ #

    def _check_preempt_wakeup(self, cs: _CoreSched, woken: KThread) -> None:
        current = cs.core.current
        if current is None:
            return
        self._account(cs)
        gran_v = config.SCHED_WAKEUP_GRANULARITY_NS * NICE_0_WEIGHT // woken.weight
        if woken.vruntime + gran_v < current.vruntime:
            self._preempt(cs)
        else:
            self._ensure_tick(cs)

    def _preempt(self, cs: _CoreSched) -> None:
        thread = cs.core.current
        self._account(cs)
        thread.preemptions += 1
        tracer = self.machine.tracer
        if tracer.enabled:
            tracer.thread_preempt(thread)
        thread.state = ThreadState.RUNNABLE
        thread.runnable_since = self.sim.now
        cs.core.current = None
        if cs.completion is not None:
            cs.completion.cancel()
            cs.completion = None
        self._flush_residual_skip(cs)
        self._enqueue(cs, thread)
        self._dispatch(cs)

    # ------------------------------------------------------------------ #
    # scheduling tick
    # ------------------------------------------------------------------ #

    def _ensure_tick(self, cs: _CoreSched) -> None:
        if cs.tick is None and cs.rq_len > 0 and cs.core.current is not None:
            cs.tick = self.sim.call_after(config.SCHED_TICK_NS, self._on_tick, cs)

    def _on_tick(self, cs: _CoreSched) -> None:
        cs.tick = None
        current = cs.core.current
        if current is None or cs.rq_len == 0:
            return
        self._account(cs)
        ran = self.sim.now - current.run_since
        if ran >= self._slice_for(cs, current):
            self._preempt(cs)
        else:
            self._ensure_tick(cs)

    def _slice_for(self, cs: _CoreSched, thread: KThread) -> int:
        total_weight = thread.weight
        for entry in cs.runqueue:
            t = entry[2]
            if t is not None:
                total_weight += t.weight
        share = config.SCHED_LATENCY_NS * thread.weight // total_weight
        return max(share, config.SCHED_MIN_GRANULARITY_NS)

    # ------------------------------------------------------------------ #

    def _irq_idle_done(self, cs: _CoreSched) -> None:
        if self.sim.now < cs.irq_busy_until:
            return  # superseded by a later-queued handler
        if cs.core.current is None and cs.switching is None and cs.rq_len == 0:
            cs.core.mark_idle()
