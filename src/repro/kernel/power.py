"""Frequency governors and a RAPL-like energy meter.

The power model is deliberately simple but physically shaped:

* a constant package floor (uncore, DRAM refresh share);
* per-core leakage when idle;
* per-core active power scaling as ``(f / f_max) ** FREQ_POWER_EXP``
  (dynamic power ∝ f·V² with V roughly ∝ f).

Energy is integrated piecewise-exactly: every busy/idle or frequency
transition closes the previous interval at its known power draw, so the
meter is an exact integral of the model, not a sampled approximation.

Governors (paper §5.4, Figure 13):

* ``performance`` — all cores pinned at max frequency;
* ``ondemand`` — per-core sampling every 10 ms: above the up-threshold
  jump to max, otherwise scale frequency down proportionally.  Lower
  frequency stretches execution, so CPU *utilization rises* while power
  falls — the trade-off Figure 13 illustrates.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List

from repro import config

if TYPE_CHECKING:  # pragma: no cover
    from repro.kernel.cpu import Core
    from repro.kernel.machine import Machine


def core_power_w(busy: bool, freq_hz: int, base_freq_hz: int) -> float:
    """Instantaneous per-core power draw under the model."""
    if not busy:
        return config.CORE_IDLE_W
    rel = freq_hz / base_freq_hz
    dynamic = (config.CORE_ACTIVE_MAX_W - config.CORE_IDLE_W) * (
        rel ** config.FREQ_POWER_EXP
    )
    return config.CORE_IDLE_W + dynamic


class PowerMeter:
    """Integrates package energy over simulated time (RAPL analogue)."""

    def __init__(self, machine: "Machine"):
        self.machine = machine
        self.sim = machine.sim
        self._last_t: List[int] = [0] * len(machine.cores)
        self._energy_j: float = 0.0

    def on_core_transition(self, core: "Core") -> None:
        """Close the open interval for ``core`` at its *previous* state.

        Must be called *before* the caller mutates busy/idle or freq —
        :meth:`Core.mark_busy`/:meth:`mark_idle` call it first, and the
        governor calls it before writing the new frequency.
        """
        self._integrate(core)

    def _integrate(self, core: "Core") -> None:
        now = self.sim.now
        dt = now - self._last_t[core.index]
        if dt > 0:
            watts = core_power_w(core.is_busy, core.freq, core.base_freq)
            self._energy_j += watts * dt * 1e-9
            self._last_t[core.index] = now

    def read_joules(self) -> float:
        """Current cumulative package energy (closes all open intervals)."""
        for core in self.machine.cores:
            self._integrate(core)
        pkg = config.PKG_IDLE_W * self.sim.now * 1e-9
        return self._energy_j + pkg

    def peek_joules(self) -> float:
        """Like :meth:`read_joules` but pure: open intervals are summed
        without being closed.  The checkpoint layer reads through here —
        closing intervals would regroup the float accumulation
        (``w*(dt1+dt2)`` vs ``w*dt1 + w*dt2``) and nudge the final
        energy by an ulp, breaking byte-identical continuation."""
        now = self.sim.now
        pending = 0.0
        for core in self.machine.cores:
            dt = now - self._last_t[core.index]
            if dt > 0:
                pending += core_power_w(core.is_busy, core.freq,
                                        core.base_freq) * dt * 1e-9
        pkg = config.PKG_IDLE_W * now * 1e-9
        return self._energy_j + pending + pkg


class PerformanceGovernor:
    """All cores at maximum frequency, always."""

    name = "performance"

    def __init__(self, machine: "Machine"):
        for core in machine.cores:
            core.freq = machine.cfg.base_freq_hz

    def start(self) -> None:
        """Nothing to sample."""


class OndemandGovernor:
    """Per-core demand-driven frequency scaling (Linux ondemand)."""

    name = "ondemand"

    def __init__(self, machine: "Machine"):
        self.machine = machine
        self.sim = machine.sim
        self._busy_snapshot = [0] * len(machine.cores)
        self._last_sample = 0

    def start(self) -> None:
        self.sim.call_after(config.ONDEMAND_SAMPLE_NS, self._sample)

    def _sample(self) -> None:
        now = self.sim.now
        window = now - self._last_sample
        self._last_sample = now
        for core in self.machine.cores:
            core.checkpoint_busy()
            busy = core.busy_ns + core.irq_ns + core.switch_ns
            util = core.utilization(busy - self._busy_snapshot[core.index], window)
            self._busy_snapshot[core.index] = busy
            self._set_freq(core, util)
        self.sim.call_after(config.ONDEMAND_SAMPLE_NS, self._sample)

    def _set_freq(self, core: "Core", util: float) -> None:
        cfg = self.machine.cfg
        if util >= config.ONDEMAND_UP_THRESHOLD:
            new_freq = cfg.base_freq_hz
        else:
            target = cfg.base_freq_hz * util / config.ONDEMAND_UP_THRESHOLD
            new_freq = int(min(cfg.base_freq_hz, max(cfg.min_freq_hz, target)))
        if new_freq != core.freq:
            self.machine.power.on_core_transition(core)
            core.freq = new_freq
            self.machine.scheduler.on_freq_change(core)


def make_governor(machine: "Machine", name: str):
    """Factory for governors by sysfs name."""
    if name == "performance":
        return PerformanceGovernor(machine)
    if name == "ondemand":
        return OndemandGovernor(machine)
    raise ValueError(f"unknown governor {name!r}")
