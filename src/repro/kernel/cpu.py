"""CPU cores: frequency, time accounting, IRQ time injection.

A core is a resource the scheduler multiplexes threads onto.  It tracks:

* the current frequency (set by the governor);
* busy / idle / IRQ time, for CPU-utilization metrics and the power model;
* when it last became idle (the cpuidle model derives the C-state exit
  latency from the length of the idle interval).

Work-vs-wall conversion: thread work is specified in *base-frequency
nanoseconds*; at frequency ``f`` a chunk of ``w`` base-ns takes
``w * base / f`` wall-ns.  The ``performance`` governor keeps ``f = base``
so the common path is the identity.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro import config

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.kernel.thread import KThread


class Core:
    """One CPU core of the simulated node."""

    def __init__(self, machine: "Machine", index: int):  # noqa: F821
        self.machine = machine
        self.sim = machine.sim
        self.index = index
        self.base_freq = machine.cfg.base_freq_hz
        self.freq = self.base_freq
        #: NUMA node this core belongs to (contiguous blocks across the
        #: configured socket count; 0 for the paper's single-node box)
        nodes = max(1, getattr(machine.cfg, "numa_nodes", 1))
        self.node = index * nodes // max(1, machine.cfg.num_cores)

        self.current: Optional["KThread"] = None
        #: thread that ran most recently (cache-warmth tracking)
        self.last_thread: Optional["KThread"] = None
        #: hyper-threading sibling (None = SMT off for this core)
        self.smt_sibling: Optional["Core"] = None

        # accounting
        self.busy_ns = 0          # thread execution time
        self.irq_ns = 0           # interrupt/softirq stolen time
        self.switch_ns = 0        # context-switch overhead time
        #: C-state exit stalls: inside the busy span but not executing
        #: instructions — excluded from getrusage/mpstat-style CPU
        #: metrics, which is what the paper's figures report
        self.exit_stall_ns = 0
        self._busy_since: Optional[int] = None
        self.idle_since: Optional[int] = 0  # core starts idle at t=0

        # pending IRQ time to splice into the running thread's timeline
        self.irq_backlog = 0

        # fault-injection accounting (repro.faults): SMI-style freezes
        self.smi_stalls = 0
        self.smi_stall_ns = 0

    # ------------------------------------------------------------------ #
    # work/wall conversion
    # ------------------------------------------------------------------ #

    def _effective_freq(self) -> int:
        """Current execution speed: governor frequency, derated when the
        SMT sibling is simultaneously executing."""
        freq = self.freq
        sib = self.smt_sibling
        if sib is not None and sib.is_busy:
            freq = int(freq * config.SMT_SLOWDOWN)
        return max(1, freq)

    def work_to_wall(self, work_ns: int) -> int:
        """Wall-clock ns needed to execute ``work_ns`` base-ns of work."""
        freq = self._effective_freq()
        if freq == self.base_freq:
            return work_ns
        wall = (work_ns * self.base_freq + freq - 1) // freq
        return max(wall, 1) if work_ns > 0 else 0

    def wall_to_work(self, wall_ns: int) -> int:
        """Base-ns of work accomplished in ``wall_ns`` at current speed."""
        freq = self._effective_freq()
        if freq == self.base_freq:
            return wall_ns
        return (wall_ns * freq) // self.base_freq

    # ------------------------------------------------------------------ #
    # busy/idle bookkeeping (power model hooks)
    # ------------------------------------------------------------------ #

    def mark_busy(self) -> None:
        """Transition idle→busy (dispatch, IRQ on idle core)."""
        if self._busy_since is None:
            # integrate the closing idle interval at its *old* power draw
            self.machine.power.on_core_transition(self)
            self._settle_sibling_speed(before=True)
            self._busy_since = self.sim.now
            self.idle_since = None
            self._settle_sibling_speed(before=False)

    def mark_idle(self) -> None:
        """Transition busy→idle (runqueue drained)."""
        # integrate the closing busy interval at its *old* power draw
        self.machine.power.on_core_transition(self)
        if self._busy_since is not None:
            self._settle_sibling_speed(before=True)
            self.busy_ns += self.sim.now - self._busy_since
            self._busy_since = None
            self._settle_sibling_speed(before=False)
        else:
            self._busy_since = None
        self.idle_since = self.sim.now

    def _settle_sibling_speed(self, before: bool) -> None:
        """SMT coupling: this core's busy-state flip changes the
        sibling's execution speed.  Before the flip, charge the
        sibling's progress at the old speed; after it, re-program its
        in-flight chunk at the new speed."""
        sib = self.smt_sibling
        if sib is None or sib.current is None:
            return
        if before:
            self.machine.scheduler.account_core(sib)
        else:
            self.machine.scheduler.reprogram_core(sib)

    def checkpoint_busy(self) -> None:
        """Fold accumulated busy time into the counter without a state change.

        Used by utilization sampling (the ondemand governor) so a long
        uninterrupted run does not hide inside ``_busy_since``.
        """
        if self._busy_since is not None:
            now = self.sim.now
            self.busy_ns += now - self._busy_since
            self._busy_since = now

    @property
    def is_busy(self) -> bool:
        return self._busy_since is not None

    def idle_duration(self) -> int:
        """How long the core has currently been idle (0 if busy)."""
        if self.idle_since is None:
            return 0
        return self.sim.now - self.idle_since

    # ------------------------------------------------------------------ #
    # IRQ time injection
    # ------------------------------------------------------------------ #

    def inject_irq_time(self, duration_ns: int) -> None:
        """Steal ``duration_ns`` of CPU time for interrupt handling.

        If a thread is running, its current chunk is stretched by the
        handler duration (the scheduler re-programs the completion); if
        the core is idle, the time is simply charged as IRQ time.
        """
        self.irq_ns += duration_ns
        self.machine.scheduler.on_irq_injected(self, duration_ns)

    def smi_stall(self, duration_ns: int) -> None:
        """Freeze the core for ``duration_ns`` (SMI / machine-check /
        page-fault-storm style stall, used by the fault injectors).

        Mechanically an uninterruptible stolen-time window — the same
        splice as :meth:`inject_irq_time` — but accounted separately so
        chaos reports can attribute it.
        """
        self.smi_stalls += 1
        self.smi_stall_ns += duration_ns
        self.inject_irq_time(duration_ns)

    # ------------------------------------------------------------------ #

    def utilization(self, window_busy_ns: int, window_ns: int) -> float:
        """Helper: clamp a busy/window ratio into [0, 1]."""
        if window_ns <= 0:
            return 0.0
        return min(1.0, max(0.0, window_busy_ns / window_ns))

    def total_busy_ns(self) -> int:
        """Busy time including any open running interval."""
        open_interval = 0
        if self._busy_since is not None:
            open_interval = self.sim.now - self._busy_since
        return self.busy_ns + open_interval

    def __repr__(self) -> str:
        state = "busy" if self.is_busy else "idle"
        return f"<Core {self.index} {state} f={self.freq/1e9:.2f}GHz>"


def default_cold_penalty(chunk_work_ns: int) -> int:
    """One-time cold-cache penalty for a thread dispatched after another
    thread used the core.

    The penalty models the indirect cost of a context switch: the first
    ``CACHE_WARMUP_NS`` of work run ``CACHE_WARMUP_FACTOR``× slower.  For
    chunks shorter than the warmup window the penalty is proportionally
    smaller, so a woken thread that only executes a trylock does not pay
    the full toll.
    """
    window = min(chunk_work_ns, config.CACHE_WARMUP_NS)
    return int(window * (config.CACHE_WARMUP_FACTOR - 1.0))
