"""Discrete-event simulation engine.

A minimal, fast, from-scratch event-driven simulator with an integer
nanosecond clock.  Everything else in :mod:`repro` — the CPU scheduler,
the NIC, the traffic sources — is built on top of this package.

Public surface:

* :class:`~repro.sim.core.Simulator` — the event loop and virtual clock.
* :class:`~repro.sim.core.Event` — a one-shot occurrence others can wait on.
* :class:`~repro.sim.process.Process` — a generator-coroutine process.
* :class:`~repro.sim.rng.RandomStreams` — named, reproducible RNG streams.
* Time helpers: :data:`NS`, :data:`US`, :data:`MS`, :data:`SEC` and
  :func:`ns_to_us` / :func:`us_to_ns` conversions.
"""

from repro.sim.core import Event, Simulator, SimulationError
from repro.sim.process import Process, Timeout, WaitEvent, WaitProcess
from repro.sim.rng import RandomStreams
from repro.sim.units import MS, NS, SEC, US, ns_to_ms, ns_to_sec, ns_to_us, us_to_ns

__all__ = [
    "Event",
    "Simulator",
    "SimulationError",
    "Process",
    "Timeout",
    "WaitEvent",
    "WaitProcess",
    "RandomStreams",
    "NS",
    "US",
    "MS",
    "SEC",
    "ns_to_us",
    "ns_to_ms",
    "ns_to_sec",
    "us_to_ns",
]
