"""The original binary-heap event loop, frozen as a reference oracle.

This is the pre-calendar-queue :class:`~repro.sim.core.Simulator`,
kept verbatim (minus the monitor hook) for two consumers:

* the property tests, which drive random schedule/cancel/stop sequences
  through both engines and assert identical fire order;
* ``repro bench``, which reports the calendar queue's events/sec as a
  speedup over this loop so the perf trajectory has a fixed origin.

It is **not** part of the simulation: nothing under :mod:`repro` other
than benches and tests may import it.  Bug fixes to the live core do not
need to be mirrored here — the point is that this file never changes.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, List, Optional

from repro.sim.core import SimulationError

#: sentinel stored in entry[3] once the callback has actually run
_FIRED = object()


class HeapHandle:
    """Cancellable reference to a scheduled callback (tombstone flag)."""

    __slots__ = ("_entry",)

    def __init__(self, entry: list):
        self._entry = entry

    @property
    def time(self) -> int:
        return self._entry[0]

    @property
    def cancelled(self) -> bool:
        return self._entry[3] is None

    @property
    def fired(self) -> bool:
        return self._entry[3] is _FIRED

    def cancel(self) -> None:
        if self._entry[3] is not _FIRED:
            self._entry[3] = None


class HeapSimulator:
    """The pre-PR event loop: one heap, tombstones popped lazily.

    Cancelled entries stay in the heap until their time comes up, so a
    cancel-heavy workload grows the heap without bound — the exact
    behaviour the calendar queue's compaction removes, and the baseline
    the churn microbenchmark measures against.
    """

    def __init__(self) -> None:
        self.now: int = 0
        self._heap: List[list] = []
        self._seq: int = 0
        self._running = False
        self._stopped = False

    def call_at(self, when: int, fn: Callable[..., None], *args: Any) -> HeapHandle:
        if when < self.now:
            raise SimulationError(
                f"cannot schedule at t={when} (now={self.now}): time travels forward"
            )
        self._seq += 1
        entry = [when, self._seq, args, fn]
        heapq.heappush(self._heap, entry)
        return HeapHandle(entry)

    def call_after(self, delay: int, fn: Callable[..., None], *args: Any) -> HeapHandle:
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        return self.call_at(self.now + delay, fn, *args)

    def step(self) -> bool:
        heap = self._heap
        while heap:
            entry = heapq.heappop(heap)
            fn = entry[3]
            if fn is None:
                continue
            entry[3] = _FIRED
            self.now = entry[0]
            fn(*entry[2])
            return True
        return False

    def run(self, until: Optional[int] = None) -> None:
        if self._running:
            raise SimulationError("simulator is re-entrant only via step()")
        self._running = True
        self._stopped = False
        heap = self._heap
        pop = heapq.heappop
        try:
            while heap and not self._stopped:
                if until is not None and heap[0][0] > until:
                    break
                entry = pop(heap)
                fn = entry[3]
                if fn is None:
                    continue
                entry[3] = _FIRED
                self.now = entry[0]
                fn(*entry[2])
        finally:
            self._running = False
        if until is not None and self.now < until and not self._stopped:
            self.now = until

    def stop(self) -> None:
        self._stopped = True

    @property
    def pending(self) -> int:
        """Stored entries, tombstones included (the old over-report)."""
        return len(self._heap)

    def peek(self) -> Optional[int]:
        heap = self._heap
        while heap and heap[0][3] is None:
            heapq.heappop(heap)
        return heap[0][0] if heap else None
