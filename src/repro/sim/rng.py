"""Named, reproducible random streams.

Every stochastic component in the simulation (each sleep service, each
traffic source, the scheduler's noise terms, ...) draws from its own
named stream so that adding randomness to one component never perturbs
another — the classic common-random-numbers discipline for comparable
experiments.

Scalar draws use :class:`random.Random` (much faster than numpy for one
value at a time); bulk draws can request a numpy ``Generator``.
"""

from __future__ import annotations

import hashlib
import random
from typing import Dict

import numpy as np


def _derive_seed(master_seed: int, name: str) -> int:
    """Derive a 64-bit child seed from (master_seed, stream name).

    Uses BLAKE2b rather than Python's ``hash`` so the derivation is stable
    across interpreter runs and PYTHONHASHSEED settings.
    """
    digest = hashlib.blake2b(
        f"{master_seed}:{name}".encode(), digest_size=8
    ).digest()
    return int.from_bytes(digest, "little")


class RandomStreams:
    """A factory of independent, deterministically seeded RNG streams."""

    def __init__(self, master_seed: int = 0):
        self.master_seed = master_seed
        self._streams: Dict[str, random.Random] = {}
        self._np_streams: Dict[str, np.random.Generator] = {}

    def stream(self, name: str) -> random.Random:
        """The scalar (stdlib) RNG for ``name``, created on first use."""
        rng = self._streams.get(name)
        if rng is None:
            rng = random.Random(_derive_seed(self.master_seed, name))
            self._streams[name] = rng
        return rng

    def numpy_stream(self, name: str) -> np.random.Generator:
        """The numpy RNG for ``name`` (independent of the scalar stream)."""
        gen = self._np_streams.get(name)
        if gen is None:
            gen = np.random.default_rng(_derive_seed(self.master_seed, name + ":np"))
            self._np_streams[name] = gen
        return gen

    def fork(self, name: str) -> "RandomStreams":
        """A child factory whose streams are independent of the parent's."""
        return RandomStreams(_derive_seed(self.master_seed, "fork:" + name))
