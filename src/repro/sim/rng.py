"""Named, reproducible random streams.

Every stochastic component in the simulation (each sleep service, each
traffic source, the scheduler's noise terms, ...) draws from its own
named stream so that adding randomness to one component never perturbs
another — the classic common-random-numbers discipline for comparable
experiments.

Scalar draws use :class:`random.Random` (much faster than numpy for one
value at a time); bulk draws can request a numpy ``Generator``.
"""

from __future__ import annotations

import hashlib
import random
from typing import Dict

import numpy as np


def _derive_seed(master_seed: int, name: str) -> int:
    """Derive a 64-bit child seed from (master_seed, stream name).

    Uses BLAKE2b rather than Python's ``hash`` so the derivation is stable
    across interpreter runs and PYTHONHASHSEED settings.
    """
    digest = hashlib.blake2b(
        f"{master_seed}:{name}".encode(), digest_size=8
    ).digest()
    return int.from_bytes(digest, "little")


class RandomStreams:
    """A factory of independent, deterministically seeded RNG streams."""

    def __init__(self, master_seed: int = 0):
        self.master_seed = master_seed
        self._streams: Dict[str, random.Random] = {}
        self._np_streams: Dict[str, np.random.Generator] = {}

    def stream(self, name: str) -> random.Random:
        """The scalar (stdlib) RNG for ``name``, created on first use."""
        rng = self._streams.get(name)
        if rng is None:
            rng = random.Random(_derive_seed(self.master_seed, name))
            self._streams[name] = rng
        return rng

    def numpy_stream(self, name: str) -> np.random.Generator:
        """The numpy RNG for ``name`` (independent of the scalar stream)."""
        gen = self._np_streams.get(name)
        if gen is None:
            gen = np.random.default_rng(_derive_seed(self.master_seed, name + ":np"))
            self._np_streams[name] = gen
        return gen

    def fork(self, name: str) -> "RandomStreams":
        """A child factory whose streams are independent of the parent's."""
        return RandomStreams(_derive_seed(self.master_seed, "fork:" + name))

    def snapshot_state(self) -> dict:
        """Exact, JSON-serializable state of every materialized stream.

        Both ``random.Random.getstate()`` and numpy's
        ``bit_generator.state`` are plain data, so — unlike the event
        calendar — RNG state round-trips losslessly across processes.
        """
        return {
            "master_seed": self.master_seed,
            "streams": {
                name: [s[0], list(s[1]), s[2]]
                for name, s in (
                    (n, rng.getstate()) for n, rng in self._streams.items()
                )
            },
            "np_streams": {
                name: gen.bit_generator.state
                for name, gen in self._np_streams.items()
            },
        }

    def restore_state(self, state: dict) -> None:
        """Pin every stream to the generator states in ``state``.

        Streams not yet materialized are created first (via the normal
        seed derivation) and then overwritten, so restore works in a
        fresh process that has drawn nothing.
        """
        if state["master_seed"] != self.master_seed:
            raise ValueError(
                f"snapshot was taken under master_seed="
                f"{state['master_seed']}, not {self.master_seed}"
            )
        for name, (version, internal, gauss_next) in sorted(
            state["streams"].items()
        ):
            # getstate() -> (version, internal_state_tuple, gauss_next);
            # setstate wants the inner state back as a tuple
            self.stream(name).setstate((version, tuple(internal), gauss_next))
        for name, gen_state in sorted(state["np_streams"].items()):
            self.numpy_stream(name).bit_generator.state = gen_state
