"""The event loop: a binary-heap calendar queue over an integer ns clock.

The design favours raw speed: scheduling a callback is a single
``heappush`` of a 4-tuple and the hot loop in :meth:`Simulator.run` is a
tight ``heappop`` cycle.  Cancellation is handled with a tombstone flag
(index 3 of the entry) rather than heap surgery, which is the standard
trick for high-churn timer queues.

Two levels of abstraction are offered:

* raw callbacks (:meth:`Simulator.call_at` / :meth:`Simulator.call_after`)
  used by the performance-critical subsystems (scheduler, NIC);
* :class:`Event` objects, used where several parties need to wait on one
  occurrence (process joins, IRQ lines, experiment completion).
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, List, Optional


class SimulationError(RuntimeError):
    """Raised for invalid uses of the simulator (e.g. scheduling in the past)."""


#: sentinel stored in entry[3] once the callback has actually run, so a
#: late cancel() cannot masquerade as having prevented execution
_FIRED = object()


class Handle:
    """A cancellable reference to a scheduled callback.

    ``Handle`` wraps the mutable heap entry; calling :meth:`cancel` marks
    the entry dead without touching the heap, and the run loop discards it
    on pop.  Entries are marked fired when their callback runs, so
    :attr:`cancelled` and :attr:`fired` stay mutually exclusive even if
    :meth:`cancel` is called after the fact.
    """

    __slots__ = ("_entry",)

    def __init__(self, entry: list):
        self._entry = entry

    @property
    def time(self) -> int:
        """The simulated time at which the callback is due."""
        return self._entry[0]

    @property
    def cancelled(self) -> bool:
        """True if :meth:`cancel` was called before the callback fired."""
        return self._entry[3] is None

    @property
    def fired(self) -> bool:
        """True once the callback has actually run."""
        return self._entry[3] is _FIRED

    def cancel(self) -> None:
        """Prevent the callback from running.  Idempotent; a no-op on an
        entry whose callback already ran (which stays ``fired``, not
        ``cancelled``)."""
        if self._entry[3] is not _FIRED:
            self._entry[3] = None


class Event:
    """A one-shot occurrence that callbacks (and processes) can wait on.

    An event starts untriggered; :meth:`succeed` fires it exactly once,
    delivering an optional value to every registered callback.  Callbacks
    added after the event fired run immediately (same simulated instant).
    """

    __slots__ = ("sim", "triggered", "value", "_callbacks")

    def __init__(self, sim: "Simulator"):
        self.sim = sim
        self.triggered = False
        self.value: Any = None
        self._callbacks: List[Callable[["Event"], None]] = []

    def succeed(self, value: Any = None) -> "Event":
        """Fire the event, invoking all waiters synchronously.

        Raises :class:`SimulationError` if the event already fired.
        """
        if self.triggered:
            raise SimulationError("event already triggered")
        self.triggered = True
        self.value = value
        callbacks, self._callbacks = self._callbacks, []
        for cb in callbacks:
            cb(self)
        return self

    def add_callback(self, callback: Callable[["Event"], None]) -> None:
        """Register ``callback(event)``; runs now if already triggered."""
        if self.triggered:
            callback(self)
        else:
            self._callbacks.append(callback)


class Simulator:
    """The discrete-event loop and virtual clock.

    Attributes:
        now: current simulated time in integer nanoseconds.
    """

    def __init__(self) -> None:
        self.now: int = 0
        self._heap: List[list] = []
        self._seq: int = 0
        self._running = False
        self._stopped = False
        #: optional invariant monitor (repro.check).  None keeps the
        #: run loop on its fast path; when set, on_execute() observes
        #: every live event pop (clock monotonicity) and RxQueues
        #: self-register for conservation checks at construction.
        self.monitor = None

    # ------------------------------------------------------------------ #
    # Scheduling primitives
    # ------------------------------------------------------------------ #

    def call_at(self, when: int, fn: Callable[..., None], *args: Any) -> Handle:
        """Schedule ``fn(*args)`` at absolute simulated time ``when``."""
        if when < self.now:
            raise SimulationError(
                f"cannot schedule at t={when} (now={self.now}): time travels forward"
            )
        self._seq += 1
        entry = [when, self._seq, args, fn]
        heapq.heappush(self._heap, entry)
        return Handle(entry)

    def call_after(self, delay: int, fn: Callable[..., None], *args: Any) -> Handle:
        """Schedule ``fn(*args)`` after ``delay`` nanoseconds."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        return self.call_at(self.now + delay, fn, *args)

    def event(self) -> Event:
        """Create a fresh untriggered :class:`Event` bound to this simulator."""
        return Event(self)

    def timeout_event(self, delay: int, value: Any = None) -> Event:
        """An :class:`Event` that fires automatically after ``delay`` ns."""
        ev = Event(self)
        self.call_after(delay, ev.succeed, value)
        return ev

    # ------------------------------------------------------------------ #
    # Run loop
    # ------------------------------------------------------------------ #

    def step(self) -> bool:
        """Run the single earliest pending callback.

        Returns False when the calendar is empty (nothing ran).
        """
        heap = self._heap
        while heap:
            entry = heapq.heappop(heap)
            fn = entry[3]
            if fn is None:  # tombstone from Handle.cancel()
                continue
            if self.monitor is not None:
                self.monitor.on_execute(self.now, entry[0])
            entry[3] = _FIRED
            self.now = entry[0]
            fn(*entry[2])
            return True
        return False

    def run(self, until: Optional[int] = None) -> None:
        """Run callbacks until the calendar empties or ``until`` is reached.

        When ``until`` is given, the clock is advanced exactly to ``until``
        even if the last event fired earlier, so measurement windows have a
        well-defined end time.
        """
        if self._running:
            raise SimulationError("simulator is re-entrant only via step()")
        self._running = True
        self._stopped = False
        heap = self._heap
        pop = heapq.heappop
        try:
            while heap and not self._stopped:
                if until is not None and heap[0][0] > until:
                    break
                entry = pop(heap)
                fn = entry[3]
                if fn is None:
                    continue
                if self.monitor is not None:
                    self.monitor.on_execute(self.now, entry[0])
                entry[3] = _FIRED
                self.now = entry[0]
                fn(*entry[2])
        finally:
            self._running = False
        if until is not None and self.now < until and not self._stopped:
            self.now = until

    def stop(self) -> None:
        """Halt :meth:`run` after the current callback returns."""
        self._stopped = True

    @property
    def pending(self) -> int:
        """Number of scheduled entries (including tombstones)."""
        return len(self._heap)

    def peek(self) -> Optional[int]:
        """Time of the next live scheduled callback, or None if empty."""
        heap = self._heap
        while heap and heap[0][3] is None:
            heapq.heappop(heap)
        return heap[0][0] if heap else None
