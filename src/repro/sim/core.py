"""The event loop: a bucketed calendar queue over an integer ns clock.

The paper's §3.1 contrasts the kernel's hierarchical timer wheel with
the precise ``hr_sleep`` path; the same design argument applies to the
simulator itself, which sits under every figure, sweep, and chaos run.
This engine therefore splits the pending-event store the way a calendar
queue does (generalizing :mod:`repro.kernel.timerwheel`):

* **near future** — a ring of ``_NUM_BUCKETS`` buckets, each
  ``2**_BUCKET_BITS`` ns wide.  Scheduling is a plain ``list.append``;
  a bucket is sorted once, when the clock reaches it, and then drained
  through a cursor.  Bucket storage is recycled through a freelist so
  the hot path allocates nothing but the entry itself.
* **far future** — events beyond the ring's horizon fall back to a
  binary heap, merged with the near stream at pop time.
* **in-drain arrivals** — callbacks scheduling into the tick currently
  being drained (``call_after(0, ...)`` chains) go to a small side heap
  merged with the sorted run.

Cancellation is still a tombstone flag (no structure surgery), but the
engine keeps a live-entry counter and **compacts** — physically drops
tombstones from every store — once they outnumber the live entries, so
cancel-heavy workloads (adaptive T_S re-arms, watchdog early wakes) no
longer grow the store without bound.

Fire order is exactly the old binary-heap order — ``(time, seq)``, FIFO
among same-time events — which the property tests assert against the
frozen pre-calendar loop in :mod:`repro.sim.reference`.

Two levels of abstraction are offered:

* raw callbacks (:meth:`Simulator.call_at` / :meth:`Simulator.call_after`)
  used by the performance-critical subsystems (scheduler, NIC);
* :class:`Event` objects, used where several parties need to wait on one
  occurrence (process joins, IRQ lines, experiment completion).
"""

from __future__ import annotations

import hashlib
import json
from heapq import heapify, heappop, heappush
from typing import Any, Callable, List, Optional

#: bucket width: 2**16 = 65536 ns (~65 µs — wide enough that µs-scale
#: event chains land many-per-bucket, amortizing the sort-on-stage)
_BUCKET_BITS = 16
#: near-future ring size; horizon = _NUM_BUCKETS << _BUCKET_BITS ≈ 4.2 ms
_NUM_BUCKETS = 64
_BUCKET_MASK = _NUM_BUCKETS - 1
#: recycled bucket-storage lists kept around
_FREELIST_MAX = 32
#: tombstones tolerated before a compaction is considered
_COMPACT_MIN = 64


class SimulationError(RuntimeError):
    """Raised for invalid uses of the simulator (e.g. scheduling in the past)."""


#: sentinel stored in entry[3] once the callback has actually run, so a
#: late cancel() cannot masquerade as having prevented execution
_FIRED = object()


class Handle:
    """A cancellable reference to a scheduled callback.

    ``Handle`` wraps the mutable store entry; calling :meth:`cancel`
    marks the entry dead without touching the store (the run loop and
    the compactor discard it later).  Entries are marked fired when
    their callback runs, so :attr:`cancelled` and :attr:`fired` stay
    mutually exclusive even if :meth:`cancel` is called after the fact.
    """

    __slots__ = ("_entry", "_sim")

    def __init__(self, entry: list, sim: "Simulator"):
        self._entry = entry
        self._sim = sim

    @property
    def time(self) -> int:
        """The simulated time at which the callback is due."""
        return self._entry[0]

    @property
    def cancelled(self) -> bool:
        """True if :meth:`cancel` was called before the callback fired."""
        return self._entry[3] is None

    @property
    def fired(self) -> bool:
        """True once the callback has actually run."""
        return self._entry[3] is _FIRED

    def cancel(self) -> None:
        """Prevent the callback from running.  Idempotent; a no-op on an
        entry whose callback already ran (which stays ``fired``, not
        ``cancelled``)."""
        entry = self._entry
        fn = entry[3]
        if fn is None or fn is _FIRED:
            return
        entry[3] = None
        sim = self._sim
        sim._live -= 1
        dead = sim._dead + 1
        sim._dead = dead
        if dead > _COMPACT_MIN and dead > sim._live:
            sim._compact()


class Event:
    """A one-shot occurrence that callbacks (and processes) can wait on.

    An event starts untriggered; :meth:`succeed` fires it exactly once,
    delivering an optional value to every registered callback.  Callbacks
    added after the event fired run immediately (same simulated instant).
    """

    __slots__ = ("sim", "triggered", "value", "_callbacks")

    def __init__(self, sim: "Simulator"):
        self.sim = sim
        self.triggered = False
        self.value: Any = None
        self._callbacks: List[Callable[["Event"], None]] = []

    def succeed(self, value: Any = None) -> "Event":
        """Fire the event, invoking all waiters synchronously.

        Raises :class:`SimulationError` if the event already fired.
        """
        if self.triggered:
            raise SimulationError("event already triggered")
        self.triggered = True
        self.value = value
        callbacks, self._callbacks = self._callbacks, []
        for cb in callbacks:
            cb(self)
        return self

    def add_callback(self, callback: Callable[["Event"], None]) -> None:
        """Register ``callback(event)``; runs now if already triggered."""
        if self.triggered:
            callback(self)
        else:
            self._callbacks.append(callback)


class Simulator:
    """The discrete-event loop and virtual clock.

    Attributes:
        now: current simulated time in integer nanoseconds.
    """

    def __init__(self) -> None:
        self.now: int = 0
        self._seq: int = 0
        self._running = False
        self._stopped = False
        #: near-future ring; slot ``tick & _BUCKET_MASK`` holds the
        #: unsorted entries of bucket ``tick``
        self._buckets: List[list] = [[] for _ in range(_NUM_BUCKETS)]
        #: entries currently stored in the ring (tombstones included)
        self._near_count = 0
        #: far-future fallback heap (beyond the ring horizon)
        self._far: List[list] = []
        #: the sorted entries of the bucket being drained + its cursor
        self._run: list = []
        self._run_pos = 0
        #: tick the current run was staged from (-1: nothing staged);
        #: entries scheduled at ticks <= _run_tick go to ``_extra``
        self._run_tick = -1
        #: side heap for in-drain arrivals at ticks <= _run_tick
        self._extra: List[list] = []
        #: scheduled entries that are neither fired nor cancelled
        self._live = 0
        #: tombstones still occupying one of the stores
        self._dead = 0
        #: recycled bucket-storage lists
        self._freelist: List[list] = []
        #: optional invariant monitor (repro.check).  None keeps the
        #: run loop on its fast path; when set, on_execute() observes
        #: every live event pop (clock monotonicity) and RxQueues
        #: self-register for conservation checks at construction.
        self.monitor = None
        #: NIC components self-register here at construction so a
        #: checkpoint (repro.sim.snapshot) can enumerate them in a
        #: stable order without the Machine knowing the NIC topology
        self.rx_queues: list = []
        self.nic_ports: list = []

    # ------------------------------------------------------------------ #
    # Scheduling primitives
    # ------------------------------------------------------------------ #

    def call_at(self, when: int, fn: Callable[..., None], *args: Any) -> Handle:
        """Schedule ``fn(*args)`` at absolute simulated time ``when``."""
        if when < self.now:
            raise SimulationError(
                f"cannot schedule at t={when} (now={self.now}): time travels forward"
            )
        self._seq += 1
        entry = [when, self._seq, args, fn]
        self._live += 1
        # routing is inlined here and in call_after (not factored into a
        # helper): this is the hottest allocation site in the simulator
        # and the extra call shows up directly in events/sec
        tick = when >> _BUCKET_BITS
        run_tick = self._run_tick
        if tick <= run_tick:
            # the entry's bucket is already staged (or drained past).  If
            # it sorts after the staged tail it can extend the sorted run
            # directly — the common case for chains re-scheduling into
            # the current bucket — keeping the run-loop fast path hot.
            run = self._run
            if tick == run_tick and (not run or run[-1] < entry):
                run.append(entry)
            else:
                heappush(self._extra, entry)
        elif tick - (self.now >> _BUCKET_BITS) < _NUM_BUCKETS:
            self._buckets[tick & _BUCKET_MASK].append(entry)
            self._near_count += 1
        else:
            heappush(self._far, entry)
        return Handle(entry, self)

    def call_after(self, delay: int, fn: Callable[..., None], *args: Any) -> Handle:
        """Schedule ``fn(*args)`` after ``delay`` nanoseconds."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        now = self.now
        when = now + delay
        self._seq += 1
        entry = [when, self._seq, args, fn]
        self._live += 1
        tick = when >> _BUCKET_BITS
        run_tick = self._run_tick
        if tick <= run_tick:
            run = self._run
            if tick == run_tick and (not run or run[-1] < entry):
                run.append(entry)
            else:
                heappush(self._extra, entry)
        elif tick - (now >> _BUCKET_BITS) < _NUM_BUCKETS:
            self._buckets[tick & _BUCKET_MASK].append(entry)
            self._near_count += 1
        else:
            heappush(self._far, entry)
        return Handle(entry, self)

    def event(self) -> Event:
        """Create a fresh untriggered :class:`Event` bound to this simulator."""
        return Event(self)

    def timeout_event(self, delay: int, value: Any = None) -> Event:
        """An :class:`Event` that fires automatically after ``delay`` ns."""
        ev = Event(self)
        self.call_after(delay, ev.succeed, value)
        return ev

    # ------------------------------------------------------------------ #
    # Store maintenance
    # ------------------------------------------------------------------ #

    def _near_head(self) -> Optional[list]:
        """The earliest near-future entry, tombstones pruned, or None.

        Advances the drain cursor across exhausted buckets; the returned
        entry stays staged at the head of its store.
        """
        while True:
            run = self._run
            pos = self._run_pos
            n = len(run)
            while pos < n and run[pos][3] is None:
                pos += 1
                self._dead -= 1
            self._run_pos = pos
            extra = self._extra
            while extra and extra[0][3] is None:
                heappop(extra)
                self._dead -= 1
            if pos < n:
                head = run[pos]
                if extra and extra[0] < head:
                    return extra[0]
                return head
            if extra:
                return extra[0]
            if not self._near_count:
                return None
            # stage the next nonempty bucket in the window
            now_tick = self.now >> _BUCKET_BITS
            start = self._run_tick + 1
            if start < now_tick:
                start = now_tick
            buckets = self._buckets
            staged = None
            for tick in range(start, now_tick + _NUM_BUCKETS):
                lst = buckets[tick & _BUCKET_MASK]
                if lst:
                    # recycle the consumed run as this slot's new storage
                    del run[:]
                    buckets[tick & _BUCKET_MASK] = run
                    lst.sort()
                    self._run = lst
                    self._run_pos = 0
                    self._run_tick = tick
                    self._near_count -= len(lst)
                    staged = lst
                    break
            if staged is None:
                # only out-of-window tombstones remain in the ring
                return None

    def _pop_entry(self, limit: Optional[int] = None) -> Optional[list]:
        """Remove and return the earliest live entry, or None.

        With ``limit``, entries due after it are left in place and None
        is returned (the ``run(until=...)`` boundary).
        """
        near = self._near_head()
        far = self._far
        while far and far[0][3] is None:
            heappop(far)
            self._dead -= 1
        if far and (near is None or far[0] < near):
            if limit is not None and far[0][0] > limit:
                return None
            return heappop(far)
        if near is None:
            return None
        if limit is not None and near[0] > limit:
            return None
        run = self._run
        pos = self._run_pos
        if pos < len(run) and run[pos] is near:
            self._run_pos = pos + 1
        else:
            heappop(self._extra)
        return near

    def _compact(self) -> None:
        """Physically drop every tombstone from every store.

        Called once tombstones outnumber live entries, so a cancel-heavy
        workload pays O(n) rarely instead of carrying dead entries to
        their due time (the old heap's behaviour).
        """
        far = [e for e in self._far if e[3] is not None]
        heapify(far)
        self._far = far
        extra = [e for e in self._extra if e[3] is not None]
        heapify(extra)
        self._extra = extra
        run = [e for e in self._run[self._run_pos:] if e[3] is not None]
        self._run = run
        self._run_pos = 0
        near = 0
        buckets = self._buckets
        freelist = self._freelist
        for i, lst in enumerate(buckets):
            if not lst:
                continue
            kept = [e for e in lst if e[3] is not None]
            if kept:
                buckets[i] = kept
                near += len(kept)
            else:
                buckets[i] = freelist.pop() if freelist else []
            del lst[:]
            if len(freelist) < _FREELIST_MAX:
                freelist.append(lst)
        self._near_count = near
        self._dead = 0

    # ------------------------------------------------------------------ #
    # Run loop
    # ------------------------------------------------------------------ #

    def step(self) -> bool:
        """Run the single earliest pending callback.

        Returns False when the calendar is empty (nothing ran).
        """
        entry = self._pop_entry()
        if entry is None:
            return False
        if self.monitor is not None:
            self.monitor.on_execute(self.now, entry[0])
        fn = entry[3]
        entry[3] = _FIRED
        self._live -= 1
        self.now = entry[0]
        fn(*entry[2])
        return True

    def run(self, until: Optional[int] = None) -> None:
        """Run callbacks until the calendar empties or ``until`` is reached.

        When ``until`` is given, the clock is advanced exactly to ``until``
        even if the last event fired earlier, so measurement windows have a
        well-defined end time.
        """
        if self._running:
            raise SimulationError("simulator is re-entrant only via step()")
        self._running = True
        self._stopped = False
        try:
            while not self._stopped:
                # fast path: next staged entry is live and nothing in the
                # side heaps can come before it
                run = self._run
                pos = self._run_pos
                if pos < len(run) and not self._extra:
                    entry = run[pos]
                    fn = entry[3]
                    far = self._far
                    if fn is not None and (not far or entry < far[0]):
                        when = entry[0]
                        if until is not None and when > until:
                            break
                        self._run_pos = pos + 1
                        if self.monitor is not None:
                            self.monitor.on_execute(self.now, when)
                        entry[3] = _FIRED
                        self._live -= 1
                        self.now = when
                        fn(*entry[2])
                        continue
                entry = self._pop_entry(limit=until)
                if entry is None:
                    break
                if self.monitor is not None:
                    self.monitor.on_execute(self.now, entry[0])
                fn = entry[3]
                entry[3] = _FIRED
                self._live -= 1
                self.now = entry[0]
                fn(*entry[2])
        finally:
            self._running = False
        if until is not None and self.now < until and not self._stopped:
            self.now = until

    def stop(self) -> None:
        """Halt :meth:`run` after the current callback returns."""
        self._stopped = True

    @property
    def pending(self) -> int:
        """Number of live scheduled callbacks (tombstones excluded)."""
        return self._live

    def snapshot_state(self) -> dict:
        """Checkpoint fingerprint of the calendar (pure read).

        Entries hold live callbacks, which cannot leave the process, so
        the snapshot pins the *observable* structure instead: the sorted
        ``(time, seq)`` multiset of every live entry across all stores.
        Two deterministic replays that agree on this multiset (and on
        ``now``/``_seq``) fire the same callbacks in the same order.
        Unlike :meth:`peek`, nothing is staged or popped here.
        """
        pending = [
            (e[0], e[1])
            for store in (self._run[self._run_pos:], self._extra, self._far)
            for e in store
            if e[3] is not None
        ]
        pending.extend(
            (e[0], e[1])
            for lst in self._buckets
            for e in lst
            if e[3] is not None
        )
        pending.sort()
        digest = hashlib.sha256(
            json.dumps(pending, separators=(",", ":")).encode()
        ).hexdigest()
        return {
            "now": self.now,
            "seq": self._seq,
            "live": self._live,
            "pending_digest": digest,
        }

    @property
    def events_scheduled(self) -> int:
        """Total calendar entries scheduled since construction.

        Monotonic schedule counter (cancellations included) — the
        denominator ``repro bench`` uses for events/sec throughput.
        """
        return self._seq

    def peek(self) -> Optional[int]:
        """Time of the next live scheduled callback, or None if empty."""
        near = self._near_head()
        far = self._far
        while far and far[0][3] is None:
            heappop(far)
            self._dead -= 1
        if near is None:
            return far[0][0] if far else None
        if far and far[0] < near:
            return far[0][0]
        return near[0]
