"""Generator-coroutine processes on top of the event loop.

A process is a Python generator that yields *wait requests*:

* ``Timeout(delay)`` — resume after ``delay`` ns;
* ``WaitEvent(event)`` — resume when the event fires (receives its value);
* ``WaitProcess(process)`` — resume when another process finishes;
* a bare :class:`~repro.sim.core.Event` is accepted as shorthand for
  ``WaitEvent``.

Processes are used for the "environment" actors (traffic ramps, governor
samplers, experiment orchestration).  CPU-bound *threads* are not sim
processes — they are driven by the kernel scheduler (see
:mod:`repro.kernel.thread`) so that compute time, preemption and dispatch
latency are modelled.
"""

from __future__ import annotations

from typing import Any, Generator, Optional

from repro.sim.core import Event, SimulationError, Simulator


class Timeout:
    """Wait request: resume the process after ``delay`` nanoseconds."""

    __slots__ = ("delay", "value")

    def __init__(self, delay: int, value: Any = None):
        if delay < 0:
            raise SimulationError(f"negative timeout {delay}")
        self.delay = delay
        self.value = value


class WaitEvent:
    """Wait request: resume when ``event`` triggers, yielding its value."""

    __slots__ = ("event",)

    def __init__(self, event: Event):
        self.event = event


class WaitProcess:
    """Wait request: resume when ``process`` terminates, yielding its result."""

    __slots__ = ("process",)

    def __init__(self, process: "Process"):
        self.process = process


class Process:
    """Drives a generator through the simulator until it returns.

    The generator's ``return`` value becomes :attr:`result` and is
    delivered through :attr:`done` (an :class:`Event`), so processes can
    be joined with ``yield WaitProcess(p)`` or ``yield p.done``.

    An exception raised inside the generator is re-raised out of the
    simulator run loop — silent failure would invalidate experiments.
    """

    def __init__(self, sim: Simulator, gen: Generator, name: str = "process"):
        self.sim = sim
        self.gen = gen
        self.name = name
        self.done: Event = sim.event()
        self.result: Any = None
        self.alive = True
        sim.call_after(0, self._resume, None)

    def __repr__(self) -> str:
        state = "alive" if self.alive else "done"
        return f"<Process {self.name} ({state})>"

    # ------------------------------------------------------------------ #

    def _resume(self, send_value: Any) -> None:
        if not self.alive:
            return
        try:
            request = self.gen.send(send_value)
        except StopIteration as stop:
            self._finish(stop.value)
            return
        self._handle(request)

    def _handle(self, request: Any) -> None:
        if isinstance(request, Timeout):
            self.sim.call_after(request.delay, self._resume, request.value)
        elif isinstance(request, WaitEvent):
            request.event.add_callback(lambda ev: self._resume(ev.value))
        elif isinstance(request, WaitProcess):
            request.process.done.add_callback(lambda ev: self._resume(ev.value))
        elif isinstance(request, Event):
            request.add_callback(lambda ev: self._resume(ev.value))
        else:
            raise SimulationError(
                f"process {self.name!r} yielded unsupported request {request!r}"
            )

    def _finish(self, result: Any) -> None:
        self.alive = False
        self.result = result
        self.done.succeed(result)

    def interrupt(self) -> None:
        """Terminate the process without resuming it again.

        The ``done`` event fires with result ``None``; generators holding
        resources should use try/finally if they need cleanup.
        """
        if not self.alive:
            return
        self.alive = False
        self.gen.close()
        self.result = None
        if not self.done.triggered:
            self.done.succeed(None)


def spawn(sim: Simulator, gen: Generator, name: Optional[str] = None) -> Process:
    """Convenience constructor for :class:`Process`."""
    return Process(sim, gen, name or getattr(gen, "__name__", "process"))
