"""Deterministic sim-state checkpoint/restore.

The :class:`~repro.kernel.machine.Machine` is deterministic and
self-contained: a run is a pure function of its config, its seed, and
the workload wired onto it.  A checkpoint therefore has two halves:

* **exact state** where the interpreter lets us capture it — every RNG
  stream's full generator state (:meth:`RandomStreams.snapshot_state`
  round-trips through ``getstate``/``setstate``), plus all the plain
  counters of the kernel/NIC/fault models;
* **structural fingerprints** where it does not — the calendar queue
  and the armed hrtimers hold live callbacks (bound methods over
  generator coroutines), which no serializer can move between
  processes.  For those the snapshot records a content digest of the
  observable structure (pending ``(time, seq)`` pairs, armed expiries,
  ring occupancy, ...).

Restore is **verified deterministic replay**: rebuild the machine and
workload from the same recipe, run it to the snapshot's time, and check
every component — exact state byte-for-byte, structures digest-for-
digest — against the capture (:func:`restore` raises
:exc:`SnapshotMismatch` otherwise).  Because the sim is deterministic,
the restored run then continues byte-identical to the uninterrupted
one; the tests in ``tests/sim/test_snapshot.py`` and the chaos
replay-debug mode (``repro chaos --checkpoint-before-fault``) assert
exactly that.  Capturing draws no randomness and schedules nothing, so
taking a snapshot never changes a run's results.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Dict, List, Optional

if TYPE_CHECKING:  # pragma: no cover — avoids a kernel<->sim cycle
    from repro.kernel.machine import Machine

#: bump when the capture layout changes; mismatched versions never
#: compare component-by-component (the contract is exact equality)
SNAPSHOT_VERSION = 1


class SnapshotMismatch(RuntimeError):
    """A replayed machine did not reach the checkpointed state."""

    def __init__(self, mismatches: List[str]):
        self.mismatches = list(mismatches)
        preview = "; ".join(self.mismatches[:4])
        more = len(self.mismatches) - 4
        if more > 0:
            preview += f"; ... {more} more"
        super().__init__(f"restored state diverges: {preview}")


def _canonical(obj: Any) -> str:
    return json.dumps(obj, sort_keys=True, separators=(",", ":"),
                      default=str)


def _digest(obj: Any) -> str:
    return hashlib.sha256(_canonical(obj).encode()).hexdigest()


@dataclass
class MachineState:
    """One machine checkpoint: exact state + structural fingerprints.

    Plain data with JSON round-trip (the :mod:`repro.faults.plan`
    idiom), so checkpoints can be written next to campaign artifacts
    and verified from a completely fresh process.
    """

    t: int
    seed: int
    label: str = ""
    version: int = SNAPSHOT_VERSION
    components: Dict[str, Any] = field(default_factory=dict)

    def digest(self) -> str:
        """Content address of the whole captured state."""
        return _digest({"t": self.t, "seed": self.seed,
                        "version": self.version,
                        "components": self.components})

    def component_digests(self) -> Dict[str, str]:
        return {name: _digest(value)[:16]
                for name, value in sorted(self.components.items())}

    def size_bytes(self) -> int:
        """Serialized size (the checkpoint-overhead bench tracks this)."""
        return len(_canonical(self.to_dict()).encode())

    def diff(self, other: "MachineState") -> List[str]:
        """Human-readable component mismatches (empty = identical)."""
        out: List[str] = []
        if self.version != other.version:
            return [f"snapshot version {self.version} != {other.version}"]
        if self.t != other.t:
            out.append(f"time: t={self.t} != t={other.t}")
        if self.seed != other.seed:
            out.append(f"seed: {self.seed} != {other.seed}")
        names = sorted(set(self.components) | set(other.components))
        for name in names:
            a = self.components.get(name)
            b = other.components.get(name)
            if _canonical(a) != _canonical(b):
                out.append(
                    f"{name}: {_digest(a)[:12]} != {_digest(b)[:12]}"
                )
        return out

    # -- JSON round-trip ------------------------------------------------- #

    def to_dict(self) -> Dict:
        return {
            "t": self.t,
            "seed": self.seed,
            "label": self.label,
            "version": self.version,
            "components": self.components,
        }

    @classmethod
    def from_dict(cls, d: Dict) -> "MachineState":
        return cls(
            t=d["t"],
            seed=d["seed"],
            label=d.get("label", ""),
            version=d.get("version", SNAPSHOT_VERSION),
            components=d.get("components", {}),
        )

    def save(self, path: str) -> None:
        """Write the checkpoint as JSON (atomic: temp + rename)."""
        directory = os.path.dirname(os.path.abspath(path))
        os.makedirs(directory, exist_ok=True)
        tmp = path + ".tmp"
        with open(tmp, "w") as fh:
            json.dump(self.to_dict(), fh, sort_keys=True)
            fh.write("\n")
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)

    @classmethod
    def load(cls, path: str) -> "MachineState":
        with open(path) as fh:
            return cls.from_dict(json.load(fh))


# --------------------------------------------------------------------- #
# capture
# --------------------------------------------------------------------- #


def capture(machine: "Machine", label: str = "") -> MachineState:
    """Snapshot ``machine`` right now.  Pure observation: no events are
    added, no RNG stream is advanced, no subsystem state is written."""
    sim = machine.sim
    components: Dict[str, Any] = {
        "sim": sim.snapshot_state(),
        "rng": machine.streams.snapshot_state(),
        "cores": [
            {
                "index": core.index,
                "busy_ns": core.total_busy_ns(),
                "irq_ns": core.irq_ns,
                "switch_ns": core.switch_ns,
                "exit_stall_ns": core.exit_stall_ns,
                "freq_hz": core.freq,
            }
            for core in machine.cores
        ],
        "threads": [
            {
                "name": t.name,
                "state": t.state.value,
                "vruntime": t.vruntime,
                "cputime_ns": t.cputime_ns,
                "wakeups": t.wakeups,
                "preemptions": t.preemptions,
                "dispatch_latency_ns": t.dispatch_latency_ns,
            }
            for t in machine.threads
        ],
        "hrtimers": [q.snapshot_state() for q in machine.hrtimers],
        "nic": {
            "queues": [q.snapshot_state() for q in sim.rx_queues],
            "ports": [p.snapshot_state() for p in sim.nic_ports],
        },
        "faults": (machine.faults.snapshot_state()
                   if machine.faults is not None else None),
        # the registry may hold thousands of primitives; a digest keeps
        # the checkpoint small while still pinning every value
        "metrics": {
            "count": len(machine.metrics),
            "digest": _digest(machine.metrics.snapshot()),
        },
        # peek, never read: read_joules() closes the meter's open
        # intervals, which regroups its float accumulation and breaks
        # byte-identical continuation after the snapshot
        "power": {"energy_j": machine.power.peek_joules()},
    }
    return MachineState(
        t=sim.now, seed=machine.cfg.seed, label=label, components=components
    )


def verify(machine: "Machine", state: MachineState) -> List[str]:
    """Mismatches between ``machine``'s current state and ``state``."""
    return state.diff(capture(machine, label=state.label))


def restore(machine: "Machine", state: MachineState,
            strict: bool = True) -> List[str]:
    """Replay a freshly built ``machine`` to ``state`` and verify it.

    ``machine`` must be wired with the same workload recipe (config,
    seed, scenario) that produced the snapshot, and must not have run
    past ``state.t`` yet.  The sim is advanced to ``state.t``, the RNG
    streams are pinned to the captured generator states, and every
    component is checked against the capture.  Returns the mismatch
    list (empty on success); with ``strict`` a non-empty list raises
    :exc:`SnapshotMismatch` instead.
    """
    if machine.sim.now > state.t:
        raise SnapshotMismatch(
            [f"machine already at t={machine.sim.now} > snapshot "
             f"t={state.t}: restore needs a freshly built machine"]
        )
    machine.run(until=state.t)
    mismatches = verify(machine, state)
    if mismatches and strict:
        raise SnapshotMismatch(mismatches)
    if not mismatches:
        # pin the streams to the captured generator states; a no-op
        # after a verified replay, but it makes the restored machine's
        # RNG provably exact rather than inferred
        machine.streams.restore_state(state.components["rng"])
    return mismatches
