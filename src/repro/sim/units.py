"""Time units for the simulator's integer-nanosecond clock.

All simulator timestamps and durations are plain Python ints measured in
nanoseconds.  These constants and converters keep call sites readable:
``sim.call_after(10 * US, fn)`` instead of ``sim.call_after(10_000, fn)``.
"""

NS = 1
US = 1_000
MS = 1_000_000
SEC = 1_000_000_000


def us_to_ns(us: float) -> int:
    """Convert a (possibly fractional) microsecond count to integer ns."""
    return int(round(us * US))


def ns_to_us(ns: int) -> float:
    """Convert nanoseconds to (float) microseconds."""
    return ns / US


def ns_to_ms(ns: int) -> float:
    """Convert nanoseconds to (float) milliseconds."""
    return ns / MS


def ns_to_sec(ns: int) -> float:
    """Convert nanoseconds to (float) seconds."""
    return ns / SEC
