"""An interrupt-driven NAPI/XDP receive path (paper §5.5).

Model of ``xdp_router_ipv4`` on an ixgbe NIC:

* every Rx queue is bound 1:1 to a core (XDP's deployment constraint the
  paper discusses — scaling up queues needs an explicit ethtool step);
* the NIC raises an Rx interrupt when a packet arrives and interrupts
  are enabled, moderated to at most one interrupt per ITR interval;
* the interrupt costs housekeeping time (context save, dispatch to the
  softirq) and wakes the NAPI poll thread;
* the poll thread drains up to ``NAPI_BUDGET`` packets per poll; if it
  used the whole budget it stays in *polling mode* (no interrupt per
  packet — the livelock protection of NAPI), otherwise it re-enables the
  interrupt and sleeps;
* after an idle spell the buffer page pool is cold: the first packets
  pay the allocator path, which is what makes XDP "lose some tens of
  thousands of packets" on a cold line-rate burst before adapting.

CPU proportionality is the point: with no traffic the driver consumes
exactly zero CPU, at high rates the per-packet and per-interrupt
overheads exceed DPDK's — both ends of Figure 12b.
"""

from __future__ import annotations

from typing import List, Optional

from repro import config
from repro.dpdk.app import PacketApp
from repro.kernel.machine import Machine
from repro.kernel.thread import Compute, KThread, Suspend
from repro.metrics.latency import LatencyStats
from repro.nic.device import NicPort
from repro.nic.txqueue import TxBuffer


class XdpQueueDriver:
    """NAPI state machine for one Rx queue on its dedicated core."""

    def __init__(
        self,
        machine: Machine,
        port: NicPort,
        queue_index: int,
        app: PacketApp,
        core: int,
        latency: Optional[LatencyStats] = None,
        itr_ns: int = config.XDP_ITR_NS,
        name: Optional[str] = None,
    ):
        self.machine = machine
        self.port = port
        self.queue = port.queues[queue_index]
        self.queue_index = queue_index
        self.app = app
        self.core = core
        self.itr_ns = itr_ns
        self.name = name or f"xdp-q{queue_index}"
        # XDP transmits immediately (no tx batching in xdp_router_ipv4)
        self.txbuf = TxBuffer(machine.sim, batch_threshold=1)
        if latency is not None:
            self.txbuf.on_tx = lambda pkt: latency.add(pkt.latency_ns)
        self.irqs = 0
        self.polls = 0
        self.packets = 0
        self._last_irq_ns = -(10 ** 12)
        self._last_active_ns = 0
        self._warm_remaining = config.XDP_WARM_PKTS
        self.thread: Optional[KThread] = None

    # ------------------------------------------------------------------ #

    def start(self) -> KThread:
        self.thread = self.machine.spawn(
            self._body, name=self.name, core=self.core
        )
        self._arm()
        return self.thread

    def _arm(self) -> None:
        # re-enabling the interrupt with descriptors already pending
        # asserts the line immediately (hardware level-trigger semantics)
        self.queue.sync()
        if self.queue.ring.occupancy > 0:
            self.machine.sim.call_after(0, self._on_packet)
            return
        self.port.irq_arm(self.queue_index, self._on_packet)

    def _on_packet(self) -> None:
        """NIC saw a packet with interrupts enabled: moderate + deliver."""
        now = self.machine.sim.now
        earliest = self._last_irq_ns + self.itr_ns
        if now < earliest:
            self.machine.sim.call_at(earliest, self._deliver_irq)
        else:
            self._deliver_irq()

    def _deliver_irq(self) -> None:
        now = self.machine.sim.now
        self._last_irq_ns = now
        self.irqs += 1
        core = self.machine.cores[self.core]
        core.inject_irq_time(config.XDP_IRQ_NS)
        self.machine.sim.call_after(config.XDP_IRQ_NS, self._wake_thread)

    def _wake_thread(self) -> None:
        if self.thread is not None:
            self.thread.wake()
        self.machine.scheduler.settle_idle(self.machine.cores[self.core])

    # ------------------------------------------------------------------ #

    def _warm_cost_ns(self, n: int) -> int:
        """Per-batch processing cost including the cold page-pool path."""
        base = self.app.per_packet_ns
        cold = min(n, self._warm_remaining)
        self._warm_remaining -= cold
        warm_extra = int(cold * base * (config.XDP_WARM_FACTOR - 1.0))
        return n * base + warm_extra + config.RX_BURST_FIXED_NS

    def _body(self, kt: KThread):
        sim = self.machine.sim
        budget = config.NAPI_BUDGET
        while True:
            yield Suspend()
            # softirq context entered; poll until the queue runs dry
            idle_gap = sim.now - self._last_active_ns
            if idle_gap > config.XDP_COLD_IDLE_NS:
                self._warm_remaining = config.XDP_WARM_PKTS
            while True:
                self.polls += 1
                n, tagged = self.queue.rx_burst(budget)
                if n == 0:
                    break
                self.packets += n
                yield Compute(self._warm_cost_ns(n))
                self.app.handle(tagged)
                self.txbuf.enqueue(n, tagged)
                if n < budget:
                    break
                # used the full budget: stay in polling mode but yield a
                # softirq bookkeeping cost between rounds
                yield Compute(config.RX_POLL_EMPTY_NS)
            self._last_active_ns = sim.now
            self._arm()

    # ------------------------------------------------------------------ #

    def cpu_time_ns(self) -> int:
        return self.thread.cputime_ns if self.thread else 0


class XdpDriver:
    """All queue drivers of one port (1 queue : 1 core)."""

    def __init__(
        self,
        machine: Machine,
        port: NicPort,
        app: PacketApp,
        cores: Optional[List[int]] = None,
        itr_ns: int = config.XDP_ITR_NS,
    ):
        nq = len(port.queues)
        self.machine = machine
        self.port = port
        self.cores = cores if cores is not None else list(range(nq))
        if len(self.cores) != nq:
            raise ValueError("XDP requires one core per queue")
        self.latency = LatencyStats()
        self.queues: List[XdpQueueDriver] = [
            XdpQueueDriver(
                machine, port, i, app, core=self.cores[i],
                latency=self.latency, itr_ns=itr_ns,
            )
            for i in range(nq)
        ]

    def start(self) -> None:
        for q in self.queues:
            q.start()

    @property
    def total_packets(self) -> int:
        return sum(q.packets for q in self.queues)

    @property
    def total_irqs(self) -> int:
        return sum(q.irqs for q in self.queues)

    def cpu_utilization(self) -> float:
        """Busy fraction summed over the driver's cores (paper units)."""
        return self.machine.cpu_utilization(self.cores)
