"""The XDP baseline (paper §5.5): interrupt-driven kernel packet path.

XDP binds each Rx queue 1:1 to a CPU core; packets are delivered through
the NAPI interrupt→poll state machine rather than busy polling.  See
:mod:`repro.xdp.driver`.
"""

from repro.xdp.driver import XdpDriver, XdpQueueDriver

__all__ = ["XdpDriver", "XdpQueueDriver"]
