"""Metronome (CoNEXT 2020) — a full reproduction in simulated time.

Faltelli, Belocchi, Quaglia, Pontarelli, Bianchi: *Metronome: adaptive
and precise intermittent packet retrieval in DPDK*, CoNEXT 2020.

The package layers (bottom-up):

* :mod:`repro.sim` — discrete-event engine (integer-ns clock).
* :mod:`repro.kernel` — the OS model: CFS-like scheduler, hrtimers,
  timer wheel, cpuidle, the two sleep services (``nanosleep`` /
  ``hr_sleep``), frequency governors, RAPL-like energy metering.
* :mod:`repro.nic` — traffic sources, descriptor rings, Rx/Tx queues.
* :mod:`repro.dpdk` — the poll-mode layer (mbufs, the Listing-1 lcore).
* :mod:`repro.core` — **Metronome itself**: trylock queue sharing,
  renewal cycles, the ρ estimator and adaptive T_S rule, the analytical
  model of §4.
* :mod:`repro.apps` — l3fwd (real LPM), ipsec-secgw (real AES-128-CBC),
  FloWatcher, and the ferret interference workload.
* :mod:`repro.xdp` — the interrupt-driven NAPI/XDP baseline.
* :mod:`repro.metrics` / :mod:`repro.harness` — instrumentation and
  per-experiment scenario builders.

Quickstart::

    from repro import run_metronome, LINE_RATE_PPS
    result = run_metronome(LINE_RATE_PPS, duration_ms=100)
    print(result.cpu_utilization, result.latency.mean())

See README.md, DESIGN.md and EXPERIMENTS.md.
"""

from repro.config import LINE_RATE_PPS, SimConfig
from repro.core.metronome import MetronomeGroup
from repro.core.tuning import AdaptiveTuner, FixedTuner
from repro.harness.experiment import (
    DpdkRunResult,
    MetronomeRunResult,
    XdpRunResult,
    run_dpdk,
    run_metronome,
    run_xdp,
)
from repro.kernel.machine import Machine
from repro.nic.traffic import CbrProcess, PoissonProcess, RampProfile, gbps_to_pps

__version__ = "1.0.0"

__all__ = [
    "SimConfig",
    "LINE_RATE_PPS",
    "Machine",
    "MetronomeGroup",
    "AdaptiveTuner",
    "FixedTuner",
    "run_metronome",
    "run_dpdk",
    "run_xdp",
    "MetronomeRunResult",
    "DpdkRunResult",
    "XdpRunResult",
    "CbrProcess",
    "PoissonProcess",
    "RampProfile",
    "gbps_to_pps",
    "__version__",
]
