"""The whole-program call graph and bottom-up summary propagation.

Built from the per-module facts of :mod:`repro.lint.summaries`, this
module gives the interprocedural rules three things:

* **resolution** — each recorded call site is mapped to an in-tree
  function where the evidence allows: local and module-level names,
  import aliases (following one package re-export level), constructor
  calls, ``self.method()`` through the class hierarchy, and
  ``x.method()`` when ``x`` has a known type from an annotation or a
  local ``x = ClassName(...)``;
* **propagated summaries** — wall-clock reach, raw-RNG reach, stream
  draws, and writes through parameters/``self`` flow bottom-up over
  Tarjan SCCs, each fact carrying a witness link so a finding can show
  the full call chain;
* **reachability** — a BFS closure used by the checkpoint/generator
  purity rules, optionally widened by a name-based class-hierarchy
  fallback for method calls whose receiver type is unknown.

Everything is deterministic: functions are keyed ``path::qualname``,
visited in sorted order, and witness selection prefers the earliest
site — so two runs over the same tree produce identical chains.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Dict, Iterable, List, Optional, Tuple

Witness = Tuple  # ("direct", line, col, desc) | ("call", line, col, key, what)

#: method names the CHA fallback must never match: every attribute of
#: the builtin collection/scalar types.  An untyped ``pending.extend``
#: is almost always a list, and letting it resolve to every in-tree
#: class with an ``extend`` method drowns the purity rules in noise.
_CHA_SKIP = frozenset(
    name
    for t in (dict, list, set, frozenset, tuple, str, bytes, bytearray,
              int, float, object)
    for name in dir(t)
)


def module_dotted(path: str) -> Optional[str]:
    """``src/repro/sim/rng.py`` → ``repro.sim.rng`` (None for non-.py)."""
    if not path.endswith(".py"):
        return None
    parts = path[:-3].split("/")
    if parts and parts[0] == "src":
        parts = parts[1:]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts) if parts else None


class Resolution:
    """One resolved call edge."""

    __slots__ = ("key", "self_bound", "fresh")

    def __init__(self, key: str, self_bound: bool, fresh: bool = False):
        self.key = key  # "path::qualname"
        self.self_bound = self_bound
        #: the receiver is an object constructed in the caller — writes
        #: to its ``self`` do not mutate pre-existing state
        self.fresh = fresh


class Summary:
    """Propagated effects of one function (direct ∪ transitive)."""

    __slots__ = ("wallclock", "rawrng", "draw", "writes", "writes_self")

    def __init__(self):
        self.wallclock: Optional[Witness] = None
        self.rawrng: Optional[Witness] = None
        self.draw: Optional[Witness] = None
        self.writes: Dict[str, Witness] = {}
        self.writes_self: Optional[Witness] = None


class Program:
    """The call graph over one lint run's fact set."""

    def __init__(self, modules: Dict[str, Dict[str, Any]], config):
        self.modules = modules
        self.config = config
        self._by_dotted: Dict[str, str] = {}
        for path in modules:
            dotted = module_dotted(path)
            if dotted:
                self._by_dotted.setdefault(dotted, path)
        #: "path::qualname" -> function fact dict
        self.functions: Dict[str, Dict[str, Any]] = {}
        self.func_path: Dict[str, str] = {}
        #: method name -> sorted keys (the CHA fallback index)
        self.methods_by_name: Dict[str, List[str]] = {}
        for path in sorted(modules):
            for qual in sorted(modules[path]["functions"]):
                facts = modules[path]["functions"][qual]
                key = f"{path}::{qual}"
                self.functions[key] = facts
                self.func_path[key] = path
                if facts["cls"] and ".<locals>." not in qual:
                    self.methods_by_name.setdefault(
                        facts["name"], []).append(key)
        #: (path, line, col) -> Resolution of the call site there
        self.resolutions: Dict[Tuple[str, int, int], Resolution] = {}
        self.summaries: Dict[str, Summary] = {}
        self._resolve_all()
        self._propagate()

    # -- display -------------------------------------------------------- #

    def display(self, key: str) -> str:
        """Human name of a function key: ``repro.sim.rng.stream``."""
        path, _, qual = key.partition("::")
        dotted = module_dotted(path)
        return f"{dotted}.{qual}" if dotted else f"{path}::{qual}"

    def line_of(self, key: str) -> int:
        return self.functions[key]["line"]

    # -- symbol resolution ---------------------------------------------- #

    def _resolve_all(self) -> None:
        for key in sorted(self.functions):
            path = self.func_path[key]
            facts = self.functions[key]
            for call in facts["calls"]:
                res = self._resolve_call(path, facts, call)
                if res is not None:
                    self.resolutions[(path, call["line"], call["col"])] = res

    def resolution_at(
        self, path: str, line: int, col: int
    ) -> Optional[Resolution]:
        return self.resolutions.get((path, line, col))

    def _resolve_call(
        self, path: str, caller: Dict[str, Any], call: Dict[str, Any]
    ) -> Optional[Resolution]:
        mf = self.modules[path]
        kind = call["kind"]
        target = call["target"]
        if kind == "name":
            # innermost enclosing scope first: nested defs shadow
            qual = caller["qualname"]
            while True:
                nested = f"{qual}.<locals>.{target}"
                if nested in mf["functions"]:
                    return Resolution(f"{path}::{nested}", False)
                if ".<locals>." not in qual:
                    break
                qual = qual.rsplit(".<locals>.", 1)[0]
            if target in mf["module_funcs"]:
                return Resolution(f"{path}::{target}", False)
            if target in mf["classes"]:
                return self._ctor(path, target)
            alias = mf["imports"].get(target)
            if alias:
                return self._resolve_dotted(alias)
            return None
        if kind == "self":
            if not caller["cls"]:
                return None
            return self._method(path, caller["cls"], target, fresh=False)
        # attr call: module-qualified function, or typed receiver
        recv_root = call.get("recv_root")
        recv = call.get("recv", "")
        if recv_root and recv_root == recv:
            # plain-name receiver: maybe a module alias (helpers.drain)
            alias = mf["imports"].get(recv_root)
            if alias:
                res = self._resolve_dotted(f"{alias}.{target}")
                if res is not None:
                    return res
        ref = call.get("recv_class")
        if ref:
            loc = self._resolve_class_ref(path, ref)
            if loc is not None:
                return self._method(
                    loc[0], loc[1], target,
                    fresh=bool(call.get("recv_fresh")))
        return None

    def _ctor(self, path: str, cls: str) -> Optional[Resolution]:
        res = self._method(path, cls, "__init__", fresh=True)
        if res is not None:
            res.fresh = True
        return res

    def _method(
        self, path: str, cls: str, name: str, fresh: bool, depth: int = 0
    ) -> Optional[Resolution]:
        """Look up a method on ``cls`` walking base classes in order."""
        if depth > 8:
            return None
        mf = self.modules.get(path)
        if mf is None or cls not in mf["classes"]:
            return None
        qual = f"{cls}.{name}"
        if qual in mf["functions"]:
            return Resolution(f"{path}::{qual}", True, fresh)
        for base in mf["classes"][cls]["bases"]:
            loc = self._resolve_class_ref(path, base, depth + 1)
            if loc is not None:
                res = self._method(loc[0], loc[1], name, fresh, depth + 1)
                if res is not None:
                    return res
        return None

    def _resolve_dotted(
        self, dotted: str, depth: int = 0
    ) -> Optional[Resolution]:
        """An in-tree function for a fully-qualified dotted path,
        following one level of package re-exports per hop."""
        if depth > 5:
            return None
        parts = dotted.split(".")
        for cut in range(len(parts) - 1, 0, -1):
            mod = ".".join(parts[:cut])
            path = self._by_dotted.get(mod)
            if path is None:
                continue
            mf = self.modules[path]
            rest = parts[cut:]
            if len(rest) == 1:
                name = rest[0]
                if name in mf["module_funcs"]:
                    return Resolution(f"{path}::{name}", False)
                if name in mf["classes"]:
                    return self._ctor(path, name)
                alias = mf["imports"].get(name)
                if alias:
                    return self._resolve_dotted(alias, depth + 1)
            elif len(rest) == 2:
                cls, meth = rest
                if cls in mf["classes"]:
                    return self._method(path, cls, meth, fresh=False)
                alias = mf["imports"].get(cls)
                if alias:
                    return self._resolve_dotted(
                        f"{alias}.{meth}", depth + 1)
            return None
        return None

    def _resolve_class_ref(
        self, path: str, ref: str, depth: int = 0
    ) -> Optional[Tuple[str, str]]:
        """(defining path, class name) for a textual class reference as
        seen from ``path`` — a local name, an alias, or a dotted path."""
        if depth > 5:
            return None
        mf = self.modules[path]
        head, _, rest = ref.partition(".")
        if not rest:
            if ref in mf["classes"]:
                return (path, ref)
            alias = mf["imports"].get(ref)
            if alias:
                return self._class_by_dotted(alias, depth + 1)
            return None
        alias = mf["imports"].get(head)
        if alias:
            return self._class_by_dotted(f"{alias}.{rest}", depth + 1)
        return self._class_by_dotted(ref, depth + 1)

    def _class_by_dotted(
        self, dotted: str, depth: int
    ) -> Optional[Tuple[str, str]]:
        if depth > 5:
            return None
        parts = dotted.split(".")
        for cut in range(len(parts) - 1, 0, -1):
            mod = ".".join(parts[:cut])
            path = self._by_dotted.get(mod)
            if path is None:
                continue
            rest = parts[cut:]
            if len(rest) != 1:
                return None
            mf = self.modules[path]
            if rest[0] in mf["classes"]:
                return (path, rest[0])
            alias = mf["imports"].get(rest[0])
            if alias:
                return self._class_by_dotted(alias, depth + 1)
            return None
        return None

    # -- SCC + propagation ---------------------------------------------- #

    def _adjacency(self) -> Dict[str, List[str]]:
        adj: Dict[str, List[str]] = {k: [] for k in self.functions}
        for key in sorted(self.functions):
            path = self.func_path[key]
            seen = set()
            for call in self.functions[key]["calls"]:
                res = self.resolutions.get(
                    (path, call["line"], call["col"]))
                if res is not None and res.key not in seen:
                    seen.add(res.key)
                    adj[key].append(res.key)
        return adj

    def _sccs(self, adj: Dict[str, List[str]]) -> List[List[str]]:
        """Tarjan, iterative; emits each SCC after all SCCs it reaches
        (bottom-up over the condensation — callees first)."""
        index: Dict[str, int] = {}
        low: Dict[str, int] = {}
        on_stack: Dict[str, bool] = {}
        stack: List[str] = []
        out: List[List[str]] = []
        counter = [0]

        for root in sorted(adj):
            if root in index:
                continue
            work: List[Tuple[str, int]] = [(root, 0)]
            while work:
                node, pi = work[-1]
                if pi == 0:
                    index[node] = low[node] = counter[0]
                    counter[0] += 1
                    stack.append(node)
                    on_stack[node] = True
                recurse = False
                succs = adj[node]
                while pi < len(succs):
                    succ = succs[pi]
                    pi += 1
                    if succ not in index:
                        work[-1] = (node, pi)
                        work.append((succ, 0))
                        recurse = True
                        break
                    if on_stack.get(succ):
                        low[node] = min(low[node], index[succ])
                if recurse:
                    continue
                work[-1] = (node, pi)
                if pi >= len(succs):
                    work.pop()
                    if work:
                        parent = work[-1][0]
                        low[parent] = min(low[parent], low[node])
                    if low[node] == index[node]:
                        scc = []
                        while True:
                            w = stack.pop()
                            on_stack[w] = False
                            scc.append(w)
                            if w == node:
                                break
                        out.append(sorted(scc))
        return out

    def _propagate(self) -> None:
        adj = self._adjacency()
        rng_path = getattr(self.config, "rng_module", None)
        for scc in self._sccs(adj):
            # fixpoint within the SCC (single pass when acyclic)
            for _ in range(2 * len(scc) + 2):
                changed = False
                for key in scc:
                    if self._transfer(key, rng_path):
                        changed = True
                if not changed:
                    break

    def _transfer(self, key: str, rng_path: Optional[str]) -> bool:
        facts = self.functions[key]
        path = self.func_path[key]
        s = self.summaries.get(key)
        if s is None:
            s = Summary()
            self.summaries[key] = s
        changed = False

        def direct(sites) -> Optional[Witness]:
            best = None
            for site in sites:
                w = ("direct", site["line"], site["col"], site["desc"])
                if best is None or w[1:3] < best[1:3]:
                    best = w
            return best

        if s.wallclock is None:
            s.wallclock = direct(facts["wallclock"])
            changed |= s.wallclock is not None
        if s.rawrng is None:
            s.rawrng = direct(facts["rawrng"])
            changed |= s.rawrng is not None
        if s.draw is None:
            s.draw = direct(facts["draws"]) or s.rawrng
            changed |= s.draw is not None
        for p, site in sorted(facts["param_writes"].items()):
            if p not in s.writes:
                s.writes[p] = ("direct", site["line"], site["col"],
                               site["desc"])
                changed = True
        if s.writes_self is None and facts["self_write"]:
            site = facts["self_write"]
            s.writes_self = ("direct", site["line"], site["col"],
                             site["desc"])
            changed = True

        params = facts["params"]
        is_method = bool(facts["cls"]) and bool(params) \
            and params[0] in ("self", "cls")
        for call in sorted(facts["calls"],
                           key=lambda c: (c["line"], c["col"])):
            res = self.resolutions.get((path, call["line"], call["col"]))
            if res is None:
                continue
            g = self.summaries.get(res.key)
            if g is None:
                continue
            via = ("call", call["line"], call["col"], res.key)
            in_rng = rng_path is not None \
                and self.func_path[res.key] == rng_path
            if s.wallclock is None and g.wallclock is not None:
                s.wallclock = via + ("",)
                changed = True
            if not in_rng:
                if s.rawrng is None and g.rawrng is not None:
                    s.rawrng = via + ("",)
                    changed = True
                if s.draw is None and g.draw is not None:
                    s.draw = via + ("",)
                    changed = True
            changed |= self._propagate_writes(
                s, g, call, res, via, params, is_method)
        return changed

    def _propagate_writes(
        self, s: Summary, g: Summary, call: Dict[str, Any],
        res: Resolution, via: Tuple, params: List[str], is_method: bool,
    ) -> bool:
        if res.fresh:
            return False  # a freshly built object's state is the caller's
        callee = self.functions[res.key]
        cparams = list(callee["params"])
        offset = 0
        if res.self_bound and cparams and cparams[0] in ("self", "cls"):
            offset = 1
        changed = False

        def note(root: str, what: str) -> bool:
            w = via + (what,)
            if root in ("self", "cls") and is_method:
                if s.writes_self is None:
                    s.writes_self = w
                    return True
            elif root in params and root not in ("self", "cls"):
                if root not in s.writes:
                    s.writes[root] = w
                    return True
            return False

        for i, root in enumerate(call.get("pos_roots", [])):
            if root is None:
                continue
            ci = i + offset
            if ci < len(cparams) and cparams[ci] in g.writes:
                changed |= note(root, f"param:{cparams[ci]}")
        for kw, root in sorted(call.get("kw_roots", {}).items()):
            if root is not None and kw in g.writes:
                changed |= note(root, f"param:{kw}")
        recv_root = call.get("recv_root")
        if res.self_bound and recv_root and g.writes_self is not None:
            changed |= note(recv_root, "self")
        if res.self_bound and call["kind"] == "self" \
                and g.writes_self is not None:
            changed |= note("self", "self")
        return changed

    # -- chains ---------------------------------------------------------- #

    def chain(
        self, key: str, kind: str, param: Optional[str] = None,
        limit: int = 12,
    ) -> Tuple[Tuple[str, int, str], ...]:
        """The witness chain of a propagated fact, as
        ``(path, line, label)`` hops ending at the direct site.

        ``kind`` is one of ``wallclock``/``rawrng``/``draw``/``write``;
        for ``write``, ``param`` picks the parameter (or ``self``).
        """
        out: List[Tuple[str, int, str]] = []
        for _ in range(limit):
            s = self.summaries.get(key)
            if s is None:
                break
            if kind == "write":
                w = s.writes_self if param in ("self", "cls", None) \
                    else s.writes.get(param)
            else:
                w = getattr(s, kind)
            if w is None:
                break
            path = self.func_path[key]
            if w[0] == "direct":
                out.append((path, w[1], w[3]))
                break
            callee = w[3]
            out.append((path, w[1], f"calls {self.display(callee)}"))
            if kind == "write":
                what = w[4]
                param = what.split(":", 1)[1] if ":" in what else "self"
            key = callee
        return tuple(out)

    # -- reachability (C/G rules) ---------------------------------------- #

    def reachable(
        self, roots: Iterable[str], use_cha: bool = True
    ) -> Dict[str, Tuple[Optional[str], int, bool]]:
        """BFS closure from ``roots``: key → (caller key, call line in
        the caller, receiver-fresh context).  Fresh context means every
        object on the receiver path was constructed inside the closure,
        so ``self`` writes there do not touch pre-existing state.
        Unresolved method calls fall back to name-based CHA candidates
        when ``use_cha`` — conservative, used only for purity rules.
        """
        best: Dict[str, Tuple[Optional[str], int, bool]] = {}
        dq: deque = deque()
        for r in sorted(set(roots)):
            if r in self.functions:
                best[r] = (None, 0, False)
                dq.append((r, False))
        while dq:
            key, fresh = dq.popleft()
            path = self.func_path[key]
            for call in sorted(self.functions[key]["calls"],
                               key=lambda c: (c["line"], c["col"])):
                res = self.resolutions.get(
                    (path, call["line"], call["col"]))
                targets: List[Tuple[str, bool]] = []
                if res is not None:
                    nfresh = res.fresh or (
                        fresh and call["kind"] == "self")
                    targets.append((res.key, nfresh))
                elif use_cha and self._cha_eligible(path, call):
                    for cand in self.methods_by_name.get(
                            call["target"], ()):
                        targets.append((cand, False))
                for tkey, tfresh in targets:
                    cur = best.get(tkey)
                    if cur is not None and (cur[2] <= tfresh):
                        continue  # already reached at least as strictly
                    best[tkey] = (key, call["line"], tfresh)
                    dq.append((tkey, tfresh))
        return best

    def _cha_eligible(self, path: str, call: Dict[str, Any]) -> bool:
        """May an unresolved call fall back to name-based CHA?  Only
        method calls whose receiver type is genuinely unknown — not
        builtin-collection method names, and not calls through an
        import alias (``json.load``: a module, just not an in-tree
        one)."""
        if call["kind"] != "attr" or call.get("recv_class"):
            return False
        if call["target"] in _CHA_SKIP:
            return False
        recv_root = call.get("recv_root")
        if recv_root and recv_root == call.get("recv") \
                and recv_root in self.modules[path]["imports"]:
            return False
        return True

    def reach_chain(
        self,
        parents: Dict[str, Tuple[Optional[str], int, bool]],
        key: str,
        limit: int = 20,
    ) -> Tuple[Tuple[str, int, str], ...]:
        """Root-to-``key`` hops of a :meth:`reachable` closure."""
        hops: List[Tuple[str, int, str]] = []
        cur: Optional[str] = key
        for _ in range(limit):
            if cur is None or cur not in parents:
                break
            parent, line, _fresh = parents[cur]
            if parent is None:
                break
            hops.append((self.func_path[parent], line,
                         f"calls {self.display(cur)}"))
            cur = parent
        return tuple(reversed(hops))
