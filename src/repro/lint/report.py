"""Rendering lint results: text, stable JSON, SARIF 2.1.0.

Every format is byte-deterministic: findings arrive pre-sorted from the
engine, dict keys are emitted sorted, and nothing (timestamps, absolute
paths, hash seeds) leaks host state into the output — the same property
the determinism regression test locks in for the analyzer itself.
"""

from __future__ import annotations

import json
from typing import Dict, List

from repro.lint.engine import RULES, Finding, LintResult


def render_text(result: LintResult, verbose: bool = False) -> str:
    lines: List[str] = []
    for f in result.findings:
        lines.append(f"{f.location()}: {f.rule_id} {f.message}")
        for hop_path, hop_line, label in f.chain:
            lines.append(f"    via {hop_path}:{hop_line}: {label}")
        if f.hint:
            lines.append(f"    hint: {f.hint}")
    if result.findings:
        lines.append("")
    counts = result.counts()
    total = sum(counts.values())
    parts = ", ".join(f"{rid}:{n}" for rid, n in counts.items())
    summary = (
        f"{total} finding(s) in {result.files} file(s)"
        + (f" [{parts}]" if parts else "")
    )
    extras = []
    if result.suppressed:
        extras.append(f"{len(result.suppressed)} suppressed")
    if result.baselined:
        extras.append(f"{len(result.baselined)} baselined")
    if extras:
        summary += f" ({', '.join(extras)})"
    lines.append(summary)
    if verbose and result.suppressed:
        lines.append("suppressed:")
        for f in result.suppressed:
            lines.append(f"  {f.location()}: {f.rule_id} {f.message}")
    return "\n".join(lines)


def _finding_dict(f: Finding) -> Dict:
    out = {
        "rule": f.rule_id,
        "path": f.path,
        "line": f.line,
        "col": f.col,
        "message": f.message,
        "hint": f.hint,
    }
    if f.chain:
        out["chain"] = [
            {"path": p, "line": n, "label": label}
            for p, n, label in f.chain
        ]
    return out


def render_json(result: LintResult) -> str:
    payload = {
        "version": 1,
        "files": result.files,
        "counts": result.counts(),
        "findings": [_finding_dict(f) for f in result.findings],
        "suppressed": [_finding_dict(f) for f in result.suppressed],
        "baselined": [_finding_dict(f) for f in result.baselined],
    }
    return json.dumps(payload, indent=2, sort_keys=True) + "\n"


def render_sarif(result: LintResult) -> str:
    """SARIF 2.1.0, the format CI code-scanning UIs ingest."""
    rule_ids = sorted(
        {f.rule_id for f in result.findings} | set(RULES)
    )
    rules = []
    for rid in rule_ids:
        meta = RULES.get(rid)
        rules.append({
            "id": rid,
            "name": meta.name if meta else rid,
            "shortDescription": {
                "text": meta.summary if meta else "internal finding"
            },
        })
    results = []
    for f in result.findings:
        entry = {
            "ruleId": f.rule_id,
            "ruleIndex": rule_ids.index(f.rule_id),
            "level": "error",
            "message": {
                "text": f.message + (f" — {f.hint}" if f.hint else "")
            },
            "locations": [{
                "physicalLocation": {
                    "artifactLocation": {
                        "uri": f.path,
                        "uriBaseId": "SRCROOT",
                    },
                    "region": {
                        "startLine": f.line,
                        "startColumn": f.col,
                    },
                }
            }],
        }
        if f.chain:
            # the interprocedural witness: each hop of the call chain
            # from the reporting site down to the direct evidence
            entry["relatedLocations"] = [
                {
                    "physicalLocation": {
                        "artifactLocation": {
                            "uri": hop_path,
                            "uriBaseId": "SRCROOT",
                        },
                        "region": {"startLine": hop_line},
                    },
                    "message": {"text": label},
                }
                for hop_path, hop_line, label in f.chain
            ]
        results.append(entry)
    doc = {
        "$schema": ("https://raw.githubusercontent.com/oasis-tcs/"
                    "sarif-spec/master/Schemata/sarif-schema-2.1.0.json"),
        "version": "2.1.0",
        "runs": [{
            "tool": {
                "driver": {
                    "name": "repro-lint",
                    "informationUri":
                        "https://example.invalid/repro/docs/LINT.md",
                    "version": "1.0.0",
                    "rules": rules,
                }
            },
            "columnKind": "unicodeCodePoints",
            "originalUriBaseIds": {"SRCROOT": {"uri": "file:///./"}},
            "results": results,
        }],
    }
    return json.dumps(doc, indent=2, sort_keys=True) + "\n"


RENDERERS = {
    "text": render_text,
    "json": lambda r: render_json(r),
    "sarif": lambda r: render_sarif(r),
}
