"""The committed baseline: known findings ratcheted out of the build.

A baseline entry grandfathers one existing finding by content
fingerprint (rule id + file + flagged line text + occurrence index),
so line-number churn does not invalidate it but any change to the
flagged line does.  ``--strict`` refuses a non-empty baseline: the
shipped tree carries zero entries, and the file exists so that a
future large refactor can land with an explicit, reviewed debt list
instead of a disabled linter.
"""

from __future__ import annotations

import json
import os
from typing import Dict, List

from repro.lint.engine import (
    LintConfig,
    read_sources,
    run_lint,
    with_fingerprints,
)

DEFAULT_BASELINE = "lint-baseline.json"


def load_baseline(path: str) -> Dict[str, Dict]:
    """fingerprint -> entry dict; empty when the file is absent."""
    if not os.path.exists(path):
        return {}
    with open(path, encoding="utf-8") as fh:
        doc = json.load(fh)
    entries = doc.get("entries", [])
    return {e["fingerprint"]: e for e in entries}


def write_baseline(path: str, config: LintConfig) -> int:
    """Snapshot every current finding into ``path``; returns the count."""
    result = run_lint(config)
    sources = read_sources(config)
    entries: List[Dict] = []
    for f, fp in with_fingerprints(result.findings, sources):
        entries.append({
            "fingerprint": fp,
            "rule": f.rule_id,
            "path": f.path,
            "line": f.line,
            "message": f.message,
            "justification": "TODO: why this finding is acceptable",
        })
    doc = {
        "version": 1,
        "comment": (
            "Grandfathered lint findings. Every entry needs a written "
            "justification; `repro lint --strict` fails while any "
            "entry remains."
        ),
        "entries": entries,
    }
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(doc, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return len(entries)
