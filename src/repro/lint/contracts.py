"""Checkpoint- and generator-purity rules (C001/C002, G001/G002).

Two subsystems promise side-effect freedom as part of their API, and
both promises are load-bearing for reproducibility:

* **Checkpoint capture** (:mod:`repro.sim.snapshot`) documents itself
  as pure observation — taking a snapshot must never change a run's
  subsequent results.  The contract extends transitively through every
  ``snapshot_state()``/``snapshot()`` helper capture fans out to: one
  mutating accessor deep in a component (the ``read_joules()`` closing
  the power meter's open intervals, caught in review as PR 7's
  ``peek_joules`` split) breaks byte-identical continuation.  C001
  flags any write reachable from ``capture``/``verify``; C002 flags
  any RNG draw.

* **Trace generators** (:mod:`repro.traffic.generators`) promise that
  every catalogue entry is a pure function of ``(spec, seed)`` — that
  is what makes generated traces cacheable by content hash and safe to
  regenerate inside campaign workers.  G001 flags module-global writes
  reachable from a generator; G002 flags draws from streams outside
  the ``traffic.*``/``faults.*`` families (a generator quietly pulling
  from, say, ``net.jitter`` couples trace bytes to unrelated config).

Reachability comes from :meth:`repro.lint.callgraph.Program.reachable`
with the class-hierarchy fallback enabled: a ``machine.streams
.snapshot_state()`` whose receiver type is unknown still reaches every
in-tree ``snapshot_state`` implementation.  Conservative by design —
these closures are small and their contract is absolute.  Writes to
objects constructed *inside* the closure are exempt (building the
snapshot dict is not a side effect).
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional, Tuple

from repro.lint.engine import Finding, ProgramContext, program_rule

Parents = Dict[str, Tuple[Optional[str], int, bool]]


def _root_of(parents: Parents, key: str, limit: int = 25) -> str:
    cur = key
    for _ in range(limit):
        parent = parents.get(cur, (None, 0, False))[0]
        if parent is None:
            break
        cur = parent
    return cur


def _closure(pc: ProgramContext, roots: Iterable[str]) -> Parents:
    memo_key = ("closure", tuple(sorted(roots)))
    cached = pc.memo.get(memo_key)
    if cached is None:
        cached = pc.program.reachable(roots, use_cha=True)
        pc.memo[memo_key] = cached
    return cached


def _checkpoint_roots(pc: ProgramContext) -> List[str]:
    mod = pc.config.checkpoint_module
    facts = pc.facts.get(mod)
    if not facts:
        return []
    return [
        f"{mod}::{name}" for name in pc.config.checkpoint_roots
        if name in facts["module_funcs"]
    ]


def _generator_roots(pc: ProgramContext) -> List[str]:
    mod = pc.config.generator_module
    facts = pc.facts.get(mod)
    if not facts:
        return []
    return [f"{mod}::{name}" for name in facts["module_funcs"]]


def _described(pc: ProgramContext, parents: Parents, key: str,
               root_verb: str) -> Tuple[str, Tuple]:
    """("<where> ...", chain) naming the function and its entry root."""
    prog = pc.program
    root = _root_of(parents, key)
    if root == key:
        return f"`{prog.display(key)}` ({root_verb} entry point)", ()
    chain = prog.reach_chain(parents, key)
    return (
        f"`{prog.display(key)}`, reachable from {root_verb} entry point "
        f"`{prog.display(root)}`",
        chain,
    )


# ---------------------------------------------------------------------- #
# C-rules: checkpoint purity
# ---------------------------------------------------------------------- #


def _checkpoint_findings(pc: ProgramContext) -> List[Tuple[Finding, str]]:
    cached = pc.memo.get("checkpoint_findings")
    if cached is not None:
        return cached
    out: List[Tuple[Finding, str]] = []
    roots = _checkpoint_roots(pc)
    if roots:
        parents = _closure(pc, roots)
        prog = pc.program
        for key in sorted(parents):
            facts = prog.functions[key]
            path = prog.func_path[key]
            fresh = parents[key][2]
            where, chain = _described(pc, parents, key, "checkpoint")

            def emit(rid: str, site: Dict[str, Any], what: str,
                     hint: str) -> None:
                out.append((pc.finding(
                    path, site["line"], site["col"], rid,
                    f"{what} in {where} — checkpoint capture must be "
                    "pure observation",
                    hint=hint, chain=chain,
                ), rid))

            write_hint = (
                "capture/verify must not mutate any pre-existing "
                "state: return a peeked copy instead of writing "
                "(split the accessor like peek_joules/read_joules), "
                "or take this function out of the capture path"
            )
            for param, site in sorted(facts["param_writes"].items()):
                emit("C001", site,
                     f"write to parameter `{param}` ({site['desc']})",
                     write_hint)
            for site in facts["global_writes"]:
                emit("C001", site,
                     f"module-global write ({site['desc']})", write_hint)
            if facts["self_write"] and facts["cls"] and not fresh:
                emit("C001", facts["self_write"],
                     f"write to `self` ({facts['self_write']['desc']})",
                     write_hint)

            draw_hint = (
                "a draw during capture advances a stream and forks "
                "the run from its uncheckpointed twin; snapshot RNG "
                "state with getstate-style accessors only"
            )
            for site in facts["draws"]:
                emit("C002", site,
                     f"RNG stream draw ({site['desc']})", draw_hint)
            if path != pc.config.rng_module:
                for site in facts["rawrng"]:
                    emit("C002", site, site["desc"], draw_hint)
    pc.memo["checkpoint_findings"] = out
    return out


@program_rule("C001", "checkpoint-writes",
              "state write reachable from checkpoint capture/verify")
def check_checkpoint_writes(pc: ProgramContext) -> Iterable[Finding]:
    for f, rid in _checkpoint_findings(pc):
        if rid == "C001":
            yield f


@program_rule("C002", "checkpoint-draws",
              "RNG use reachable from checkpoint capture/verify")
def check_checkpoint_draws(pc: ProgramContext) -> Iterable[Finding]:
    for f, rid in _checkpoint_findings(pc):
        if rid == "C002":
            yield f


# ---------------------------------------------------------------------- #
# G-rules: generator purity
# ---------------------------------------------------------------------- #


def _generator_findings(pc: ProgramContext) -> List[Tuple[Finding, str]]:
    cached = pc.memo.get("generator_findings")
    if cached is not None:
        return cached
    out: List[Tuple[Finding, str]] = []
    roots = _generator_roots(pc)
    if roots:
        parents = _closure(pc, roots)
        prog = pc.program
        prefixes = tuple(pc.config.generator_stream_prefixes)
        for key in sorted(parents):
            facts = prog.functions[key]
            path = prog.func_path[key]
            where, chain = _described(pc, parents, key, "generator")

            for site in facts["global_writes"]:
                out.append((pc.finding(
                    path, site["line"], site["col"], "G001",
                    f"module-global write ({site['desc']}) in {where} — "
                    "generators must be pure functions of (spec, seed)",
                    hint="a module-global makes trace bytes depend on "
                         "call order; derive everything from the spec "
                         "and the seeded streams",
                    chain=chain,
                ), "G001"))

            if path == pc.config.rng_module:
                continue  # the stream factory's own plumbing
            for site in facts["draws"]:
                prefix = site.get("prefix")
                if prefix is not None and prefix.startswith(prefixes):
                    continue
                shown = (f"`{prefix}...`" if prefix is not None
                         else "a non-literal stream name")
                out.append((pc.finding(
                    path, site["line"], site["col"], "G002",
                    f"draw from {shown} in {where} — generators may "
                    f"only draw from "
                    f"{'/'.join(p + '*' for p in prefixes)} streams",
                    hint="name the stream with a literal traffic.* "
                         "prefix so trace bytes cannot couple to "
                         "unrelated subsystems' draw order",
                    chain=chain,
                ), "G002"))
    pc.memo["generator_findings"] = out
    return out


@program_rule("G001", "generator-global-write",
              "module-global write reachable from a trace generator")
def check_generator_globals(pc: ProgramContext) -> Iterable[Finding]:
    for f, rid in _generator_findings(pc):
        if rid == "G001":
            yield f


@program_rule("G002", "generator-foreign-stream",
              "trace generator draws from a foreign stream family")
def check_generator_streams(pc: ProgramContext) -> Iterable[Finding]:
    for f, rid in _generator_findings(pc):
        if rid == "G002":
            yield f
