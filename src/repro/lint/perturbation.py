"""Zero-perturbation rules (P001–P004).

The observability layers — :mod:`repro.trace`, :mod:`repro.metrics`,
:mod:`repro.check` — promise that enabling them never changes a run's
results: they schedule no events, draw no randomness, and mutate
nothing they observe.  PR 1/PR 4 assert this dynamically (byte-identical
runs, RNG states compared); these rules enforce the two mutation
vectors statically on every code path.

P001/P002 are intraprocedural (a write or draw in the observer file
itself).  P003/P004 lift the same contract across calls using the
propagated summaries: an observer that hands its subject to a helper
which mutates it, or that reaches a stream draw three frames down, is
flagged at the observer's call site with the full witness chain.
"""

from __future__ import annotations

import ast
from typing import Iterable, Set

from repro.lint.astutil import target_root
from repro.lint.engine import (
    FileContext,
    Finding,
    ProgramContext,
    program_rule,
    rule,
)

#: first parameters that denote the observer itself, whose own state is
#: fair game
_SELF_NAMES = {"self", "cls"}


def _function_params(fn: ast.AST) -> Set[str]:
    args = fn.args
    names = {a.arg for a in args.args}
    names |= {a.arg for a in args.posonlyargs}
    names |= {a.arg for a in args.kwonlyargs}
    if args.vararg:
        names.add(args.vararg.arg)
    if args.kwarg:
        names.add(args.kwarg.arg)
    return names - _SELF_NAMES


@rule("P001", "observer-write",
      "observer mutates an object it was handed to observe")
def check_observer_writes(ctx: FileContext) -> Iterable[Finding]:
    if not ctx.is_observer:
        return
    for fn in ast.walk(ctx.tree):
        if not isinstance(fn, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        params = _function_params(fn)
        if not params:
            continue
        # only this function's own statements: nested defs get their
        # own visit with their own parameter set
        for stmt in ast.walk(fn):
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)) \
                    and stmt is not fn:
                continue
            targets = ()
            if isinstance(stmt, ast.Assign):
                targets = stmt.targets
            elif isinstance(stmt, (ast.AugAssign, ast.AnnAssign)):
                targets = (stmt.target,)
            elif isinstance(stmt, ast.Delete):
                targets = tuple(stmt.targets)
            for t in targets:
                if not isinstance(t, (ast.Attribute, ast.Subscript)):
                    continue
                root = target_root(t)
                if root in params:
                    yield ctx.finding(
                        t, "P001",
                        f"observer writes through parameter `{root}`: "
                        "observers must read, never mutate",
                        hint="keep derived state on the observer object "
                             "(self.*); the subject stays untouched",
                    )


@rule("P002", "observer-rng",
      "observer draws from an RNG stream")
def check_observer_rng(ctx: FileContext) -> Iterable[Finding]:
    if not ctx.is_observer:
        return
    for node in ast.walk(ctx.tree):
        if (isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in ("stream", "numpy_stream")):
            yield ctx.finding(
                node, "P002",
                f"observer calls .{node.func.attr}(): creating or "
                "advancing an RNG stream perturbs seeded runs",
                hint="observers must not draw randomness; sample "
                     "deterministically (e.g. every Nth event) instead",
            )


def _observer_functions(pc: ProgramContext):
    prog = pc.program
    for path in sorted(pc.facts):
        if not pc.is_observer(path):
            continue
        if path in pc.config.observer_driver_files:
            continue  # drives monitored runs; reach is inherent
        for qual in sorted(pc.facts[path]["functions"]):
            key = f"{path}::{qual}"
            s = prog.summaries.get(key)
            if s is not None:
                yield path, key, s


@program_rule("P003", "observer-write-transitive",
              "observer mutates its subject through a callee")
def check_observer_writes_transitive(
    pc: ProgramContext,
) -> Iterable[Finding]:
    prog = pc.program
    for path, key, s in _observer_functions(pc):
        for param, w in sorted(s.writes.items()):
            if w[0] != "call":
                continue  # direct writes are P001's
            yield pc.finding(
                path, w[1], w[2], "P003",
                f"observer passes `{param}` into "
                f"`{prog.display(w[3])}`, which mutates it: observers "
                "must read, never mutate",
                hint="the callee writes the object the observer was "
                     "handed to watch; copy what you need, or keep "
                     "derived state on the observer (self.*)",
                chain=prog.chain(key, "write", param),
            )


@program_rule("P004", "observer-rng-transitive",
              "observer reaches an RNG draw through a callee")
def check_observer_rng_transitive(
    pc: ProgramContext,
) -> Iterable[Finding]:
    prog = pc.program
    for path, key, s in _observer_functions(pc):
        w = s.draw
        if w is None or w[0] != "call":
            continue  # direct draws are P002's
        yield pc.finding(
            path, w[1], w[2], "P004",
            f"observer call into `{prog.display(w[3])}` reaches an RNG "
            "draw: enabling this observer would advance seeded streams",
            hint="observers must not draw randomness, even indirectly; "
                 "the chain below shows the path to the draw site",
            chain=prog.chain(key, "draw"),
        )
