"""Zero-perturbation rules (P001–P002).

The observability layers — :mod:`repro.trace`, :mod:`repro.metrics`,
:mod:`repro.check` — promise that enabling them never changes a run's
results: they schedule no events, draw no randomness, and mutate
nothing they observe.  PR 1/PR 4 assert this dynamically (byte-identical
runs, RNG states compared); these rules enforce the two mutation
vectors statically on every code path.
"""

from __future__ import annotations

import ast
from typing import Iterable, Set

from repro.lint.astutil import target_root
from repro.lint.engine import FileContext, Finding, rule

#: first parameters that denote the observer itself, whose own state is
#: fair game
_SELF_NAMES = {"self", "cls"}


def _function_params(fn: ast.AST) -> Set[str]:
    args = fn.args
    names = {a.arg for a in args.args}
    names |= {a.arg for a in args.posonlyargs}
    names |= {a.arg for a in args.kwonlyargs}
    if args.vararg:
        names.add(args.vararg.arg)
    if args.kwarg:
        names.add(args.kwarg.arg)
    return names - _SELF_NAMES


@rule("P001", "observer-write",
      "observer mutates an object it was handed to observe")
def check_observer_writes(ctx: FileContext) -> Iterable[Finding]:
    if not ctx.is_observer:
        return
    for fn in ast.walk(ctx.tree):
        if not isinstance(fn, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        params = _function_params(fn)
        if not params:
            continue
        # only this function's own statements: nested defs get their
        # own visit with their own parameter set
        for stmt in ast.walk(fn):
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)) \
                    and stmt is not fn:
                continue
            targets = ()
            if isinstance(stmt, ast.Assign):
                targets = stmt.targets
            elif isinstance(stmt, (ast.AugAssign, ast.AnnAssign)):
                targets = (stmt.target,)
            elif isinstance(stmt, ast.Delete):
                targets = tuple(stmt.targets)
            for t in targets:
                if not isinstance(t, (ast.Attribute, ast.Subscript)):
                    continue
                root = target_root(t)
                if root in params:
                    yield ctx.finding(
                        t, "P001",
                        f"observer writes through parameter `{root}`: "
                        "observers must read, never mutate",
                        hint="keep derived state on the observer object "
                             "(self.*); the subject stays untouched",
                    )


@rule("P002", "observer-rng",
      "observer draws from an RNG stream")
def check_observer_rng(ctx: FileContext) -> Iterable[Finding]:
    if not ctx.is_observer:
        return
    for node in ast.walk(ctx.tree):
        if (isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in ("stream", "numpy_stream")):
            yield ctx.finding(
                node, "P002",
                f"observer calls .{node.func.attr}(): creating or "
                "advancing an RNG stream perturbs seeded runs",
                hint="observers must not draw randomness; sample "
                     "deterministically (e.g. every Nth event) instead",
            )
