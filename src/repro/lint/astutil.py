"""Small AST helpers shared by the rule modules."""

from __future__ import annotations

import ast
from typing import Dict, Optional


def dotted_name(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for a Name/Attribute chain, else None."""
    parts = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


class ImportMap:
    """Resolves local names to the dotted module paths they alias.

    ``import numpy as np``          →  ``np``        ⇒ ``numpy``
    ``import time``                 →  ``time``      ⇒ ``time``
    ``from time import sleep as s`` →  ``s``         ⇒ ``time.sleep``
    ``from datetime import datetime`` → ``datetime`` ⇒ ``datetime.datetime``
    """

    def __init__(self, tree: ast.Module):
        self.aliases: Dict[str, str] = {}
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for a in node.names:
                    self.aliases[a.asname or a.name.split(".")[0]] = (
                        a.name if a.asname else a.name.split(".")[0]
                    )
            elif isinstance(node, ast.ImportFrom) and node.module:
                if node.level:  # relative import: never stdlib random/time
                    continue
                for a in node.names:
                    self.aliases[a.asname or a.name] = (
                        f"{node.module}.{a.name}"
                    )

    def resolve_call(self, func: ast.AST) -> Optional[str]:
        """The fully-qualified dotted path of a call target, through
        the import aliases; None when the root is not an import."""
        dotted = dotted_name(func)
        if dotted is None:
            return None
        head, _, rest = dotted.partition(".")
        real = self.aliases.get(head)
        if real is None:
            return None
        return f"{real}.{rest}" if rest else real


def expr_key(node: ast.AST) -> str:
    """A stable textual key for an expression (lock objects, handles):
    normalised ``ast.unparse`` so ``sq.lock`` compares equal across
    occurrences."""
    try:
        return ast.unparse(node)
    except Exception:  # pragma: no cover - malformed synthetic nodes
        return ast.dump(node)


def target_root(node: ast.AST) -> Optional[str]:
    """The root Name of an assignment target chain (``a.b[c].d`` → ``a``)."""
    while isinstance(node, (ast.Attribute, ast.Subscript)):
        node = node.value
    if isinstance(node, ast.Name):
        return node.id
    return None


def call_attr(node: ast.AST) -> Optional[str]:
    """The method name when ``node`` is an ``obj.method(...)`` call."""
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
        return node.func.attr
    return None


_SCOPE_NODES = (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)


def walk_shallow(root: ast.AST):
    """Like :func:`ast.walk` but does not descend into nested function
    scopes (defs/lambdas) — their statements belong to their own CFG."""
    stack = [root]
    while stack:
        node = stack.pop()
        yield node
        for child in ast.iter_child_nodes(node):
            if isinstance(child, _SCOPE_NODES):
                continue
            stack.append(child)


def stmt_header_exprs(stmt: ast.stmt):
    """The expressions a CFG block *itself* evaluates for a compound
    statement whose body lives in successor blocks: the ``if``/``while``
    test, the ``for`` iterable and target, ``with`` context managers.
    Simple statements evaluate everything they contain."""
    if isinstance(stmt, (ast.If, ast.While)):
        return [stmt.test]
    if isinstance(stmt, (ast.For, ast.AsyncFor)):
        return [stmt.iter, stmt.target]
    if isinstance(stmt, (ast.With, ast.AsyncWith)):
        out = []
        for item in stmt.items:
            out.append(item.context_expr)
            if item.optional_vars is not None:
                out.append(item.optional_vars)
        return out
    return [stmt]
