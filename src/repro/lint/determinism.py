"""Determinism rules (D001–D006).

The whole reproduction is a deterministic discrete-event simulation:
same seed, same packet-for-packet run.  That holds only if (a) every
random draw flows through the named streams of :mod:`repro.sim.rng`,
(b) nothing in the simulated world reads the wall clock, and (c) no
iteration order that feeds the simulator depends on hashing or object
identity.  D001–D004 enforce each leg statically within one file.

D005/D006 close the wrapper loophole with the propagated summaries:
D002 cannot see a sim component calling a ``bench/`` helper that reads
``time.perf_counter`` (the helper's file is allowlisted), and D001
cannot see a call into a wrapper that draws raw RNG one file away.
Both rules fire exactly at the boundary-crossing call site — the
callee's own callers are not re-flagged, so one leak yields one
finding, with the chain pointing at the underlying clock read / draw.
"""

from __future__ import annotations

import ast
from typing import Iterable, List, Optional, Set

from repro.lint.astutil import ImportMap, call_attr, dotted_name, target_root
from repro.lint.engine import (
    FileContext,
    Finding,
    ProgramContext,
    program_rule,
    rule,
)

#: time.* members that read or wait on the wall clock
_WALLCLOCK_TIME = {
    "time", "time_ns", "monotonic", "monotonic_ns", "perf_counter",
    "perf_counter_ns", "process_time", "process_time_ns", "sleep",
    "clock_gettime", "clock_gettime_ns",
}
#: datetime constructors that capture "now"
_WALLCLOCK_DATETIME = {
    "datetime.datetime.now", "datetime.datetime.utcnow",
    "datetime.datetime.today", "datetime.date.today",
}

#: method names whose call inside a loop body means the loop drives the
#: simulation (scheduling, RNG draws, thread/timer control)
_EFFECT_METHODS = {
    "call_at", "call_after", "timeout_event", "succeed", "schedule",
    "spawn", "stream", "numpy_stream", "wake", "wake_all", "arm",
    "cancel", "start_thread", "sleep", "fire", "inject",
    "push", "pop", "enqueue", "dequeue", "rx_burst", "tx_burst",
    "release", "try_acquire",
}


@rule("D001", "raw-rng",
      "raw RNG constructed or drawn outside sim/rng.py")
def check_raw_rng(ctx: FileContext) -> Iterable[Finding]:
    if ctx.is_rng_module:
        return
    imports = ImportMap(ctx.tree)
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Call):
            continue
        path = imports.resolve_call(node.func)
        if path is None:
            continue
        if path == "random" or path.startswith("random."):
            yield ctx.finding(
                node, "D001",
                f"raw stdlib RNG call `{path}` outside sim/rng.py",
                hint="draw from a named stream: "
                     "machine.streams.stream('<component>')",
            )
        elif path.startswith("numpy.random.") or path == "numpy.random":
            yield ctx.finding(
                node, "D001",
                f"raw numpy RNG call `{path}` outside sim/rng.py",
                hint="use machine.streams.numpy_stream('<component>')",
            )


@rule("D002", "wall-clock",
      "wall-clock read/sleep inside the simulated world")
def check_wallclock(ctx: FileContext) -> Iterable[Finding]:
    if ctx.wallclock_allowed:
        return
    imports = ImportMap(ctx.tree)
    # flag `from time import sleep`-style imports at the import site:
    # the name leaks into the module namespace ready to be called
    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.ImportFrom) and node.module == "time":
            bad = [a.name for a in node.names if a.name in _WALLCLOCK_TIME]
            if bad:
                yield ctx.finding(
                    node, "D002",
                    f"imports wall-clock symbol(s) {', '.join(sorted(bad))} "
                    "from `time` inside the simulated world",
                    hint="simulated components read machine.sim.now; only "
                         "campaign/ and tools/ live in wall-clock time",
                )
        if not isinstance(node, ast.Call):
            continue
        path = imports.resolve_call(node.func)
        if path is None:
            continue
        mod, _, attr = path.partition(".")
        if mod == "time" and attr in _WALLCLOCK_TIME:
            yield ctx.finding(
                node, "D002",
                f"wall-clock call `{path}` inside the simulated world",
                hint="use machine.sim.now / sim timeouts; wall-clock time "
                     "is only legitimate under campaign/ and tools/",
            )
        elif path in _WALLCLOCK_DATETIME:
            yield ctx.finding(
                node, "D002",
                f"wall-clock call `{path}` inside the simulated world",
                hint="derive timestamps from machine.sim.now",
            )


def _unordered_iterable(node: ast.expr) -> Optional[str]:
    """Why iterating ``node`` directly is hash/insertion-order
    dependent, or None when it is ordered."""
    if isinstance(node, ast.Set):
        return "set literal"
    if isinstance(node, ast.SetComp):
        return "set comprehension"
    if isinstance(node, ast.Call):
        fn = node.func
        if isinstance(fn, ast.Name) and fn.id in ("set", "frozenset"):
            return f"{fn.id}(...)"
        if isinstance(fn, ast.Attribute) and fn.attr in (
            "keys", "values", "items"
        ):
            return f"dict .{fn.attr}() view"
        if isinstance(fn, ast.Attribute) and fn.attr in (
            "union", "intersection", "difference", "symmetric_difference",
        ):
            return f"set .{fn.attr}() result"
    return None


def _body_effects(body: List[ast.stmt], params: Set[str]) -> Optional[str]:
    """Does this loop body drive the simulator / mutate sim state?
    Returns a short description of the first effect found."""
    for stmt in body:
        for node in ast.walk(stmt):
            if isinstance(node, (ast.Yield, ast.YieldFrom)):
                return "yields into the simulator"
            attr = call_attr(node)
            if attr in _EFFECT_METHODS:
                return f"calls .{attr}()"
            if isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
                targets = (
                    node.targets if isinstance(node, ast.Assign)
                    else [node.target]
                )
                for t in targets:
                    if isinstance(t, (ast.Attribute, ast.Subscript)):
                        root = target_root(t)
                        if root is not None and root in params:
                            return f"mutates state on `{root}`"
    return None


@rule("D003", "unordered-iter",
      "hash-order iteration driving the simulator or mutating sim state")
def check_unordered_iteration(ctx: FileContext) -> Iterable[Finding]:
    # collect the parameter names of each enclosing function so that
    # "mutates sim state" can distinguish objects handed in from
    # locals built inside the loop
    func_params: List[tuple] = []  # (func node, params)
    for node in ast.walk(ctx.tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            params = {a.arg for a in node.args.args}
            params |= {a.arg for a in node.args.posonlyargs}
            params |= {a.arg for a in node.args.kwonlyargs}
            params.add("self")
            func_params.append((node, params))

    def params_for(n: ast.AST) -> Set[str]:
        best: Set[str] = {"self"}
        best_span = None
        for fn, params in func_params:
            if (fn.lineno <= n.lineno
                    and n.lineno <= (fn.end_lineno or fn.lineno)):
                span = (fn.end_lineno or fn.lineno) - fn.lineno
                if best_span is None or span < best_span:
                    best, best_span = params, span
        return best

    for node in ast.walk(ctx.tree):
        if isinstance(node, (ast.For, ast.AsyncFor)):
            why = _unordered_iterable(node.iter)
            if why is None:
                continue
            effect = _body_effects(node.body, params_for(node))
            if effect is None:
                continue
            yield ctx.finding(
                node, "D003",
                f"iteration over {why} {effect}: order is hash/"
                "insertion dependent and feeds the simulation",
                hint="wrap the iterable in sorted(...) with an explicit "
                     "key, or suppress with a reason why order is inert",
            )
        elif isinstance(node, (ast.ListComp, ast.SetComp, ast.GeneratorExp,
                               ast.DictComp)):
            for gen in node.generators:
                why = _unordered_iterable(gen.iter)
                if why is None:
                    continue
                elt = (node.elt if not isinstance(node, ast.DictComp)
                       else node.value)
                fake = ast.Expr(value=elt)
                ast.copy_location(fake, node)
                effect = _body_effects([fake], params_for(node))
                if effect is None:
                    continue
                yield ctx.finding(
                    node, "D003",
                    f"comprehension over {why} {effect}: order is "
                    "hash/insertion dependent and feeds the simulation",
                    hint="wrap the iterable in sorted(...)",
                )


def _is_id_key(node: Optional[ast.expr]) -> bool:
    if node is None:
        return False
    if isinstance(node, ast.Name) and node.id == "id":
        return True
    if isinstance(node, ast.Lambda):
        for sub in ast.walk(node.body):
            if (isinstance(sub, ast.Call)
                    and isinstance(sub.func, ast.Name)
                    and sub.func.id == "id"):
                return True
    return False


@rule("D004", "id-order",
      "ordering keyed on id() — CPython address order is not stable")
def check_id_ordering(ctx: FileContext) -> Iterable[Finding]:
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Call):
            continue
        is_order_fn = (
            isinstance(node.func, ast.Name)
            and node.func.id in ("sorted", "min", "max")
        ) or (
            isinstance(node.func, ast.Attribute) and node.func.attr == "sort"
        )
        if not is_order_fn:
            continue
        for kw in node.keywords:
            if kw.arg == "key" and _is_id_key(kw.value):
                name = dotted_name(node.func) or "sort"
                yield ctx.finding(
                    node, "D004",
                    f"`{name}` ordered by id(): object addresses vary "
                    "run to run",
                    hint="order by a stable attribute (name, index, "
                         "sequence number) instead of identity",
                )


def _resolved_calls(pc: ProgramContext, path: str):
    """(call record, resolution, caller key) for every resolved call
    site in ``path``, in source order."""
    prog = pc.program
    for qual in sorted(pc.facts[path]["functions"]):
        key = f"{path}::{qual}"
        for call in sorted(pc.facts[path]["functions"][qual]["calls"],
                           key=lambda c: (c["line"], c["col"])):
            res = prog.resolution_at(path, call["line"], call["col"])
            if res is not None:
                yield call, res, key


@program_rule("D005", "wall-clock-transitive",
              "simulated code reaches the wall clock through an "
              "allowlisted helper")
def check_wallclock_transitive(pc: ProgramContext) -> Iterable[Finding]:
    prog = pc.program
    for path in sorted(pc.facts):
        if pc.wallclock_allowed(path):
            continue
        for call, res, _key in _resolved_calls(pc, path):
            callee_path = prog.func_path[res.key]
            if not pc.wallclock_allowed(callee_path):
                continue  # not a boundary crossing
            w = prog.summaries[res.key].wallclock
            if w is None:
                continue
            yield pc.finding(
                path, call["line"], call["col"], "D005",
                f"call into `{prog.display(res.key)}` reads the wall "
                "clock: the allowlist covers that helper's own file, "
                "not simulated callers",
                hint="simulated components take time from "
                     "machine.sim.now; pass timings in, or move the "
                     "clock read to the campaign/bench layer",
                chain=(
                    (path, call["line"], f"calls {prog.display(res.key)}"),
                ) + prog.chain(res.key, "wallclock"),
            )


@program_rule("D006", "raw-rng-transitive",
              "call into a wrapper that draws raw (unstreamed) RNG")
def check_raw_rng_transitive(pc: ProgramContext) -> Iterable[Finding]:
    prog = pc.program
    for path in sorted(pc.facts):
        if path == pc.config.rng_module:
            continue
        for call, res, _key in _resolved_calls(pc, path):
            callee_path = prog.func_path[res.key]
            if callee_path == pc.config.rng_module:
                continue  # the one module allowed to touch raw RNG
            w = prog.summaries[res.key].rawrng
            if w is None or w[0] != "direct":
                continue  # the drawing function itself gets D001;
                # flagging only its immediate callers stops the
                # finding from cascading up every call chain
            yield pc.finding(
                path, call["line"], call["col"], "D006",
                f"call into `{prog.display(res.key)}` draws raw RNG "
                f"({w[3]}): seeded replay cannot see or pin this "
                "generator",
                hint="route the draw through a named stream "
                     "(machine.streams.stream('<component>')) so the "
                     "seed recipe captures it",
                chain=(
                    (path, call["line"], f"calls {prog.display(res.key)}"),
                ) + prog.chain(res.key, "rawrng"),
            )
