"""API-misuse rules (A001–A003).

Misuse patterns that runtime checks catch only when the bad path
executes: a cancelled :class:`~repro.sim.core.Handle` treated as live,
observability objects constructed ad hoc instead of threaded from the
:class:`~repro.kernel.machine.Machine` (which silently forks the
zero-perturbation state), and bare ``except:`` swallowing
``SimulationError`` / ``KeyboardInterrupt`` around scheduler callbacks.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, List, Set, Tuple

from repro.lint.astutil import expr_key, stmt_header_exprs, walk_shallow
from repro.lint.cfg import build_cfg, function_defs
from repro.lint.engine import FileContext, Finding, rule

# Handle attributes that remain meaningful after cancel()
_STATUS_ATTRS = {"cancel", "cancelled", "fired"}

LIVE, CANCELLED, MAYBE = 0, 1, 2


def _join(a: int, b: int) -> int:
    return a if a == b else MAYBE


def _cancel_key(node: ast.AST):
    if (isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "cancel"
            and not node.args and not node.keywords):
        return expr_key(node.func.value)
    return None


def _handle_uses(fn: ast.AST) -> List[Tuple[ast.AST, str, str]]:
    """CFG dataflow: attribute uses of a handle after ``.cancel()``."""
    keys: Set[str] = set()
    for node in walk_shallow(fn):
        k = _cancel_key(node)
        if k is not None:
            keys.add(k)
    if not keys:
        return []

    cfg = build_cfg(fn)

    def transfer(block, state, findings, report):
        state = dict(state)
        for stmt in block.stmts:
            for header in stmt_header_exprs(stmt):
                # order within one header: uses are judged against the
                # state *before* this statement's own cancel runs, which
                # walk order cannot guarantee — so judge uses first
                if report:
                    for node in walk_shallow(header):
                        if (isinstance(node, ast.Attribute)
                                and node.attr not in _STATUS_ATTRS):
                            key = expr_key(node.value)
                            if key in keys and state.get(key) == CANCELLED:
                                findings.append((
                                    node, "A001",
                                    f"`{key}.{node.attr}` used after "
                                    f"`{key}.cancel()`: a cancelled "
                                    "Handle never fires again",
                                ))
                for node in walk_shallow(header):
                    k = _cancel_key(node)
                    if k is not None:
                        state[k] = CANCELLED
                # (re)binding the name resurrects it with a fresh handle
                if isinstance(stmt, ast.Assign):
                    for t in stmt.targets:
                        tk = expr_key(t)
                        if tk in keys:
                            state[tk] = LIVE
                elif isinstance(stmt, (ast.AnnAssign, ast.AugAssign)):
                    tk = expr_key(stmt.target)
                    if tk in keys:
                        state[tk] = LIVE
        return state

    entry = {k: LIVE for k in keys}
    in_states: Dict[int, Dict[str, int]] = {cfg.entry.id: entry}
    for _round in range(len(cfg.blocks) * 4 + 8):
        changed = False
        for block in cfg.blocks:
            if block.id not in in_states:
                continue
            out = transfer(block, in_states[block.id], [], False)
            for succ, _label in block.succs:
                cur = in_states.get(succ.id)
                if cur is None:
                    in_states[succ.id] = dict(out)
                    changed = True
                else:
                    merged = {k: _join(cur.get(k, LIVE), out.get(k, LIVE))
                              for k in keys}
                    if merged != cur:
                        in_states[succ.id] = merged
                        changed = True
        if not changed:
            break

    findings: List[Tuple[ast.AST, str, str]] = []
    seen: Set[Tuple[int, int]] = set()
    for block in cfg.blocks:
        if block.id not in in_states:
            continue
        local: List[Tuple[ast.AST, str, str]] = []
        transfer(block, in_states[block.id], local, True)
        for node, rid, msg in local:
            dedup = (getattr(node, "lineno", 0),
                     getattr(node, "col_offset", 0))
            if dedup not in seen:
                seen.add(dedup)
                findings.append((node, rid, msg))
    return findings


@rule("A001", "handle-after-cancel",
      "scheduled-callback Handle used after cancel()")
def check_handle_after_cancel(ctx: FileContext) -> Iterable[Finding]:
    for fn in function_defs(ctx.tree):
        for node, _rid, msg in _handle_uses(fn):
            yield ctx.finding(
                node, "A001", msg,
                hint="re-arm by scheduling a new callback "
                     "(sim.call_at/call_after) and rebinding the name; "
                     "only .cancelled/.fired remain meaningful",
            )


@rule("A002", "adhoc-observer",
      "tracer=/checks= constructed per call instead of threaded "
      "from the Machine")
def check_adhoc_observer(ctx: FileContext) -> Iterable[Finding]:
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Call):
            continue
        for kw in node.keywords:
            if kw.arg in ("tracer", "checks") and isinstance(
                    kw.value, ast.Call):
                yield ctx.finding(
                    kw.value, "A002",
                    f"`{kw.arg}=` bound to a fresh object at the call "
                    "site: observability state forks from the Machine's",
                    hint=f"thread machine.{kw.arg} (or pass None); a "
                         "per-call observer sees a private, partial "
                         "event stream",
                )


@rule("A003", "bare-except",
      "bare except: around simulated work")
def check_bare_except(ctx: FileContext) -> Iterable[Finding]:
    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.ExceptHandler) and node.type is None:
            yield ctx.finding(
                node, "A003",
                "bare `except:` catches SimulationError and "
                "KeyboardInterrupt alike, hiding scheduler faults",
                hint="catch the narrowest exception that the callback "
                     "can actually raise (or `except Exception` at worst)",
            )
