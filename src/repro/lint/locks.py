"""Lock-discipline rules (L001–L002).

Metronome's queue sharing (paper §3.2) rests on the per-queue trylock:
a thread that wins ``try_acquire`` drains the queue and *must* release
before sleeping, on every path — a leaked lock silently starves the
queue forever, the precise failure the primary/backup timeout diversity
exists to avoid.  The runtime shadow map (repro.check ``lock`` monitor)
catches leaks on executed paths; this rule proves pairing on *all*
paths of every function, including ones no test reaches.

Analysis: a forward dataflow over the intraprocedural CFG.  Lock
objects are identified textually (``sq.lock``); branch edges whose
test is (a negation of) a ``try_acquire`` call — or a boolean variable
bound to one — refine the lock to HELD on the true side and FREE on
the false side.  At the normal exit, HELD or MAYBE means some path
leaks (L001); a ``release`` at a point where the lock is provably FREE
is unpaired (L002).  Crash paths (uncaught ``raise``) are exempt.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.lint.astutil import expr_key, stmt_header_exprs, walk_shallow
from repro.lint.cfg import CFG, Block, build_cfg, function_defs
from repro.lint.engine import FileContext, Finding, rule

# lattice: FREE < HELD, MAYBE = join(FREE, HELD)
FREE, HELD, MAYBE = 0, 1, 2


def _join(a: int, b: int) -> int:
    return a if a == b else MAYBE


def _acquire_call(node: ast.AST) -> Optional[Tuple[str, ast.Call]]:
    """(lock key, call node) when ``node`` is ``<lock>.try_acquire(...)``."""
    if (isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "try_acquire"):
        return expr_key(node.func.value), node
    return None


def _release_call(node: ast.AST) -> Optional[Tuple[str, ast.Call]]:
    if (isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "release"):
        return expr_key(node.func.value), node
    return None


class _FunctionLocks:
    """The lock analysis of one function."""

    def __init__(self, fn: ast.AST):
        self.fn = fn
        self.cfg: CFG = build_cfg(fn)
        #: lock key -> first try_acquire call (for reporting)
        self.acquire_sites: Dict[str, ast.Call] = {}
        #: boolean variable name -> lock key (``ok = x.try_acquire(...)``)
        self.flag_vars: Dict[str, str] = {}
        self._scan()

    def _scan(self) -> None:
        for node in walk_shallow(self.fn):
            acq = _acquire_call(node)
            if acq:
                self.acquire_sites.setdefault(acq[0], acq[1])
            if isinstance(node, ast.Assign) and len(node.targets) == 1:
                target = node.targets[0]
                acq = _acquire_call(node.value)
                if acq and isinstance(target, ast.Name):
                    self.flag_vars[target.id] = acq[0]

    # -- branch refinement --------------------------------------------- #

    def _branch_lock(self, test: ast.expr) -> Optional[Tuple[str, bool]]:
        """(lock key, truthy-means-held) for a branch test, or None.

        Handles ``x.try_acquire(k)``, ``not x.try_acquire(k)``, a flag
        name bound to an acquire, and its negation.  Anything more
        complex stays unrefined (conservative MAYBE on both sides).
        """
        negated = False
        while isinstance(test, ast.UnaryOp) and isinstance(test.op, ast.Not):
            negated = not negated
            test = test.operand
        acq = _acquire_call(test)
        if acq:
            return acq[0], not negated
        if isinstance(test, ast.Name) and test.id in self.flag_vars:
            return self.flag_vars[test.id], not negated
        return None

    # -- transfer ------------------------------------------------------ #

    def _transfer(
        self, block: Block, state: Dict[str, int],
        findings: List[Tuple[ast.AST, str, str]],
        report: bool,
    ) -> Dict[str, int]:
        state = dict(state)
        for stmt in block.stmts:
            for header in stmt_header_exprs(stmt):
                self._transfer_expr(header, state, findings, report)
        return state

    def _transfer_expr(
        self, header: ast.AST, state: Dict[str, int],
        findings: List[Tuple[ast.AST, str, str]],
        report: bool,
    ) -> None:
        for node in walk_shallow(header):
            rel = _release_call(node)
            if rel is not None:
                key, call = rel
                if key in self.acquire_sites:
                    if report and state.get(key, FREE) == FREE:
                        findings.append((
                            call, "L002",
                            f"release of `{key}` not dominated by a "
                            "successful try_acquire on this path",
                        ))
                    state[key] = FREE
                continue
            acq = _acquire_call(node)
            if acq is not None:
                key = acq[0]
                # the result may be branched on right here (the block's
                # test) — the edge refinement sharpens this; unbranched
                # acquires stay MAYBE, which correctly reports "leaked
                # on the success path" at exit
                prev = state.get(key, FREE)
                state[key] = MAYBE if prev == FREE else prev

    def _edge_state(
        self, block: Block, label: str, state: Dict[str, int]
    ) -> Dict[str, int]:
        if block.branch is None or label not in ("true", "false"):
            return state
        refined = self._branch_lock(block.branch)
        if refined is None:
            return state
        key, truthy_held = refined
        state = dict(state)
        state[key] = HELD if (label == "true") == truthy_held else FREE
        return state

    # -- fixpoint ------------------------------------------------------ #

    def run(self) -> List[Tuple[ast.AST, str, str]]:
        if not self.acquire_sites:
            return []
        entry_state: Dict[str, int] = {k: FREE for k in self.acquire_sites}
        in_states: Dict[int, Dict[str, int]] = {self.cfg.entry.id: entry_state}
        # two passes: fixpoint first (no reporting), then one reporting
        # sweep over the stable states so loops do not duplicate findings
        for _round in range(len(self.cfg.blocks) * 4 + 8):
            changed = False
            for block in self.cfg.blocks:
                if block.id not in in_states:
                    continue
                out = self._transfer(block, in_states[block.id], [], False)
                for succ, label in block.succs:
                    es = self._edge_state(block, label, out)
                    cur = in_states.get(succ.id)
                    if cur is None:
                        in_states[succ.id] = dict(es)
                        changed = True
                    else:
                        merged = {
                            k: _join(cur.get(k, FREE), es.get(k, FREE))
                            for k in self.acquire_sites
                        }
                        if merged != cur:
                            in_states[succ.id] = merged
                            changed = True
            if not changed:
                break

        findings: List[Tuple[ast.AST, str, str]] = []
        seen: Set[Tuple[int, str]] = set()
        for block in self.cfg.blocks:
            if block.id not in in_states:
                continue
            local: List[Tuple[ast.AST, str, str]] = []
            self._transfer(block, in_states[block.id], local, True)
            for node, rid, msg in local:
                dedup = (getattr(node, "lineno", 0), rid)
                if dedup not in seen:
                    seen.add(dedup)
                    findings.append((node, rid, msg))

        exit_state = in_states.get(self.cfg.exit.id)
        if exit_state:
            for key, status in sorted(exit_state.items()):
                if status in (HELD, MAYBE):
                    site = self.acquire_sites[key]
                    some = "some path" if status == MAYBE else "every path"
                    findings.append((
                        site, "L001",
                        f"lock `{key}` acquired here can reach function "
                        f"exit still held on {some}",
                    ))
        return findings


@rule("L001", "lock-leak",
      "a successful try_acquire can reach function exit unreleased")
def check_lock_leak(ctx: FileContext) -> Iterable[Finding]:
    for fn in function_defs(ctx.tree):
        for node, rid, msg in _FunctionLocks(fn).run():
            if rid != "L001":
                continue
            yield ctx.finding(
                node, "L001", msg,
                hint="release on every path out of the drain loop "
                     "(try/finally, or release before each "
                     "return/continue); a leaked trylock starves the "
                     "queue permanently",
            )


@rule("L002", "release-unheld",
      "release reachable without a dominating successful try_acquire")
def check_release_unheld(ctx: FileContext) -> Iterable[Finding]:
    for fn in function_defs(ctx.tree):
        for node, rid, msg in _FunctionLocks(fn).run():
            if rid != "L002":
                continue
            yield ctx.finding(
                node, "L002", msg,
                hint="guard the release with the try_acquire result; "
                     "releasing an unheld TryLock raises at runtime",
            )
