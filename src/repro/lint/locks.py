"""Lock-discipline rules (L001–L003).

Metronome's queue sharing (paper §3.2) rests on the per-queue trylock:
a thread that wins ``try_acquire`` drains the queue and *must* release
before sleeping, on every path — a leaked lock silently starves the
queue forever, the precise failure the primary/backup timeout diversity
exists to avoid.  The runtime shadow map (repro.check ``lock`` monitor)
catches leaks on executed paths; these rules prove pairing on *all*
paths of every function, including ones no test reaches.

Analysis: a forward dataflow over the intraprocedural CFG, made
interprocedural through the lock summaries of
:mod:`repro.lint.summaries`:

* a call into a helper whose summary *releases* a lock it did not
  acquire (``release_always``/``release_some``) transfers the caller's
  state for the mapped lock — so ``try_acquire`` here + release in a
  helper is recognized, and a helper released only on *some* paths
  leaves MAYBE behind, which correctly reports the leaky path;
* a call into an *acquire helper* (a function that ``return``\\ s the
  result of ``<lock>.try_acquire(...)``) acts as the acquire site in
  the caller: branch refinement applies to the call result, and a
  leak of a helper-acquired lock reports as L003 with the call chain.

Lock objects are identified textually (``sq.lock``) and mapped across
calls through the argument/parameter binding.  At the normal exit,
HELD or MAYBE means some path leaks (L001 locally, L003 through a
helper); a ``release`` at a point where the lock is provably FREE is
unpaired (L002).  Crash paths (uncaught ``raise``) are exempt.
"""

from __future__ import annotations

import ast
from typing import Any, Dict, Iterable, List, Optional, Set, Tuple

from repro.lint.astutil import expr_key, stmt_header_exprs, walk_shallow
from repro.lint.cfg import CFG, Block, build_cfg, function_defs
from repro.lint.engine import Finding, ProgramContext, program_rule

# lattice: FREE < HELD, MAYBE = join(FREE, HELD)
FREE, HELD, MAYBE = 0, 1, 2


def _join(a: int, b: int) -> int:
    return a if a == b else MAYBE


def _acquire_call(node: ast.AST) -> Optional[Tuple[str, ast.Call]]:
    """(lock key, call node) when ``node`` is ``<lock>.try_acquire(...)``."""
    if (isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "try_acquire"):
        return expr_key(node.func.value), node
    return None


def _release_call(node: ast.AST) -> Optional[Tuple[str, ast.Call]]:
    if (isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "release"):
        return expr_key(node.func.value), node
    return None


def _key_root(key: str) -> str:
    return key.split(".", 1)[0]


# ---------------------------------------------------------------------- #
# summaries (consumed by repro.lint.summaries during fact extraction)
# ---------------------------------------------------------------------- #


def _release_exit_state(fn: ast.AST, keys: List[str]) -> Dict[str, int]:
    """Exit state of ``keys`` assumed HELD at entry — classifies a
    release-only helper as releasing always / on some paths / never."""
    cfg = build_cfg(fn)
    entry = {k: HELD for k in keys}
    in_states: Dict[int, Dict[str, int]] = {cfg.entry.id: entry}
    for _round in range(len(cfg.blocks) * 4 + 8):
        changed = False
        for block in cfg.blocks:
            if block.id not in in_states:
                continue
            state = dict(in_states[block.id])
            for stmt in block.stmts:
                for header in stmt_header_exprs(stmt):
                    for node in walk_shallow(header):
                        rel = _release_call(node)
                        if rel and rel[0] in state:
                            state[rel[0]] = FREE
            for succ, _label in block.succs:
                cur = in_states.get(succ.id)
                if cur is None:
                    in_states[succ.id] = dict(state)
                    changed = True
                else:
                    merged = {k: _join(cur[k], state[k]) for k in keys}
                    if merged != cur:
                        in_states[succ.id] = merged
                        changed = True
        if not changed:
            break
    return in_states.get(cfg.exit.id, dict(entry))


def compute_lock_summary(
    fn: ast.AST, params: List[str]
) -> Optional[Dict[str, Any]]:
    """The caller-visible lock effects of one function, or None.

    ``{"releases": {key: "always"|"some"}, "acquire_key": key|None,
    "acquire_line": int}`` — keys are lock expressions rooted at a
    parameter or ``self``, the only locks a caller can map."""
    acquires: Dict[str, ast.Call] = {}
    releases: Dict[str, ast.Call] = {}
    flag_vars: Dict[str, str] = {}
    ops = False
    for node in walk_shallow(fn):
        acq = _acquire_call(node)
        if acq:
            ops = True
            acquires.setdefault(acq[0], acq[1])
        rel = _release_call(node)
        if rel:
            ops = True
            releases.setdefault(rel[0], rel[1])
        if isinstance(node, ast.Assign) and len(node.targets) == 1:
            target = node.targets[0]
            a = _acquire_call(node.value)
            if a and isinstance(target, ast.Name):
                flag_vars[target.id] = a[0]
    if not ops:
        return None
    roots = set(params) | {"self", "cls"}

    rel_summary: Dict[str, str] = {}
    rel_only = sorted(
        k for k in releases
        if k not in acquires and _key_root(k) in roots
    )
    if rel_only:
        exit_state = _release_exit_state(fn, rel_only)
        for k in rel_only:
            status = exit_state.get(k, HELD)
            if status == FREE:
                rel_summary[k] = "always"
            elif status == MAYBE:
                rel_summary[k] = "some"

    acquire_key: Optional[str] = None
    acquire_line = 0
    returned: Set[str] = set()
    for node in walk_shallow(fn):
        if isinstance(node, ast.Return) and node.value is not None:
            a = _acquire_call(node.value)
            if a:
                returned.add(a[0])
            elif (isinstance(node.value, ast.Name)
                    and node.value.id in flag_vars):
                returned.add(flag_vars[node.value.id])
    candidates = sorted(k for k in returned if _key_root(k) in roots)
    if len(candidates) == 1 and candidates[0] in acquires:
        acquire_key = candidates[0]
        acquire_line = acquires[acquire_key].lineno

    return {
        "releases": rel_summary,
        "acquire_key": acquire_key,
        "acquire_line": acquire_line,
    }


# ---------------------------------------------------------------------- #
# interprocedural call environment
# ---------------------------------------------------------------------- #


class _CallEnv:
    """Maps the call sites of one file to callee lock effects."""

    def __init__(self, pc: ProgramContext, path: str):
        self.prog = pc.program
        self.path = path

    def _callee(self, node: ast.Call):
        res = self.prog.resolution_at(
            self.path, node.lineno, node.col_offset + 1)
        if res is None:
            return None
        facts = self.prog.functions[res.key]
        lock = facts.get("lock")
        if not lock:
            return None
        return res, facts, lock

    def _map_key(self, ckey: str, facts, res, node: ast.Call
                 ) -> Optional[str]:
        """Rewrite a callee lock key into the caller's frame through
        the receiver / argument binding."""
        root, _, suffix = ckey.partition(".")
        if root in ("self", "cls"):
            if not isinstance(node.func, ast.Attribute):
                return None
            caller_text = expr_key(node.func.value)
        else:
            cparams = list(facts["params"])
            if res.self_bound and cparams and cparams[0] in ("self", "cls"):
                cparams = cparams[1:]
            if root not in cparams:
                return None
            i = cparams.index(root)
            if i < len(node.args):
                arg = node.args[i]
                if isinstance(arg, ast.Starred):
                    return None
                caller_text = expr_key(arg)
            else:
                kwmap = {k.arg: k.value for k in node.keywords if k.arg}
                if root not in kwmap:
                    return None
                caller_text = expr_key(kwmap[root])
        return caller_text + (f".{suffix}" if suffix else "")

    def release_effects(self, node: ast.Call) -> List[Tuple[str, str]]:
        """(caller lock key, "always"|"some") releases this call makes."""
        got = self._callee(node)
        if got is None:
            return []
        res, facts, lock = got
        out = []
        for ckey, mode in sorted(lock.get("releases", {}).items()):
            mapped = self._map_key(ckey, facts, res, node)
            if mapped is not None:
                out.append((mapped, mode))
        return out

    def acquire_helper(
        self, node: ast.Call
    ) -> Optional[Tuple[str, str, int]]:
        """(caller lock key, callee key, callee acquire line) when this
        call enters a helper that returns a ``try_acquire`` result."""
        got = self._callee(node)
        if got is None:
            return None
        res, facts, lock = got
        ak = lock.get("acquire_key")
        if not ak:
            return None
        mapped = self._map_key(ak, facts, res, node)
        if mapped is None:
            return None
        return mapped, res.key, lock.get("acquire_line", 0)


class _FunctionLocks:
    """The lock analysis of one function."""

    def __init__(self, fn: ast.AST, env: Optional[_CallEnv] = None):
        self.fn = fn
        self.env = env
        self.cfg: CFG = build_cfg(fn)
        #: lock key -> first acquire site (for reporting): a direct
        #: try_acquire call, or the call into an acquire helper
        self.acquire_sites: Dict[str, ast.Call] = {}
        #: helper-acquired keys -> (callee key, callee acquire line)
        self.helper_acquires: Dict[str, Tuple[str, int]] = {}
        #: boolean variable name -> lock key (``ok = x.try_acquire(...)``)
        self.flag_vars: Dict[str, str] = {}
        #: keys whose acquire result the function returns — the caller
        #: owns the release obligation (acquire-helper pattern)
        self.returned_keys: Set[str] = set()
        self._scan()

    def _call_acquire(self, node: ast.AST) -> Optional[Tuple[str, ast.Call]]:
        """Direct or helper acquire at ``node``."""
        acq = _acquire_call(node)
        if acq:
            return acq
        if self.env is not None and isinstance(node, ast.Call):
            helper = self.env.acquire_helper(node)
            if helper is not None:
                return helper[0], node
        return None

    def _scan(self) -> None:
        for node in walk_shallow(self.fn):
            acq = _acquire_call(node)
            if acq:
                self.acquire_sites.setdefault(acq[0], acq[1])
            elif self.env is not None and isinstance(node, ast.Call):
                helper = self.env.acquire_helper(node)
                if helper is not None:
                    key, callee, line = helper
                    self.acquire_sites.setdefault(key, node)
                    self.helper_acquires.setdefault(key, (callee, line))
            if isinstance(node, ast.Assign) and len(node.targets) == 1:
                target = node.targets[0]
                acq = self._call_acquire(node.value)
                if acq and isinstance(target, ast.Name):
                    self.flag_vars[target.id] = acq[0]
            if isinstance(node, ast.Return) and node.value is not None:
                acq = self._call_acquire(node.value)
                if acq:
                    self.returned_keys.add(acq[0])
                elif (isinstance(node.value, ast.Name)
                        and node.value.id in self.flag_vars):
                    self.returned_keys.add(self.flag_vars[node.value.id])

    # -- branch refinement --------------------------------------------- #

    def _branch_lock(self, test: ast.expr) -> Optional[Tuple[str, bool]]:
        """(lock key, truthy-means-held) for a branch test, or None.

        Handles ``x.try_acquire(k)``, ``not x.try_acquire(k)``, a flag
        name bound to an acquire, an acquire-helper call, and their
        negations.  Anything more complex stays unrefined (conservative
        MAYBE on both sides).
        """
        negated = False
        while isinstance(test, ast.UnaryOp) and isinstance(test.op, ast.Not):
            negated = not negated
            test = test.operand
        acq = self._call_acquire(test)
        if acq:
            return acq[0], not negated
        if isinstance(test, ast.Name) and test.id in self.flag_vars:
            return self.flag_vars[test.id], not negated
        return None

    # -- transfer ------------------------------------------------------ #

    def _transfer(
        self, block: Block, state: Dict[str, int],
        findings: List[Tuple[ast.AST, str, str, tuple]],
        report: bool,
    ) -> Dict[str, int]:
        state = dict(state)
        for stmt in block.stmts:
            for header in stmt_header_exprs(stmt):
                self._transfer_expr(header, state, findings, report)
        return state

    def _transfer_expr(
        self, header: ast.AST, state: Dict[str, int],
        findings: List[Tuple[ast.AST, str, str, tuple]],
        report: bool,
    ) -> None:
        for node in walk_shallow(header):
            rel = _release_call(node)
            if rel is not None:
                key, call = rel
                if key in self.acquire_sites:
                    if report and state.get(key, FREE) == FREE:
                        findings.append((
                            call, "L002",
                            f"release of `{key}` not dominated by a "
                            "successful try_acquire on this path",
                            (),
                        ))
                    state[key] = FREE
                continue
            acq = _acquire_call(node)
            if acq is not None:
                key = acq[0]
                # the result may be branched on right here (the block's
                # test) — the edge refinement sharpens this; unbranched
                # acquires stay MAYBE, which correctly reports "leaked
                # on the success path" at exit
                prev = state.get(key, FREE)
                state[key] = MAYBE if prev == FREE else prev
                continue
            if self.env is not None and isinstance(node, ast.Call):
                helper = self.env.acquire_helper(node)
                if helper is not None:
                    key = helper[0]
                    prev = state.get(key, FREE)
                    state[key] = MAYBE if prev == FREE else prev
                    continue
                for key, mode in self.env.release_effects(node):
                    if key not in self.acquire_sites:
                        continue
                    prev = state.get(key, FREE)
                    state[key] = (
                        FREE if mode == "always" else _join(prev, FREE)
                    )

    def _edge_state(
        self, block: Block, label: str, state: Dict[str, int]
    ) -> Dict[str, int]:
        if block.branch is None or label not in ("true", "false"):
            return state
        refined = self._branch_lock(block.branch)
        if refined is None:
            return state
        key, truthy_held = refined
        state = dict(state)
        state[key] = HELD if (label == "true") == truthy_held else FREE
        return state

    # -- fixpoint ------------------------------------------------------ #

    def run(self) -> List[Tuple[ast.AST, str, str, tuple]]:
        if not self.acquire_sites:
            return []
        entry_state: Dict[str, int] = {k: FREE for k in self.acquire_sites}
        in_states: Dict[int, Dict[str, int]] = {self.cfg.entry.id: entry_state}
        # two passes: fixpoint first (no reporting), then one reporting
        # sweep over the stable states so loops do not duplicate findings
        for _round in range(len(self.cfg.blocks) * 4 + 8):
            changed = False
            for block in self.cfg.blocks:
                if block.id not in in_states:
                    continue
                out = self._transfer(block, in_states[block.id], [], False)
                for succ, label in block.succs:
                    es = self._edge_state(block, label, out)
                    cur = in_states.get(succ.id)
                    if cur is None:
                        in_states[succ.id] = dict(es)
                        changed = True
                    else:
                        merged = {
                            k: _join(cur.get(k, FREE), es.get(k, FREE))
                            for k in self.acquire_sites
                        }
                        if merged != cur:
                            in_states[succ.id] = merged
                            changed = True
            if not changed:
                break

        findings: List[Tuple[ast.AST, str, str, tuple]] = []
        seen: Set[Tuple[int, str]] = set()
        for block in self.cfg.blocks:
            if block.id not in in_states:
                continue
            local: List[Tuple[ast.AST, str, str, tuple]] = []
            self._transfer(block, in_states[block.id], local, True)
            for node, rid, msg, chain in local:
                dedup = (getattr(node, "lineno", 0), rid)
                if dedup not in seen:
                    seen.add(dedup)
                    findings.append((node, rid, msg, chain))

        exit_state = in_states.get(self.cfg.exit.id)
        if exit_state:
            for key, status in sorted(exit_state.items()):
                if status not in (HELD, MAYBE):
                    continue
                if key in self.returned_keys:
                    # acquire-helper pattern: the function hands the
                    # acquire result to its caller, who owns the release
                    continue
                site = self.acquire_sites[key]
                some = "some path" if status == MAYBE else "every path"
                helper = self.helper_acquires.get(key)
                if helper is not None:
                    callee, line = helper
                    findings.append((
                        site, "L003",
                        f"lock `{key}` acquired through helper call can "
                        f"reach function exit still held on {some}",
                        ((callee, line),),
                    ))
                else:
                    findings.append((
                        site, "L001",
                        f"lock `{key}` acquired here can reach function "
                        f"exit still held on {some}",
                        (),
                    ))
        return findings


# ---------------------------------------------------------------------- #
# rules
# ---------------------------------------------------------------------- #


def _lock_relevant(pc: ProgramContext, path: str) -> bool:
    """Does this file need a real AST pass?  Only files with lock
    operations, or calls into functions carrying a lock summary — on a
    warm cache everything else stays unparsed."""
    facts = pc.facts.get(path)
    if facts is None:
        return False
    if facts["has_locks"]:
        return True
    prog = pc.program
    for qual in facts["functions"]:
        for call in facts["functions"][qual]["calls"]:
            res = prog.resolution_at(path, call["line"], call["col"])
            if res is not None \
                    and prog.functions[res.key].get("lock"):
                return True
    return False


def _file_lock_findings(pc: ProgramContext, path: str):
    memo_key = ("locks", path)
    cached = pc.memo.get(memo_key)
    if cached is not None:
        return cached
    out: List[Tuple[Finding, str]] = []
    ctx = pc.file_context(path)
    env = _CallEnv(pc, path)
    prog = pc.program
    for fn in function_defs(ctx.tree):
        for node, rid, msg, extra in _FunctionLocks(fn, env).run():
            chain: tuple = ()
            if rid == "L003" and extra:
                callee, line = extra[0]
                chain = (
                    (path, node.lineno,
                     f"calls {prog.display(callee)}"),
                    (prog.func_path[callee], line,
                     "try_acquire here; the result is returned"),
                )
            out.append((ctx.finding(node, rid, msg, chain=chain), rid))
    pc.memo[memo_key] = out
    return out


def _lock_rule(pc: ProgramContext, rid: str, hint: str
               ) -> Iterable[Finding]:
    for path in sorted(pc.facts):
        if not _lock_relevant(pc, path):
            continue
        for finding, frid in _file_lock_findings(pc, path):
            if frid == rid:
                yield Finding(
                    path=finding.path, line=finding.line, col=finding.col,
                    rule_id=finding.rule_id, message=finding.message,
                    hint=hint, chain=finding.chain,
                )


@program_rule("L001", "lock-leak",
              "a successful try_acquire can reach function exit unreleased")
def check_lock_leak(pc: ProgramContext) -> Iterable[Finding]:
    return _lock_rule(
        pc, "L001",
        hint="release on every path out of the drain loop "
             "(try/finally, or release before each "
             "return/continue); a leaked trylock starves the "
             "queue permanently",
    )


@program_rule("L002", "release-unheld",
              "release reachable without a dominating successful try_acquire")
def check_release_unheld(pc: ProgramContext) -> Iterable[Finding]:
    return _lock_rule(
        pc, "L002",
        hint="guard the release with the try_acquire result; "
             "releasing an unheld TryLock raises at runtime",
    )


@program_rule("L003", "lock-leak-interprocedural",
              "a lock acquired through a helper call can leak at exit")
def check_helper_lock_leak(pc: ProgramContext) -> Iterable[Finding]:
    return _lock_rule(
        pc, "L003",
        hint="the helper returns the try_acquire result, so this "
             "function owns the release: release on every path "
             "(including error returns), or branch on the call result",
    )
