"""Intraprocedural control-flow graphs over function ASTs.

The lock-discipline and API-misuse rules need path information that a
flat AST walk cannot give ("does every path from a successful
``try_acquire`` reach a ``release``?").  This module builds a small,
conservative CFG per function:

* basic blocks hold statement ASTs in execution order;
* ``if``/``while`` branch edges are labelled ``"true"``/``"false"`` and
  carry the governing test expression, so a dataflow pass can refine
  facts per branch (the trylock rule keys on this);
* ``for`` loops get an ``"iter"`` edge into the body and an
  ``"exhausted"`` edge past it, plus the back edge;
* ``break``/``continue``/``return``/``raise`` are resolved to real
  edges — ``return`` to the normal exit, ``raise`` to a separate error
  exit so crash paths can be excluded from leak checks;
* ``finally`` bodies are *inlined* on every abrupt path (return /
  break / continue / raise) as well as on the normal one, so a
  ``try/finally: lock.release()`` is visible on each path that runs it;
* every block inside a ``try`` body gets a conservative ``"except"``
  edge to each handler (any statement may raise).

The graph is deliberately approximate — it over-connects exception
edges and ignores implicit exceptions outside ``try`` — which keeps the
rules' dataflow simple while erring toward *not* reporting on paths
that cannot be ruled out.
"""

from __future__ import annotations

import ast
from typing import List, Optional, Tuple


class Block:
    """A straight-line sequence of statements with labelled out-edges."""

    __slots__ = ("id", "stmts", "succs", "preds", "branch")

    def __init__(self, bid: int):
        self.id = bid
        self.stmts: List[ast.stmt] = []
        #: outgoing edges as (successor, label); label is "" for plain
        #: flow, "true"/"false" for branch edges, "iter"/"exhausted"
        #: for for-loops, "except" for conservative handler edges
        self.succs: List[Tuple["Block", str]] = []
        self.preds: List[Tuple["Block", str]] = []
        #: the governing test expression when this block ends in a
        #: conditional branch (``if``/``while`` test)
        self.branch: Optional[ast.expr] = None

    def add_edge(self, succ: "Block", label: str = "") -> None:
        self.succs.append((succ, label))
        succ.preds.append((self, label))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        out = ", ".join(f"{s.id}:{lbl or '-'}" for s, lbl in self.succs)
        return f"<Block {self.id} stmts={len(self.stmts)} -> [{out}]>"


class CFG:
    """The control-flow graph of one function."""

    def __init__(self, func: ast.AST):
        self.func = func
        self.blocks: List[Block] = []
        self.entry = self.new_block()
        #: normal termination: explicit returns and falling off the end
        self.exit = self.new_block()
        #: exceptional termination: uncaught ``raise``
        self.error_exit = self.new_block()

    def new_block(self) -> Block:
        b = Block(len(self.blocks))
        self.blocks.append(b)
        return b


class _LoopFrame:
    __slots__ = ("break_target", "continue_target")

    def __init__(self, break_target: Block, continue_target: Block):
        self.break_target = break_target
        self.continue_target = continue_target


def _is_const_true(expr: ast.expr) -> bool:
    return isinstance(expr, ast.Constant) and bool(expr.value) is True


class _Builder:
    """Builds a :class:`CFG`; one instance per function."""

    def __init__(self, func: ast.AST):
        self.cfg = CFG(func)
        # innermost-last stacks of loop frames and pending finally bodies
        self._loops: List[_LoopFrame] = []
        self._finallies: List[List[ast.stmt]] = []

    def build(self) -> CFG:
        end = self._visit_body(self.cfg.func.body, self.cfg.entry)
        if end is not None:
            end.add_edge(self.cfg.exit)
        return self.cfg

    # ------------------------------------------------------------------ #

    def _visit_body(
        self, body: List[ast.stmt], cur: Optional[Block]
    ) -> Optional[Block]:
        """Thread ``body`` starting from ``cur``; returns the block the
        body falls out of, or None when every path left abruptly."""
        for stmt in body:
            if cur is None:
                # unreachable code after return/raise/break — keep
                # building in a detached block so rules still see the
                # statements, but do not reconnect it
                cur = self.cfg.new_block()
            cur = self._visit_stmt(stmt, cur)
        return cur

    def _visit_stmt(self, stmt: ast.stmt, cur: Block) -> Optional[Block]:
        if isinstance(stmt, ast.If):
            return self._visit_if(stmt, cur)
        if isinstance(stmt, ast.While):
            return self._visit_while(stmt, cur)
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            return self._visit_for(stmt, cur)
        if isinstance(stmt, ast.Try):
            return self._visit_try(stmt, cur)
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            cur.stmts.append(stmt)
            return self._visit_body(stmt.body, cur)
        if isinstance(stmt, ast.Return):
            cur.stmts.append(stmt)
            tail = self._inline_finallies(cur, len(self._finallies))
            tail.add_edge(self.cfg.exit)
            return None
        if isinstance(stmt, ast.Raise):
            cur.stmts.append(stmt)
            tail = self._inline_finallies(cur, len(self._finallies))
            tail.add_edge(self.cfg.error_exit)
            return None
        if isinstance(stmt, ast.Break):
            if self._loops:
                tail = self._inline_finallies(cur, self._loop_finally_depth())
                tail.add_edge(self._loops[-1].break_target)
            return None
        if isinstance(stmt, ast.Continue):
            if self._loops:
                tail = self._inline_finallies(cur, self._loop_finally_depth())
                tail.add_edge(self._loops[-1].continue_target)
            return None
        # plain statement (incl. nested function/class defs, which are
        # analysed as their own CFGs by the caller)
        cur.stmts.append(stmt)
        return cur

    # -- compound statements ------------------------------------------- #

    def _visit_if(self, stmt: ast.If, cur: Block) -> Optional[Block]:
        cur.stmts.append(stmt)
        cur.branch = stmt.test
        after = self.cfg.new_block()
        then_entry = self.cfg.new_block()
        cur.add_edge(then_entry, "true")
        then_end = self._visit_body(stmt.body, then_entry)
        if then_end is not None:
            then_end.add_edge(after)
        if stmt.orelse:
            else_entry = self.cfg.new_block()
            cur.add_edge(else_entry, "false")
            else_end = self._visit_body(stmt.orelse, else_entry)
            if else_end is not None:
                else_end.add_edge(after)
        else:
            cur.add_edge(after, "false")
        return after if after.preds else None

    def _visit_while(self, stmt: ast.While, cur: Block) -> Optional[Block]:
        header = self.cfg.new_block()
        cur.add_edge(header)
        header.stmts.append(stmt)
        header.branch = stmt.test
        body_entry = self.cfg.new_block()
        after = self.cfg.new_block()
        header.add_edge(body_entry, "true")
        if not _is_const_true(stmt.test):
            if stmt.orelse:
                else_entry = self.cfg.new_block()
                header.add_edge(else_entry, "false")
                else_end = self._visit_body(stmt.orelse, else_entry)
                if else_end is not None:
                    else_end.add_edge(after)
            else:
                header.add_edge(after, "false")
        self._loops.append(_LoopFrame(after, header))
        body_end = self._visit_body(stmt.body, body_entry)
        self._loops.pop()
        if body_end is not None:
            body_end.add_edge(header)
        return after if after.preds else None

    def _visit_for(self, stmt: ast.stmt, cur: Block) -> Optional[Block]:
        header = self.cfg.new_block()
        cur.add_edge(header)
        header.stmts.append(stmt)
        body_entry = self.cfg.new_block()
        after = self.cfg.new_block()
        header.add_edge(body_entry, "iter")
        if stmt.orelse:
            else_entry = self.cfg.new_block()
            header.add_edge(else_entry, "exhausted")
            else_end = self._visit_body(stmt.orelse, else_entry)
            if else_end is not None:
                else_end.add_edge(after)
        else:
            header.add_edge(after, "exhausted")
        self._loops.append(_LoopFrame(after, header))
        body_end = self._visit_body(stmt.body, body_entry)
        self._loops.pop()
        if body_end is not None:
            body_end.add_edge(header)
        return after

    def _visit_try(self, stmt: ast.Try, cur: Block) -> Optional[Block]:
        has_finally = bool(stmt.finalbody)
        if has_finally:
            self._finallies.append(stmt.finalbody)
        first = len(self.cfg.blocks)
        try_entry = self.cfg.new_block()
        cur.add_edge(try_entry)
        try_end = self._visit_body(stmt.body, try_entry)
        try_region = self.cfg.blocks[first:]

        after = self.cfg.new_block()
        handler_ends: List[Optional[Block]] = []
        for handler in stmt.handlers:
            h_entry = self.cfg.new_block()
            if handler.type is not None:
                h_entry.stmts.append(ast.Expr(value=handler.type))
            # conservatively: any block of the try region may raise into
            # this handler
            for b in try_region:
                b.add_edge(h_entry, "except")
            handler_ends.append(self._visit_body(handler.body, h_entry))

        # else clause runs only when the try body completed normally
        if try_end is not None and stmt.orelse:
            try_end = self._visit_body(stmt.orelse, try_end)

        if has_finally:
            self._finallies.pop()
            fin_entry = self.cfg.new_block()
            if try_end is not None:
                try_end.add_edge(fin_entry)
            for h_end in handler_ends:
                if h_end is not None:
                    h_end.add_edge(fin_entry)
            if not stmt.handlers:
                # no handlers: an exception in the body still runs the
                # finally before propagating
                for b in try_region:
                    b.add_edge(fin_entry, "except")
            fin_end = self._visit_body(stmt.finalbody, fin_entry)
            if fin_end is not None:
                fin_end.add_edge(after)
                if not stmt.handlers:
                    fin_end.add_edge(self.cfg.error_exit, "except")
        else:
            if try_end is not None:
                try_end.add_edge(after)
            for h_end in handler_ends:
                if h_end is not None:
                    h_end.add_edge(after)
        return after if after.preds else None

    # -- abrupt-exit helpers ------------------------------------------- #

    def _loop_finally_depth(self) -> int:
        """How many pending finallies a break/continue must run.

        Finallies pushed *inside* the current loop run on the way out;
        ones pushed outside it do not.  We approximate by running every
        pending finally — over-running an outer finally is harmless for
        the dataflow rules (it only duplicates statements already on
        the normal path)."""
        return len(self._finallies)

    def _inline_finallies(self, cur: Block, depth: int) -> Block:
        """Append copies of the pending finally bodies (innermost first)
        to the abrupt path leaving ``cur``; returns the final block."""
        for finalbody in reversed(self._finallies[:depth]):
            nxt = self.cfg.new_block()
            cur.add_edge(nxt, "finally")
            saved = self._finallies
            self._finallies = []  # a finally's own aborts are local
            end = self._visit_body(list(finalbody), nxt)
            self._finallies = saved
            if end is None:
                return self.cfg.new_block()  # finally itself aborted
            cur = end
        return cur


def build_cfg(func: ast.AST) -> CFG:
    """The CFG of one ``FunctionDef`` / ``AsyncFunctionDef``."""
    return _Builder(func).build()


def function_defs(tree: ast.Module):
    """Yield every function definition in ``tree`` (including methods
    and nested functions), shallowest first."""
    stack: List[ast.AST] = list(ast.iter_child_nodes(tree))
    while stack:
        node = stack.pop(0)
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node
        stack.extend(ast.iter_child_nodes(node))
