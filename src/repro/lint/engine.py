"""The lint engine: file discovery, rule registry, suppressions.

``repro.lint`` is a *sim-safety* analyzer: its rules encode the
contracts the reproduction's correctness rests on (determinism,
zero-perturbation observability, trylock discipline, API usage) and
checks them statically, whole-program, at CI time — the complement of
the runtime monitors in :mod:`repro.check`.

Rules come in two scopes.  *File* rules see one parsed module at a
time.  *Program* rules see a :class:`ProgramContext` — every module's
effect facts (:mod:`repro.lint.summaries`) linked into a call graph
(:mod:`repro.lint.callgraph`) — and report findings that carry the
witnessing call chain.  File-scope work (parsing, file rules, fact
extraction, suppression scanning) is cached per module content hash
(:mod:`repro.lint.cache`), so warm whole-tree runs re-parse nothing
but the few lock-relevant files the L-rules re-analyze.

Everything here is deliberately deterministic: files are visited in
sorted order, findings are reported in a stable sort, and fingerprints
are content hashes — so two runs of the linter on the same tree are
byte-identical regardless of ``PYTHONHASHSEED``.
"""

from __future__ import annotations

import ast
import hashlib
import io
import json
import os
import re
import tokenize
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, List, Optional, Tuple

#: bumped whenever analysis semantics change — invalidates every cache
#: entry written by earlier analyzer versions
ANALYZER_VERSION = "3"


@dataclass(frozen=True)
class Rule:
    """One registered rule: an id, a short name, and a check function."""

    rule_id: str
    name: str
    summary: str
    check: Callable[..., Iterable["Finding"]]
    #: "file" checks get a FileContext, "program" checks a ProgramContext
    scope: str = "file"


@dataclass(frozen=True, order=True)
class Finding:
    """One diagnostic: where, which rule, what, and how to fix it."""

    path: str  # repo-relative, posix separators
    line: int
    col: int
    rule_id: str
    message: str
    hint: str = ""
    #: interprocedural witness: (path, line, label) hops from the
    #: reporting site down to the direct evidence
    chain: Tuple[Tuple[str, int, str], ...] = ()

    def location(self) -> str:
        return f"{self.path}:{self.line}:{self.col}"


#: global registry, populated by the rule modules at import time
RULES: Dict[str, Rule] = {}


def rule(rule_id: str, name: str, summary: str):
    """Decorator registering a file-scope check under ``rule_id``."""

    def deco(fn: Callable[["FileContext"], Iterable[Finding]]):
        if rule_id in RULES:
            raise ValueError(f"duplicate rule id {rule_id}")
        RULES[rule_id] = Rule(rule_id, name, summary, fn, "file")
        return fn

    return deco


def program_rule(rule_id: str, name: str, summary: str):
    """Decorator registering a program-scope (whole-tree) check."""

    def deco(fn: Callable[["ProgramContext"], Iterable[Finding]]):
        if rule_id in RULES:
            raise ValueError(f"duplicate rule id {rule_id}")
        RULES[rule_id] = Rule(rule_id, name, summary, fn, "program")
        return fn

    return deco


def _engine_emitted(ctx: "FileContext") -> Iterable[Finding]:
    """Placeholder check for rules the engine emits itself."""
    return ()


# Meta rules are produced by the engine (suppression hygiene, parse
# failures), not by a per-file check pass; register descriptors so they
# are selectable and carry real metadata in SARIF output.
for _rid, _name, _summary in (
    ("S001", "reasonless-suppression",
     "suppression comment carries no reason text"),
    ("S002", "unused-suppression",
     "suppression comment matched no finding — stale, delete it"),
    ("E000", "parse-error", "file does not parse"),
):
    RULES[_rid] = Rule(_rid, _name, _summary, _engine_emitted)
del _rid, _name, _summary


@dataclass
class LintConfig:
    """What to lint and which contracts apply where.

    Paths in the ``*_dirs`` / ``*_allow`` tuples are repo-relative
    posix prefixes matched against each file's path.
    """

    root: str = "."
    #: directories/files to lint, relative to root
    paths: Tuple[str, ...] = ("src/repro",)
    #: rule ids to run (empty = all registered)
    select: Tuple[str, ...] = ()
    #: the one module allowed to construct raw RNGs
    rng_module: str = "src/repro/sim/rng.py"
    #: subtrees that legitimately live in wall-clock time
    wallclock_allow: Tuple[str, ...] = (
        "src/repro/bench/",
        "src/repro/campaign/",
        "src/repro/check/oracle.py",
        "src/repro/cli.py",
        "src/repro/lint/",
        "tools/",
    )
    #: observer subtrees bound by the zero-perturbation contract
    observer_dirs: Tuple[str, ...] = (
        "src/repro/trace/",
        "src/repro/metrics/",
        "src/repro/check/",
    )
    #: files inside observer dirs that *drive* monitored runs (they
    #: build machines and execute workloads), so transitive draw/write
    #: reach is inherent — P003/P004 skip them; P001/P002 still apply
    observer_driver_files: Tuple[str, ...] = (
        "src/repro/check/oracle.py",
        "src/repro/check/runner.py",
    )
    #: checkpoint purity (C-rules): everything reachable from these
    #: functions must be write-free and draw-free
    checkpoint_module: str = "src/repro/sim/snapshot.py"
    checkpoint_roots: Tuple[str, ...] = ("capture", "verify")
    #: generator purity (G-rules): the trace catalogue must be a pure
    #: function of (spec, seed) drawing only from these stream families
    generator_module: str = "src/repro/traffic/generators.py"
    generator_stream_prefixes: Tuple[str, ...] = ("traffic.", "faults.")


@dataclass
class Suppression:
    """An inline ``# repro: allow[rule-id] reason`` comment."""

    line: int
    rule_ids: Tuple[str, ...]
    reason: str
    used: bool = False


_SUPPRESS_RE = re.compile(
    r"#\s*repro:\s*allow\[([A-Za-z0-9_,\- ]+)\]\s*(.*)$"
)


def parse_suppressions(source: str) -> List[Suppression]:
    """Scan real ``#`` comments (via :mod:`tokenize`, so the marker
    inside a string literal or docstring is never mistaken for one)."""
    out: List[Suppression] = []
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for tok in tokens:
            if tok.type != tokenize.COMMENT:
                continue
            m = _SUPPRESS_RE.search(tok.string)
            if m:
                ids = tuple(
                    s.strip() for s in m.group(1).split(",") if s.strip()
                )
                out.append(Suppression(tok.start[0], ids, m.group(2).strip()))
    except tokenize.TokenError:  # unterminated something; parser catches it
        pass
    return out


class FileContext:
    """Everything a rule needs to know about one source file."""

    def __init__(self, relpath: str, source: str, config: LintConfig):
        self.path = relpath  # posix, repo-relative
        self.source = source
        self.lines = source.splitlines()
        self.tree = ast.parse(source, filename=relpath)
        self.config = config

    # -- path predicates ----------------------------------------------- #

    def under(self, *prefixes: str) -> bool:
        return any(self.path.startswith(p) for p in prefixes)

    @property
    def is_rng_module(self) -> bool:
        return self.path == self.config.rng_module

    @property
    def wallclock_allowed(self) -> bool:
        return self.under(*self.config.wallclock_allow)

    @property
    def is_observer(self) -> bool:
        return self.under(*self.config.observer_dirs)

    # -- helpers -------------------------------------------------------- #

    def line_text(self, line: int) -> str:
        if 1 <= line <= len(self.lines):
            return self.lines[line - 1]
        return ""

    def finding(
        self, node: ast.AST, rule_id: str, message: str, hint: str = "",
        chain: Tuple[Tuple[str, int, str], ...] = (),
    ) -> Finding:
        return Finding(
            path=self.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            rule_id=rule_id,
            message=message,
            hint=hint,
            chain=chain,
        )


class ProgramContext:
    """What a program-scope rule sees: every module's facts linked into
    a call graph, plus lazily parsed per-file contexts for rules (the
    L-family) that need real ASTs."""

    def __init__(
        self,
        config: LintConfig,
        sources: Dict[str, str],
        facts: Dict[str, Dict[str, Any]],
    ):
        from repro.lint.callgraph import Program

        self.config = config
        self.sources = sources
        self.facts = facts
        self.program = Program(facts, config)
        self._contexts: Dict[str, FileContext] = {}
        #: scratch space for cross-rule shared analyses
        self.memo: Dict[Any, Any] = {}

    def file_context(self, path: str) -> FileContext:
        ctx = self._contexts.get(path)
        if ctx is None:
            ctx = FileContext(path, self.sources[path], self.config)
            self._contexts[path] = ctx
        return ctx

    # -- path predicates (no parse required) ---------------------------- #

    def is_observer(self, path: str) -> bool:
        return any(path.startswith(p) for p in self.config.observer_dirs)

    def wallclock_allowed(self, path: str) -> bool:
        return any(path.startswith(p) for p in self.config.wallclock_allow)

    def finding(
        self, path: str, line: int, col: int, rule_id: str, message: str,
        hint: str = "", chain: Tuple[Tuple[str, int, str], ...] = (),
    ) -> Finding:
        return Finding(path=path, line=line, col=col, rule_id=rule_id,
                       message=message, hint=hint, chain=chain)


# ---------------------------------------------------------------------- #
# running
# ---------------------------------------------------------------------- #


@dataclass
class LintResult:
    """The outcome of one lint run."""

    findings: List[Finding] = field(default_factory=list)
    #: findings silenced by an inline suppression (kept for reporting)
    suppressed: List[Finding] = field(default_factory=list)
    #: findings silenced by the committed baseline
    baselined: List[Finding] = field(default_factory=list)
    files: int = 0
    #: summary-cache statistics (zero when run without a cache)
    cache_hits: int = 0
    cache_misses: int = 0

    @property
    def ok(self) -> bool:
        return not self.findings

    def counts(self) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for f in self.findings:
            out[f.rule_id] = out.get(f.rule_id, 0) + 1
        return dict(sorted(out.items()))


def discover_files(config: LintConfig) -> List[str]:
    """Repo-relative posix paths of every ``.py`` under config.paths,
    sorted for deterministic visit order."""
    found = []
    for base in config.paths:
        full = os.path.join(config.root, base)
        if os.path.isfile(full):
            if full.endswith(".py"):
                found.append(base)
            continue
        for dirpath, dirnames, filenames in os.walk(full):
            dirnames.sort()
            dirnames[:] = [d for d in dirnames if d != "__pycache__"]
            for fn in filenames:
                if not fn.endswith(".py"):
                    continue
                rel = os.path.relpath(os.path.join(dirpath, fn), config.root)
                found.append(rel.replace(os.sep, "/"))
    return sorted(set(found))


def fingerprint(
    finding: Finding, line_text: str, index: int, callee_basis: str = ""
) -> str:
    """A line-number-independent identity for baseline matching:
    hashes the rule, file, the *text* of the flagged line, and the
    occurrence index among identical (rule, file, text) triples — so
    unrelated edits that shift line numbers do not invalidate entries.
    Chain-bearing findings also hash the callee files' content
    (``callee_basis``), so a change deep in a helper re-surfaces a
    suppressed finding above it.
    """
    basis = f"{finding.rule_id}|{finding.path}|{line_text.strip()}|{index}"
    if callee_basis:
        basis += f"|{callee_basis}"
    return hashlib.sha256(basis.encode()).hexdigest()[:16]


def config_digest(config: LintConfig, rules: List[Rule]) -> str:
    """Hash of everything (besides file content) a cached per-module
    analysis depends on."""
    basis = json.dumps({
        "analyzer": ANALYZER_VERSION,
        "rng_module": config.rng_module,
        "wallclock_allow": list(config.wallclock_allow),
        "observer_dirs": list(config.observer_dirs),
        "observer_driver_files": list(config.observer_driver_files),
        "checkpoint_module": config.checkpoint_module,
        "checkpoint_roots": list(config.checkpoint_roots),
        "generator_module": config.generator_module,
        "generator_stream_prefixes": list(config.generator_stream_prefixes),
        "rules": sorted(r.rule_id for r in rules),
    }, sort_keys=True)
    return hashlib.sha256(basis.encode()).hexdigest()[:16]


def finding_to_dict(f: Finding) -> Dict[str, Any]:
    return {
        "path": f.path, "line": f.line, "col": f.col, "rule": f.rule_id,
        "message": f.message, "hint": f.hint,
        "chain": [list(hop) for hop in f.chain],
    }


def finding_from_dict(d: Dict[str, Any]) -> Finding:
    return Finding(
        path=d["path"], line=d["line"], col=d["col"], rule_id=d["rule"],
        message=d["message"], hint=d.get("hint", ""),
        chain=tuple(
            (hop[0], hop[1], hop[2]) for hop in d.get("chain", ())
        ),
    )


def _selected_rules(config: LintConfig) -> List[Rule]:
    # import-for-effect: rule modules self-register on first import
    from repro.lint import (  # noqa: F401
        api,
        contracts,
        determinism,
        locks,
        perturbation,
    )

    if config.select:
        unknown = [r for r in config.select if r not in RULES]
        if unknown:
            raise ValueError(f"unknown rule id(s): {', '.join(unknown)}")
        ids = list(config.select)
    else:
        ids = list(RULES)
    return [RULES[r] for r in sorted(ids)]


def _analyze_file(
    relpath: str, source: str, config: LintConfig, file_rules: List[Rule]
) -> Dict[str, Any]:
    """File-scope analysis of one module — everything cacheable: file
    rule findings, suppression comments, and the effect facts."""
    try:
        ctx = FileContext(relpath, source, config)
    except SyntaxError as exc:
        f = Finding(
            path=relpath, line=exc.lineno or 1, col=(exc.offset or 0) + 1,
            rule_id="E000", message=f"file does not parse: {exc.msg}",
            hint="fix the syntax error; the linter cannot analyse this file",
        )
        return {"findings": [finding_to_dict(f)], "suppressions": [],
                "facts": None}

    from repro.lint.summaries import extract_module_facts

    raw: List[Finding] = []
    for r in file_rules:
        raw.extend(r.check(ctx))
    raw = sorted(set(raw))  # rules may visit nested scopes twice
    suppressions = parse_suppressions(source)
    return {
        "findings": [finding_to_dict(f) for f in raw],
        "suppressions": [
            {"line": s.line, "rule_ids": list(s.rule_ids),
             "reason": s.reason}
            for s in suppressions
        ],
        "facts": extract_module_facts(relpath, ctx.tree),
    }


def _apply_suppressions(
    raw: List[Finding],
    suppressions: List[Suppression],
    lines: List[str],
    rule_ids: set,
    config: LintConfig,
    relpath: str,
) -> Tuple[List[Finding], List[Finding]]:
    """Match inline suppressions against findings; appends the S001 /
    S002 hygiene findings.  Returns (active, suppressed)."""

    def line_text(n: int) -> str:
        return lines[n - 1] if 1 <= n <= len(lines) else ""

    by_line: Dict[int, List[Suppression]] = {}
    for s in suppressions:
        by_line.setdefault(s.line, []).append(s)
        # a comment on its own line covers the next code line (skipping
        # blank lines and the comment block it belongs to)
        if line_text(s.line).lstrip().startswith("#"):
            nxt = s.line + 1
            while nxt <= len(lines) and (
                not line_text(nxt).strip()
                or line_text(nxt).lstrip().startswith("#")
            ):
                nxt += 1
            by_line.setdefault(nxt, []).append(s)

    active: List[Finding] = []
    suppressed: List[Finding] = []
    for f in raw:
        match = None
        for s in by_line.get(f.line, ()):
            if f.rule_id in s.rule_ids:
                match = s
                break
        if match is not None:
            match.used = True
            suppressed.append(f)
        else:
            active.append(f)

    # meta rules: suppressions must carry a reason and must be load-bearing
    for s in suppressions:
        if "S001" in rule_ids or not config.select:
            if not s.reason:
                active.append(Finding(
                    path=relpath, line=s.line, col=1, rule_id="S001",
                    message=(
                        f"suppression allow[{','.join(s.rule_ids)}] "
                        "has no reason"),
                    hint="write the justification after the ]: "
                         "`# repro: allow[rule-id] <why this is safe>`",
                ))
        if "S002" in rule_ids or not config.select:
            # only judge "unused" when every rule the comment targets
            # actually ran — under --rule subsets a suppression for an
            # unselected rule matches nothing by construction
            if not s.used and s.reason and set(s.rule_ids) <= rule_ids:
                active.append(Finding(
                    path=relpath, line=s.line, col=1, rule_id="S002",
                    message=(
                        f"unused suppression allow[{','.join(s.rule_ids)}]"
                        " matches no finding"),
                    hint="delete the stale comment (or fix the rule id)",
                ))
    return active, suppressed


def lint_file(
    relpath: str, source: str, config: LintConfig,
    rules: Optional[List[Rule]] = None,
) -> Tuple[List[Finding], List[Finding]]:
    """Lint one file; returns (active findings, suppressed findings).

    Program rules run over the single-file program, so cross-function
    patterns within the file (a helper releasing its caller's lock) are
    analyzed exactly as in a whole-tree run.
    """
    if rules is None:
        rules = _selected_rules(config)
    file_rules = [r for r in rules if r.scope == "file"]
    program_rules = [r for r in rules if r.scope == "program"]
    rule_ids = {r.rule_id for r in rules}

    entry = _analyze_file(relpath, source, config, file_rules)
    raw = [finding_from_dict(d) for d in entry["findings"]]
    if entry["facts"] is not None and program_rules:
        pc = ProgramContext(
            config, {relpath: source}, {relpath: entry["facts"]})
        for r in program_rules:
            raw.extend(f for f in r.check(pc) if f.path == relpath)
    raw = sorted(set(raw))
    supp = [
        Suppression(d["line"], tuple(d["rule_ids"]), d["reason"])
        for d in entry["suppressions"]
    ]
    return _apply_suppressions(
        raw, supp, source.splitlines(), rule_ids, config, relpath)


def run_lint(
    config: LintConfig,
    baseline_fingerprints: Iterable[str] = (),
    cache=None,
) -> LintResult:
    """Lint every file under ``config.paths``; baseline-filtered.

    ``cache`` is an optional :class:`repro.lint.cache.SummaryCache`;
    cached modules skip parsing, file rules, and fact extraction."""
    rules = _selected_rules(config)
    file_rules = [r for r in rules if r.scope == "file"]
    program_rules = [r for r in rules if r.scope == "program"]
    rule_ids = {r.rule_id for r in rules}
    digest = config_digest(config, rules)

    result = LintResult()
    sources: Dict[str, str] = {}
    for relpath in discover_files(config):
        with open(os.path.join(config.root, relpath), encoding="utf-8") as fh:
            sources[relpath] = fh.read()

    entries: Dict[str, Dict[str, Any]] = {}
    for relpath in sorted(sources):
        entry = None
        if cache is not None:
            entry = cache.load(relpath, sources[relpath], digest)
        if entry is None:
            entry = _analyze_file(
                relpath, sources[relpath], config, file_rules)
            if cache is not None:
                cache.store(relpath, sources[relpath], digest, entry)
        entries[relpath] = entry
        result.files += 1
    if cache is not None:
        result.cache_hits = cache.hits
        result.cache_misses = cache.misses

    program_findings: Dict[str, List[Finding]] = {}
    if program_rules:
        facts = {
            p: e["facts"] for p, e in entries.items()
            if e["facts"] is not None
        }
        pc = ProgramContext(config, sources, facts)
        for r in program_rules:
            for f in r.check(pc):
                program_findings.setdefault(f.path, []).append(f)

    active_all: List[Finding] = []
    for relpath in sorted(sources):
        e = entries[relpath]
        raw = [finding_from_dict(d) for d in e["findings"]]
        raw.extend(program_findings.get(relpath, ()))
        raw = sorted(set(raw))
        supp = [
            Suppression(d["line"], tuple(d["rule_ids"]), d["reason"])
            for d in e["suppressions"]
        ]
        active, suppressed = _apply_suppressions(
            raw, supp, sources[relpath].splitlines(), rule_ids,
            config, relpath)
        active_all.extend(active)
        result.suppressed.extend(suppressed)

    baseline = set(baseline_fingerprints)
    if baseline:
        kept: List[Finding] = []
        for f, fp in with_fingerprints(active_all, sources):
            if fp in baseline:
                result.baselined.append(f)
            else:
                kept.append(f)
        active_all = kept

    result.findings = sorted(active_all)
    result.suppressed.sort()
    result.baselined.sort()
    return result


def with_fingerprints(
    findings: Iterable[Finding], sources: Dict[str, str]
) -> List[Tuple[Finding, str]]:
    """Pair each finding with its baseline fingerprint (stable order)."""
    line_cache: Dict[str, List[str]] = {
        p: src.splitlines() for p, src in sources.items()
    }
    hash_cache: Dict[str, str] = {}

    def content_hash(path: str) -> str:
        h = hash_cache.get(path)
        if h is None:
            h = hashlib.sha256(
                sources.get(path, "").encode()).hexdigest()[:12]
            hash_cache[path] = h
        return h

    seen: Dict[Tuple[str, str, str], int] = {}
    out: List[Tuple[Finding, str]] = []
    for f in sorted(findings):
        lines = line_cache.get(f.path, [])
        text = lines[f.line - 1] if 1 <= f.line <= len(lines) else ""
        key = (f.rule_id, f.path, text.strip())
        index = seen.get(key, 0)
        seen[key] = index + 1
        callee_basis = ""
        if f.chain:
            chain_paths: List[str] = []
            for hop in f.chain:
                if hop[0] != f.path and hop[0] not in chain_paths:
                    chain_paths.append(hop[0])
            callee_basis = ",".join(
                content_hash(p) for p in chain_paths)
        out.append((f, fingerprint(f, text, index, callee_basis)))
    return out


def read_sources(config: LintConfig) -> Dict[str, str]:
    """The file set a lint run would analyse (for fingerprinting)."""
    out: Dict[str, str] = {}
    for relpath in discover_files(config):
        with open(os.path.join(config.root, relpath), encoding="utf-8") as fh:
            out[relpath] = fh.read()
    return out


# re-exported for rule modules
__all__ = [
    "ANALYZER_VERSION", "Finding", "Rule", "RULES", "rule", "program_rule",
    "LintConfig", "FileContext", "ProgramContext", "LintResult",
    "run_lint", "lint_file", "discover_files", "fingerprint",
    "config_digest", "finding_to_dict", "finding_from_dict",
    "with_fingerprints", "read_sources", "parse_suppressions",
    "Suppression",
]
