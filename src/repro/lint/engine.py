"""The lint engine: file discovery, rule registry, suppressions.

``repro.lint`` is a *sim-safety* analyzer: its rules encode the
contracts the reproduction's correctness rests on (determinism,
zero-perturbation observability, trylock discipline, API usage) and
checks them statically, whole-program, at CI time — the complement of
the runtime monitors in :mod:`repro.check`.

Everything here is deliberately deterministic: files are visited in
sorted order, findings are reported in a stable sort, and fingerprints
are content hashes — so two runs of the linter on the same tree are
byte-identical regardless of ``PYTHONHASHSEED``.
"""

from __future__ import annotations

import ast
import hashlib
import io
import os
import re
import tokenize
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Tuple


@dataclass(frozen=True)
class Rule:
    """One registered rule: an id, a short name, and a check function."""

    rule_id: str
    name: str
    summary: str
    check: Callable[["FileContext"], Iterable["Finding"]]


@dataclass(frozen=True, order=True)
class Finding:
    """One diagnostic: where, which rule, what, and how to fix it."""

    path: str  # repo-relative, posix separators
    line: int
    col: int
    rule_id: str
    message: str
    hint: str = ""

    def location(self) -> str:
        return f"{self.path}:{self.line}:{self.col}"


#: global registry, populated by the rule modules at import time
RULES: Dict[str, Rule] = {}


def rule(rule_id: str, name: str, summary: str):
    """Decorator registering a check function under ``rule_id``."""

    def deco(fn: Callable[["FileContext"], Iterable[Finding]]):
        if rule_id in RULES:
            raise ValueError(f"duplicate rule id {rule_id}")
        RULES[rule_id] = Rule(rule_id, name, summary, fn)
        return fn

    return deco


def _engine_emitted(ctx: "FileContext") -> Iterable[Finding]:
    """Placeholder check for rules the engine emits itself."""
    return ()


# Meta rules are produced by the engine (suppression hygiene, parse
# failures), not by a per-file check pass; register descriptors so they
# are selectable and carry real metadata in SARIF output.
for _rid, _name, _summary in (
    ("S001", "reasonless-suppression",
     "suppression comment carries no reason text"),
    ("S002", "unused-suppression",
     "suppression comment matched no finding — stale, delete it"),
    ("E000", "parse-error", "file does not parse"),
):
    RULES[_rid] = Rule(_rid, _name, _summary, _engine_emitted)
del _rid, _name, _summary


@dataclass
class LintConfig:
    """What to lint and which contracts apply where.

    Paths in the ``*_dirs`` / ``*_allow`` tuples are repo-relative
    posix prefixes matched against each file's path.
    """

    root: str = "."
    #: directories/files to lint, relative to root
    paths: Tuple[str, ...] = ("src/repro",)
    #: rule ids to run (empty = all registered)
    select: Tuple[str, ...] = ()
    #: the one module allowed to construct raw RNGs
    rng_module: str = "src/repro/sim/rng.py"
    #: subtrees that legitimately live in wall-clock time
    wallclock_allow: Tuple[str, ...] = (
        "src/repro/bench/",
        "src/repro/campaign/",
        "src/repro/lint/",
        "tools/",
    )
    #: observer subtrees bound by the zero-perturbation contract
    observer_dirs: Tuple[str, ...] = (
        "src/repro/trace/",
        "src/repro/metrics/",
        "src/repro/check/",
    )


@dataclass
class Suppression:
    """An inline ``# repro: allow[rule-id] reason`` comment."""

    line: int
    rule_ids: Tuple[str, ...]
    reason: str
    used: bool = False


_SUPPRESS_RE = re.compile(
    r"#\s*repro:\s*allow\[([A-Za-z0-9_,\- ]+)\]\s*(.*)$"
)


def parse_suppressions(source: str) -> List[Suppression]:
    """Scan real ``#`` comments (via :mod:`tokenize`, so the marker
    inside a string literal or docstring is never mistaken for one)."""
    out: List[Suppression] = []
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for tok in tokens:
            if tok.type != tokenize.COMMENT:
                continue
            m = _SUPPRESS_RE.search(tok.string)
            if m:
                ids = tuple(
                    s.strip() for s in m.group(1).split(",") if s.strip()
                )
                out.append(Suppression(tok.start[0], ids, m.group(2).strip()))
    except tokenize.TokenError:  # unterminated something; parser catches it
        pass
    return out


class FileContext:
    """Everything a rule needs to know about one source file."""

    def __init__(self, relpath: str, source: str, config: LintConfig):
        self.path = relpath  # posix, repo-relative
        self.source = source
        self.lines = source.splitlines()
        self.tree = ast.parse(source, filename=relpath)
        self.config = config

    # -- path predicates ----------------------------------------------- #

    def under(self, *prefixes: str) -> bool:
        return any(self.path.startswith(p) for p in prefixes)

    @property
    def is_rng_module(self) -> bool:
        return self.path == self.config.rng_module

    @property
    def wallclock_allowed(self) -> bool:
        return self.under(*self.config.wallclock_allow)

    @property
    def is_observer(self) -> bool:
        return self.under(*self.config.observer_dirs)

    # -- helpers -------------------------------------------------------- #

    def line_text(self, line: int) -> str:
        if 1 <= line <= len(self.lines):
            return self.lines[line - 1]
        return ""

    def finding(
        self, node: ast.AST, rule_id: str, message: str, hint: str = ""
    ) -> Finding:
        return Finding(
            path=self.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            rule_id=rule_id,
            message=message,
            hint=hint,
        )


# ---------------------------------------------------------------------- #
# running
# ---------------------------------------------------------------------- #


@dataclass
class LintResult:
    """The outcome of one lint run."""

    findings: List[Finding] = field(default_factory=list)
    #: findings silenced by an inline suppression (kept for reporting)
    suppressed: List[Finding] = field(default_factory=list)
    #: findings silenced by the committed baseline
    baselined: List[Finding] = field(default_factory=list)
    files: int = 0

    @property
    def ok(self) -> bool:
        return not self.findings

    def counts(self) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for f in self.findings:
            out[f.rule_id] = out.get(f.rule_id, 0) + 1
        return dict(sorted(out.items()))


def discover_files(config: LintConfig) -> List[str]:
    """Repo-relative posix paths of every ``.py`` under config.paths,
    sorted for deterministic visit order."""
    found = []
    for base in config.paths:
        full = os.path.join(config.root, base)
        if os.path.isfile(full):
            if full.endswith(".py"):
                found.append(base)
            continue
        for dirpath, dirnames, filenames in os.walk(full):
            dirnames.sort()
            dirnames[:] = [d for d in dirnames if d != "__pycache__"]
            for fn in filenames:
                if not fn.endswith(".py"):
                    continue
                rel = os.path.relpath(os.path.join(dirpath, fn), config.root)
                found.append(rel.replace(os.sep, "/"))
    return sorted(set(found))


def fingerprint(finding: Finding, line_text: str, index: int) -> str:
    """A line-number-independent identity for baseline matching:
    hashes the rule, file, the *text* of the flagged line, and the
    occurrence index among identical (rule, file, text) triples — so
    unrelated edits that shift line numbers do not invalidate entries.
    """
    basis = f"{finding.rule_id}|{finding.path}|{line_text.strip()}|{index}"
    return hashlib.sha256(basis.encode()).hexdigest()[:16]


def _selected_rules(config: LintConfig) -> List[Rule]:
    # import-for-effect: rule modules self-register on first import
    from repro.lint import api, determinism, locks, perturbation  # noqa: F401

    if config.select:
        unknown = [r for r in config.select if r not in RULES]
        if unknown:
            raise ValueError(f"unknown rule id(s): {', '.join(unknown)}")
        ids = list(config.select)
    else:
        ids = list(RULES)
    return [RULES[r] for r in sorted(ids)]


def lint_file(
    relpath: str, source: str, config: LintConfig,
    rules: Optional[List[Rule]] = None,
) -> Tuple[List[Finding], List[Finding]]:
    """Lint one file; returns (active findings, suppressed findings)."""
    if rules is None:
        rules = _selected_rules(config)
    try:
        ctx = FileContext(relpath, source, config)
    except SyntaxError as exc:
        f = Finding(
            path=relpath, line=exc.lineno or 1, col=(exc.offset or 0) + 1,
            rule_id="E000", message=f"file does not parse: {exc.msg}",
            hint="fix the syntax error; the linter cannot analyse this file",
        )
        return [f], []

    raw: List[Finding] = []
    for r in rules:
        raw.extend(r.check(ctx))
    raw = sorted(set(raw))  # rules may visit nested scopes twice

    suppressions = parse_suppressions(ctx.source)
    by_line: Dict[int, List[Suppression]] = {}
    for s in suppressions:
        by_line.setdefault(s.line, []).append(s)
        # a comment on its own line covers the next code line (skipping
        # blank lines and the comment block it belongs to)
        if ctx.line_text(s.line).lstrip().startswith("#"):
            nxt = s.line + 1
            while nxt <= len(ctx.lines) and (
                not ctx.line_text(nxt).strip()
                or ctx.line_text(nxt).lstrip().startswith("#")
            ):
                nxt += 1
            by_line.setdefault(nxt, []).append(s)

    active: List[Finding] = []
    suppressed: List[Finding] = []
    for f in raw:
        match = None
        for s in by_line.get(f.line, ()):
            if f.rule_id in s.rule_ids:
                match = s
                break
        if match is not None:
            match.used = True
            suppressed.append(f)
        else:
            active.append(f)

    # meta rules: suppressions must carry a reason and must be load-bearing
    rule_ids = {r.rule_id for r in rules}
    for s in suppressions:
        node = _FakeNode(s.line)
        if "S001" in rule_ids or not config.select:
            if not s.reason:
                active.append(ctx.finding(
                    node, "S001",
                    f"suppression allow[{','.join(s.rule_ids)}] has no reason",
                    hint="write the justification after the ]: "
                         "`# repro: allow[rule-id] <why this is safe>`",
                ))
        if "S002" in rule_ids or not config.select:
            # only judge "unused" when every rule the comment targets
            # actually ran — under --rule subsets a suppression for an
            # unselected rule matches nothing by construction
            if not s.used and s.reason and set(s.rule_ids) <= rule_ids:
                active.append(ctx.finding(
                    node, "S002",
                    f"unused suppression allow[{','.join(s.rule_ids)}]"
                    " matches no finding",
                    hint="delete the stale comment (or fix the rule id)",
                ))
    return active, suppressed


class _FakeNode:
    """Positions meta-findings (suppression hygiene) at a comment line."""

    def __init__(self, line: int):
        self.lineno = line
        self.col_offset = 0


def run_lint(
    config: LintConfig,
    baseline_fingerprints: Iterable[str] = (),
) -> LintResult:
    """Lint every file under ``config.paths``; baseline-filtered."""
    rules = _selected_rules(config)
    result = LintResult()
    sources: Dict[str, str] = {}
    for relpath in discover_files(config):
        with open(os.path.join(config.root, relpath), encoding="utf-8") as fh:
            sources[relpath] = fh.read()
    active_all: List[Finding] = []
    for relpath in sorted(sources):
        active, suppressed = lint_file(relpath, sources[relpath],
                                       config, rules)
        active_all.extend(active)
        result.suppressed.extend(suppressed)
        result.files += 1

    baseline = set(baseline_fingerprints)
    if baseline:
        kept: List[Finding] = []
        for f, fp in with_fingerprints(active_all, sources):
            if fp in baseline:
                result.baselined.append(f)
            else:
                kept.append(f)
        active_all = kept

    result.findings = sorted(active_all)
    result.suppressed.sort()
    result.baselined.sort()
    return result


def with_fingerprints(
    findings: Iterable[Finding], sources: Dict[str, str]
) -> List[Tuple[Finding, str]]:
    """Pair each finding with its baseline fingerprint (stable order)."""
    line_cache: Dict[str, List[str]] = {
        p: src.splitlines() for p, src in sources.items()
    }
    seen: Dict[Tuple[str, str, str], int] = {}
    out: List[Tuple[Finding, str]] = []
    for f in sorted(findings):
        lines = line_cache.get(f.path, [])
        text = lines[f.line - 1] if 1 <= f.line <= len(lines) else ""
        key = (f.rule_id, f.path, text.strip())
        index = seen.get(key, 0)
        seen[key] = index + 1
        out.append((f, fingerprint(f, text, index)))
    return out


def read_sources(config: LintConfig) -> Dict[str, str]:
    """The file set a lint run would analyse (for fingerprinting)."""
    out: Dict[str, str] = {}
    for relpath in discover_files(config):
        with open(os.path.join(config.root, relpath), encoding="utf-8") as fh:
            out[relpath] = fh.read()
    return out


# re-exported for rule modules
__all__ = [
    "Finding", "Rule", "RULES", "rule", "LintConfig", "FileContext",
    "LintResult", "run_lint", "lint_file", "discover_files",
    "fingerprint", "with_fingerprints", "read_sources",
    "parse_suppressions", "Suppression",
]
