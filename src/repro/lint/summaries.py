"""Per-function effect summaries — the facts the call graph propagates.

Interprocedural analysis (docs/LINT.md §call-graph) runs in two layers:
this module extracts *direct* facts from one module's AST — wall-clock
call sites, raw-RNG constructions, named-stream draws, writes through
parameters / ``self`` / module globals, lock acquire/release effects,
and every call site with enough context to resolve it later — and
:mod:`repro.lint.callgraph` links the modules together and propagates
the facts bottom-up over SCCs.

Everything here is a plain dict/list/str structure with a stable JSON
round-trip, because the per-module facts are exactly what the summary
cache (:mod:`repro.lint.cache`) persists: a warm lint run never
re-parses a module whose content hash is unchanged.
"""

from __future__ import annotations

import ast
from typing import Any, Dict, List, Optional, Tuple

from repro.lint.astutil import (
    ImportMap,
    dotted_name,
    expr_key,
    target_root,
    walk_shallow,
)
from repro.lint.determinism import _WALLCLOCK_DATETIME, _WALLCLOCK_TIME

#: receiver names that denote the object a method runs on
SELF_NAMES = ("self", "cls")

#: container methods that mutate their receiver in place — calling one
#: on a parameter or module global is a write for summary purposes
MUTATOR_METHODS = {
    "append", "extend", "insert", "remove", "clear", "pop", "popitem",
    "add", "discard", "update", "setdefault", "appendleft", "popleft",
    "sort", "reverse", "write",
}


def _site(node: ast.AST, desc: str) -> Dict[str, Any]:
    return {
        "line": getattr(node, "lineno", 1),
        "col": getattr(node, "col_offset", 0) + 1,
        "desc": desc,
    }


def _arg_root(node: ast.AST) -> Optional[str]:
    """The root Name an argument expression hands to the callee, when
    the argument aliases caller state (``sq``, ``self.queue``)."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, (ast.Attribute, ast.Subscript)):
        return target_root(node)
    return None


def _stream_prefix(call: ast.Call) -> Optional[str]:
    """The literal leading text of a stream name argument: handles a
    plain string constant and the constant head of an f-string."""
    if not call.args:
        return None
    arg = call.args[0]
    if isinstance(arg, ast.Constant) and isinstance(arg.value, str):
        return arg.value
    if isinstance(arg, ast.JoinedStr) and arg.values:
        head = arg.values[0]
        if isinstance(head, ast.Constant) and isinstance(head.value, str):
            return head.value
    return None


class _FunctionScanner:
    """Extracts the direct facts of one function body (shallow walk —
    nested defs are separate functions with their own facts)."""

    def __init__(
        self,
        fn: ast.AST,
        qualname: str,
        cls: Optional[str],
        imports: ImportMap,
        module_globals: Tuple[str, ...],
    ):
        self.fn = fn
        self.qualname = qualname
        self.cls = cls
        self.imports = imports
        self.module_globals = set(module_globals)
        args = fn.args
        self.pos_params: List[str] = [
            a.arg for a in list(args.posonlyargs) + list(args.args)
        ]
        self.all_params = set(self.pos_params)
        self.all_params |= {a.arg for a in args.kwonlyargs}
        if args.vararg:
            self.all_params.add(args.vararg.arg)
        if args.kwarg:
            self.all_params.add(args.kwarg.arg)
        self.annotations: Dict[str, str] = {}
        for a in list(args.posonlyargs) + list(args.args) + list(
                args.kwonlyargs):
            ann = self._ann_text(a.annotation)
            if ann:
                self.annotations[a.arg] = ann

    @staticmethod
    def _ann_text(ann: Optional[ast.AST]) -> Optional[str]:
        if ann is None:
            return None
        if isinstance(ann, ast.Constant) and isinstance(ann.value, str):
            return ann.value
        return dotted_name(ann)

    def scan(self) -> Dict[str, Any]:
        facts: Dict[str, Any] = {
            "qualname": self.qualname,
            "name": self.qualname.rsplit(".", 1)[-1],
            "cls": self.cls,
            "line": self.fn.lineno,
            "col": self.fn.col_offset + 1,
            "params": list(self.pos_params),
            "wallclock": [],
            "rawrng": [],
            "draws": [],
            "param_writes": {},
            "self_write": None,
            "global_writes": [],
            "calls": [],
            "lock": None,
            "lock_ops": False,
        }
        # two pre-passes the main walk depends on: names assigned
        # locally (they shadow module globals) and locally constructed
        # receivers (x = ClassName(...) types the later x.method())
        assigned: set = set()
        declared_global: set = set()
        local_types: Dict[str, Tuple[str, bool]] = {}
        for node in walk_shallow(self.fn):
            if isinstance(node, ast.Global):
                declared_global.update(node.names)
            elif isinstance(node, ast.Assign) and len(node.targets) == 1:
                t = node.targets[0]
                if isinstance(t, ast.Name):
                    assigned.add(t.id)
                    ref = self._ctor_ref(node.value)
                    if ref:
                        local_types[t.id] = (ref, True)
            elif isinstance(node, (ast.AnnAssign, ast.AugAssign)):
                if isinstance(node.target, ast.Name):
                    assigned.add(node.target.id)
        for name, ann in self.annotations.items():
            local_types.setdefault(name, (ann, False))

        for node in walk_shallow(self.fn):
            if isinstance(node, ast.Call):
                self._scan_call(node, facts, local_types,
                                assigned, declared_global)
            elif isinstance(node, (ast.Assign, ast.AugAssign,
                                   ast.AnnAssign, ast.Delete)):
                self._scan_write(node, facts, assigned, declared_global)
        facts["lock"] = self._lock_summary()
        return facts

    def _ctor_ref(self, value: ast.AST) -> Optional[str]:
        """``ClassName`` / ``mod.ClassName`` when ``value`` constructs an
        object whose type the resolver may know."""
        if not isinstance(value, ast.Call):
            return None
        ref = dotted_name(value.func)
        if ref is None:
            return None
        head = ref.split(".", 1)[0]
        if head in self.all_params or head in SELF_NAMES:
            return None
        return ref

    # -- calls ---------------------------------------------------------- #

    def _scan_call(
        self, node: ast.Call, facts: Dict[str, Any],
        local_types: Dict[str, Tuple[str, bool]],
        assigned: set, declared_global: set,
    ) -> None:
        path = self.imports.resolve_call(node.func)
        if path is not None:
            mod, _, attr = path.partition(".")
            if (mod == "time" and attr in _WALLCLOCK_TIME) \
                    or path in _WALLCLOCK_DATETIME:
                facts["wallclock"].append(_site(node, f"`{path}` call"))
            if path == "random" or path.startswith("random.") \
                    or path == "numpy.random" \
                    or path.startswith("numpy.random."):
                facts["rawrng"].append(_site(node, f"raw RNG `{path}`"))
        func = node.func
        if isinstance(func, ast.Attribute):
            if func.attr in ("try_acquire", "release"):
                facts["lock_ops"] = True
            if func.attr in ("stream", "numpy_stream"):
                d = _site(node, f".{func.attr}() draw")
                d["prefix"] = _stream_prefix(node)
                facts["draws"].append(d)
            if func.attr in MUTATOR_METHODS \
                    and isinstance(func.value, (ast.Name, ast.Attribute,
                                                ast.Subscript)):
                root = target_root(func.value)
                self._record_write(
                    facts, root, node,
                    f"mutating .{func.attr}() call",
                    assigned, declared_global,
                )
        self._record_call_site(node, facts, local_types)

    def _record_call_site(
        self, node: ast.Call, facts: Dict[str, Any],
        local_types: Dict[str, Tuple[str, bool]],
    ) -> None:
        func = node.func
        rec: Dict[str, Any] = {
            "line": node.lineno,
            "col": node.col_offset + 1,
        }
        if isinstance(func, ast.Name):
            rec["kind"] = "name"
            rec["target"] = func.id
        elif isinstance(func, ast.Attribute):
            rec["target"] = func.attr
            base = func.value
            if isinstance(base, ast.Name) and base.id in SELF_NAMES:
                rec["kind"] = "self"
            else:
                rec["kind"] = "attr"
                rec["recv"] = expr_key(base)
                rec["recv_root"] = _arg_root(base)
                if isinstance(base, ast.Name) and base.id in local_types:
                    ref, fresh = local_types[base.id]
                    rec["recv_class"] = ref
                    rec["recv_fresh"] = fresh
                elif isinstance(base, ast.Call):
                    # ClassName().method(): the receiver is the
                    # just-constructed object — typed and fresh
                    ref = self._ctor_ref(base)
                    if ref is not None:
                        rec["recv_class"] = ref
                        rec["recv_fresh"] = True
        else:
            return  # call of a computed expression: unresolvable
        rec["pos_roots"] = [
            None if isinstance(a, ast.Starred) else _arg_root(a)
            for a in node.args
        ]
        kw = {
            k.arg: _arg_root(k.value)
            for k in node.keywords if k.arg is not None
        }
        if kw:
            rec["kw_roots"] = kw
        facts["calls"].append(rec)

    # -- writes --------------------------------------------------------- #

    def _scan_write(
        self, node: ast.stmt, facts: Dict[str, Any],
        assigned: set, declared_global: set,
    ) -> None:
        if isinstance(node, ast.Assign):
            targets = node.targets
        elif isinstance(node, ast.Delete):
            targets = node.targets
        else:
            targets = [node.target]
        for t in targets:
            if isinstance(t, ast.Name):
                if t.id in declared_global:
                    self._record_write(
                        facts, t.id, t, f"assigns global `{t.id}`",
                        assigned, declared_global, force_global=True)
                continue
            if not isinstance(t, (ast.Attribute, ast.Subscript)):
                continue
            root = target_root(t)
            self._record_write(
                facts, root, t, f"writes through `{root}`",
                assigned, declared_global)

    def _record_write(
        self, facts: Dict[str, Any], root: Optional[str], node: ast.AST,
        desc: str, assigned: set, declared_global: set,
        force_global: bool = False,
    ) -> None:
        if root is None:
            return
        if root in SELF_NAMES:
            if facts["self_write"] is None:
                facts["self_write"] = _site(node, desc)
        elif root in self.all_params:
            facts["param_writes"].setdefault(root, _site(node, desc))
        elif force_global or (
            root in self.module_globals
            and root not in assigned
            and root not in declared_global
        ):
            facts["global_writes"].append(_site(node, desc))

    # -- locks ---------------------------------------------------------- #

    def _lock_summary(self) -> Optional[Dict[str, Any]]:
        from repro.lint.locks import compute_lock_summary

        return compute_lock_summary(self.fn, self.pos_params)


def extract_module_facts(
    relpath: str, tree: ast.Module
) -> Dict[str, Any]:
    """The JSON-able fact record of one parsed module."""
    imports = ImportMap(tree)
    module_funcs: List[str] = []
    classes: Dict[str, Dict[str, Any]] = {}
    global_names: List[str] = []
    functions: Dict[str, Dict[str, Any]] = {}

    def add_function(fn, qualname, cls):
        scanner = _FunctionScanner(
            fn, qualname, cls, imports, tuple(global_names))
        functions[qualname] = scanner.scan()
        for child in ast.walk(fn):
            if child is fn:
                continue
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                # only direct nesting: deeper levels recurse in turn
                if _encloses_directly(fn, child):
                    add_function(
                        child, f"{qualname}.<locals>.{child.name}", cls)

    for stmt in tree.body:
        if isinstance(stmt, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
            targets = (stmt.targets if isinstance(stmt, ast.Assign)
                       else [stmt.target])
            for t in targets:
                if isinstance(t, ast.Name):
                    global_names.append(t.id)

    for stmt in tree.body:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            module_funcs.append(stmt.name)
            add_function(stmt, stmt.name, None)
        elif isinstance(stmt, ast.ClassDef):
            bases = [dotted_name(b) for b in stmt.bases]
            methods: List[str] = []
            for sub in stmt.body:
                if isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    methods.append(sub.name)
                    add_function(sub, f"{stmt.name}.{sub.name}", stmt.name)
            classes[stmt.name] = {
                "bases": [b for b in bases if b],
                "methods": methods,
            }

    return {
        "path": relpath,
        "imports": dict(sorted(imports.aliases.items())),
        "module_funcs": module_funcs,
        "classes": classes,
        "globals": sorted(set(global_names)),
        "functions": functions,
        "has_locks": any(
            f["lock_ops"] or f["lock"] is not None
            for f in functions.values()
        ),
    }


def _encloses_directly(outer: ast.AST, inner: ast.AST) -> bool:
    """True when ``inner`` is nested in ``outer`` with no function
    scope in between."""
    stack = [outer]
    while stack:
        node = stack.pop()
        for child in ast.iter_child_nodes(node):
            if child is inner:
                return True
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef,
                                  ast.Lambda)):
                continue
            stack.append(child)
    return False
