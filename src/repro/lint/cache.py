"""Content-hashed per-module analysis cache.

A warm whole-tree lint should cost roughly the call-graph link step,
not a re-parse of every file: the per-file work (parsing, file rules,
suppression scanning, fact extraction) depends only on the file's
bytes and the analysis configuration, so it is cached as one JSON
document per module under ``benchmarks/results/lint-cache/``.

An entry is valid only when *both* keys match:

* the module's content hash — any edit invalidates exactly that file;
* the config digest (:func:`repro.lint.engine.config_digest`), which
  folds in the analyzer version, rule selection, and every config
  field the analysis reads — bumping ``ANALYZER_VERSION`` or changing
  an allowlist invalidates the whole cache at once, so stale semantics
  can never leak through a content match.

Corrupt or unreadable entries count as misses (the cache is an
artifact directory; campaign workers may be writing next to it).
Writes are atomic (temp + rename) so a crashed run never leaves a
half-written entry.
"""

from __future__ import annotations

import hashlib
import json
import os
from typing import Any, Dict, Optional


def _content_hash(source: str) -> str:
    return hashlib.sha256(source.encode()).hexdigest()


class SummaryCache:
    """One directory of per-module cached analyses."""

    def __init__(self, directory: str):
        self.directory = directory
        self.hits = 0
        self.misses = 0

    def _entry_path(self, relpath: str) -> str:
        name = hashlib.sha256(relpath.encode()).hexdigest()[:24]
        return os.path.join(self.directory, f"{name}.json")

    def load(
        self, relpath: str, source: str, config_digest: str
    ) -> Optional[Dict[str, Any]]:
        """The cached analysis of ``relpath``, or None on any mismatch."""
        try:
            with open(self._entry_path(relpath), encoding="utf-8") as fh:
                doc = json.load(fh)
        except (OSError, ValueError):
            self.misses += 1
            return None
        if (
            doc.get("path") != relpath
            or doc.get("content") != _content_hash(source)
            or doc.get("config") != config_digest
        ):
            self.misses += 1
            return None
        entry = doc.get("entry")
        if not isinstance(entry, dict) or "findings" not in entry:
            self.misses += 1
            return None
        self.hits += 1
        return entry

    def store(
        self,
        relpath: str,
        source: str,
        config_digest: str,
        entry: Dict[str, Any],
    ) -> None:
        path = self._entry_path(relpath)
        os.makedirs(self.directory, exist_ok=True)
        doc = {
            "path": relpath,
            "content": _content_hash(source),
            "config": config_digest,
            "entry": entry,
        }
        tmp = f"{path}.tmp.{os.getpid()}"
        try:
            with open(tmp, "w", encoding="utf-8") as fh:
                json.dump(doc, fh, sort_keys=True)
            os.replace(tmp, path)
        except OSError:
            try:
                os.unlink(tmp)
            except OSError:
                pass
