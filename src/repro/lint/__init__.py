"""repro.lint — sim-safety static analysis (docs/LINT.md).

A from-scratch AST + CFG analyzer enforcing the contracts the
reproduction's determinism rests on:

* **D0xx determinism** — randomness only via named ``sim/rng.py``
  streams, no wall clock in the simulated world, no hash-order
  iteration feeding the simulator, no id()-based ordering;
* **P0xx zero-perturbation** — trace/metrics/check observe, never
  mutate, and never draw randomness;
* **L0xx lock discipline** — every path from a successful
  ``try_acquire`` releases before function exit, and never releases
  unheld (paper §3.2's queue-sharing trylock);
* **A0xx API misuse** — cancelled Handles, ad-hoc ``tracer=``/
  ``checks=`` objects, bare ``except:``.

Run it with ``repro lint [--strict] [--format text|json|sarif]``.
"""

from repro.lint.engine import (  # noqa: F401
    RULES,
    FileContext,
    Finding,
    LintConfig,
    LintResult,
    lint_file,
    run_lint,
)
from repro.lint.main import main  # noqa: F401
from repro.lint.report import render_json, render_sarif, render_text  # noqa: F401

__all__ = [
    "RULES", "FileContext", "Finding", "LintConfig", "LintResult",
    "lint_file", "run_lint", "render_text", "render_json",
    "render_sarif", "main",
]
