"""``repro lint`` — the CLI entry point (wired from repro.cli).

Exit codes: 0 clean, 1 findings (or strict-mode contract breaches),
2 usage errors.
"""

from __future__ import annotations

import os
import sys
from typing import List, Optional

from repro.lint import baseline as baseline_mod
from repro.lint.cache import SummaryCache
from repro.lint.engine import LintConfig, run_lint
from repro.lint.report import render_json, render_sarif, render_text

#: default cache location, relative to --root (a benchmarks artifact
#: directory: ignored by git, safe to delete at any time)
DEFAULT_CACHE_DIR = os.path.join("benchmarks", "results", "lint-cache")


def build_config(args) -> LintConfig:
    cfg = LintConfig(root=args.root)
    if args.paths:
        cfg.paths = tuple(args.paths)
    if args.rule:
        cfg.select = tuple(args.rule)
    return cfg


def build_cache(args) -> Optional[SummaryCache]:
    if getattr(args, "no_cache", False):
        return None
    directory = getattr(args, "cache_dir", None) or os.path.join(
        args.root, DEFAULT_CACHE_DIR)
    return SummaryCache(directory)


def main(args) -> int:
    cfg = build_config(args)
    baseline_path = args.baseline or os.path.join(
        args.root, baseline_mod.DEFAULT_BASELINE)

    if args.write_baseline:
        n = baseline_mod.write_baseline(baseline_path, cfg)
        print(f"wrote {n} baseline entr{'y' if n == 1 else 'ies'} "
              f"-> {baseline_path}")
        return 0

    entries = baseline_mod.load_baseline(baseline_path)
    problems: List[str] = []
    if args.strict:
        # strict mode: the ratchet must be fully paid off
        if entries:
            problems.append(
                f"--strict: baseline {baseline_path} still has "
                f"{len(entries)} grandfathered entr"
                f"{'y' if len(entries) == 1 else 'ies'}"
            )
        entries = {}

    cache = build_cache(args)
    result = run_lint(cfg, baseline_fingerprints=entries.keys(),
                      cache=cache)
    if cache is not None:
        # stderr, never stdout: report output must stay byte-identical
        # between cold and warm runs
        print(
            f"lint-cache: {result.cache_hits} hit(s), "
            f"{result.cache_misses} miss(es)",
            file=sys.stderr,
        )

    out: Optional[str] = getattr(args, "out", None)
    if args.format == "json":
        rendered = render_json(result)
    elif args.format == "sarif":
        rendered = render_sarif(result)
    else:
        rendered = render_text(result, verbose=args.verbose) + "\n"
    if out:
        with open(out, "w", encoding="utf-8") as fh:
            fh.write(rendered)
        print(f"{len(result.findings)} finding(s) -> {out}")
    else:
        print(rendered, end="")
    for p in problems:
        print(p)
    return 1 if (result.findings or problems) else 0


def add_parser(sub) -> None:
    """Register the ``lint`` subcommand on a subparsers object."""
    p = sub.add_parser(
        "lint",
        help="sim-safety static analysis (determinism, zero-perturbation, "
             "lock discipline)")
    p.add_argument("paths", nargs="*",
                   help="files/directories to lint (default src/repro)")
    p.add_argument("--root", default=".",
                   help="repository root paths are relative to")
    p.add_argument("--strict", action="store_true",
                   help="fail on any finding, unused suppression, "
                        "reasonless suppression, or baseline entry")
    p.add_argument("--format", choices=("text", "json", "sarif"),
                   default="text")
    p.add_argument("--rule", action="append", default=None,
                   metavar="ID", help="run only this rule id (repeatable)")
    p.add_argument("--baseline", default=None,
                   help="baseline file (default <root>/lint-baseline.json)")
    p.add_argument("--write-baseline", action="store_true",
                   help="snapshot current findings into the baseline")
    p.add_argument("--out", default=None,
                   help="write the report to a file instead of stdout")
    p.add_argument("--cache-dir", default=None,
                   help="per-module summary cache directory "
                        f"(default <root>/{DEFAULT_CACHE_DIR})")
    p.add_argument("--no-cache", action="store_true",
                   help="analyse every file from scratch")
    p.add_argument("--verbose", action="store_true",
                   help="also list suppressed findings (text format)")
