"""Calibration constants for the simulated testbed.

Every magic number in the reproduction lives here, next to the paper
measurement (or public kernel/hardware datum) that anchors it.  The
testbed being modelled is the paper's (Section 3.3): one isolated NUMA
node of an Intel Xeon Silver @ 2.1 GHz running Linux 5.4, Intel X520
10 GbE NICs, 64-byte packets.

Calibration policy (see DESIGN.md §1): constants are anchored to the
paper's *inputs and primitive measurements* (Table 1 sleep distributions,
application Mpps ceilings, Linux scheduler defaults), never to the output
of the experiment that uses them.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.sim.units import MS, SEC, US

# --------------------------------------------------------------------- #
# CPU
# --------------------------------------------------------------------- #

#: Base (and max, under the ``performance`` governor) core frequency.
#: Paper §3.3: "Intel Xeon Silver 2.10GHz cores".
BASE_FREQ_HZ = 2_100_000_000

#: Minimum frequency the ``ondemand`` governor may select.  Xeon Silver
#: 4110-class parts idle at 800 MHz.
MIN_FREQ_HZ = 800_000_000

#: Direct cost of a context switch (save/restore, runqueue bookkeeping).
#: ~1-2 us is the commonly measured figure on Skylake-SP class servers.
CONTEXT_SWITCH_NS = 1_200

#: SMT (hyper-threading): when both hardware threads of a core pair are
#: busy, each proceeds at this fraction of the full core throughput
#: (shared execution ports/caches).  The paper's §1 notes that "100%
#: usage of computing units is not favorable to performance in scenarios
#: where threads run on hyper-threaded machines"; the SMT extension
#: experiment quantifies it.  Pairs are off by default (cfg.smt_pairs).
SMT_SLOWDOWN = 0.65

#: Cache-warmup penalty: extra per-packet cost multiplier applied for a
#: short window after a thread regains the CPU from a different thread.
#: Models the indirect cost of context switching (cold caches/TLB).
CACHE_WARMUP_NS = 8_000
CACHE_WARMUP_FACTOR = 1.6

# --------------------------------------------------------------------- #
# Scheduler (Linux CFS defaults for a small runqueue)
# --------------------------------------------------------------------- #

SCHED_LATENCY_NS = 6 * MS          #: sysctl_sched_latency
SCHED_MIN_GRANULARITY_NS = 750_000  #: sysctl_sched_min_granularity
SCHED_WAKEUP_GRANULARITY_NS = 1 * MS  #: sysctl_sched_wakeup_granularity
SCHED_TICK_NS = 1 * MS             #: CONFIG_HZ=1000 tick

# --------------------------------------------------------------------- #
# Syscall / kernel-entry costs (mechanistic sleep-service model, §3.1)
# --------------------------------------------------------------------- #

#: Bare syscall entry+exit (SYSCALL/SYSRET + entry code) with KPTI on:
#: the CR3 switch alone costs several hundred cycles.
SYSCALL_ENTRY_EXIT_NS = 250

#: nanosleep() preamble beyond the bare entry: access_ok()/copy_from_user
#: of struct timespec (with the KPTI-induced TLB miss the paper calls
#: out), timespec64→ktime conversion, hrtimer_init_sleeper on the heap
#: path.  Total preamble ≈ 1.2 us of CPU before the timer is armed.
NANOSLEEP_PREAMBLE_NS = 950

#: hr_sleep() preamble: single-register argument, on-stack timer entry,
#: no cross-ring move, no allocator interaction (§3.1).
HRSLEEP_PREAMBLE_NS = 120

#: Kernel work after wakeup before returning to user space (dequeue the
#: sleeper, restore context, syscall exit).  nanosleep touches the
#: restart block and the user timespec again on the way out.
NANOSLEEP_POSTAMBLE_NS = 550
HRSLEEP_POSTAMBLE_NS = 180

#: SCHED_OTHER timer slack applied by hrtimer range timers to nanosleep
#: (task->timer_slack_ns defaults to 50 us).  This is the dominant term
#: behind Table 1's ~58 us nanosleep overhead.  hr_sleep() arms a
#: non-range timer and is unaffected.
TIMER_SLACK_NS = 50 * US

#: HPET/LAPIC timer interrupt delivery + hrtimer_interrupt handling until
#: the wakeup callback runs.
TIMER_IRQ_LATENCY_NS = 400
TIMER_IRQ_HANDLER_NS = 900

# --------------------------------------------------------------------- #
# cpuidle model
# --------------------------------------------------------------------- #
# When a core idles, the menu governor picks a C-state from the predicted
# idle interval (next timer expiry).  Exit latency then delays the first
# instruction after wakeup.  The saturating curve below is calibrated so
# the *emergent* hr_sleep() distribution reproduces Table 1:
#   exit(sleep) ≈ IDLE_EXIT_BASE + IDLE_EXIT_AMP * (1 - exp(-sleep/IDLE_EXIT_TAU))
# anchors (paper Table 1, hr_sleep overhead minus preamble/IRQ terms):
#   1us→~1.4us, 10us→~3.2us, 50us→~6.3us, 200us→~7.1us

IDLE_EXIT_BASE_NS = 1_000
IDLE_EXIT_AMP_NS = 6_200
IDLE_EXIT_TAU_NS = 28 * US
#: Coefficient of variation of the exit-latency sample (Gamma-distributed);
#: sized so 99th percentiles match Table 1 (e.g. 3.80 mean / 3.92 99p at 1us).
IDLE_EXIT_CV = 0.10

# --------------------------------------------------------------------- #
# OS noise (kernel daemons), §4.2.4 / Figure 5 tail
# --------------------------------------------------------------------- #

#: Mean interval between per-core kernel-daemon bursts (kworkers, RCU...).
OS_NOISE_MEAN_PERIOD_NS = 4 * MS
#: Burst service time bounds (uniform).
OS_NOISE_MIN_NS = 10_000
OS_NOISE_MAX_NS = 60_000

# --------------------------------------------------------------------- #
# NIC / DPDK datapath
# --------------------------------------------------------------------- #

#: 10 GbE line rate with 64B frames (+20B framing) = 14.88 Mpps.
LINE_RATE_PPS = 14_880_952
#: Paper's maximum bidirectional throughput per port (§5.1).
BIDIR_RATE_PPS = 11_610_000

#: Default Rx descriptor ring size (DPDK default; Table 3 sweeps to 4096).
DEFAULT_RX_RING = 1024
MAX_RX_RING = 4096
MIN_RX_RING = 32

#: rx burst size (paper Appendix B: "usually set to 32").
RX_BURST = 32
#: Tx batching threshold (§5.4 discusses lowering it to 1).
DEFAULT_TX_BATCH = 32

#: Fixed cost of one rte_eth_rx_burst() call (PMD prologue, reading the
#: ring tail, buffer replenish amortization).
RX_BURST_FIXED_NS = 30
#: Cost of an *empty* poll (checks the ring, finds nothing).
RX_POLL_EMPTY_NS = 20
#: Per-packet Tx enqueue + descriptor write-back cost.
TX_PKT_NS = 6
#: Cost of flushing the Tx buffer (doorbell write).
TX_FLUSH_NS = 50

#: trylock(): one CMPXCHG plus branch; contended case costs a cache-line
#: bounce.
TRYLOCK_NS = 25
TRYLOCK_CONTENDED_NS = 70
UNLOCK_NS = 15

# --------------------------------------------------------------------- #
# Application per-packet costs
# --------------------------------------------------------------------- #
# Calibrated from the Mpps ceilings the paper reports.  With the
# per-burst fixed cost above, effective service rate
#   mu = BURST / (RX_BURST_FIXED + BURST * pkt_cost)
#
# l3fwd(LPM): Table 2 implies mu ≈ 29 Mpps (B ≈ V at line rate, eq. 3):
#   (30 + 32*(25+6) + 50)/32 ≈ 33.5 ns/pkt → 29.9 Mpps.  The drain
# condition at burst=1 (RX_BURST_FIXED + pkt_cost < 67.2 ns inter-arrival
# at line rate) must hold or busy periods never terminate.
#: l3fwd longest-prefix-match lookup + header rewrite, per packet.
L3FWD_PKT_NS = 25
#: ipsec-secgw: paper §5.7 measures 5.61 Mpps max → ~178 ns/pkt.
IPSEC_PKT_NS = 175
#: FloWatcher run-to-completion: sustains line rate with margin (§5.7).
FLOWATCHER_PKT_NS = 28
#: XDP xdp_router_ipv4: 13.57 Mpps across 4 cores → ~295 ns/pkt
#: (page handling + eBPF program + DMA sync).
XDP_PKT_NS = 290
#: Per-interrupt housekeeping for XDP (§5.5: "per-interrupt housekeeping
#: instructions"): IRQ entry/exit + NAPI scheduling.
XDP_IRQ_NS = 2_600
#: Per-interrupt moderation gap (ixgbe rx-usecs class of tuning):
#: the NIC raises at most one Rx interrupt per queue every ITR interval.
#: ~30 us reproduces both XDP's low-rate CPU (Figure 12b) and its
#: low-rate latency (Figure 12a).
XDP_ITR_NS = 30 * US
#: Page-pool / buffer-recycling warmup after an idle spell: the first
#: packets after cold start pay the allocator path (~2x), which is the
#: mechanism behind XDP "losing some tens of thousands of packets"
#: on a cold line-rate burst (paper §5.5) before the pool warms.
XDP_WARM_PKTS = 30_000
XDP_WARM_FACTOR = 2.2
#: Idle time after which the page pool is considered cold again.
XDP_COLD_IDLE_NS = 5 * MS
#: NAPI poll budget (Linux default).
NAPI_BUDGET = 64

# --------------------------------------------------------------------- #
# NUMA / multi-socket topology (scale-out model, docs/SCALE.md)
# --------------------------------------------------------------------- #
# The paper's testbed is one isolated NUMA node, so every penalty below
# is *structurally inert* at the default ``numa_nodes=1``: no core is
# ever remote from the timer fabric or from a queue's DMA memory, and
# the sleep/wake and drain paths add exactly 0 ns.  Multi-socket
# configurations (the 100G scale-out figures) pay them.

#: Extra timer-IRQ delivery latency for a core on a socket remote from
#: the I/O node (IPI forwarding across UPI/QPI plus the remote LAPIC
#: write).  ~1-2 us is the commonly measured cross-socket wakeup gap on
#: two-socket Skylake-SP class servers.
CROSS_SOCKET_WAKE_NS = 1_800

#: Per-``rx_burst`` surcharge when the serving core is remote from the
#: queue's descriptor ring / DMA buffers (remote-DRAM descriptor reads
#: and the doorbell write crossing the interconnect).
NUMA_REMOTE_BURST_NS = 160

#: Per-packet surcharge for touching remote packet payload (one or two
#: remote cache-line fills above the ~local cost baked into the apps).
NUMA_REMOTE_PKT_NS = 4

#: Extra trylock cost when the lock's cache line lives on the other
#: socket (cross-socket cache-line transfer vs an on-die bounce).
NUMA_REMOTE_TRYLOCK_NS = 60

# --------------------------------------------------------------------- #
# Metronome defaults (paper §5 preamble)
# --------------------------------------------------------------------- #

DEFAULT_VBAR_NS = 10 * US       #: target vacation period V̄
DEFAULT_TL_NS = 500 * US        #: long (backup) timeout T_L
DEFAULT_M = 3                   #: number of Metronome threads
DEFAULT_ALPHA = 0.125           #: EWMA weight for the ρ estimator (eq. 10)

# --------------------------------------------------------------------- #
# Power model (anchored to Xeon Silver 4110 RAPL package numbers)
# --------------------------------------------------------------------- #

#: Package idle power (uncore + DRAM refresh share), watts.
PKG_IDLE_W = 14.0
#: Per-core power at 100% utilization and max frequency, watts.
CORE_ACTIVE_MAX_W = 7.0
#: Per-core leakage when idle in a C-state, watts.
CORE_IDLE_W = 0.4
#: Dynamic power frequency exponent (P ∝ f·V² and V roughly ∝ f).
FREQ_POWER_EXP = 2.4

#: ondemand governor sampling period and up-threshold (Linux defaults).
ONDEMAND_SAMPLE_NS = 10 * MS
ONDEMAND_UP_THRESHOLD = 0.63

# --------------------------------------------------------------------- #
# Measurement
# --------------------------------------------------------------------- #

#: MoonGen-style latency sampling: every Kth packet carries a timestamp.
LATENCY_SAMPLE_EVERY = 256

#: Hardware latency floor of the measurement path: NIC Rx pipeline, two
#: PCIe traversals, NIC Tx pipeline and MoonGen's timestamping, which
#: every wire-to-wire sample includes.  Anchored to the paper's minimum
#: DPDK latency of 6.83 us (§5.4) minus the modelled software path.
HW_LATENCY_FLOOR_NS = 5_100

#: Default experiment seed.
DEFAULT_SEED = 2020


@dataclass
class SimConfig:
    """Bundle of tunables an experiment can override without touching
    module-level constants.

    The defaults reproduce the paper's §5 baseline configuration:
    V̄ = 10 us, T_L = 500 us, M = 3, 1024-descriptor ring, burst 32,
    ``performance`` governor, 64B packets at 10 GbE.
    """

    seed: int = DEFAULT_SEED
    base_freq_hz: int = BASE_FREQ_HZ
    min_freq_hz: int = MIN_FREQ_HZ
    governor: str = "performance"
    num_cores: int = 6
    #: optional SMT topology: list of (core_a, core_b) sibling pairs
    smt_pairs: list = None
    #: NUMA sockets the cores are split across (contiguous blocks);
    #: 1 = the paper's isolated single node, where every cross-socket
    #: penalty below is structurally inert (docs/SCALE.md)
    numa_nodes: int = 1
    cross_socket_wake_ns: int = CROSS_SOCKET_WAKE_NS
    numa_remote_burst_ns: int = NUMA_REMOTE_BURST_NS
    numa_remote_pkt_ns: int = NUMA_REMOTE_PKT_NS
    numa_remote_trylock_ns: int = NUMA_REMOTE_TRYLOCK_NS
    rx_ring_size: int = DEFAULT_RX_RING
    rx_burst: int = RX_BURST
    tx_batch: int = DEFAULT_TX_BATCH
    vbar_ns: int = DEFAULT_VBAR_NS
    tl_ns: int = DEFAULT_TL_NS
    num_threads: int = DEFAULT_M
    alpha: float = DEFAULT_ALPHA
    latency_sample_every: int = LATENCY_SAMPLE_EVERY
    os_noise: bool = True
    timer_slack_ns: int = TIMER_SLACK_NS
    extra: dict = field(default_factory=dict)
