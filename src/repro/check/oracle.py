"""The model-vs-simulation differential oracle (docs/CHECK.md part 2).

Sweeps a (T_S, T_L, M, load) lattice, runs the simulator at each point
with fixed timeouts and Poisson traffic, and statistically compares the
measurement against the closed forms of :mod:`repro.core.model`:

* **mean-vacation** — E[V] against the Appendix C exact integral
  :func:`~repro.core.model.mean_vacation_general_exact`, evaluated at
  the *measured* primary fraction p, so one formula covers the whole
  load range;
* **vacation-cdf** — a Kolmogorov–Smirnov distance between the *early
  endings* (vacations shorter than the raw T_S) and the conditional
  race CDF from :func:`~repro.core.model.cdf_vacation_general`.  The
  unconditional distribution has an atom at the primary's effective
  timeout, smeared by wake-pipeline jitter; a full-range KS against a
  point atom is hypersensitive to the atom's exact location and says
  nothing about the model, so the oracle tests the continuous part —
  the decorrelation (uniform wake phases) claim — and leaves race
  *intensity* to the backup-success check.  High-load points only:
  Poisson arrivals are what decorrelate the wake phases; fixed-timeout
  low-load runs phase-lock;
* **busy-fraction** — E[B] against eq. 3 driven by the measured mean
  vacation and the service-rate load estimate (skipped near
  saturation, where the M/G/1 stability assumption breaks);
* **backup-success** — the thread-switch fraction between consecutive
  cycles against eq. 7 (high-load points only).

The model describes the *ideal* Metronome; the simulation adds the wake
pipeline (IRQ latency, C-state exit, dispatch), which inflates every
sleep by a few microseconds.  Rather than subtracting an offset from the
measurement, the oracle evaluates the model at the **effective
timeouts** ``T_S + overhead`` / ``T_L + overhead`` — at low load this
correctly predicts E[V] = (T_S+overhead)/M, which an additive output
correction does not.

All thresholds live in one declarative :class:`TolerancePolicy`; the
lattice runs through the campaign executor so points are cached and can
fan out across workers.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, fields, replace
from typing import Dict, List, Optional, Sequence, Tuple

from repro import config
from repro.core import model
from repro.sim.units import US

#: the default sweep: 2 × 2 × 3 × 2 = 24 points spanning short/long
#: T_S, tight/loose T_L, small/large thread groups, and both load
#: regimes (line rate ρ→1, 200 kpps ρ→0)
DEFAULT_LATTICE: Tuple[Dict, ...] = tuple(
    {"ts_us": ts_us, "tl_us": tl_us, "m": m, "rate_pps": rate}
    for ts_us in (10, 20)
    for tl_us in (100, 500)
    for m in (2, 3, 5)
    for rate in (config.LINE_RATE_PPS, 200_000)
)


@dataclass(frozen=True)
class TolerancePolicy:
    """Every threshold the oracle applies, in one declarative record.

    The defaults are calibrated against the shipped simulator (see
    tests/check/test_oracle.py); tighten them to detect drift, or load
    a custom policy from JSON via ``repro check --policy``.
    """

    #: wake-pipeline cost added to both timeouts before evaluating the
    #: model (IRQ latency + handler + dispatch; empirically ~6 µs for
    #: hr_sleep on the simulated hardware, cf. the Table 1 bench)
    wake_overhead_ns: float = 6_000.0
    #: points with fewer renewal cycles than this are skipped outright
    #: (statistics would be noise)
    min_cycles: int = 200
    #: measured ρ at or above this counts as "high load" — the regime
    #: where eq. 5/eq. 7 (one primary, M−1 decorrelated backups) apply
    #: (0.4, not 0.5: stable line-rate points measure ρ ≈ 0.50 and must
    #: not straddle the gate)
    high_load_rho: float = 0.4
    #: mean-vacation band: |measured − model| ≤ max(abs, rel·model)
    mean_rel_tol: float = 0.30
    mean_abs_ns: float = 6_000.0
    #: Kolmogorov–Smirnov cap for the conditional early-ending CDF at
    #: high load, and the minimum early sample that makes it meaningful.
    #: The cap is deliberately coarse: a *displaced* primary's pending
    #: wake is phase-correlated with the cycle that displaced it (it
    #: lands late in the following vacation), so the early endings mix
    #: a uniform backup race with a correlated component the
    #: decorrelation model does not describe.  Observed KS at seed 17
    #: peaks near 0.42; 0.5 still flags structural drift (a point mass
    #: or a missing race scores ≥ 0.7).
    ks_max: float = 0.5
    ks_min_samples: int = 30
    #: busy-fraction band, same max(abs, rel·model) shape
    busy_rel_tol: float = 0.60
    busy_abs_ns: float = 4_000.0
    #: skip the busy check when the service-rate load estimate exceeds
    #: this (eq. 3 diverges as ρ→1 and the sim saturates instead)
    busy_rho_cap: float = 0.90
    #: backup-success window: lo·model − ε ≤ measured ≤ hi·model + ε
    backup_lo_factor: float = 0.6
    backup_hi_factor: float = 2.5
    backup_abs_slack: float = 0.08

    def to_dict(self) -> Dict[str, float]:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Dict) -> "TolerancePolicy":
        known = {f.name for f in fields(cls)}
        unknown = sorted(set(data) - known)
        if unknown:
            raise ValueError(
                f"unknown tolerance key(s) {unknown}; known: {sorted(known)}"
            )
        return replace(cls(), **data)


# ---------------------------------------------------------------------- #
# the per-point measurement (a campaign scenario)
# ---------------------------------------------------------------------- #

def check_oracle_point(
    ts_us: int = 10,
    tl_us: int = 500,
    m: int = 3,
    rate_pps: int = config.LINE_RATE_PPS,
    duration_ms: int = 40,
    max_samples: int = 4_000,
    seed: int = 17,
) -> Dict:
    """Measure one lattice point; returns a JSON-friendly record.

    Registered in :data:`repro.harness.scenarios.SCENARIOS` so the
    campaign executor can run, cache, and parallelize lattice points
    like any figure task.  The run itself is unmonitored — the oracle
    judges distributions, the monitored suite judges invariants.
    """
    from repro.core.tuning import FixedTuner
    from repro.harness.experiment import run_metronome
    from repro.nic.traffic import PoissonProcess
    from repro.sim.rng import RandomStreams

    process = PoissonProcess(
        # repro: allow[P002] lattice-point driver, not an observer: it
        # seeds its own workload stream before the run it measures
        int(rate_pps), RandomStreams(seed).numpy_stream("oracle")
    )
    res = run_metronome(
        process,
        duration_ms=duration_ms,
        cfg=config.SimConfig(seed=seed, os_noise=False),
        tuner=FixedTuner(ts_ns=ts_us * US, tl_ns=tl_us * US),
        num_threads=m,
    )
    records = res.group.cycle_stats().records
    vacations = [r.vacation_ns for r in records]
    stride = max(1, len(vacations) // max_samples) if vacations else 1
    switches = sum(
        1 for a, b in zip(records, records[1:])
        if a.thread_name != b.thread_name
    )
    total_vac = sum(vacations)
    total_busy = sum(r.busy_ns for r in records)
    stats = res.group.thread_stats
    return {
        "ts_us": ts_us,
        "tl_us": tl_us,
        "m": m,
        "rate_pps": int(rate_pps),
        "duration_ms": duration_ms,
        "seed": seed,
        "cycles": len(records),
        "total_vacation_ns": total_vac,
        "total_busy_ns": total_busy,
        "vacation_sample_ns": vacations[::stride],
        "switches": switches,
        "primary_rounds": sum(s.primary_rounds for s in stats),
        "backup_rounds": sum(s.backup_rounds for s in stats),
        "offered": res.offered,
        "delivered": res.delivered,
        "drops": res.drops,
    }


# ---------------------------------------------------------------------- #
# evaluation
# ---------------------------------------------------------------------- #

@dataclass(frozen=True)
class CheckOutcome:
    """One statistical comparison at one lattice point."""

    name: str          # mean-vacation | vacation-cdf | busy-fraction | ...
    status: str        # "pass" | "fail" | "skip"
    measured: float
    expected: float
    detail: str

    def format(self) -> str:
        return (f"{self.name}: {self.status} "
                f"(measured {self.measured:.4g}, model {self.expected:.4g}"
                f"{'; ' + self.detail if self.detail else ''})")


@dataclass(frozen=True)
class PointReport:
    """Verdicts for one lattice point."""

    params: Dict
    cycles: int
    rho_meas: float
    p_meas: float
    checks: Tuple[CheckOutcome, ...]

    @property
    def ok(self) -> bool:
        return all(c.status != "fail" for c in self.checks)

    def label(self) -> str:
        p = self.params
        return (f"ts={p['ts_us']}us tl={p['tl_us']}us m={p['m']} "
                f"rate={p['rate_pps'] / 1e6:.2f}Mpps")

    def format(self) -> str:
        head = (f"{'ok ' if self.ok else 'FAIL'} {self.label()}  "
                f"[{self.cycles} cycles, rho={self.rho_meas:.2f}, "
                f"p={self.p_meas:.2f}]")
        lines = [head]
        for c in self.checks:
            if c.status != "pass":
                lines.append("    " + c.format())
        return "\n".join(lines)


def _ks_distance(sample: Sequence[float], cdf) -> float:
    """Two-sided KS statistic of ``sample`` against continuous ``cdf``."""
    xs = sorted(sample)
    n = len(xs)
    d = 0.0
    for i, x in enumerate(xs):
        f = cdf(x)
        d = max(d, f - i / n, (i + 1) / n - f)
    return d


def evaluate_point(
    data: Dict, policy: Optional[TolerancePolicy] = None
) -> PointReport:
    """Judge one :func:`check_oracle_point` record against the model."""
    policy = policy or TolerancePolicy()
    ts = data["ts_us"] * float(US)
    tl = data["tl_us"] * float(US)
    m = data["m"]
    cycles = data["cycles"]
    params = {k: data[k] for k in ("ts_us", "tl_us", "m", "rate_pps")}

    total_vac = data["total_vacation_ns"]
    total_busy = data["total_busy_ns"]
    rho_meas = (
        total_busy / (total_busy + total_vac)
        if total_busy + total_vac > 0 else 0.0
    )

    # the model is evaluated at the effective timeouts the threads
    # actually realize once the wake pipeline is paid
    ts_eff = ts + policy.wake_overhead_ns
    tl_eff = tl + policy.wake_overhead_ns

    # the model's p is the probability a sleeping competitor, observed
    # at a random instant, is in a T_S sleep — a *time*-stationary
    # quantity.  Counting rounds would bias it badly (primary rounds
    # recur every ~T_S, backups every ~T_L), so weight each round type
    # by the time it spends asleep.
    p_time = data["primary_rounds"] * ts_eff
    b_time = data["backup_rounds"] * tl_eff
    p_meas = p_time / (p_time + b_time) if p_time + b_time else 1.0

    if cycles < policy.min_cycles:
        skip = CheckOutcome(
            "sample-size", "skip", cycles, policy.min_cycles,
            "too few renewal cycles for statistics",
        )
        return PointReport(params, cycles, rho_meas, p_meas, (skip,))

    high_load = rho_meas >= policy.high_load_rho
    checks: List[CheckOutcome] = []

    # -- mean vacation: exact integral at the measured primary mix ----- #
    mean_meas = total_vac / cycles
    mean_model = model.mean_vacation_general_exact(ts_eff, tl_eff, m, p_meas)
    tol = max(policy.mean_abs_ns, policy.mean_rel_tol * mean_model)
    checks.append(CheckOutcome(
        "mean-vacation",
        "pass" if abs(mean_meas - mean_model) <= tol else "fail",
        mean_meas, mean_model, f"tolerance ±{tol:.0f} ns",
    ))

    # -- vacation CDF (KS on the early endings), high load only -------- #
    # vacations below the raw T_S ended because a competitor woke — the
    # continuous part of the distribution; the atom (the primary's own
    # wake, smeared by pipeline jitter) always sits above ts and is
    # excluded: KS against a smeared point mass measures the jitter,
    # not the model
    early = [x for x in data["vacation_sample_ns"] if x < ts]
    g_cut = model.cdf_vacation_general(ts * (1 - 1e-12), ts_eff, tl_eff,
                                       m, p_meas)
    if high_load and len(early) >= policy.ks_min_samples and g_cut > 0:
        ks = _ks_distance(
            early,
            lambda x: model.cdf_vacation_general(
                x, ts_eff, tl_eff, m, p_meas
            ) / g_cut,
        )
        checks.append(CheckOutcome(
            "vacation-cdf",
            "pass" if ks <= policy.ks_max else "fail",
            ks, policy.ks_max,
            f"conditional KS over {len(early)} early endings",
        ))
    elif high_load:
        checks.append(CheckOutcome(
            "vacation-cdf", "skip", len(early), policy.ks_min_samples,
            "too few early endings for a shape test",
        ))
    else:
        checks.append(CheckOutcome(
            "vacation-cdf", "skip", rho_meas, policy.high_load_rho,
            "low-load point: wake phases phase-lock, no continuous CDF",
        ))

    # -- busy fraction: eq. 3 with the service-rate load estimate ------ #
    delivered = data["delivered"]
    rho_hat = (
        data["rate_pps"] * (total_busy / delivered) / 1e9
        if delivered else 1.0
    )
    if rho_hat < policy.busy_rho_cap:
        busy_meas = total_busy / cycles
        busy_model = model.busy_given_vacation(mean_meas, rho_hat)
        tol = max(policy.busy_abs_ns, policy.busy_rel_tol * busy_model)
        checks.append(CheckOutcome(
            "busy-fraction",
            "pass" if abs(busy_meas - busy_model) <= tol else "fail",
            busy_meas, busy_model,
            f"rho_hat={rho_hat:.3f}, tolerance ±{tol:.0f} ns",
        ))
    else:
        checks.append(CheckOutcome(
            "busy-fraction", "skip", rho_hat, policy.busy_rho_cap,
            "near saturation: eq. 3 diverges",
        ))

    # -- backup-success probability (eq. 7), high load only ------------ #
    if high_load and m >= 2 and cycles >= 2:
        switch_frac = data["switches"] / (cycles - 1)
        pb = model.prob_backup_success(ts_eff, tl_eff, m)
        lo = pb * policy.backup_lo_factor - policy.backup_abs_slack
        hi = pb * policy.backup_hi_factor + policy.backup_abs_slack
        checks.append(CheckOutcome(
            "backup-success",
            "pass" if lo <= switch_frac <= hi else "fail",
            switch_frac, pb, f"window [{lo:.3f}, {hi:.3f}]",
        ))
    else:
        checks.append(CheckOutcome(
            "backup-success", "skip", rho_meas, policy.high_load_rho,
            "low-load point: no stable primary to displace",
        ))

    return PointReport(params, cycles, rho_meas, p_meas, tuple(checks))


# ---------------------------------------------------------------------- #
# the sweep
# ---------------------------------------------------------------------- #

@dataclass(frozen=True)
class OracleReport:
    """Verdicts for a whole lattice sweep."""

    points: Tuple[PointReport, ...]
    policy: TolerancePolicy
    errors: Tuple[str, ...] = ()

    @property
    def ok(self) -> bool:
        return not self.errors and all(p.ok for p in self.points)

    @property
    def failures(self) -> List[PointReport]:
        return [p for p in self.points if not p.ok]

    def render(self) -> str:
        n_checks = sum(
            1 for p in self.points for c in p.checks if c.status != "skip"
        )
        lines = [
            f"model-vs-sim oracle: {len(self.points)} lattice points, "
            f"{n_checks} checks, "
            f"{len(self.failures)} failing point(s)"
        ]
        for p in self.points:
            lines.append("  " + p.format())
        for err in self.errors:
            lines.append(f"  ERROR {err}")
        lines.append("verdict: " + ("PASS" if self.ok else "FAIL"))
        return "\n".join(lines)


def run_oracle(
    lattice: Optional[Sequence[Dict]] = None,
    policy: Optional[TolerancePolicy] = None,
    duration_ms: int = 40,
    seed: int = 17,
    workers: int = 0,
    cache=None,
    progress: bool = False,
) -> OracleReport:
    """Sweep the lattice through the campaign executor and judge it.

    ``workers=0`` runs in-process (right for single-core hosts);
    ``cache`` accepts a :class:`repro.campaign.cache.ResultCache` so
    repeated sweeps only re-run points whose code changed.
    """
    from repro.campaign.executor import run_tasks
    from repro.campaign.spec import TaskSpec

    lattice = list(DEFAULT_LATTICE if lattice is None else lattice)
    policy = policy or TolerancePolicy()
    specs = [
        TaskSpec(
            figure="check_oracle",
            scenario="check_oracle_point",
            params={**point, "duration_ms": duration_ms},
            seed=seed,
            index=i,
        )
        for i, point in enumerate(lattice)
    ]
    outcomes = run_tasks(
        specs, workers=workers, cache=cache, timeout_s=600.0,
        retries=1, progress=progress,
    )
    points: List[PointReport] = []
    errors: List[str] = []
    for outcome in outcomes:
        if outcome.ok:
            points.append(evaluate_point(outcome.record, policy))
        else:
            errors.append(f"{outcome.spec.label()}: {outcome.error}")
    return OracleReport(tuple(points), policy, tuple(errors))
