"""Runtime invariant monitors: the CheckRegistry and its hook points.

The registry is a passive observer wired into the subsystems' hot
paths behind ``is None`` guards, following the :mod:`repro.trace` /
:mod:`repro.faults` zero-perturbation idiom: it schedules no simulator
events and draws no randomness, so enabling it never changes a run's
results — and with no registry installed the hooks cost one attribute
read per site.

Monitor catalogue (one hook family each; see docs/CHECK.md):

``clock``
    The virtual clock is monotonic: no event executes at a timestamp
    behind the clock (:meth:`CheckRegistry.on_execute`, called by the
    :class:`~repro.sim.core.Simulator` run loop).
``timer``
    An hrtimer never fires before its programmed expiry
    (:meth:`on_timer_fire`, called by the per-core hrtimer base).
``sleep``
    A sleep whose own timer fired never returns before its expiry
    (:meth:`on_sleep_wake`).  Externally woken sleeps — the watchdog's
    early wakes, fault-injected wakes — legitimately return early and
    are identified by ``timer_fired=False``.
``sched``
    CFS fairness at dispatch time: the picked thread's vruntime is the
    runqueue minimum, respects the sleeper-fairness floor
    (``min_vruntime − sched_latency/2``), and the vruntime spread
    between same-weight runnable threads stays bounded
    (:meth:`on_pick`).
``lock``
    A shadow ownership map independently witnesses every trylock
    transition: mutual exclusion, release-by-owner, and — at quiesce —
    that no lock is left held by a thread that cannot release it
    (:meth:`on_lock_acquire` / :meth:`on_lock_release` /
    :meth:`on_lock_busy`).
``nic``
    Ring occupancy stays within [0, capacity] on every sync
    (:meth:`on_ring`) and, at quiesce, packet conservation holds on
    every registered queue: arrived == popped + dropped + in-flight
    (:meth:`quiesce`).

Violations carry trace-style attribution (simulated time, subject,
monitor, invariant) and are capped; past the cap only counters grow.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro import config
from repro.kernel.nice import NICE_0_WEIGHT
from repro.kernel.thread import ThreadState

#: every monitor the registry knows, in report order
MONITORS = ("clock", "timer", "sleep", "sched", "lock", "nic")


@dataclass(frozen=True)
class Violation:
    """One invariant breach, with trace-style attribution."""

    monitor: str       # which monitor caught it (see MONITORS)
    invariant: str     # short invariant name, e.g. "mutual-exclusion"
    t_ns: int          # simulated time of the observation
    subject: str       # thread / lock / queue / core the breach is about
    message: str       # human-readable detail

    def format(self) -> str:
        return (f"[{self.t_ns} ns] {self.monitor}/{self.invariant} "
                f"{self.subject}: {self.message}")


class CheckRegistry:
    """Collects invariant observations for one :class:`Machine`.

    Install via :meth:`Machine.enable_checks` *before* building the
    workload, so construction-time hooks (trylocks, Rx queues) bind to
    the live registry.  ``monitors`` selects a subset of
    :data:`MONITORS` (default: all).
    """

    def __init__(
        self,
        machine,
        monitors: Optional[Sequence[str]] = None,
        max_violations: int = 1000,
    ):
        names = tuple(monitors) if monitors is not None else MONITORS
        unknown = sorted(set(names) - set(MONITORS))
        if unknown:
            raise ValueError(
                f"unknown monitor(s) {unknown}; known: {list(MONITORS)}"
            )
        self.machine = machine
        self.monitors = frozenset(names)
        self.max_violations = max_violations
        self.violations: List[Violation] = []
        #: violations past the storage cap (counted, not stored)
        self.dropped = 0
        #: checks evaluated per monitor (shows coverage, not health)
        self.checked: Dict[str, int] = {m: 0 for m in MONITORS}
        # per-monitor enable flags, read on the hot paths
        self._clock = "clock" in self.monitors
        self._timer = "timer" in self.monitors
        self._sleep = "sleep" in self.monitors
        self._sched = "sched" in self.monitors
        self._lock = "lock" in self.monitors
        self._nic = "nic" in self.monitors
        # lock shadow state: id(lock) -> (lock, owner); locks are kept
        # alive by their groups for the machine's lifetime, so ids are
        # stable for the run
        self._held: Dict[int, Tuple[object, object]] = {}
        self._locks: List[object] = []
        self._queues: List[object] = []
        #: same-weight runnable vruntime spread bound, in wall ns for a
        #: nice-0 thread: one full stint (slice ≤ sched_latency, caught
        #: by the next tick) plus the sleeper-fairness credit, with
        #: headroom for dispatch/IRQ delays stacking between accountings
        self._spread_wall_ns = 4 * (
            config.SCHED_LATENCY_NS
            + config.SCHED_TICK_NS
            + config.SCHED_LATENCY_NS // 2
        )

    # ------------------------------------------------------------------ #
    # bookkeeping
    # ------------------------------------------------------------------ #

    @property
    def ok(self) -> bool:
        return not self.violations and not self.dropped

    @property
    def total_checked(self) -> int:
        return sum(self.checked.values())

    def violation(self, monitor: str, invariant: str, subject: str,
                  message: str) -> None:
        """Record one breach (capped; the counter keeps growing)."""
        if len(self.violations) >= self.max_violations:
            self.dropped += 1
            return
        self.violations.append(
            Violation(monitor=monitor, invariant=invariant,
                      t_ns=self.machine.sim.now, subject=subject,
                      message=message)
        )

    def report(self, limit: int = 50) -> str:
        """Human-readable summary: per-monitor counts, then breaches."""
        lines = ["invariant monitors:"]
        for m in MONITORS:
            if m not in self.monitors:
                continue
            n_bad = sum(1 for v in self.violations if v.monitor == m)
            state = "ok" if n_bad == 0 else f"{n_bad} VIOLATION(S)"
            lines.append(f"  {m:6s} {self.checked[m]:>12,d} checks  {state}")
        for v in self.violations[:limit]:
            lines.append("  " + v.format())
        hidden = len(self.violations) - limit + self.dropped
        if hidden > 0:
            lines.append(f"  ... and {hidden} more violation(s)")
        return "\n".join(lines)

    # ------------------------------------------------------------------ #
    # clock (Simulator.run / Simulator.step)
    # ------------------------------------------------------------------ #

    def on_execute(self, prev_now: int, when: int) -> None:
        """An event is about to execute at ``when``; clock was ``prev_now``."""
        if not self._clock:
            return
        self.checked["clock"] += 1
        if when < prev_now:
            self.violation(
                "clock", "monotonic", "sim",
                f"event due at {when} executed after the clock "
                f"reached {prev_now}",
            )

    # ------------------------------------------------------------------ #
    # timers (HrTimerQueue._fire)
    # ------------------------------------------------------------------ #

    def on_timer_fire(self, core_index: int, expiry: int, now: int) -> None:
        if not self._timer:
            return
        self.checked["timer"] += 1
        if now < expiry:
            self.violation(
                "timer", "no-early-fire", f"core{core_index}",
                f"hrtimer fired at {now}, {expiry - now} ns before its "
                f"expiry {expiry}",
            )

    # ------------------------------------------------------------------ #
    # sleeps (SleepService.call)
    # ------------------------------------------------------------------ #

    def on_sleep_wake(self, thread, expiry: int, now: int,
                      timer_fired: bool) -> None:
        """The sleeping thread resumed.  Only timer-driven wakes are
        bound by the expiry; external wakes (watchdog, faults) may be
        early by design."""
        if not self._sleep:
            return
        self.checked["sleep"] += 1
        if timer_fired and now < expiry:
            self.violation(
                "sleep", "no-early-return", thread.name,
                f"timer-driven sleep returned at {now}, "
                f"{expiry - now} ns before expiry {expiry}",
            )

    # ------------------------------------------------------------------ #
    # scheduler (CfsScheduler._dispatch, right after the pop)
    # ------------------------------------------------------------------ #

    def on_pick(self, thread, cs) -> None:
        """``thread`` was just popped from ``cs``'s runqueue.

        ``cs`` is duck-typed per-core scheduler state: ``runqueue``
        entries are ``[vruntime, seq, thread-or-None]`` and
        ``min_vruntime`` is the core's monotone floor.
        """
        if not self._sched:
            return
        self.checked["sched"] += 1
        v = thread.vruntime
        floor = cs.min_vruntime - config.SCHED_LATENCY_NS // 2
        if v < floor:
            self.violation(
                "sched", "fairness-floor", thread.name,
                f"picked vruntime {v} below the sleeper-fairness floor "
                f"{floor} (min_vruntime {cs.min_vruntime})",
            )
        weight = thread.weight
        spread_v = self._spread_wall_ns * NICE_0_WEIGHT // weight
        for entry in cs.runqueue:
            other = entry[2]
            if other is None or other.weight != weight:
                continue
            if entry[0] < v:
                self.violation(
                    "sched", "pick-is-min", thread.name,
                    f"picked vruntime {v} but same-weight {other.name} "
                    f"waits at {entry[0]}",
                )
            elif entry[0] - v > spread_v:
                self.violation(
                    "sched", "fairness-spread", thread.name,
                    f"same-weight runnable spread {entry[0] - v} "
                    f"(vs {other.name}) exceeds bound {spread_v}",
                )

    # ------------------------------------------------------------------ #
    # trylocks (core.trylock, bound at construction)
    # ------------------------------------------------------------------ #

    def on_lock_acquire(self, lock, owner) -> None:
        if not self._lock:
            return
        self.checked["lock"] += 1
        key = id(lock)
        if not any(known is lock for known in self._locks):
            self._locks.append(lock)
        prev = self._held.get(key)
        if prev is not None:
            self.violation(
                "lock", "mutual-exclusion", lock.name,
                f"{getattr(owner, 'name', owner)!s} acquired while "
                f"{getattr(prev[1], 'name', prev[1])!s} still holds it",
            )
        self._held[key] = (lock, owner)

    def on_lock_release(self, lock, owner) -> None:
        if not self._lock:
            return
        self.checked["lock"] += 1
        held = self._held.pop(id(lock), None)
        if held is None:
            self.violation(
                "lock", "release-unheld", lock.name,
                f"{getattr(owner, 'name', owner)!s} released a lock the "
                "shadow map shows as free",
            )
        elif held[1] is not owner:
            self.violation(
                "lock", "release-by-owner", lock.name,
                f"{getattr(owner, 'name', owner)!s} released a lock held "
                f"by {getattr(held[1], 'name', held[1])!s}",
            )

    def on_lock_busy(self, lock, owner) -> None:
        """A trylock failed; someone must actually be holding it."""
        if not self._lock:
            return
        self.checked["lock"] += 1
        if id(lock) not in self._held:
            self.violation(
                "lock", "busy-without-holder", lock.name,
                f"{getattr(owner, 'name', owner)!s} saw the lock busy "
                "but the shadow map shows it free",
            )

    # ------------------------------------------------------------------ #
    # NIC (RxQueue, self-registered at construction via sim.monitor)
    # ------------------------------------------------------------------ #

    def register_queue(self, queue) -> None:
        if self._nic:
            self._queues.append(queue)

    def on_ring(self, queue) -> None:
        """Cheap per-sync bounds check on the descriptor ring."""
        if not self._nic:
            return
        self.checked["nic"] += 1
        ring = queue.ring
        occ = ring.occupancy
        if occ < 0 or occ > ring.capacity:
            self.violation(
                "nic", "ring-bounds", f"rxq{queue.index}",
                f"occupancy {occ} outside [0, {ring.capacity}]",
            )
        elif ring.max_occupancy > ring.capacity:
            self.violation(
                "nic", "ring-bounds", f"rxq{queue.index}",
                f"max occupancy {ring.max_occupancy} exceeds capacity "
                f"{ring.capacity}",
            )

    # ------------------------------------------------------------------ #
    # end-of-run invariants
    # ------------------------------------------------------------------ #

    def quiesce(self, consumed: Optional[int] = None) -> List[Violation]:
        """Run the end-state checks; returns violations added here.

        * every registered queue conserves packets:
          ``arrived == popped + dropped + in-flight``;
        * no lock is held by a thread that cannot release it (a run cut
          off mid-drain legitimately leaves the drainer holding its
          lock — but a sleeping or dead holder can never release);
        * with ``consumed`` given (the workload's popped-packet count),
          the queues' pop totals match it exactly.
        """
        start = len(self.violations)
        if self._lock:
            held = sorted(self._held.values(),
                          key=lambda lo: getattr(lo[0], "name", ""))
            for lock, owner in held:
                self.checked["lock"] += 1
                state = getattr(owner, "state", None)
                if state not in (ThreadState.RUNNING, ThreadState.RUNNABLE):
                    self.violation(
                        "lock", "eventually-released", lock.name,
                        f"still held at quiesce by "
                        f"{getattr(owner, 'name', owner)!s} in state "
                        f"{state} (cannot ever release)",
                    )
        if self._nic:
            popped = 0
            for q in self._queues:
                q.sync()
                ring = q.ring
                self.checked["nic"] += 1
                popped += ring.head_seq
                accounted = ring.drops + ring.head_seq + ring.occupancy
                if q.arrived_total != accounted:
                    self.violation(
                        "nic", "conservation", f"rxq{q.index}",
                        f"arrived {q.arrived_total} != popped "
                        f"{ring.head_seq} + dropped {ring.drops} + "
                        f"in-flight {ring.occupancy}",
                    )
                if not 0 <= ring.occupancy <= ring.capacity:
                    self.violation(
                        "nic", "ring-bounds", f"rxq{q.index}",
                        f"occupancy {ring.occupancy} outside "
                        f"[0, {ring.capacity}] at quiesce",
                    )
            if consumed is not None and self._queues:
                self.checked["nic"] += 1
                if consumed != popped:
                    self.violation(
                        "nic", "delivered-matches-popped", "all-queues",
                        f"workload counted {consumed} packets but the "
                        f"rings gave out {popped}",
                    )
        return self.violations[start:]
