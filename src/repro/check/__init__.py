"""repro.check — runtime invariant monitors + model-vs-sim oracle.

Two complementary conformance layers (docs/CHECK.md):

* :class:`~repro.check.registry.CheckRegistry` — cheap runtime
  monitors hooked into the simulator core, the kernel model, the
  Metronome trylocks, and the NIC rings.  Install one with
  :meth:`Machine.enable_checks` *before* building a workload; every
  hook is dormant (``machine.checks is None``) otherwise, so runs
  without a registry are byte-identical to pre-check builds.
* :mod:`repro.check.oracle` — a differential oracle sweeping a
  (T_S, T_L, M, load) lattice and statistically comparing the simulator
  against the closed forms of :mod:`repro.core.model` under a
  declarative :class:`~repro.check.oracle.TolerancePolicy`.

Ships as ``repro check [--monitors|--oracle|--all]``.
"""

from repro.check.oracle import (
    DEFAULT_LATTICE,
    OracleReport,
    PointReport,
    TolerancePolicy,
    check_oracle_point,
    evaluate_point,
    run_oracle,
)
from repro.check.registry import MONITORS, CheckRegistry, Violation
from repro.check.runner import MonitorReport, run_monitors

__all__ = [
    "MONITORS",
    "CheckRegistry",
    "Violation",
    "TolerancePolicy",
    "DEFAULT_LATTICE",
    "PointReport",
    "OracleReport",
    "check_oracle_point",
    "evaluate_point",
    "run_oracle",
    "MonitorReport",
    "run_monitors",
]
