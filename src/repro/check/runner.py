"""The monitored scenario suite behind ``repro check --monitors``.

Each scenario builds a workload with every invariant monitor enabled
(:meth:`Machine.enable_checks` before construction, so the trylocks and
Rx queues bind to the live registry), runs it, quiesces, and reports the
registry's verdict.  The suite spans the code paths the monitors watch:
both sleep services, fixed and adaptive tuning, the starvation watchdog,
multi-queue Metronome, and the DPDK/XDP baselines.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro import config
from repro.sim.units import MS, US


def _metronome(seed: int, duration_ms: int, **kwargs):
    from repro.harness.experiment import run_metronome

    res = run_metronome(
        kwargs.pop("rate", config.LINE_RATE_PPS),
        duration_ms=duration_ms,
        cfg=config.SimConfig(seed=seed, os_noise=False),
        checks=True,
        **kwargs,
    )
    return res.machine.checks


def _adaptive_cbr(seed: int, duration_ms: int):
    """Line-rate CBR under the adaptive controller, M=2."""
    return _metronome(seed, duration_ms, num_threads=2)


def _poisson_fixed(seed: int, duration_ms: int):
    """Poisson line rate with fixed timeouts, M=3 (the Figure 5 setup)."""
    from repro.core.tuning import FixedTuner
    from repro.nic.traffic import PoissonProcess
    from repro.sim.rng import RandomStreams

    return _metronome(
        seed, duration_ms,
        rate=PoissonProcess(
            # repro: allow[P002] scenario driver, not an observer: the
            # monitored run's workload draws from its own named stream
            config.LINE_RATE_PPS, RandomStreams(seed).numpy_stream("check")
        ),
        tuner=FixedTuner(ts_ns=10 * US, tl_ns=500 * US),
        num_threads=3,
    )


def _nanosleep_low_rate(seed: int, duration_ms: int):
    """nanosleep service at low load: slack-stretched sleeps, idle cores."""
    return _metronome(
        seed, duration_ms,
        rate=200_000, sleep_service="nanosleep", num_threads=3,
    )


def _watchdog(seed: int, duration_ms: int):
    """Starvation watchdog armed at low rate, so its early wakes and
    timeout clamps exercise the sleep monitor's external-wake path."""
    from repro.core.metronome import WatchdogConfig

    return _metronome(
        seed, duration_ms,
        rate=500_000, num_threads=3,
        watchdog=WatchdogConfig(),
    )


def _two_queues(seed: int, duration_ms: int):
    """Two shared Rx queues, three threads: per-queue locks and
    conservation across a multi-queue scan."""
    from repro.core.metronome import MetronomeGroup
    from repro.harness.experiment import default_app
    from repro.kernel.machine import Machine
    from repro.nic.rxqueue import RxQueue
    from repro.nic.traffic import CbrProcess

    cfg = config.SimConfig(seed=seed, os_noise=False)
    machine = Machine(cfg)
    machine.enable_checks()
    queues = [
        RxQueue(machine.sim, CbrProcess(rate),
                ring_size=cfg.rx_ring_size,
                sample_every=cfg.latency_sample_every, index=i)
        for i, rate in enumerate((2_000_000, 4_000_000))
    ]
    group = MetronomeGroup(machine, queues, default_app(), num_threads=3)
    group.start()
    machine.run(until=duration_ms * MS)
    for q in queues:
        q.sync()
    machine.checks.quiesce(consumed=group.total_packets)
    return machine.checks


def _dpdk_baseline(seed: int, duration_ms: int):
    from repro.harness.experiment import run_dpdk

    res = run_dpdk(
        config.LINE_RATE_PPS, duration_ms=duration_ms,
        cfg=config.SimConfig(seed=seed, os_noise=False), checks=True,
    )
    return res.machine.checks


def _xdp_baseline(seed: int, duration_ms: int):
    from repro.harness.experiment import run_xdp

    res = run_xdp(
        4_000_000, duration_ms=duration_ms, num_queues=2,
        cfg=config.SimConfig(seed=seed, os_noise=False), checks=True,
    )
    return res.machine.checks


#: name → builder; every builder returns the post-quiesce registry
MONITORED_SCENARIOS: Dict[str, Callable] = {
    "metronome-adaptive-cbr": _adaptive_cbr,
    "metronome-poisson-fixed": _poisson_fixed,
    "metronome-nanosleep-low-rate": _nanosleep_low_rate,
    "metronome-watchdog": _watchdog,
    "metronome-two-queues": _two_queues,
    "dpdk-baseline": _dpdk_baseline,
    "xdp-baseline": _xdp_baseline,
}


@dataclass(frozen=True)
class ScenarioVerdict:
    """One monitored scenario's outcome."""

    name: str
    checked: int                  # total monitor observations
    violations: Tuple[str, ...]   # formatted, capped upstream

    @property
    def ok(self) -> bool:
        return not self.violations


@dataclass(frozen=True)
class MonitorReport:
    """The whole monitored suite's outcome."""

    verdicts: Tuple[ScenarioVerdict, ...]

    @property
    def ok(self) -> bool:
        return all(v.ok for v in self.verdicts)

    @property
    def total_checked(self) -> int:
        return sum(v.checked for v in self.verdicts)

    def render(self) -> str:
        lines = [
            f"invariant monitors: {len(self.verdicts)} scenario(s), "
            f"{self.total_checked:,} checks"
        ]
        for v in self.verdicts:
            state = "ok" if v.ok else f"{len(v.violations)} VIOLATION(S)"
            lines.append(f"  {v.name:32s} {v.checked:>12,d} checks  {state}")
            for msg in v.violations[:20]:
                lines.append("    " + msg)
        lines.append("verdict: " + ("PASS" if self.ok else "FAIL"))
        return "\n".join(lines)


def run_monitors(
    names: Optional[Sequence[str]] = None,
    seed: int = config.DEFAULT_SEED,
    duration_ms: int = 25,
    fast: bool = False,
) -> MonitorReport:
    """Run the monitored suite; ``fast`` shortens every run to 8 ms."""
    if names is None:
        names = tuple(MONITORED_SCENARIOS)
    unknown = sorted(set(names) - set(MONITORED_SCENARIOS))
    if unknown:
        raise ValueError(
            f"unknown scenario(s) {unknown}; "
            f"known: {list(MONITORED_SCENARIOS)}"
        )
    duration = 8 if fast else duration_ms
    verdicts: List[ScenarioVerdict] = []
    for name in names:
        registry = MONITORED_SCENARIOS[name](seed, duration)
        formatted = [v.format() for v in registry.violations]
        if registry.dropped:
            formatted.append(
                f"... and {registry.dropped} violation(s) past the cap"
            )
        verdicts.append(
            ScenarioVerdict(
                name=name,
                checked=registry.total_checked,
                violations=tuple(formatted),
            )
        )
    return MonitorReport(tuple(verdicts))
