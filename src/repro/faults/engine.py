"""The fault engine: arms a plan's injectors and answers kernel hooks.

Installed via :meth:`repro.kernel.machine.Machine.install_faults`.  The
kernel model consults the engine at three points:

* :meth:`timer_extra_latency_ns` — every hrtimer fire (timer_miss);
* :meth:`drop_wakeup` — every timer callback (lost_wakeup);
* :meth:`sleep_skew_ns` — every sleep arming (clock_drift).

Each hook sums/ORs over the injectors of its kind, so overlapping specs
compose.  Traffic-side injectors act on the
:class:`~repro.nic.traffic.FaultableProcess` wrappers registered through
:meth:`register_process`.

Fault activity is observable three ways: per-kind counters in the
machine's :class:`~repro.metrics.registry.MetricsRegistry`
(``faults.<kind>.episodes`` / ``faults.<kind>.events``), ``fault.*``
spans and instants in the tracer, and the per-injector ``active`` flags.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List

from repro.faults.injectors import INJECTOR_CLASSES, Injector
from repro.faults.plan import FaultPlan

if TYPE_CHECKING:
    import random

    from repro.kernel.machine import Machine
    from repro.nic.traffic import FaultableProcess


class FaultEngine:
    """Arms one injector per spec of ``plan`` on ``machine``."""

    def __init__(self, machine: "Machine", plan: FaultPlan):
        self.machine = machine
        self.plan = plan
        self._rngs: Dict[str, "random.Random"] = {}
        #: FaultableProcess wrappers the traffic injectors act on
        self.processes: List["FaultableProcess"] = []
        self.injectors: List[Injector] = [
            INJECTOR_CLASSES[spec.kind](self, spec) for spec in plan.specs
        ]
        self._by_kind: Dict[str, List[Injector]] = {}
        for inj in self.injectors:
            self._by_kind.setdefault(inj.kind, []).append(inj)
        self._started = False
        # eager counters so every kind in the plan is visible even with
        # zero events (the chaos report reads them unconditionally)
        reg = machine.metrics
        self._episode_counters = {
            kind: reg.counter(f"faults.{kind}.episodes")
            for kind in plan.kinds()
        }
        self._event_counters = {
            kind: reg.counter(f"faults.{kind}.events")
            for kind in plan.kinds()
        }

    # ------------------------------------------------------------------ #

    def stream(self, kind: str):
        """The shared per-kind RNG stream (``faults.<kind>``)."""
        rng = self._rngs.get(kind)
        if rng is None:
            rng = self.machine.streams.stream(f"faults.{kind}")
            self._rngs[kind] = rng
        return rng

    def start(self) -> None:
        """Schedule every injector's window edges (idempotent guard)."""
        if self._started:
            raise RuntimeError("fault engine already started")
        self._started = True
        for inj in self.injectors:
            inj.start()

    def register_process(self, process: "FaultableProcess") -> None:  # noqa: F821
        """Expose a traffic process to microburst/pause injectors."""
        self.processes.append(process)

    def last_episode_end_ns(self) -> int:
        """When the final fault window closes (recovery clock zero)."""
        return self.plan.last_fault_end_ns()

    def snapshot_state(self) -> dict:
        """Checkpoint fingerprint: per-kind counters + active windows."""
        kinds = sorted(self.plan.kinds())
        return {
            "plan": self.plan.to_dict(),
            "started": self._started,
            "episodes": {k: self.episodes(k) for k in kinds},
            "events": {k: self.events(k) for k in kinds},
            "active": [
                [i, inj.kind] for i, inj in enumerate(self.injectors)
                if getattr(inj, "active", False)
            ],
        }

    # -- bookkeeping (called by injectors) ------------------------------- #

    def note_episode(self, kind: str) -> None:
        self._episode_counters[kind].inc()

    def note_event(self, kind: str, **args) -> None:
        self._event_counters[kind].inc()
        tracer = self.machine.tracer
        if tracer.enabled:
            tracer.fault_event(kind, **args)

    def episodes(self, kind: str) -> int:
        c = self._episode_counters.get(kind)
        return c.value if c is not None else 0

    def events(self, kind: str) -> int:
        c = self._event_counters.get(kind)
        return c.value if c is not None else 0

    # -- kernel hooks ---------------------------------------------------- #
    # Hot paths guard with `machine.faults is not None` before calling,
    # so a machine without an engine never pays these sums.

    def timer_extra_latency_ns(self, core_index: int) -> int:
        """Extra interrupt-delivery latency for a timer firing now."""
        total = 0
        for inj in self._by_kind.get("timer_miss", ()):
            total += inj.extra_latency_ns(core_index)
        return total

    def drop_wakeup(self, core_index: int) -> bool:
        """True if the expiry callback about to run must be dropped."""
        for inj in self._by_kind.get("lost_wakeup", ()):
            if inj.drop(core_index):
                return True
        return False

    def sleep_skew_ns(self, duration_ns: int) -> int:
        """Expiry overshoot for a sleep of ``duration_ns`` armed now."""
        total = 0
        for inj in self._by_kind.get("clock_drift", ()):
            total += inj.skew_ns(duration_ns)
        return total
