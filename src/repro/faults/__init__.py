"""Fault injection and chaos testing for the Metronome testbed.

The subsystem has three layers:

* :mod:`repro.faults.plan` — declarative :class:`FaultSpec` /
  :class:`FaultPlan` schedules (what goes wrong, when, how hard) plus
  the shipped adversarial scenarios (:data:`SHIPPED_PLANS`);
* :mod:`repro.faults.engine` / :mod:`repro.faults.injectors` — the
  :class:`FaultEngine` installed on a machine via
  ``machine.install_faults(plan)``, which arms one injector per spec and
  answers the kernel model's fault hooks;
* :mod:`repro.faults.chaos` — the chaos harness: run a Metronome
  deployment under a plan with the graceful-degradation path enabled
  (starvation watchdog + tuner overload mode) and check the recovery /
  bounded-loss / no-starvation invariants.

Determinism: every injector draws exclusively from dedicated
``faults.<kind>`` RNG streams, so a machine with no engine — or an
engine holding an empty plan — is byte-identical to a pre-faults build
(common-random-numbers discipline; see DESIGN.md).
"""

from repro.faults.chaos import ChaosResult, run_chaos
from repro.faults.engine import FaultEngine
from repro.faults.plan import SHIPPED_PLANS, FaultPlan, FaultSpec

__all__ = [
    "FaultSpec",
    "FaultPlan",
    "SHIPPED_PLANS",
    "FaultEngine",
    "ChaosResult",
    "run_chaos",
]
