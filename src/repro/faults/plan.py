"""Declarative fault schedules.

A :class:`FaultSpec` describes one adversarial condition — its kind, the
window during which it is armed, its intensity, and which cores it
targets.  A :class:`FaultPlan` bundles specs with the invariants a run
under that plan must still satisfy (loss ceiling, starvation bound,
recovery bound).  Plans are plain data: they can round-trip through JSON
(``to_dict``/``from_dict``) so scenarios can be shipped as files and fed
to ``repro chaos --plan-file``.

Kinds and how ``magnitude`` / ``duration_ns`` / ``probability`` read:

=============  ======================================================
kind           semantics
=============  ======================================================
timer_miss     each hrtimer fire is delivered late by
               ``magnitude × U(0.5, 1.5)`` ns, with ``probability``
               per fire (hrtimer-miss / IRQ-storm delivery delay)
irq_storm      repeating IRQ bursts steal a ``magnitude`` fraction of
               the targeted cores (burst every ``period_ns``; burst
               length ``duration_ns`` or ``period_ns × magnitude``)
core_stall     an SMI-style freeze of ``duration_ns`` on each targeted
               core at window start, repeating every ``period_ns`` if
               one is given
antagonist     a CPU-hog thread is spawned on each targeted core for
               the whole window
microburst     a CBR overlay of ``magnitude`` pps rides on top of the
               registered traffic (``period_ns``/``duration_ns``
               chop the window into on/off episodes)
pause          NIC flow-control: arrivals are held and released in one
               slug (same episode chopping as microburst)
lost_wakeup    each timer callback is dropped with ``probability``
               (the wakeup race the backup timeout guards against)
clock_drift    the sleep timebase runs slow: every sleep overshoots by
               ``duration × magnitude`` (deterministic, no RNG)
=============  ======================================================
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Dict, Tuple

from repro.sim.units import MS, US

#: every fault kind the engine knows how to inject
FAULT_KINDS = (
    "timer_miss",
    "irq_storm",
    "core_stall",
    "antagonist",
    "microburst",
    "pause",
    "lost_wakeup",
    "clock_drift",
)

#: kinds whose episodes touch the traffic processes rather than cores
TRAFFIC_KINDS = ("microburst", "pause")


@dataclass(frozen=True)
class FaultSpec:
    """One scheduled adversarial condition (see module table)."""

    kind: str
    start_ns: int
    end_ns: int
    period_ns: int = 0
    duration_ns: int = 0
    magnitude: float = 1.0
    cores: Tuple[int, ...] = ()
    probability: float = 1.0

    def __post_init__(self):
        if self.kind not in FAULT_KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}")
        if self.start_ns < 0 or self.end_ns <= self.start_ns:
            raise ValueError("need 0 <= start_ns < end_ns")
        if self.period_ns < 0 or self.duration_ns < 0:
            raise ValueError("period/duration must be >= 0")
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError("probability must be in [0, 1]")
        if self.magnitude < 0:
            raise ValueError("magnitude must be >= 0")
        if self.kind == "irq_storm" and not 0.0 < self.magnitude < 1.0:
            if self.duration_ns == 0:
                raise ValueError(
                    "irq_storm needs magnitude in (0,1) or an explicit "
                    "duration_ns"
                )
        if self.kind == "core_stall" and self.duration_ns == 0:
            raise ValueError("core_stall needs duration_ns")
        if self.kind == "irq_storm" and self.period_ns == 0:
            raise ValueError("irq_storm needs period_ns")
        # frozen dataclass: normalize cores through object.__setattr__
        object.__setattr__(self, "cores", tuple(self.cores))


@dataclass(frozen=True)
class FaultPlan:
    """A named bundle of fault specs plus the survival invariants.

    ``loss_ceiling`` is the tolerated packet-loss fraction over the
    whole run; ``starvation_bound_ns`` bounds the head-of-line age any
    queue may reach; ``recovery_bound_ns`` bounds how long after the
    *last* fault window closes the watchdog may stay escalated.
    """

    name: str
    specs: Tuple[FaultSpec, ...] = ()
    loss_ceiling: float = 1.0
    starvation_bound_ns: int = 10 * MS
    recovery_bound_ns: int = 5 * MS
    description: str = ""

    def __post_init__(self):
        if not self.name:
            raise ValueError("plan needs a name")
        if not 0.0 <= self.loss_ceiling <= 1.0:
            raise ValueError("loss_ceiling must be in [0, 1]")
        if self.starvation_bound_ns <= 0 or self.recovery_bound_ns <= 0:
            raise ValueError("bounds must be positive")
        object.__setattr__(self, "specs", tuple(self.specs))

    def last_fault_end_ns(self) -> int:
        """When the final fault window closes (0 for an empty plan)."""
        return max((s.end_ns for s in self.specs), default=0)

    def first_fault_start_ns(self) -> int:
        """When the earliest fault window opens (0 for an empty plan).

        The anchor for ``repro chaos --checkpoint-before-fault``: a
        checkpoint just before this instant captures the entire healthy
        prefix of the run.
        """
        return min((s.start_ns for s in self.specs), default=0)

    def kinds(self) -> Tuple[str, ...]:
        """Distinct kinds present, in first-appearance order."""
        seen = []
        for s in self.specs:
            if s.kind not in seen:
                seen.append(s.kind)
        return tuple(seen)

    # -- JSON round-trip ------------------------------------------------- #

    def to_dict(self) -> Dict:
        d = asdict(self)
        d["specs"] = [asdict(s) for s in self.specs]
        return d

    @classmethod
    def from_dict(cls, d: Dict) -> "FaultPlan":
        specs = tuple(FaultSpec(**s) for s in d.get("specs", ()))
        fields = {k: v for k, v in d.items() if k != "specs"}
        return cls(specs=specs, **fields)


# --------------------------------------------------------------------- #
# shipped adversarial scenarios
#
# All sized for the chaos harness default of a 40 ms run: fault windows
# open at 5 ms and close by 24 ms, so the back half of the run exercises
# recovery.  Bounds are calibrated against the shipped harness defaults
# (2 threads, ~40% offered load) across seeds {7, 42, 2020}.
# --------------------------------------------------------------------- #

def _plans() -> Dict[str, FaultPlan]:
    plans = [
        FaultPlan(
            name="timer-misses",
            description="hrtimer interrupts delivered ~150 us late",
            specs=(
                FaultSpec(
                    kind="timer_miss",
                    start_ns=5 * MS,
                    end_ns=20 * MS,
                    magnitude=150 * US,
                    probability=0.7,
                ),
            ),
            loss_ceiling=0.05,
            starvation_bound_ns=4 * MS,
            recovery_bound_ns=5 * MS,
        ),
        FaultPlan(
            name="irq-storm",
            description="IRQ bursts steal half of every Metronome core",
            specs=(
                FaultSpec(
                    kind="irq_storm",
                    start_ns=5 * MS,
                    end_ns=20 * MS,
                    period_ns=100 * US,
                    magnitude=0.5,
                ),
            ),
            loss_ceiling=0.05,
            starvation_bound_ns=4 * MS,
            recovery_bound_ns=5 * MS,
        ),
        FaultPlan(
            name="core-stalls",
            description="repeating 300 us SMI-style freezes",
            specs=(
                FaultSpec(
                    kind="core_stall",
                    start_ns=5 * MS,
                    end_ns=20 * MS,
                    period_ns=2 * MS,
                    duration_ns=300 * US,
                ),
            ),
            loss_ceiling=0.05,
            starvation_bound_ns=4 * MS,
            recovery_bound_ns=5 * MS,
        ),
        FaultPlan(
            name="antagonist",
            description="CPU-hog threads compete on every Metronome core",
            specs=(
                FaultSpec(
                    kind="antagonist",
                    start_ns=5 * MS,
                    end_ns=20 * MS,
                ),
            ),
            loss_ceiling=0.10,
            starvation_bound_ns=6 * MS,
            recovery_bound_ns=6 * MS,
        ),
        FaultPlan(
            name="microburst",
            description="2 Mpps overlay bursts + a NIC pause episode",
            specs=(
                FaultSpec(
                    kind="microburst",
                    start_ns=5 * MS,
                    end_ns=17 * MS,
                    period_ns=3 * MS,
                    duration_ns=500 * US,
                    magnitude=2_000_000,
                ),
                FaultSpec(
                    kind="pause",
                    start_ns=18 * MS,
                    end_ns=24 * MS,
                    period_ns=2 * MS,
                    duration_ns=400 * US,
                ),
            ),
            loss_ceiling=0.10,
            starvation_bound_ns=4 * MS,
            recovery_bound_ns=5 * MS,
        ),
        FaultPlan(
            name="lost-wakeups",
            description="30% of timer wakeups silently dropped",
            specs=(
                FaultSpec(
                    kind="lost_wakeup",
                    start_ns=5 * MS,
                    end_ns=20 * MS,
                    probability=0.3,
                ),
            ),
            loss_ceiling=0.05,
            starvation_bound_ns=4 * MS,
            recovery_bound_ns=5 * MS,
        ),
        FaultPlan(
            name="clock-drift",
            description="sleep timebase runs 10% slow",
            specs=(
                FaultSpec(
                    kind="clock_drift",
                    start_ns=1 * MS,
                    end_ns=24 * MS,
                    magnitude=0.10,
                ),
            ),
            loss_ceiling=0.02,
            starvation_bound_ns=3 * MS,
            recovery_bound_ns=5 * MS,
        ),
        FaultPlan(
            name="perfect-storm",
            description="timer misses + IRQ storm + microburst together",
            specs=(
                FaultSpec(
                    kind="timer_miss",
                    start_ns=5 * MS,
                    end_ns=18 * MS,
                    magnitude=100 * US,
                    probability=0.5,
                ),
                FaultSpec(
                    kind="irq_storm",
                    start_ns=8 * MS,
                    end_ns=20 * MS,
                    period_ns=100 * US,
                    magnitude=0.35,
                ),
                FaultSpec(
                    kind="microburst",
                    start_ns=10 * MS,
                    end_ns=22 * MS,
                    period_ns=4 * MS,
                    duration_ns=400 * US,
                    magnitude=1_500_000,
                ),
            ),
            loss_ceiling=0.15,
            starvation_bound_ns=6 * MS,
            recovery_bound_ns=6 * MS,
        ),
    ]
    return {p.name: p for p in plans}


#: the shipped adversarial scenarios, by name
SHIPPED_PLANS: Dict[str, FaultPlan] = _plans()
