"""The chaos harness: run Metronome under a fault plan, check survival.

:func:`run_chaos` builds the standard adversarial deployment — a CBR
source, the fault engine armed with the plan, the starvation watchdog,
and an :class:`~repro.core.tuning.AdaptiveTuner` with overload mode —
runs it, and evaluates the plan's three invariants:

* **bounded loss** — end-to-end loss stays under the plan's ceiling;
* **no starvation** — no queue's head-of-line age ever exceeds the
  plan's starvation bound (as sampled by the watchdog);
* **recovery** — once the last fault window closes, the watchdog
  disengages within the plan's recovery bound and is clear at run end.

Everything is deterministic per ``(plan, seed)``: injectors draw only
from their ``faults.*`` streams, so re-running a scenario reproduces the
exact same episode timeline and verdict.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional

from repro import config
from repro.core.metronome import WatchdogConfig
from repro.core.tuning import AdaptiveTuner
from repro.faults.plan import FaultPlan
from repro.sim.units import MS

if TYPE_CHECKING:  # pragma: no cover — avoids a cycle with the harness
    from repro.harness.experiment import MetronomeRunResult
    from repro.sim.snapshot import MachineState


@dataclass
class ChaosResult:
    """Verdict of one chaos run (see module docstring for invariants)."""

    plan_name: str
    seed: int
    duration_ns: int
    offered: int
    delivered: int
    drops: int
    loss_fraction: float
    #: worst head-of-line age the watchdog observed (ns)
    max_head_age_ns: int
    #: watchdog escalations / early wakes issued
    escalations: int
    watchdog_wakes: int
    #: ns between the last fault window closing and the watchdog
    #: clearing; 0 if it never engaged (or cleared before the window
    #: closed), None if it was still engaged when the run ended
    recovery_ns: Optional[int]
    #: times the tuner entered overload mode
    overload_entries: int
    #: injector activity per kind: {kind: (episodes, events)}
    fault_activity: Dict[str, tuple]
    #: human-readable invariant violations (empty → scenario survived)
    violations: List[str] = field(default_factory=list)
    #: formatted ``repro.check`` monitor violations (only populated when
    #: the run was made with ``checks=True``); kept separate from the
    #: chaos invariants above — ``ok`` judges survival, not conformance
    monitor_violations: List[str] = field(default_factory=list)
    result: Optional["MetronomeRunResult"] = field(default=None, repr=False)
    #: mid-run machine snapshot (only when ``checkpoint_at_ns`` was
    #: given); the replay-debugging anchor for ``repro chaos
    #: --checkpoint-before-fault``
    checkpoint: Optional["MachineState"] = field(default=None, repr=False)

    @property
    def ok(self) -> bool:
        return not self.violations


def run_chaos(
    plan: FaultPlan,
    seed: int = config.DEFAULT_SEED,
    duration_ms: int = 40,
    rate_pps: int = 2_000_000,
    num_threads: int = 2,
    trace: bool = False,
    watchdog: Optional[WatchdogConfig] = None,
    keep_result: bool = False,
    checks: bool = False,
    checkpoint_at_ns: Optional[int] = None,
) -> ChaosResult:
    """Run one adversarial scenario and evaluate its invariants.

    ``checkpoint_at_ns`` snapshots the machine once at that virtual
    time (pure — the verdict is unchanged); the state comes back as
    ``ChaosResult.checkpoint``.  Snapshot just before
    ``plan.first_fault_start_ns()`` to pin the healthy prefix for
    replay debugging.
    """
    # imported here, not at module top: the harness itself imports
    # repro.faults.plan, so a top-level import would be circular
    from repro.harness.experiment import run_metronome

    cfg = config.SimConfig(seed=seed)
    watchdog = watchdog or WatchdogConfig()
    tuner = AdaptiveTuner(
        vbar_ns=cfg.vbar_ns,
        tl_ns=cfg.tl_ns,
        m=num_threads,
        alpha=cfg.alpha,
        initial_rho=0.5,
        overload_enter=0.95,
    )
    result = run_metronome(
        rate_pps,
        duration_ms=duration_ms,
        cfg=cfg,
        tuner=tuner,
        num_threads=num_threads,
        cores=list(range(num_threads)),
        trace=trace,
        fault_plan=plan,
        watchdog=watchdog,
        checks=checks,
        checkpoint_at_ns=checkpoint_at_ns,
    )
    group = result.group
    machine = result.machine
    engine = machine.faults
    monitor_violations: List[str] = []
    if machine.checks is not None:
        monitor_violations = [v.format() for v in machine.checks.violations]

    violations: List[str] = []
    loss = result.loss_fraction
    if loss > plan.loss_ceiling:
        violations.append(
            f"loss {loss:.4f} exceeds ceiling {plan.loss_ceiling:.4f}"
        )
    max_age = group.watchdog_max_age_ns
    if max_age > plan.starvation_bound_ns:
        violations.append(
            f"head-of-line age {max_age / MS:.2f} ms exceeds starvation "
            f"bound {plan.starvation_bound_ns / MS:.2f} ms"
        )
    last_end = plan.last_fault_end_ns()
    recovery_ns: Optional[int] = 0
    if group.watchdog_engaged:
        recovery_ns = None
        violations.append("watchdog still engaged at run end")
    elif group.watchdog_last_clear_ns is not None:
        recovery_ns = max(0, group.watchdog_last_clear_ns - last_end)
        if recovery_ns > plan.recovery_bound_ns:
            violations.append(
                f"watchdog cleared {recovery_ns / MS:.2f} ms after the last "
                f"fault window, bound {plan.recovery_bound_ns / MS:.2f} ms"
            )

    activity = {
        kind: (engine.episodes(kind), engine.events(kind))
        for kind in plan.kinds()
    }
    return ChaosResult(
        plan_name=plan.name,
        seed=seed,
        duration_ns=result.duration_ns,
        offered=result.offered,
        delivered=result.delivered,
        drops=result.drops,
        loss_fraction=loss,
        max_head_age_ns=max_age,
        escalations=group.watchdog_escalations,
        watchdog_wakes=group.watchdog_wakes,
        recovery_ns=recovery_ns,
        overload_entries=tuner.overload_entries,
        fault_activity=activity,
        violations=violations,
        monitor_violations=monitor_violations,
        result=result if keep_result else None,
        checkpoint=result.checkpoint,
    )
