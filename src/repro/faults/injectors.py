"""One injector class per fault kind.

Each injector owns a single :class:`~repro.faults.plan.FaultSpec` and is
armed by the :class:`~repro.faults.engine.FaultEngine`: begin/end
callbacks are scheduled at the spec's window edges, the injector flips
``active`` and runs its kind-specific machinery in between.

Two families:

* **hook injectors** (timer_miss, lost_wakeup, clock_drift) are passive:
  the kernel model consults them through the engine's hook API on every
  timer fire / wakeup / sleep arming;
* **event injectors** (irq_storm, core_stall, antagonist, microburst,
  pause) schedule their own simulator events — IRQ bursts, SMI stalls,
  hog threads, traffic edges.

All randomness comes from the engine's per-kind ``faults.<kind>``
streams, never from any other subsystem's stream.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List

from repro.faults.plan import FaultSpec
from repro.kernel.thread import Compute, Exit

if TYPE_CHECKING:  # pragma: no cover
    from repro.faults.engine import FaultEngine


class Injector:
    """Base: window arming, core targeting, begin/end tracing."""

    kind = "?"

    def __init__(self, engine: "FaultEngine", spec: FaultSpec):
        self.engine = engine
        self.spec = spec
        self.machine = engine.machine
        self.sim = engine.machine.sim
        self.rng = engine.stream(self.kind)
        self.active = False

    def start(self) -> None:
        self.sim.call_at(self.spec.start_ns, self._begin)
        self.sim.call_at(self.spec.end_ns, self._end)

    # -- window edges ---------------------------------------------------- #

    def _begin(self) -> None:
        self.active = True
        self.engine.note_episode(self.kind)
        tracer = self.machine.tracer
        if tracer.enabled:
            tracer.fault_begin(self.kind, magnitude=self.spec.magnitude)
        self.on_begin()

    def _end(self) -> None:
        self.active = False
        tracer = self.machine.tracer
        if tracer.enabled:
            tracer.fault_end(self.kind)
        self.on_end()

    def on_begin(self) -> None:
        """Kind-specific window-open behaviour."""

    def on_end(self) -> None:
        """Kind-specific window-close behaviour."""

    # -- targeting ------------------------------------------------------- #

    def target_cores(self) -> List[int]:
        """Core indexes this spec applies to (empty spec → all cores)."""
        if self.spec.cores:
            return list(self.spec.cores)
        return list(range(len(self.machine.cores)))

    def matches_core(self, core_index: int) -> bool:
        return not self.spec.cores or core_index in self.spec.cores


# --------------------------------------------------------------------- #
# hook injectors
# --------------------------------------------------------------------- #


class TimerMissInjector(Injector):
    """Late delivery of hrtimer interrupts (hrtimer-miss / IRQ storm)."""

    kind = "timer_miss"

    def extra_latency_ns(self, core_index: int) -> int:
        if not self.active or not self.matches_core(core_index):
            return 0
        if self.rng.random() >= self.spec.probability:
            return 0
        extra = int(self.spec.magnitude * self.rng.uniform(0.5, 1.5))
        if extra > 0:
            self.engine.note_event(self.kind, core=core_index, extra=extra)
        return extra


class LostWakeupInjector(Injector):
    """Timer callbacks silently dropped (the lost-wakeup race)."""

    kind = "lost_wakeup"

    def drop(self, core_index: int) -> bool:
        if not self.active or not self.matches_core(core_index):
            return False
        if self.rng.random() >= self.spec.probability:
            return False
        self.engine.note_event(self.kind, core=core_index)
        return True


class ClockDriftInjector(Injector):
    """The sleep timebase runs slow by a fixed fraction (no RNG)."""

    kind = "clock_drift"

    def skew_ns(self, duration_ns: int) -> int:
        if not self.active:
            return 0
        skew = int(duration_ns * self.spec.magnitude)
        if skew > 0:
            self.engine.note_event(self.kind, skew=skew)
        return skew


# --------------------------------------------------------------------- #
# event injectors
# --------------------------------------------------------------------- #


class IrqStormInjector(Injector):
    """Repeating IRQ bursts stealing CPU from the targeted cores."""

    kind = "irq_storm"

    def on_begin(self) -> None:
        self._tick()

    def _tick(self) -> None:
        if not self.active:
            return
        spec = self.spec
        burst = spec.duration_ns or int(spec.period_ns * spec.magnitude)
        for idx in self.target_cores():
            # ±10% jitter so the storm does not phase-lock with timers
            stolen = max(1, int(burst * self.rng.uniform(0.9, 1.1)))
            self.machine.cores[idx].inject_irq_time(stolen)
            self.engine.note_event(self.kind, core=idx, stolen=stolen)
        self.sim.call_after(spec.period_ns, self._tick)


class CoreStallInjector(Injector):
    """SMI-style freezes: the core executes nothing for the stall."""

    kind = "core_stall"

    def on_begin(self) -> None:
        self._stall()

    def _stall(self) -> None:
        if not self.active:
            return
        for idx in self.target_cores():
            self.machine.cores[idx].smi_stall(self.spec.duration_ns)
            self.engine.note_event(
                self.kind, core=idx, stall=self.spec.duration_ns
            )
        if self.spec.period_ns > 0:
            self.sim.call_after(self.spec.period_ns, self._stall)


class AntagonistInjector(Injector):
    """Best-effort CPU hogs competing with Metronome for the cores."""

    kind = "antagonist"

    #: each hog computes in ~50 us chunks, like a batch job between
    #: involuntary context switches
    CHUNK_NS = 50_000

    def on_begin(self) -> None:
        for idx in self.target_cores():
            self.machine.spawn(
                self._hog_body(),
                name=f"antagonist-{idx}",
                core=idx,
            )
            self.engine.note_event(self.kind, core=idx)

    def _hog_body(self):
        while self.active:
            yield Compute(
                max(1, int(self.CHUNK_NS * self.rng.uniform(0.9, 1.1)))
            )
        yield Exit()


class _TrafficInjector(Injector):
    """Shared machinery for microburst/pause: the window is either one
    long episode or chopped into ``duration_ns``-long episodes every
    ``period_ns``."""

    def on_begin(self) -> None:
        if self.spec.period_ns > 0 and self.spec.duration_ns > 0:
            self._episode_on()
        else:
            self._apply(True)

    def on_end(self) -> None:
        self._apply(False)

    def _episode_on(self) -> None:
        if not self.active:
            return
        self._apply(True)
        self.sim.call_after(self.spec.duration_ns, self._episode_off)

    def _episode_off(self) -> None:
        self._apply(False)
        if self.active:
            gap = self.spec.period_ns - self.spec.duration_ns
            self.sim.call_after(max(1, gap), self._episode_on)

    def _apply(self, on: bool) -> None:
        raise NotImplementedError


class MicroburstInjector(_TrafficInjector):
    """A CBR overlay of ``magnitude`` pps on the registered traffic."""

    kind = "microburst"

    def _apply(self, on: bool) -> None:
        rate = int(self.spec.magnitude) if on else 0
        now = self.sim.now
        for fp in self.engine.processes:
            fp.checkpoint(now)
            fp.set_burst(rate)
        if on:
            self.engine.note_event(self.kind, rate=rate)


class PauseInjector(_TrafficInjector):
    """NIC flow-control pause: hold arrivals, release in one slug."""

    kind = "pause"

    def _apply(self, on: bool) -> None:
        now = self.sim.now
        for fp in self.engine.processes:
            fp.checkpoint(now)
            fp.set_paused(on)
        if on:
            self.engine.note_event(self.kind)


#: kind → injector class
INJECTOR_CLASSES = {
    cls.kind: cls
    for cls in (
        TimerMissInjector,
        LostWakeupInjector,
        ClockDriftInjector,
        IrqStormInjector,
        CoreStallInjector,
        AntagonistInjector,
        MicroburstInjector,
        PauseInjector,
    )
}
