"""Metronome's analytical model (paper §4.2, §4.3, Appendix C).

All formulas take times in any consistent unit (the library uses ns) and
are pure functions, so the same code drives both the runtime controller
(:mod:`repro.core.tuning`) and the model-vs-simulation validation bench
(Figure 5).

Equation map:

* eq. (3)  → :func:`busy_given_vacation`
* eq. (4)  → :func:`rho_from_periods`
* eq. (5)  → :func:`cdf_vacation`
* eq. (6)  → :func:`mean_vacation_high_load`
* eq. (7)  → :func:`prob_backup_success`
* eq. (8)  → :func:`cdf_vacation` with ``tl == ts`` and M competitors
* eq. (9)  → :func:`pdf_vacation`
* eq. (12) → :func:`ts_for_target_vacation`
* eq. (13) → :func:`mean_vacation_general`
* Appendix C exact integral → :func:`mean_vacation_general_exact`
"""

from __future__ import annotations


def _check_common(ts: float, tl: float, m: int) -> None:
    if ts <= 0 or tl <= 0:
        raise ValueError("timeouts must be positive")
    if tl < ts:
        raise ValueError("T_L must be >= T_S")
    if m < 1:
        raise ValueError("M must be >= 1")


def busy_given_vacation(vacation: float, rho: float) -> float:
    """E[B|V] = V·ρ/(1−ρ)  (eq. 3).

    The mean busy period needed to drain what accumulated during a
    vacation of length V plus what keeps arriving meanwhile; requires a
    stable system (ρ < 1).
    """
    if not 0 <= rho < 1:
        raise ValueError(f"rho={rho} must be in [0, 1)")
    return vacation * rho / (1.0 - rho)


def rho_from_periods(busy: float, vacation: float) -> float:
    """ρ = B/(V+B)  (eq. 4): the observable load estimate."""
    if busy < 0 or vacation < 0:
        raise ValueError("periods must be non-negative")
    total = busy + vacation
    if total == 0:
        return 0.0
    return busy / total


def cdf_vacation(x: float, ts: float, tl: float, m: int) -> float:
    """P(V ≤ x) at high load  (eq. 5).

    One primary thread with timeout T_S; M−1 backups whose wakeups are
    uniform over (0, T_L] by the decorrelation assumption.  Setting
    ``tl == ts`` with ``m`` *competitors* gives the low-load CDF (eq. 8)
    — pass ``m = M + 1`` in that reading, since eq. 5's ``m`` counts the
    primary plus M−1 backups.
    """
    _check_common(ts, tl, m)
    if x < 0:
        return 0.0
    if x >= ts:
        return 1.0
    return 1.0 - (1.0 - x / tl) ** (m - 1)


def pdf_vacation(x: float, ts: float, tl: float, m: int) -> float:
    """dP(V ≤ x)/dx for x < T_S  (eq. 9); the Figure 5 density.

    Note the distribution has an atom at x = T_S (the primary's own
    timeout) of mass (1 − T_S/T_L)^(M−1); this function returns only
    the continuous part.
    """
    _check_common(ts, tl, m)
    if x < 0 or x >= ts:
        return 0.0
    return (m - 1) / tl * (1.0 - x / tl) ** (m - 2)


def cdf_vacation_general(
    x: float, ts: float, tl: float, m: int, p: float
) -> float:
    """P(V ≤ x) in the mixed regime — the Appendix C integrand.

    Each of the M−1 competitors is primary (wake uniform over T_S) with
    probability p, backup (uniform over T_L) otherwise, and the serving
    thread's own timeout truncates the race at T_S:

        P(V > x) = (1 − p·x/T_S − (1−p)·x/T_L)^(M−1)  for x < T_S.

    At p = 0 this reduces to eq. 5; integrating the survival over
    (0, T_S] recovers :func:`mean_vacation_general_exact`.
    """
    _check_common(ts, tl, m)
    if not 0.0 <= p <= 1.0:
        raise ValueError(f"p={p} outside [0,1]")
    if x < 0:
        return 0.0
    if x >= ts:
        return 1.0
    return 1.0 - (1.0 - p * x / ts - (1.0 - p) * x / tl) ** (m - 1)


def vacation_atom_at_ts(ts: float, tl: float, m: int) -> float:
    """P(V = T_S): probability no backup precedes the primary."""
    _check_common(ts, tl, m)
    return (1.0 - ts / tl) ** (m - 1)


def mean_vacation_high_load(ts: float, tl: float, m: int) -> float:
    """E[V] = (T_L/M)·(1 − (1 − T_S/T_L)^M)  (eq. 6)."""
    _check_common(ts, tl, m)
    return tl / m * (1.0 - (1.0 - ts / tl) ** m)


def mean_vacation_low_load(ts: float, m: int) -> float:
    """E[V] = T_S/M: all M threads primary with timeout T_S (§4.2.3)."""
    if ts <= 0 or m < 1:
        raise ValueError("bad parameters")
    return ts / m


def prob_backup_success(ts: float, tl: float, m: int) -> float:
    """P(some backup wins the race)  — eq. 7 as printed integrates one
    backup's wakeup density against the others staying away:

        ∫₀^Ts (1/T_L)(1 − x/T_L)^(M−2) dx, summed over the M−1 backups,
        giving  1 − (1 − T_S/T_L)^(M−1).

    (The extraction of eq. 7 in the paper text garbles the closed form;
    this is the value of the printed integral multiplied by M−1, i.e.
    the probability that at least one backup fires inside T_S, which is
    also 1 − the atom of eq. 5 — self-consistent with the CDF.)
    """
    _check_common(ts, tl, m)
    if m == 1:
        return 0.0
    return 1.0 - (1.0 - ts / tl) ** (m - 1)


def mean_vacation_general_exact(ts: float, tl: float, m: int, p: float) -> float:
    """Appendix C exact integral:

        E[V] = ∫₀^Ts (1 − p·x/T_S − (1−p)·x/T_L)^(M−1) dx
             = (1 − ((1−p)(1 − T_S/T_L))^M) / (M (p/T_S + (1−p)/T_L))

    where p is the probability a non-serving thread is primary.  (The
    published text transposes T_S and T_L in the denominator — a typo:
    the printed form does not recover T_S/M at p=1.  The version here is
    the correct antiderivative; tests verify it against numerical
    integration and both limits.)
    """
    _check_common(ts, tl, m)
    if not 0.0 <= p <= 1.0:
        raise ValueError(f"p={p} outside [0,1]")
    denom = m * (p / ts + (1.0 - p) / tl)
    if denom == 0:
        raise ValueError("degenerate parameters")
    return (1.0 - ((1.0 - p) * (1.0 - ts / tl)) ** m) / denom


def mean_vacation_general(ts: float, m: int, p: float) -> float:
    """T_L ≫ T_S approximation (eq. 13):

        E[V] = (T_S/M) · (1 − (1−p)^M)/p

    with the p→0 limit equal to T_S (high load) and T_S/M at p=1.
    """
    if ts <= 0 or m < 1:
        raise ValueError("bad parameters")
    if not 0.0 <= p <= 1.0:
        raise ValueError(f"p={p} outside [0,1]")
    if p == 0.0:
        return ts
    return ts / m * (1.0 - (1.0 - p) ** m) / p


def prob_vacation_exceeds(x: float, ts: float, tl: float, m: int) -> float:
    """P(V > x) under the high-load model, including the atom at T_S."""
    _check_common(ts, tl, m)
    if x < 0:
        return 1.0
    if x >= ts:
        return 0.0
    return (1.0 - x / tl) ** (m - 1)


def ring_overflow_probability(
    ring_size: int, lam_pps: float, ts_ns: float, tl_ns: float, m: int,
    wake_overhead_ns: float = 0.0,
) -> float:
    """P(a renewal cycle overflows the Rx ring).

    During a vacation the backlog grows at λ; a cycle loses packets when
    λ·(V + wake overhead) exceeds the free descriptors.  This couples
    the §4.2 vacation model to Table 2/3's loss columns: with
    ``hr_sleep`` the overhead is a few µs and the probability is ~0 for
    V̄ = 10 µs on a 1024 ring; with ``nanosleep``'s ~58 µs overhead the
    effective vacation crosses the ring bound and loss appears.
    """
    if ring_size <= 0 or lam_pps <= 0:
        raise ValueError("ring and rate must be positive")
    # vacation length that fills the ring
    v_critical = ring_size / lam_pps * 1e9 - wake_overhead_ns
    if v_critical <= 0:
        return 1.0
    return prob_vacation_exceeds(v_critical, ts_ns, tl_ns, m)


def ts_for_target_vacation(vbar: float, m: int, rho: float) -> float:
    """The adaptive T_S rule (eq. 12):

        T_S = M·(1−ρ)/(1−ρ^M) · V̄  =  V̄·M / (1 + ρ + ... + ρ^(M−1))

    Continuous in ρ on [0, 1]: the ρ→1 limit is V̄ (high load) and the
    ρ=0 value is M·V̄ (low load), i.e. eq. 11's two extremes.
    """
    if vbar <= 0 or m < 1:
        raise ValueError("bad parameters")
    rho = min(max(rho, 0.0), 1.0)
    geometric = sum(rho ** k for k in range(m))
    return vbar * m / geometric
