"""Load estimation and timeout adaptation (paper §4.3).

:class:`AdaptiveTuner` implements the paper's controller:

* after every renewal cycle, update the load estimate with the EWMA of
  eq. (10):   ρ(i) = (1−α)·ρ(i−1) + α·B(i)/(V(i)+B(i));
* derive the short timeout from eq. (12):
  T_S = M·(1−ρ)/(1−ρ^M)·V̄, so the *achieved* mean vacation stays pinned
  at the target V̄ across the whole load range.

:class:`FixedTuner` serves the parameter-sweep experiments that study a
constant T_S (Figures 5, 7, 8).
"""

from __future__ import annotations

from typing import Callable, List, Optional, Tuple

from repro.core.cycles import CycleRecord
from repro.core.model import rho_from_periods, ts_for_target_vacation


class TunerBase:
    """Interface shared by adaptive and fixed timeout policies."""

    def observe(self, record: CycleRecord) -> None:
        """Feed one completed renewal cycle."""

    def ts_ns(self) -> int:
        """Current short (primary) timeout."""
        raise NotImplementedError

    def tl_ns(self) -> int:
        """Current long (backup) timeout."""
        raise NotImplementedError

    @property
    def rho(self) -> float:
        """Current load estimate (0 when the policy does not estimate)."""
        return 0.0


class FixedTuner(TunerBase):
    """Constant T_S/T_L, no adaptation."""

    def __init__(self, ts_ns: int, tl_ns: int):
        if ts_ns <= 0 or tl_ns <= 0:
            raise ValueError("timeouts must be positive")
        self._ts = ts_ns
        self._tl = tl_ns

    def ts_ns(self) -> int:
        return self._ts

    def tl_ns(self) -> int:
        return self._tl


class AdaptiveTuner(TunerBase):
    """The paper's EWMA + eq. 12 controller targeting a constant V̄.

    **Overload mode** (opt-in, for the graceful-degradation path): when
    the load estimate stays at or above ``overload_enter`` for
    ``overload_hold_cycles`` consecutive cycles — the controller's
    equilibrium is gone, e.g. under an IRQ storm or an antagonist
    stealing the cores — T_S collapses to ``overload_ts_ns`` so wakeups
    come as fast as the sleep service allows and the backlog drains.
    Recovery is hysteretic: overload only lifts once ρ falls back to
    ``overload_exit``, well below the entry threshold, so the tuner
    cannot flap at the boundary.  ``overload_enter=None`` (the default)
    disables the mode entirely and the controller is byte-identical to
    the pre-faults behaviour.
    """

    def __init__(
        self,
        vbar_ns: int,
        tl_ns: int,
        m: int,
        alpha: float = 0.125,
        initial_rho: float = 0.0,
        record_history: bool = False,
        overload_enter: Optional[float] = None,
        overload_exit: float = 0.85,
        overload_hold_cycles: int = 8,
        overload_ts_ns: Optional[int] = None,
        on_overload: Optional[Callable[[bool, float], None]] = None,
    ):
        if vbar_ns <= 0 or tl_ns <= 0:
            raise ValueError("timeouts must be positive")
        if m < 1:
            raise ValueError("M must be >= 1")
        if not 0.0 < alpha <= 1.0:
            raise ValueError("alpha must be in (0, 1]")
        if overload_enter is not None:
            if not 0.0 < overload_enter <= 1.0:
                raise ValueError("overload_enter must be in (0, 1]")
            if not 0.0 < overload_exit < overload_enter:
                raise ValueError(
                    "overload_exit must be below overload_enter (hysteresis)"
                )
            if overload_hold_cycles < 1:
                raise ValueError("overload_hold_cycles must be >= 1")
        self.vbar_ns = vbar_ns
        self._tl = tl_ns
        self.m = m
        self.alpha = alpha
        self._rho = min(max(initial_rho, 0.0), 1.0)
        self.cycles_observed = 0
        self.history: Optional[List[Tuple[int, float, int]]] = (
            [] if record_history else None
        )
        self.overload_enter = overload_enter
        self.overload_exit = overload_exit
        self.overload_hold_cycles = overload_hold_cycles
        self.overload_ts_ns = (
            overload_ts_ns if overload_ts_ns is not None
            else max(1_000, vbar_ns // 4)
        )
        self.on_overload = on_overload
        self.in_overload = False
        self.overload_entries = 0
        self._consec_high = 0

    @property
    def rho(self) -> float:
        return self._rho

    def observe(self, record: CycleRecord) -> None:
        sample = rho_from_periods(record.busy_ns, record.vacation_ns)
        self._rho = (1.0 - self.alpha) * self._rho + self.alpha * sample
        self.cycles_observed += 1
        if self.overload_enter is not None:
            self._update_overload()
        if self.history is not None:
            self.history.append((record.start_ns, self._rho, self.ts_ns()))

    def _update_overload(self) -> None:
        if not self.in_overload:
            if self._rho >= self.overload_enter:
                self._consec_high += 1
                if self._consec_high >= self.overload_hold_cycles:
                    self.in_overload = True
                    self.overload_entries += 1
                    if self.on_overload is not None:
                        self.on_overload(True, self._rho)
            else:
                self._consec_high = 0
        elif self._rho <= self.overload_exit:
            self.in_overload = False
            self._consec_high = 0
            if self.on_overload is not None:
                self.on_overload(False, self._rho)

    def ts_ns(self) -> int:
        if self.in_overload:
            return min(self.overload_ts_ns, self._tl)
        ts = ts_for_target_vacation(self.vbar_ns, self.m, self._rho)
        # never sleep longer than the backup timeout
        return min(int(ts), self._tl)

    def tl_ns(self) -> int:
        return self._tl
