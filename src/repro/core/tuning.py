"""Load estimation and timeout adaptation (paper §4.3).

:class:`AdaptiveTuner` implements the paper's controller:

* after every renewal cycle, update the load estimate with the EWMA of
  eq. (10):   ρ(i) = (1−α)·ρ(i−1) + α·B(i)/(V(i)+B(i));
* derive the short timeout from eq. (12):
  T_S = M·(1−ρ)/(1−ρ^M)·V̄, so the *achieved* mean vacation stays pinned
  at the target V̄ across the whole load range.

:class:`FixedTuner` serves the parameter-sweep experiments that study a
constant T_S (Figures 5, 7, 8).
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.core.cycles import CycleRecord
from repro.core.model import rho_from_periods, ts_for_target_vacation


class TunerBase:
    """Interface shared by adaptive and fixed timeout policies."""

    def observe(self, record: CycleRecord) -> None:
        """Feed one completed renewal cycle."""

    def ts_ns(self) -> int:
        """Current short (primary) timeout."""
        raise NotImplementedError

    def tl_ns(self) -> int:
        """Current long (backup) timeout."""
        raise NotImplementedError

    @property
    def rho(self) -> float:
        """Current load estimate (0 when the policy does not estimate)."""
        return 0.0


class FixedTuner(TunerBase):
    """Constant T_S/T_L, no adaptation."""

    def __init__(self, ts_ns: int, tl_ns: int):
        if ts_ns <= 0 or tl_ns <= 0:
            raise ValueError("timeouts must be positive")
        self._ts = ts_ns
        self._tl = tl_ns

    def ts_ns(self) -> int:
        return self._ts

    def tl_ns(self) -> int:
        return self._tl


class AdaptiveTuner(TunerBase):
    """The paper's EWMA + eq. 12 controller targeting a constant V̄."""

    def __init__(
        self,
        vbar_ns: int,
        tl_ns: int,
        m: int,
        alpha: float = 0.125,
        initial_rho: float = 0.0,
        record_history: bool = False,
    ):
        if vbar_ns <= 0 or tl_ns <= 0:
            raise ValueError("timeouts must be positive")
        if m < 1:
            raise ValueError("M must be >= 1")
        if not 0.0 < alpha <= 1.0:
            raise ValueError("alpha must be in (0, 1]")
        self.vbar_ns = vbar_ns
        self._tl = tl_ns
        self.m = m
        self.alpha = alpha
        self._rho = min(max(initial_rho, 0.0), 1.0)
        self.cycles_observed = 0
        self.history: Optional[List[Tuple[int, float, int]]] = (
            [] if record_history else None
        )

    @property
    def rho(self) -> float:
        return self._rho

    def observe(self, record: CycleRecord) -> None:
        sample = rho_from_periods(record.busy_ns, record.vacation_ns)
        self._rho = (1.0 - self.alpha) * self._rho + self.alpha * sample
        self.cycles_observed += 1
        if self.history is not None:
            self.history.append((record.start_ns, self._rho, self.ts_ns()))

    def ts_ns(self) -> int:
        ts = ts_for_target_vacation(self.vbar_ns, self.m, self._rho)
        # never sleep longer than the backup timeout
        return min(int(ts), self._tl)

    def tl_ns(self) -> int:
        return self._tl
