"""The user-space trylock guarding each shared Rx queue (paper §3.2).

Built on an atomic compare-and-swap in the real system (x86 CMPXCHG);
in simulated time the whole simulation is sequential, so atomicity is
inherent — what the model adds is the *cost* asymmetry (an uncontended
CAS vs. a contended cache-line bounce; charged by the caller via
:func:`TryLock.acquire_cost_ns`) and the ownership/statistics semantics
the Metronome loop relies on.
"""

from __future__ import annotations

from typing import Optional

from repro import config
from repro.trace.tracer import NULL_TRACER


class TryLock:
    """Non-blocking mutual exclusion for one Rx queue.

    ``tracer`` (optional) records every attempt's outcome; the owner
    object passed to :meth:`try_acquire` must then be a KThread-like
    object (``tid``/``name``/``core``) for the event to be attributed.
    """

    def __init__(self, name: str = "rxq-lock", tracer=None, checks=None):
        self.name = name
        self.tracer = NULL_TRACER if tracer is None else tracer
        #: optional repro.check registry; an independent witness of the
        #: lock's state transitions (the lock's own raises catch caller
        #: misuse, the monitor catches bookkeeping corruption)
        self.checks = checks
        self.owner: Optional[object] = None
        self.acquisitions = 0
        #: failed acquisition attempts ("busy tries", Figures 7-8)
        self.busy_tries = 0

    def try_acquire(self, owner: object) -> bool:
        """CMPXCHG(lock, 0, 1): True iff ownership was obtained."""
        if owner is None:
            raise ValueError("owner must be a real object")
        if self.owner is None:
            self.owner = owner
            self.acquisitions += 1
            if self.tracer.enabled:
                self.tracer.trylock(owner, self.name, acquired=True)
            if self.checks is not None:
                self.checks.on_lock_acquire(self, owner)
            return True
        if self.owner is owner:
            raise RuntimeError(f"{owner!r} re-acquiring lock it already holds")
        self.busy_tries += 1
        if self.tracer.enabled:
            self.tracer.trylock(owner, self.name, acquired=False)
        if self.checks is not None:
            self.checks.on_lock_busy(self, owner)
        return False

    def release(self, owner: object) -> None:
        """Release; only the owner may unlock."""
        if self.owner is not owner:
            raise RuntimeError(
                f"{owner!r} releasing lock owned by {self.owner!r}"
            )
        if self.checks is not None:
            self.checks.on_lock_release(self, owner)
        self.owner = None

    @property
    def held(self) -> bool:
        return self.owner is not None

    @staticmethod
    def acquire_cost_ns(success: bool) -> int:
        """CPU cost of the attempt: a contended CAS pays the cache-line
        bounce on top of the instruction itself."""
        return config.TRYLOCK_NS if success else config.TRYLOCK_CONTENDED_NS

    def __repr__(self) -> str:
        state = f"held by {self.owner!r}" if self.held else "free"
        return f"<TryLock {self.name}: {state}>"
