"""Renewal-cycle accounting (paper §4, Figure 3).

Metronome's timeline on each Rx queue alternates **vacation periods**
V(i) — nobody holds the queue, arrivals pile up in the ring — and
**busy periods** B(i) — the trylock winner drains the ring until empty.
The tracker lives in the per-queue shared state: the winner reads the
previous release timestamp to measure V(i), counts N_V(i) (the backlog
found on arrival), and on release reports the completed cycle to the
tuner.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional


@dataclass(frozen=True)
class CycleRecord:
    """One completed renewal cycle on one queue."""

    start_ns: int          # when the busy period began (lock acquired)
    vacation_ns: int       # V(i): time the queue sat unattended before it
    busy_ns: int           # B(i): lock hold time
    n_vacation: int        # N_V(i): backlog found at acquisition
    n_busy: int            # N_B(i): packets that arrived during service
    thread_name: str       # who served it

    @property
    def total_ns(self) -> int:
        return self.vacation_ns + self.busy_ns

    @property
    def utilization_sample(self) -> float:
        """B/(V+B): the instantaneous ρ observation of eq. (4)."""
        if self.total_ns == 0:
            return 0.0
        return self.busy_ns / self.total_ns


class CycleStats:
    """Aggregates cycle records for one queue (bounded memory optional)."""

    def __init__(self, keep_records: bool = True, max_records: int = 2_000_000):
        self.keep_records = keep_records
        self.max_records = max_records
        self.records: List[CycleRecord] = []
        self.count = 0
        self._sum_v = 0
        self._sum_b = 0
        self._sum_nv = 0

    def add(self, record: CycleRecord) -> None:
        self.count += 1
        self._sum_v += record.vacation_ns
        self._sum_b += record.busy_ns
        self._sum_nv += record.n_vacation
        if self.keep_records and len(self.records) < self.max_records:
            self.records.append(record)

    def mean_vacation_ns(self) -> float:
        if self.count == 0:
            raise ValueError("no cycles recorded")
        return self._sum_v / self.count

    def mean_busy_ns(self) -> float:
        if self.count == 0:
            raise ValueError("no cycles recorded")
        return self._sum_b / self.count

    def mean_n_vacation(self) -> float:
        if self.count == 0:
            raise ValueError("no cycles recorded")
        return self._sum_nv / self.count

    def vacations_ns(self) -> List[int]:
        return [r.vacation_ns for r in self.records]


class QueueCycleTracker:
    """Per-queue shared state measuring V(i)/B(i)/N_V(i) on the fly."""

    def __init__(self, start_ns: int = 0):
        #: timestamp of the last lock release (end of last busy period)
        self.last_release_ns: Optional[int] = start_ns
        self._busy_start: Optional[int] = None
        self._vacation: int = 0
        self._n_vacation: int = 0
        self._n_total: int = 0

    def begin_busy(self, now: int, backlog: int) -> int:
        """Winner acquired the lock; returns the measured vacation V(i)."""
        if self._busy_start is not None:
            raise RuntimeError("busy period already in progress")
        self._busy_start = now
        self._vacation = now - (self.last_release_ns or 0)
        self._n_vacation = backlog
        self._n_total = 0
        return self._vacation

    def note_packets(self, n: int) -> None:
        """Record packets retrieved during the current busy period."""
        if self._busy_start is None:
            raise RuntimeError("no busy period in progress")
        self._n_total += n

    def end_busy(self, now: int, thread_name: str) -> CycleRecord:
        """Lock released; returns the completed cycle record."""
        if self._busy_start is None:
            raise RuntimeError("no busy period in progress")
        busy = now - self._busy_start
        record = CycleRecord(
            start_ns=self._busy_start,
            vacation_ns=self._vacation,
            busy_ns=busy,
            n_vacation=self._n_vacation,
            n_busy=max(0, self._n_total - self._n_vacation),
            thread_name=thread_name,
        )
        self._busy_start = None
        self.last_release_ns = now
        return record
