"""Metronome: the paper's primary contribution.

* :mod:`repro.core.trylock` — the CMPXCHG-based non-blocking queue lock.
* :mod:`repro.core.cycles` — renewal-cycle accounting: vacation periods
  V(i), busy periods B(i), N_V(i) (paper §4, Figure 3).
* :mod:`repro.core.tuning` — the ρ EWMA estimator (eq. 10) and the
  load-adaptive T_S rule (eqs. 11–12).
* :mod:`repro.core.metronome` — the sleep&wake thread loop (Listing 2)
  and :class:`MetronomeGroup`, which deploys M threads over shared Rx
  queues.
* :mod:`repro.core.model` — the closed-form analytical model
  (eqs. 3–9, 12, 13), used both by the controller and for
  model-vs-simulation validation (Figure 5).
"""

from repro.core.cycles import CycleRecord, CycleStats
from repro.core.metronome import MetronomeGroup, MetronomeThreadStats
from repro.core.model import (
    busy_given_vacation,
    cdf_vacation,
    mean_vacation_general,
    mean_vacation_general_exact,
    mean_vacation_high_load,
    mean_vacation_low_load,
    pdf_vacation,
    prob_backup_success,
    rho_from_periods,
    ts_for_target_vacation,
)
from repro.core.trylock import TryLock
from repro.core.tuning import AdaptiveTuner, FixedTuner

__all__ = [
    "TryLock",
    "CycleRecord",
    "CycleStats",
    "MetronomeGroup",
    "MetronomeThreadStats",
    "AdaptiveTuner",
    "FixedTuner",
    "busy_given_vacation",
    "rho_from_periods",
    "cdf_vacation",
    "pdf_vacation",
    "mean_vacation_high_load",
    "mean_vacation_low_load",
    "mean_vacation_general",
    "mean_vacation_general_exact",
    "prob_backup_success",
    "ts_for_target_vacation",
]
