"""The Metronome thread loop and group orchestration (paper §3.2, Listing 2).

M threads share a set of Rx queues.  Each thread, in an infinite loop:

1. scans every queue, attempting its trylock;
2. on success, drains the queue burst-by-burst until empty, measuring
   the renewal cycle (V, B, N_V) against the queue's shared tracker,
   then releases the lock;
3. sleeps — ``T_S`` if it served at least one queue this round
   (primary), ``T_L`` otherwise (backup) — via the configured sleep
   service (the paper's hr_sleep() or stock nanosleep()).

The timeout values come from a tuner: fixed for the parameter-sweep
experiments, or the adaptive eq.-12 controller targeting a constant
vacation period V̄.

Two robustness mechanisms ride on top of the paper's loop:

* **rotating queue scan** — each thread starts its scan at
  ``(thread_index + iteration) % num_queues`` instead of always at
  queue 0, so no queue is structurally served last by every thread
  (with a single queue the rotation is the identity);
* an opt-in **starvation watchdog** (:class:`WatchdogConfig`): a
  periodic check of head-of-line age and ring occupancy that, past its
  bounds, early-wakes every sleeping thread in the group and clamps the
  timeouts until the backlog clears — the graceful-degradation path
  exercised by the fault-injection harness.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro import config
from repro.core.cycles import CycleStats, QueueCycleTracker
from repro.core.trylock import TryLock
from repro.core.tuning import AdaptiveTuner, TunerBase
from repro.dpdk.app import PacketApp
from repro.kernel.machine import Machine
from repro.kernel.sleep import SleepService
from repro.kernel.thread import Compute, Exit, KThread, ThreadState
from repro.metrics.latency import LatencyStats
from repro.nic.rxqueue import RxQueue
from repro.nic.txqueue import TxBuffer


@dataclass(frozen=True)
class WatchdogConfig:
    """Bounds for the per-queue starvation watchdog.

    Every ``period_ns`` the group checks each shared queue; if the
    oldest sampled packet has waited longer than ``max_age_ns`` or the
    ring holds more than ``max_occupancy`` descriptors, the watchdog
    *escalates*: it wakes every sleeping thread of the group (spurious
    wakes are safe — the scheduler records a pending wake) and clamps
    both timeouts to ``clamp_ts_ns`` until a later check finds all
    queues back inside bounds.
    """

    period_ns: int = 100_000
    max_age_ns: int = 1_000_000
    max_occupancy: int = 768
    clamp_ts_ns: int = 2_000

    def __post_init__(self):
        if self.period_ns <= 0 or self.clamp_ts_ns <= 0:
            raise ValueError("watchdog periods must be positive")
        if self.max_age_ns <= 0 or self.max_occupancy <= 0:
            raise ValueError("watchdog bounds must be positive")


@dataclass
class MetronomeThreadStats:
    """Per-thread counters surfaced by the experiments."""

    name: str
    iterations: int = 0
    busy_tries: int = 0
    primary_rounds: int = 0    # rounds that ended with the short timeout
    backup_rounds: int = 0     # rounds that ended with the long timeout
    packets: int = 0


class _SharedQueue:
    """Everything M threads share about one Rx queue."""

    def __init__(self, machine: Machine, queue: RxQueue, tx_batch: int):
        self.queue = queue
        #: NUMA node the queue's ring/mbuf memory lives on; threads on a
        #: different socket pay remote-access surcharges when draining
        self.node = getattr(queue, "node", 0)
        self.lock = TryLock(name=f"rxq{queue.index}", tracer=machine.tracer,
                            checks=machine.checks)
        self.tracker = QueueCycleTracker(start_ns=machine.sim.now)
        self.cycles = CycleStats()
        self.txbuf = TxBuffer(machine.sim, batch_threshold=tx_batch)
        tracer = machine.tracer
        if tracer.enabled:
            self.txbuf.on_flush = (
                lambda sent, q=queue.index: tracer.tx_flush(q, sent)
            )


class MetronomeGroup:
    """Deploys M Metronome threads over shared Rx queues."""

    def __init__(
        self,
        machine: Machine,
        queues: List[RxQueue],
        app: PacketApp,
        tuner: Optional[TunerBase] = None,
        sleep_service: str = "hr_sleep",
        num_threads: Optional[int] = None,
        cores: Optional[List[int]] = None,
        nice: int = 0,
        burst: Optional[int] = None,
        tx_batch: Optional[int] = None,
        iterations: Optional[int] = None,
        flush_before_sleep: bool = False,
        name: str = "metronome",
        rotate_scan: bool = True,
        watchdog: Optional[WatchdogConfig] = None,
    ):
        if not queues:
            raise ValueError("at least one queue required")
        cfg = machine.cfg
        self.machine = machine
        self.app = app
        self.m = num_threads if num_threads is not None else cfg.num_threads
        if self.m < 1:
            raise ValueError("need at least one thread")
        self.cores = cores if cores is not None else list(range(self.m))
        if len(self.cores) != self.m:
            raise ValueError("one core assignment per thread required")
        self.nice = nice
        self.burst = burst if burst is not None else cfg.rx_burst
        self.iterations = iterations
        self.flush_before_sleep = flush_before_sleep
        self.name = name
        self.tuner: TunerBase = tuner or AdaptiveTuner(
            vbar_ns=cfg.vbar_ns, tl_ns=cfg.tl_ns, m=self.m, alpha=cfg.alpha
        )
        tx_batch = tx_batch if tx_batch is not None else cfg.tx_batch
        self.shared: List[_SharedQueue] = [
            _SharedQueue(machine, q, tx_batch) for q in queues
        ]
        self.latency = LatencyStats()
        for sq in self.shared:
            sq.txbuf.on_tx = lambda pkt: self.latency.add(pkt.latency_ns)
        self.service: SleepService = machine.sleep_service(sleep_service)
        self.threads: List[KThread] = []
        self.thread_stats: List[MetronomeThreadStats] = []
        self.rotate_scan = rotate_scan
        self.watchdog = watchdog
        #: timeout clamp while the watchdog is escalated (None = off)
        self._ts_clamp_ns: Optional[int] = None
        self.watchdog_escalations = 0
        self.watchdog_wakes = 0
        #: worst head-of-line age the watchdog ever observed
        self.watchdog_max_age_ns = 0
        #: time the current escalation started (None when clear)
        self._engaged_since: Optional[int] = None
        #: time the last escalation cleared (chaos recovery metric)
        self.watchdog_last_clear_ns: Optional[int] = None
        self._register_metrics()

    def _register_metrics(self) -> None:
        """Publish the group's ad-hoc stats into the machine registry."""
        reg = self.machine.metrics
        prefix, n = self.name, 2
        while f"{prefix}.packets" in reg:  # second group with this name
            prefix = f"{self.name}.{n}"
            n += 1
        self.metrics_prefix = prefix
        reg.gauge(f"{prefix}.packets", fn=lambda: self.total_packets)
        reg.gauge(f"{prefix}.iterations", fn=lambda: self.total_iterations)
        reg.gauge(f"{prefix}.busy_tries", fn=lambda: self.busy_tries)
        reg.gauge(f"{prefix}.drops", fn=self.total_drops)
        for sq in self.shared:
            reg.gauge(
                reg.unique_name(f"rxq{sq.queue.index}.drops"),
                fn=lambda q=sq.queue: q.drops,
            )
        if self.watchdog is not None:
            reg.gauge(
                f"{prefix}.watchdog.escalations",
                fn=lambda: self.watchdog_escalations,
            )
            reg.gauge(
                f"{prefix}.watchdog.wakes", fn=lambda: self.watchdog_wakes
            )
            reg.gauge(
                f"{prefix}.watchdog.max_age_ns",
                fn=lambda: self.watchdog_max_age_ns,
            )
            self._engaged_hist = reg.histogram(
                f"{prefix}.watchdog.engaged_ns"
            )

    # ------------------------------------------------------------------ #

    def start(self) -> List[KThread]:
        """Spawn the M threads (idempotent guard: call once)."""
        if self.threads:
            raise RuntimeError("group already started")
        reg = self.machine.metrics
        for i in range(self.m):
            stats = MetronomeThreadStats(name=f"{self.name}-{i}")
            self.thread_stats.append(stats)
            for field_name in ("iterations", "busy_tries", "packets",
                               "primary_rounds", "backup_rounds"):
                reg.gauge(
                    f"{self.metrics_prefix}.{i}.{field_name}",
                    fn=lambda s=stats, f=field_name: getattr(s, f),
                )
            thread = self.machine.spawn(
                lambda kt, s=stats, idx=i: self._body(kt, s, idx),
                name=stats.name,
                nice=self.nice,
                core=self.cores[i],
            )
            self.threads.append(thread)
        if self.watchdog is not None:
            self.machine.sim.call_after(
                self.watchdog.period_ns, self._watchdog_check
            )
        return self.threads

    # ------------------------------------------------------------------ #
    # starvation watchdog (graceful degradation)
    # ------------------------------------------------------------------ #

    @property
    def watchdog_engaged(self) -> bool:
        return self._engaged_since is not None

    def _watchdog_check(self) -> None:
        wd = self.watchdog
        if self.all_done():
            if self._engaged_since is not None:
                self._watchdog_clear()
            return
        sim = self.machine.sim
        breached = None
        for sq in self.shared:
            age = sq.queue.head_age_ns()
            if age > self.watchdog_max_age_ns:
                self.watchdog_max_age_ns = age
            if age > wd.max_age_ns or sq.queue.occupancy() > wd.max_occupancy:
                if breached is None:
                    breached = (sq.queue.index, age, sq.queue.occupancy())
        if breached is not None:
            self._watchdog_escalate(*breached)
        elif self._engaged_since is not None:
            self._watchdog_clear()
        sim.call_after(wd.period_ns, self._watchdog_check)

    def _watchdog_escalate(self, queue_index: int, age: int, occ: int) -> None:
        self.watchdog_escalations += 1
        if self._engaged_since is None:
            self._engaged_since = self.machine.sim.now
        self._ts_clamp_ns = self.watchdog.clamp_ts_ns
        woken = 0
        for t in self.threads:
            if t.state is ThreadState.SLEEPING:
                t.wake()
                woken += 1
        self.watchdog_wakes += woken
        tracer = self.machine.tracer
        if tracer.enabled:
            tracer.watchdog_escalate(queue_index, age, occ, woken)

    def _watchdog_clear(self) -> None:
        engaged_ns = self.machine.sim.now - self._engaged_since
        self._engaged_since = None
        self._ts_clamp_ns = None
        self.watchdog_last_clear_ns = self.machine.sim.now
        self._engaged_hist.observe(engaged_ns)
        tracer = self.machine.tracer
        if tracer.enabled:
            tracer.watchdog_clear(engaged_ns)

    # ------------------------------------------------------------------ #

    def _body(self, kt: KThread, stats: MetronomeThreadStats, idx: int = 0):
        sim = self.machine.sim
        service = self.service
        tracer = self.machine.tracer
        cfg = self.machine.cfg
        nq = len(self.shared)
        # NUMA memory penalties per queue, aligned with self.shared:
        # (trylock, per-burst, per-packet) surcharges when the queue's
        # ring memory homes on a socket other than this thread's.  All
        # zero on the paper's single-node testbed, so the Compute sums
        # below are arithmetically identical to the pre-NUMA loop.
        my_node = kt.core.node
        penalties = [
            (0, 0, 0) if sq.node == my_node else (
                cfg.numa_remote_trylock_ns,
                cfg.numa_remote_burst_ns,
                cfg.numa_remote_pkt_ns,
            )
            for sq in self.shared
        ]
        while self.iterations is None or stats.iterations < self.iterations:
            stats.iterations += 1
            lock_taken = False
            if self.rotate_scan:
                # start the scan at a rotating offset so no queue is
                # structurally the last one every thread reaches
                off = (idx + stats.iterations) % nq
                order = [(off + k) % nq for k in range(nq)]
            else:
                order = range(nq)
            for qi in order:
                sq = self.shared[qi]
                t_extra, b_extra, p_extra = penalties[qi]
                yield Compute(config.TRYLOCK_NS + t_extra)
                if not sq.lock.try_acquire(kt):
                    stats.busy_tries += 1
                    yield Compute(
                        config.TRYLOCK_CONTENDED_NS - config.TRYLOCK_NS
                    )
                    continue
                lock_taken = True
                backlog = sq.queue.occupancy()
                sq.tracker.begin_busy(sim.now, backlog)
                if tracer.enabled:
                    tracer.drain_begin(kt, sq.queue.index, backlog)
                drained = 0
                while True:
                    n, tagged = sq.queue.rx_burst(self.burst)
                    if n == 0:
                        # the final poll that finds the queue drained
                        yield Compute(config.RX_POLL_EMPTY_NS)
                        break
                    stats.packets += n
                    drained += n
                    sq.tracker.note_packets(n)
                    will_flush = (
                        sq.txbuf.pending + n >= sq.txbuf.batch_threshold
                    )
                    cost = (
                        config.RX_BURST_FIXED_NS + self.app.batch_cost_ns(n)
                        + b_extra + n * p_extra
                    )
                    if will_flush:
                        cost += config.TX_FLUSH_NS
                    yield Compute(cost)
                    self.app.handle(tagged)
                    sq.txbuf.enqueue(n, tagged)
                if self.flush_before_sleep and sq.txbuf.pending:
                    sq.txbuf.flush()
                    yield Compute(config.TX_FLUSH_NS)
                record = sq.tracker.end_busy(sim.now, stats.name)
                sq.cycles.add(record)
                self.tuner.observe(record)
                if tracer.enabled:
                    tracer.drain_end(kt, sq.queue.index, drained)
                yield Compute(config.UNLOCK_NS)
                sq.lock.release(kt)

            if lock_taken:
                stats.primary_rounds += 1
                timeout = self.tuner.ts_ns()
            else:
                stats.backup_rounds += 1
                timeout = self.tuner.tl_ns()
            clamp = self._ts_clamp_ns
            if clamp is not None:
                # watchdog engaged: both roles wake at the clamped pace
                timeout = min(timeout, clamp)
            yield from service.call(kt, timeout)
        yield Exit()

    # ------------------------------------------------------------------ #
    # aggregate statistics
    # ------------------------------------------------------------------ #

    @property
    def busy_tries(self) -> int:
        return sum(s.busy_tries for s in self.thread_stats)

    @property
    def total_iterations(self) -> int:
        return sum(s.iterations for s in self.thread_stats)

    @property
    def total_packets(self) -> int:
        return sum(s.packets for s in self.thread_stats)

    def busy_try_fraction(self) -> float:
        """Failed trylocks / wake rounds — the Figures 7-8 metric."""
        rounds = self.total_iterations
        if rounds == 0:
            return 0.0
        return self.busy_tries / rounds

    def cycle_stats(self, queue_index: int = 0) -> CycleStats:
        return self.shared[queue_index].cycles

    def total_drops(self) -> int:
        return sum(sq.queue.drops for sq in self.shared)

    def loss_fraction(self) -> float:
        arrived = 0
        for sq in self.shared:
            sq.queue.sync()
            arrived += sq.queue.arrived_total
        if arrived == 0:
            return 0.0
        return self.total_drops() / arrived

    def cpu_time_ns(self) -> int:
        """getrusage-style CPU time of the group's threads."""
        return sum(t.cputime_ns for t in self.threads)

    def all_done(self) -> bool:
        return all(not t.is_alive() for t in self.threads)
