"""A single-producer/single-consumer ring (DPDK ``rte_ring`` SP/SC mode).

Used by FloWatcher's *pipeline* deployment (paper §5.7: "FloWatcher can
either act through a run to completion model or a pipeline one"): the
receiving thread enqueues packet references, a separate statistics
thread dequeues and accounts them.

The structure mirrors rte_ring: a power-of-two slot array with head and
tail indices; in SP/SC mode neither side needs atomics beyond the index
publication, which the simulator's sequential execution gives us for
free — what the model keeps is the *capacity semantics* (bounded, drop
or backpressure on full) and the batch enqueue/dequeue API.
"""

from __future__ import annotations

from typing import Any, List, Optional


class SpscRing:
    """Bounded FIFO with rte_ring-style bulk/burst operations."""

    def __init__(self, capacity: int = 1024):
        if capacity < 2 or capacity & (capacity - 1):
            raise ValueError("capacity must be a power of two >= 2")
        self.capacity = capacity
        self._mask = capacity - 1
        self._slots: List[Any] = [None] * capacity
        self._head = 0   # next slot to write (producer)
        self._tail = 0   # next slot to read (consumer)
        self.enqueued_total = 0
        self.dequeued_total = 0
        self.enqueue_failures = 0

    # ------------------------------------------------------------------ #

    @property
    def count(self) -> int:
        return self._head - self._tail

    @property
    def free(self) -> int:
        return self.capacity - self.count

    @property
    def empty(self) -> bool:
        return self._head == self._tail

    @property
    def full(self) -> bool:
        return self.count == self.capacity

    # ------------------------------------------------------------------ #

    def enqueue_burst(self, items: List[Any]) -> int:
        """Enqueue up to len(items); returns how many fit (rte_ring
        burst semantics — partial success allowed)."""
        n = min(len(items), self.free)
        for i in range(n):
            self._slots[(self._head + i) & self._mask] = items[i]
        self._head += n
        self.enqueued_total += n
        self.enqueue_failures += len(items) - n
        return n

    def enqueue_bulk(self, items: List[Any]) -> bool:
        """All-or-nothing enqueue (rte_ring bulk semantics)."""
        if len(items) > self.free:
            self.enqueue_failures += len(items)
            return False
        self.enqueue_burst(items)
        return True

    def dequeue_burst(self, max_items: int) -> List[Any]:
        """Dequeue up to ``max_items``."""
        if max_items < 0:
            raise ValueError("negative burst")
        n = min(max_items, self.count)
        out = []
        for i in range(n):
            idx = (self._tail + i) & self._mask
            out.append(self._slots[idx])
            self._slots[idx] = None
        self._tail += n
        self.dequeued_total += n
        return out

    def dequeue_one(self) -> Optional[Any]:
        items = self.dequeue_burst(1)
        return items[0] if items else None
