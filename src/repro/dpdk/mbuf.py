"""Packet-buffer (mbuf) pool accounting.

DPDK pre-allocates packet buffers from hugepage-backed mempools; the Rx
path takes buffers to refill descriptors and the Tx path returns them
after transmission.  We model the pool as a counter: exhaustion makes
``rx`` deliveries fail, which surfaces as drops — the same observable a
real application sees when it leaks or holds too many mbufs.
"""

from __future__ import annotations


class MbufPoolExhausted(RuntimeError):
    """Raised by :meth:`MbufPool.take_strict` when the pool is empty."""


class MbufPool:
    """A fixed-size buffer pool with take/give accounting."""

    def __init__(self, capacity: int = 8192):
        if capacity <= 0:
            raise ValueError("pool capacity must be positive")
        self.capacity = capacity
        self.available = capacity
        self.takes = 0
        self.gives = 0
        self.failures = 0

    def take(self, n: int) -> int:
        """Take up to ``n`` buffers; returns how many were granted."""
        if n < 0:
            raise ValueError("negative take")
        granted = min(n, self.available)
        self.available -= granted
        self.takes += granted
        if granted < n:
            self.failures += n - granted
        return granted

    def take_strict(self, n: int) -> None:
        """Take exactly ``n`` buffers or raise."""
        if n > self.available:
            self.failures += n
            raise MbufPoolExhausted(
                f"need {n} mbufs, only {self.available} available"
            )
        self.available -= n
        self.takes += n

    def give(self, n: int) -> None:
        """Return ``n`` buffers to the pool."""
        if n < 0:
            raise ValueError("negative give")
        if self.available + n > self.capacity:
            raise ValueError("returning more mbufs than were taken")
        self.available += n
        self.gives += n

    @property
    def in_use(self) -> int:
        return self.capacity - self.available
