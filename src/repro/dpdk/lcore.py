"""The classic DPDK polling lcore (paper Listing 1).

An lcore exclusively owns its Rx queues and scans them in an infinite
loop, burst after burst, whether or not traffic is arriving — the
behaviour responsible for the constant 100% CPU utilization Metronome
attacks.

Simulation note: per-poll events at 10 Gbps would be fine, but an *idle*
poller would generate one event per empty poll forever.  When a full
scan finds every queue empty, the loop busy-spins (still consuming CPU,
still preemptible) directly to the next packet arrival — see DESIGN.md
§4 "empty-poll fast-forward".
"""

from __future__ import annotations

from typing import List, Optional

from repro import config
from repro.dpdk.app import PacketApp
from repro.kernel.machine import Machine
from repro.kernel.thread import BusySpin, Compute, KThread
from repro.nic.rxqueue import RxQueue
from repro.nic.txqueue import TxBuffer
from repro.sim.units import MS, US

#: stale-Tx drain interval used by DPDK sample apps (BURST_TX_DRAIN_US)
TX_DRAIN_NS = 100 * US
#: bounded idle spin when no traffic source has a next arrival
IDLE_SPIN_NS = 10 * MS


class PollModeLcore:
    """One statically polling DPDK thread bound to a set of Rx queues."""

    def __init__(
        self,
        machine: Machine,
        queues: List[RxQueue],
        app: PacketApp,
        tx_buffers: Optional[List[TxBuffer]] = None,
        burst: int = config.RX_BURST,
        core: int = 0,
        nice: int = 0,
        name: str = "dpdk-lcore",
        mbuf_pool: Optional["MbufPool"] = None,  # noqa: F821
    ):
        if not queues:
            raise ValueError("an lcore needs at least one queue")
        self.machine = machine
        self.queues = queues
        self.app = app
        self.burst = burst
        self.tx_buffers = tx_buffers or [
            TxBuffer(machine.sim) for _ in queues
        ]
        if len(self.tx_buffers) != len(queues):
            raise ValueError("one Tx buffer per queue required")
        self.core = core
        self.nice = nice
        self.name = name
        self.polls = 0
        self.rx_packets = 0
        #: packets lost because the mbuf pool could not back them
        self.mbuf_drops = 0
        self._last_drain = 0
        self.thread: Optional[KThread] = None
        #: optional buffer-pool accounting: rx takes, tx flush returns
        self.mbuf_pool = mbuf_pool
        if mbuf_pool is not None:
            for txbuf in self.tx_buffers:
                txbuf.on_flush = mbuf_pool.give

    def start(self) -> KThread:
        """Spawn the polling thread."""
        self.thread = self.machine.spawn(
            self._body, name=self.name, nice=self.nice, core=self.core
        )
        return self.thread

    # ------------------------------------------------------------------ #

    def _body(self, kt: KThread):
        """The while(1) loop of Listing 1.

        Event-efficiency notes (behaviour-preserving, see DESIGN.md §4):
        the receive/process/enqueue costs of a burst are charged as a
        single Compute, and when a scan finds fewer packets than
        ``min_accum`` the loop busy-spins (full CPU, preemptible) to the
        instant enough packets accumulate — collapsing the sub-100 ns
        empty-poll churn a faster-than-wire poller produces into one
        event, at a sub-microsecond pacing granularity.
        """
        sim = self.machine.sim
        pairs = list(zip(self.queues, self.tx_buffers))
        min_accum = min(8, self.burst)
        while True:
            got = 0
            for queue, txbuf in pairs:
                n, tagged = queue.rx_burst(self.burst)
                self.polls += 1
                if n == 0:
                    yield Compute(config.RX_POLL_EMPTY_NS)
                    continue
                if self.mbuf_pool is not None:
                    # rx needs a buffer per packet; shortfall = drops
                    granted = self.mbuf_pool.take(n)
                    if granted < n:
                        self.mbuf_drops += n - granted
                        # the popped range is [head-n, head) in ring-seq
                        # space: keep the first `granted` packets of it
                        keep_below = queue.ring.head_seq - n + granted
                        tagged = [p for p in tagged if p.ring_seq < keep_below]
                        n = granted
                        if n == 0:
                            yield Compute(config.RX_POLL_EMPTY_NS)
                            continue
                got += n
                self.rx_packets += n
                will_flush = txbuf.pending + n >= txbuf.batch_threshold
                cost = config.RX_BURST_FIXED_NS + self.app.batch_cost_ns(n)
                if will_flush:
                    cost += config.TX_FLUSH_NS
                yield Compute(cost)
                self.app.handle(tagged)
                txbuf.enqueue(n, tagged)

            now = sim.now
            if now - self._last_drain >= TX_DRAIN_NS:
                self._last_drain = now
                for _queue, txbuf in pairs:
                    if txbuf.pending:
                        txbuf.flush()
                        yield Compute(config.TX_FLUSH_NS)

            if got < min_accum:
                # thin scan: spin forward until a fuller burst is waiting
                target = self._next_wakeup(sim.now, min_accum - got)
                if target > sim.now:
                    yield BusySpin(target)

    def _next_wakeup(self, now: int, needed: int) -> int:
        candidates = []
        for queue in self.queues:
            when = queue.process.time_for_count(now, needed)
            if when is not None:
                candidates.append(when)
        if any(tx.pending for tx in self.tx_buffers):
            candidates.append(self._last_drain + TX_DRAIN_NS)
        if not candidates:
            return now + IDLE_SPIN_NS
        return max(now, min(candidates))
