"""The DPDK-like poll-mode layer.

* :mod:`repro.dpdk.mbuf` — packet-buffer pool accounting.
* :mod:`repro.dpdk.app` — the application interface (per-packet cost +
  real work on tagged packets) shared by the poll-mode driver, Metronome
  and XDP.
* :mod:`repro.dpdk.lcore` — the classic ``while(1)`` polling lcore
  (paper Listing 1), with the empty-poll fast-forward optimization.
"""

from repro.dpdk.app import CountingApp, PacketApp
from repro.dpdk.lcore import PollModeLcore
from repro.dpdk.mbuf import MbufPool, MbufPoolExhausted
from repro.dpdk.ring_spsc import SpscRing

__all__ = [
    "PacketApp",
    "CountingApp",
    "PollModeLcore",
    "MbufPool",
    "MbufPoolExhausted",
    "SpscRing",
]
