"""The packet-application interface.

An application contributes two things to the simulation:

* a constant **per-packet CPU cost** (``per_packet_ns``), which sets the
  retrieval rate μ — constant and size-independent, exactly the paper's
  Appendix B assumption about DPDK descriptor processing;
* **real work on tagged packets** (``handle``): the sampled subset flows
  through the genuine data structures (LPM trie, AES-CBC, flow table),
  so functional correctness is continuously exercised while the cost
  model keeps line rate simulable.

The same interface serves the static DPDK lcore, Metronome threads and
the XDP driver, guaranteeing the baselines compare identical workloads.
"""

from __future__ import annotations

from typing import List

from repro import config
from repro.nic.packet import TaggedPacket


class PacketApp:
    """Base class for packet-processing applications."""

    #: report name
    name = "app"
    #: constant per-packet processing cost (ns at base frequency)
    per_packet_ns = config.L3FWD_PKT_NS

    def handle(self, tagged: List[TaggedPacket]) -> None:
        """Process the sampled packets (real data-structure work)."""

    def batch_cost_ns(self, n: int) -> int:
        """CPU cost of receiving+processing+enqueueing a burst of ``n``."""
        if n <= 0:
            return 0
        return n * (self.per_packet_ns + config.TX_PKT_NS)

    def stats(self) -> dict:
        """Application-level counters for reports."""
        return {}


class CountingApp(PacketApp):
    """A minimal app for tests: counts packets and tagged packets."""

    name = "counting"

    def __init__(self, per_packet_ns: int = config.L3FWD_PKT_NS):
        self.per_packet_ns = per_packet_ns
        self.tagged_seen = 0
        self.batches = 0

    def handle(self, tagged: List[TaggedPacket]) -> None:
        self.tagged_seen += len(tagged)

    def stats(self) -> dict:
        return {"tagged_seen": self.tagged_seen}
