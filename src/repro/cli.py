"""Command-line interface: run any paper experiment from the shell.

::

    python -m repro list
    python -m repro run table1 --fast
    python -m repro run fig12 --seed 7
    python -m repro quickstart
    python -m repro trace quickstart --out trace.json

Each experiment prints the same table its benchmark archives; ``--fast``
cuts durations ~4x for a quick look.  ``trace`` re-runs a system with
nanosecond event tracing on, exports a Chrome trace-event JSON (load it
in Perfetto / chrome://tracing) and prints the wake-latency anatomy.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import Callable, Dict, List

from repro import config
from repro.harness import extensions, scenarios
from repro.harness.report import render_table
from repro.harness.scaling import FAST_SCALE, scaled


def _table1(duration_scale: float, seed: int) -> str:
    from repro.harness.paper_data import TABLE1

    rows = scenarios.table1_sleep_precision(
        samples=scaled(10_000, duration_scale, 500), seed=seed)
    table = [
        (s, t, m, TABLE1[(s, t)][0], p, TABLE1[(s, t)][1])
        for s, t, m, p in rows
    ]
    return render_table(
        "Table 1 — sleep precision (us)",
        ["service", "target", "mean", "paper", "99p", "paper"],
        table,
    )


def _table2(duration_scale: float, seed: int) -> str:
    from repro.harness.paper_data import TABLE2

    rows = scenarios.table2_vbar_sweep(
        duration_ms=scaled(100, duration_scale, 20), seed=seed)
    table = [
        (v, mv, TABLE2[v][0], b, TABLE2[v][1], nv, TABLE2[v][2], loss)
        for v, mv, b, nv, loss in rows
    ]
    return render_table(
        "Table 2 — V̄ sweep at line rate",
        ["target V", "V us", "paper", "B us", "paper", "N_V", "paper",
         "loss permille"],
        table,
    )


def _table3(duration_scale: float, seed: int) -> str:
    rows = scenarios.table3_nanosleep_loss(
        duration_ms=scaled(100, duration_scale, 20), seed=seed)
    return render_table(
        "Table 3 — nanosleep loss at 10 Gbps (%)",
        ["ring", "V̄ us", "nanosleep %", "hr_sleep %"],
        rows,
    )


def _fig2(duration_scale: float, seed: int) -> str:
    points = scenarios.fig2_cpu_energy(
        iterations=scaled(10_000, duration_scale, 1000), seed=seed)
    return render_table(
        "Figure 2 — CPU / energy per sleep service",
        ["service", "timeout us", "threads", "cpu ms", "energy J"],
        [(p.service, p.timeout_us, p.threads, p.cpu_seconds * 1e3,
          p.energy_j) for p in points],
    )


def _fig5(duration_scale: float, seed: int) -> str:
    series = scenarios.fig5_vacation_pdf(
        duration_ms=scaled(250, duration_scale, 50), seed=seed)
    rows = []
    for s in series:
        for i in range(0, len(s.bin_centers_us), 5):
            rows.append((s.m, s.bin_centers_us[i], s.empirical_density[i],
                         s.model_density[i]))
    return render_table(
        "Figure 5 — vacation PDF: simulation vs eq. (9)",
        ["M", "V us", "empirical", "model"],
        rows,
    )


def _fig6(duration_scale: float, seed: int) -> str:
    rows = scenarios.fig6_latency_cpu(
        duration_ms=scaled(60, duration_scale, 20), seed=seed)
    return render_table(
        "Figure 6 — latency & CPU vs V̄",
        ["gbps", "V̄ us", "mean lat us", "p99 us", "cpu"],
        rows,
    )


def _fig7(duration_scale: float, seed: int) -> str:
    rows = scenarios.fig7_tl_sweep(
        duration_ms=scaled(60, duration_scale, 20), seed=seed)
    return render_table("Figure 7 — T_L sweep",
                        ["T_L us", "busy tries", "cpu"], rows)


def _fig8(duration_scale: float, seed: int) -> str:
    rows = scenarios.fig8_m_sweep(
        duration_ms=scaled(60, duration_scale, 20), seed=seed)
    return render_table("Figure 8 — M sweep",
                        ["M", "busy tries", "cpu"], rows)


def _fig9(duration_scale: float, seed: int) -> str:
    rows = scenarios.fig9_latency_vs_m(
        duration_ms=scaled(60, duration_scale, 20), seed=seed)
    return render_table(
        "Figure 9 — latency vs M",
        ["rate Mpps", "M", "median us", "p99 us", "std us"],
        [(r, m, b["median"], b["p99"], b["std"]) for r, m, b in rows],
    )


def _fig10(duration_scale: float, seed: int) -> str:
    rows = scenarios.fig10_latency_boxplots(
        duration_ms=scaled(60, duration_scale, 20), seed=seed)
    return render_table(
        "Figure 10 — latency: hr_sleep vs nanosleep",
        ["service", "gbps", "V̄ us", "median us", "q3 us"],
        [(s, g, v, b["median"], b["q3"]) for s, g, v, b in rows],
    )


def _fig11(duration_scale: float, seed: int) -> str:
    result = scenarios.fig11_adaptation(
        duration_s=max(0.5, 3.0 * duration_scale), seed=seed)
    s = result.series
    rows = []
    offered = s.get("offered_mpps")
    step = max(1, len(offered) // 15)
    for i in range(0, len(offered), step):
        rows.append((
            offered[i][0] / 1e9,
            offered[i][1],
            s.get("delivered_mpps")[i][1],
            s.get("ts_us")[i][1],
            s.get("rho")[i][1],
        ))
    from repro.harness.ascii_chart import resample, sparkline

    table = render_table(
        "Figure 11 — adaptation over the ramp",
        ["t s", "offered Mpps", "delivered", "T_S us", "rho"],
        rows,
    )
    extras = "\n".join(
        f"  {name:8s} {sparkline(resample(s.values(key), 60))}"
        for name, key in (("offered", "offered_mpps"), ("T_S", "ts_us"),
                          ("rho", "rho"), ("cpu", "cpu"))
    )
    return table + "\n\ntrajectories:\n" + extras


def _fig12(duration_scale: float, seed: int) -> str:
    rows = scenarios.fig12_compare(
        duration_ms=scaled(60, duration_scale, 20), seed=seed)
    return render_table(
        "Figure 12 — Metronome vs DPDK vs XDP",
        ["system", "gbps", "mean lat us", "p99 us", "cpu", "loss %"],
        rows,
    )


def _fig13(duration_scale: float, seed: int) -> str:
    rows = scenarios.fig13_power_governors(
        duration_ms=scaled(80, duration_scale, 20), seed=seed)
    return render_table(
        "Figure 13 — power vs rate per governor",
        ["governor", "system", "gbps", "watts", "cpu"],
        rows,
    )


def _fig14(duration_scale: float, seed: int) -> str:
    r = scenarios.ferret_coexistence(
        ferret_work_ms=scaled(150, duration_scale, 40),
        throughput_ms=scaled(300, duration_scale, 60),
        seed=seed,
    )
    return render_table(
        "Figure 14 / Table 4 — ferret coexistence",
        ["metric", "value"],
        [
            ("ferret alone ms", r.ferret_alone_ms),
            ("+static DPDK slowdown", r.ferret_with_dpdk_ms / r.ferret_alone_ms),
            ("+Metronome slowdown",
             r.ferret_with_metronome_ms / r.ferret_alone_ms),
            ("DPDK shared Mpps", r.dpdk_shared_mpps),
            ("Metronome shared Mpps", r.metronome_shared_mpps),
        ],
    )


def _fig15(duration_scale: float, seed: int) -> str:
    rows = scenarios.fig15_apps(
        duration_ms=scaled(60, duration_scale, 20), seed=seed)
    return render_table(
        "Figure 15 — IPsec & FloWatcher CPU",
        ["app", "system", "rate Mpps", "cpu", "throughput"],
        rows,
    )


def _rotation(duration_scale: float, seed: int) -> str:
    r = extensions.role_rotation(
        duration_ms=scaled(80, duration_scale, 20), seed=seed)
    rows = [(t, f"{v:.3f}") for t, v in sorted(r.share_by_thread.items())]
    rows.append(("switches", r.switches))
    return render_table("Figure 4 — role rotation", ["metric", "value"], rows)


def _bidir(duration_scale: float, seed: int) -> str:
    r = extensions.bidirectional_throughput(
        duration_ms=scaled(60, duration_scale, 20), seed=seed)
    return render_table(
        "§5.1 — bidirectional",
        ["system", "Mpps/port", "cpu"],
        [("metronome", r.metronome_mpps_per_port, r.metronome_cpu),
         ("dpdk", r.dpdk_mpps_per_port, r.dpdk_cpu)],
    )


def _smt(duration_scale: float, seed: int) -> str:
    r = extensions.smt_interference(
        job_work_ms=scaled(60, duration_scale, 15), seed=seed)
    return render_table(
        "Extension — SMT sibling interference",
        ["sibling runs", "job ms", "slowdown"],
        [("nothing", r["alone"], 1.0),
         ("polling dpdk", r["dpdk_sibling"], r["dpdk_sibling"] / r["alone"]),
         ("metronome", r["metronome_sibling"],
          r["metronome_sibling"] / r["alone"])],
    )


def _pacing(duration_scale: float, seed: int) -> str:
    rows = extensions.pacing_comparison(
        count=scaled(300, duration_scale, 50), seed=seed)
    return render_table(
        "Extension — sleep-based pacing",
        ["service", "kpps", "rate error", "jitter us"],
        rows,
    )


def _quickstart(duration_scale: float, seed: int) -> str:
    from repro.harness.experiment import run_metronome

    res = run_metronome(
        config.LINE_RATE_PPS,
        duration_ms=scaled(100, duration_scale, 20),
        cfg=config.SimConfig(seed=seed),
    )
    return render_table(
        "Metronome @ 10 GbE line rate",
        ["metric", "value"],
        [
            ("throughput Mpps", res.throughput_mpps),
            ("loss %", res.loss_fraction * 100),
            ("cpu", res.cpu_utilization),
            ("mean latency us", res.latency.mean() / 1e3),
            ("mean vacation us", res.mean_vacation_us),
            ("rho", res.rho),
            ("T_S us", res.ts_us),
        ],
    )


def _chaos_cmd(args) -> int:
    """``repro chaos``: fault plans × seeds, invariant verdicts."""
    import json

    from repro.faults import SHIPPED_PLANS, FaultPlan, run_chaos

    if args.list:
        print("shipped fault plans:")
        for name, plan in SHIPPED_PLANS.items():
            print(f"  {name:15s} {plan.description}")
        return 0
    if args.plan_file:
        with open(args.plan_file) as fh:
            plans = [FaultPlan.from_dict(json.load(fh))]
    elif args.plan == "all":
        plans = list(SHIPPED_PLANS.values())
    else:
        if args.plan not in SHIPPED_PLANS:
            print(f"unknown plan {args.plan!r}; try `repro chaos --list`")
            return 2
        plans = [SHIPPED_PLANS[args.plan]]

    seeds = args.seed or [7, 42, config.DEFAULT_SEED]
    if args.checkpoint_before_fault:
        return _chaos_checkpoint_cmd(args, plans, seeds)
    rows = []
    failures = 0
    for plan in plans:
        for seed in seeds:
            r = run_chaos(plan, seed=seed, duration_ms=args.duration_ms)
            verdict = "ok" if r.ok else "FAIL"
            failures += 0 if r.ok else 1
            rows.append((
                plan.name, seed, verdict,
                r.loss_fraction * 100,
                r.max_head_age_ns / 1e3,
                r.escalations,
                r.recovery_ns / 1e3 if r.recovery_ns is not None else "-",
                r.overload_entries,
            ))
            for v in r.violations:
                rows.append((f"  ^ {v}", "", "", "", "", "", "", ""))
    print(render_table(
        f"chaos — {args.duration_ms} ms per run",
        ["plan", "seed", "verdict", "loss %", "max age us",
         "escalations", "recovery us", "overload"],
        rows,
    ))
    if failures:
        print(f"{failures} scenario(s) FAILED their invariants")
    return 1 if failures else 0


def _chaos_checkpoint_cmd(args, plans, seeds) -> int:
    """``repro chaos --checkpoint-before-fault``: replay debugging.

    For each plan × seed the scenario runs twice, pausing both runs for
    a pure machine snapshot just before the first fault window opens.
    The two captures must agree component-for-component (the healthy
    prefix replays exactly) and the two final verdicts must be
    identical (the continuation past the checkpoint is deterministic).
    Any divergence prints the per-component diff and exits non-zero —
    if this gate holds, "re-run to just before the fault" is a sound
    way to inspect the moment a fault lands.
    """
    from repro.faults import run_chaos
    from repro.sim.units import US

    rows = []
    bad = 0
    for plan in plans:
        for seed in seeds:
            t_ck = max(0, plan.first_fault_start_ns() - US)
            base = run_chaos(plan, seed=seed, duration_ms=args.duration_ms,
                             checkpoint_at_ns=t_ck)
            replay = run_chaos(plan, seed=seed, duration_ms=args.duration_ms,
                               checkpoint_at_ns=t_ck)
            diff = base.checkpoint.diff(replay.checkpoint)

            def final(r):
                return (r.offered, r.delivered, r.drops, r.max_head_age_ns,
                        r.escalations, r.watchdog_wakes, r.recovery_ns,
                        r.overload_entries, tuple(r.violations))

            same_final = final(base) == final(replay)
            ok = not diff and same_final
            bad += 0 if ok else 1
            rows.append((
                plan.name, seed, f"{t_ck / 1e6:.3f}",
                f"{base.checkpoint.size_bytes() / 1024:.1f}",
                "ok" if not diff else f"{len(diff)} DIVERGED",
                "ok" if same_final else "DIVERGED",
                "ok" if base.ok else "FAIL",
            ))
            for line in diff[:5]:
                rows.append((f"  ^ {line}", "", "", "", "", "", ""))
            if args.checkpoint_out:
                path = (args.checkpoint_out if len(plans) * len(seeds) == 1
                        else f"{args.checkpoint_out}.{plan.name}.s{seed}.json")
                base.checkpoint.save(path)
                print(f"checkpoint ({plan.name}, seed {seed}) -> {path}")
    print(render_table(
        f"chaos checkpoint-before-fault — {args.duration_ms} ms per run",
        ["plan", "seed", "ckpt ms", "state KB", "prefix", "final",
         "invariants"],
        rows,
    ))
    if bad:
        print(f"{bad} scenario(s) DIVERGED between checkpoint and replay")
    else:
        print("every prefix and continuation replayed byte-identical")
    return 1 if bad else 0


def _check_cmd(args) -> int:
    """``repro check``: invariant monitors + model-vs-sim oracle."""
    import json

    from repro.check.oracle import TolerancePolicy, run_oracle
    from repro.check.runner import run_monitors

    do_monitors = args.all or args.monitors or not args.oracle
    do_oracle = args.all or args.oracle or not args.monitors
    failed = False
    if do_monitors:
        rep = run_monitors(seed=args.seed, fast=args.fast)
        print(rep.render())
        failed |= not rep.ok
    if do_oracle:
        policy = None
        if args.policy:
            with open(args.policy) as fh:
                policy = TolerancePolicy.from_dict(json.load(fh))
        cache = None
        if args.cache:
            from repro import campaign as camp

            results_dir = camp.default_results_dir()
            cache = camp.ResultCache(camp.default_cache_dir(results_dir))
        orep = run_oracle(
            policy=policy,
            duration_ms=12 if args.fast else 40,
            seed=args.seed,
            workers=args.workers,
            cache=cache,
        )
        if do_monitors:
            print()
        print(orep.render())
        failed |= not orep.ok
    return 1 if failed else 0


def _bench_cmd(args) -> int:
    """``repro bench``: perf microbenchmarks (docs/PERF.md)."""
    import json

    from repro.bench import check_result, load_baseline, run_benches

    result = run_benches(
        quick=args.quick, skip_figures=args.skip_figures, progress=print
    )
    with open(args.out, "w") as fh:
        json.dump(result, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"wrote {args.out}")
    baseline = load_baseline(args.check) if args.check else None
    failures = check_result(result, baseline)
    for failure in failures:
        print(f"REGRESSION: {failure}")
    if not failures:
        churn = result["benches"]["event_churn"]
        print(f"ok: churn speedup {churn['speedup']:.2f}x over the "
              "pre-calendar heap loop")
    return 1 if failures else 0


def _traffic_cmd(args) -> int:
    """``repro traffic``: generate/describe/validate traces
    (docs/TRAFFIC.md)."""
    from repro.sim.units import MS
    from repro.traffic import SHIPPED_TRACES, Trace, TraceError, generate

    if args.traffic_cmd == "generate":
        if args.name not in SHIPPED_TRACES:
            known = ", ".join(sorted(SHIPPED_TRACES))
            print(f"unknown trace generator {args.name!r} (known: {known})")
            return 2
        spec = SHIPPED_TRACES[args.name](args.duration_ms * MS)
        trace = generate(spec, args.seed)
        out = args.out or f"{args.name}.trace.jsonl.gz"
        trace.dump(out)
        print(f"wrote {out}")
        print(trace.describe())
        return 0
    try:
        trace = Trace.load(args.path)
    except FileNotFoundError:
        print(f"no such file: {args.path}")
        return 2
    except TraceError as exc:
        print(f"INVALID: {exc}")
        return 2
    if args.traffic_cmd == "describe":
        print(trace.describe())
        return 0
    # validate: Trace.load already ran the schema checks
    print(f"ok: {trace.packet_count:,} packets, "
          f"{len(trace.phases)} phase(s), sha256 {trace.sha256()[:16]}")
    return 0


def _parse_shard(text: str):
    """``"i/N"`` -> ``(i, N)``; raises ValueError on nonsense."""
    i_s, _, n_s = text.partition("/")
    shard = (int(i_s), int(n_s))
    if not (1 <= shard[0] <= shard[1]):
        raise ValueError(f"shard must satisfy 1 <= i <= N, got {text!r}")
    return shard


def _emit_campaign_artifacts(camp, res, results_dir: str) -> None:
    """Render and atomically write every complete figure's artifacts,
    print failures for incomplete ones, and write the campaign summary.
    Shared by ``campaign run`` and ``campaign merge`` so a merged
    sharded campaign emits byte-identical files to an unsharded run."""
    for name in res.figures:
        outs = res.figure_outcomes(name)
        record = res.record_for(name)
        if record is None:
            bad = [o for o in outs if not o.ok]
            print(f"\n{name}: FAILED — "
                  + "; ".join(f"{o.spec.label()}: {o.error}" for o in bad))
            continue
        fig = camp.get_figure(name)
        text = fig.render(record)
        camp.write_figure_artifacts(
            results_dir, name, text,
            camp.figure_payload(
                name, fig.scenario, record,
                seed=res.seed, scale=res.scale, tasks=len(outs),
                from_cache=sum(1 for o in outs if o.from_cache),
                elapsed_s=sum(o.elapsed_s for o in outs),
            ),
        )
        print("\n" + text)
    camp.write_campaign_summary(results_dir, res.summary())


def _campaign_cmd(args) -> int:
    """``repro campaign``: sharded, cached sweeps (docs/CAMPAIGN.md)."""
    from repro import campaign as camp

    if args.campaign_cmd == "list":
        print("registered campaign figures:")
        total = 0
        for name, fig in camp.FIGURES.items():
            n = fig.task_count()
            total += n
            print(f"  {name:8s} {n:3d} tasks  {fig.scenario}")
        print(f"total: {total} tasks")
        return 0

    results_dir = args.results_dir or camp.default_results_dir()

    if args.campaign_cmd == "status":
        stats = camp.ResultCache(camp.default_cache_dir(results_dir)).stats()
        summary = camp.read_campaign_summary(results_dir)
        if summary is None:
            print(f"no campaign summary under {results_dir}")
        else:
            c = summary["cache"]
            print(render_table(
                "last campaign",
                ["metric", "value"],
                [
                    ("figures", ", ".join(summary["figures"])),
                    ("tasks", summary["tasks_total"]),
                    ("failures", summary["failures"]),
                    ("wall s", summary["wall_s"]),
                    ("workers", summary["workers"]),
                    ("scale", summary["scale"]),
                    ("seed", summary["seed"]),
                    ("cache hits", c["hits"]),
                    ("cache hit rate", c["hit_rate"]),
                ],
            ))
        print(f"cache: {stats['entries']} entries, "
              f"{stats['bytes'] / 1e6:.2f} MB under {stats['dir']}")
        return 0

    figures = None
    if args.figures:
        figures = [f.strip() for f in args.figures.split(",") if f.strip()]
        unknown = [f for f in figures if f not in camp.FIGURES]
        if unknown:
            print(f"unknown figure(s) {', '.join(unknown)}; "
                  "try `repro campaign list`")
            return 2
    cache = None
    if not args.no_cache:
        cache = camp.ResultCache(camp.default_cache_dir(results_dir))
    journal_dir = os.path.join(results_dir, camp.JOURNAL_SUBDIR)

    if args.campaign_cmd == "merge":
        try:
            res = camp.merge_shards(
                figures,
                shards=args.shards,
                scale=FAST_SCALE if args.fast else 1.0,
                seed=args.seed,
                journal_dir=journal_dir,
                cache=cache,
            )
        except camp.JournalError as exc:
            print(f"merge refused: {exc}")
            return 2
        _emit_campaign_artifacts(camp, res, results_dir)
        missing = [o for o in res.failures
                   if o.error and o.error.startswith("missing")]
        report = res.quarantine_report()
        if report:
            print("\n" + report)
        print(f"\nmerge: {len(res.outcomes)} tasks from "
              f"{res.shard[0]}/{res.shard[1]} shard journal(s), "
              f"{len(res.failures)} failure(s) -> {results_dir}")
        if missing:
            return 2
        return 1 if res.failures else 0

    # run
    shard = (1, 1)
    if args.shard:
        try:
            shard = _parse_shard(args.shard)
        except ValueError as exc:
            print(f"bad --shard: {exc}")
            return 2
    if args.resume and args.no_journal:
        print("--resume needs the journal; drop --no-journal")
        return 2
    try:
        res = camp.run_campaign(
            figures,
            workers=args.workers,
            scale=FAST_SCALE if args.fast else 1.0,
            seed=args.seed,
            cache=cache,
            timeout_s=args.timeout_s,
            retries=args.retries,
            fail_tasks=args.fail_tasks,
            progress=True,
            shard=shard,
            journal_dir=None if args.no_journal else journal_dir,
            resume=args.resume,
            backoff_base_s=args.backoff_s,
        )
    except camp.JournalError as exc:
        print(f"resume refused: {exc}")
        return 2
    if shard == (1, 1):
        _emit_campaign_artifacts(camp, res, results_dir)
    else:
        # a shard holds an incomplete grid; figure artifacts would look
        # whole but lie — emission waits for `repro campaign merge`
        print(f"shard {shard[0]}/{shard[1]}: {len(res.outcomes)} task(s) "
              "journaled; run `repro campaign merge` once every shard "
              "is done")
    report = res.quarantine_report()
    if report:
        print("\n" + report)
    print(f"\ncampaign: {len(res.outcomes)} tasks in {res.wall_s:.1f}s wall, "
          f"cache {res.cache_hits}/{len(res.outcomes)} "
          f"({100 * res.cache_hit_rate:.0f}% hit rate), "
          f"{res.resumed_count} resumed, "
          f"{len(res.failures)} failure(s) -> {results_dir}")
    return 1 if res.failures else 0


#: systems that can be run under the tracer (``repro trace <name>``)
TRACEABLE = ("quickstart", "dpdk", "xdp")


def _trace_cmd(args) -> int:
    from repro.harness.experiment import run_dpdk, run_metronome, run_xdp
    from repro.harness.report import render_metrics
    from repro.trace import anatomy_report
    from repro.trace.chrome import (
        chrome_trace_dict,
        validate_chrome_trace,
        write_chrome_trace,
    )

    scale = FAST_SCALE if args.fast else 1.0
    duration = scaled(args.duration_ms, scale, 10)
    cfg = config.SimConfig(seed=args.seed)
    if args.experiment == "dpdk":
        res = run_dpdk(config.LINE_RATE_PPS, duration_ms=duration,
                       cfg=cfg, trace=True)
    elif args.experiment == "xdp":
        res = run_xdp(config.LINE_RATE_PPS, duration_ms=duration,
                      cfg=cfg, trace=True)
    else:
        res = run_metronome(config.LINE_RATE_PPS, duration_ms=duration,
                            cfg=cfg, trace=True)
    tracer = res.machine.tracer
    count = write_chrome_trace(tracer, args.out)
    problems = validate_chrome_trace(chrome_trace_dict(tracer))
    if problems:
        print(f"WARNING: exported trace failed self-check: {problems[:3]}")
    print(f"{count} events ({duration} ms simulated) -> {args.out}")
    print()
    print(anatomy_report(tracer,
                         title=f"wake-latency anatomy — {args.experiment}"))
    print()
    print(render_metrics(res.machine.metrics,
                         title=f"metrics — {args.experiment}"))
    return 1 if problems else 0


EXPERIMENTS: Dict[str, Callable[[float, int], str]] = {
    "table1": _table1,
    "table2": _table2,
    "table3": _table3,
    "fig2": _fig2,
    "fig5": _fig5,
    "fig6": _fig6,
    "fig7": _fig7,
    "fig8": _fig8,
    "fig9": _fig9,
    "fig10": _fig10,
    "fig11": _fig11,
    "fig12": _fig12,
    "fig13": _fig13,
    "fig14": _fig14,
    "fig15": _fig15,
    "rotation": _rotation,
    "bidir": _bidir,
    "pacing": _pacing,
    "smt": _smt,
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Metronome (CoNEXT 2020) reproduction experiments",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("list", help="list available experiments")
    sub.add_parser("quickstart", help="run Metronome at line rate")
    sub.add_parser("validate", help="quick pass/fail check of the headline claims")
    run = sub.add_parser("run", help="run one experiment")
    run.add_argument("experiment", choices=sorted(EXPERIMENTS))
    run.add_argument("--seed", type=int, default=config.DEFAULT_SEED)
    run.add_argument("--fast", action="store_true",
                     help="~4x shorter simulated durations")
    tr = sub.add_parser(
        "trace",
        help="run a system with ns tracing; export Chrome JSON + anatomy")
    tr.add_argument("experiment", choices=TRACEABLE)
    tr.add_argument("--out", default="trace.json",
                    help="Chrome trace-event JSON output path")
    tr.add_argument("--duration-ms", type=int, default=40,
                    help="simulated duration before --fast scaling")
    tr.add_argument("--seed", type=int, default=config.DEFAULT_SEED)
    tr.add_argument("--fast", action="store_true")
    ch = sub.add_parser(
        "chaos",
        help="run fault-injection scenarios and check survival invariants")
    ch.add_argument("plan", nargs="?", default="all",
                    help="shipped plan name, or 'all' (default)")
    ch.add_argument("--list", action="store_true",
                    help="list the shipped fault plans")
    ch.add_argument("--plan-file", default=None,
                    help="JSON FaultPlan file (overrides the plan name)")
    ch.add_argument("--seed", type=int, action="append", default=None,
                    help="seed (repeatable; default 7, 42, 2020)")
    ch.add_argument("--duration-ms", type=int, default=40)
    ch.add_argument("--checkpoint-before-fault", action="store_true",
                    help="replay-debug gate: snapshot just before the "
                         "first fault window, re-run, and verify the "
                         "prefix and continuation replay byte-identical")
    ch.add_argument("--checkpoint-out", default=None, metavar="PATH",
                    help="with --checkpoint-before-fault: save the "
                         "captured MachineState JSON here")
    ck = sub.add_parser(
        "check",
        help="conformance: runtime invariant monitors + model-vs-sim oracle")
    ck.add_argument("--monitors", action="store_true",
                    help="run only the monitored scenario suite")
    ck.add_argument("--oracle", action="store_true",
                    help="run only the model-vs-sim lattice oracle")
    ck.add_argument("--all", action="store_true",
                    help="run both (the default when no selector is given)")
    ck.add_argument("--fast", action="store_true",
                    help="shorter simulated durations")
    ck.add_argument("--seed", type=int, default=17,
                    help="simulation seed (default 17, the xval seed)")
    ck.add_argument("--workers", type=int, default=0,
                    help="oracle lattice worker processes (0 = in-process)")
    ck.add_argument("--policy", default=None,
                    help="JSON TolerancePolicy file overriding the defaults")
    ck.add_argument("--cache", action="store_true",
                    help="reuse the campaign result cache for lattice points")
    from repro.lint.main import add_parser as add_lint_parser

    add_lint_parser(sub)
    ca = sub.add_parser(
        "campaign",
        help="sharded benchmark sweeps with result caching")
    casub = ca.add_subparsers(dest="campaign_cmd", required=True)
    casub.add_parser("list", help="list the registered figure sweeps")
    crun = casub.add_parser("run", help="run a campaign")
    crun.add_argument("--figures", default=None,
                      help="comma-separated figure names (default: all)")
    crun.add_argument("--workers", type=int, default=4,
                      help="worker processes (0 = serial in-process)")
    crun.add_argument("--no-cache", action="store_true",
                      help="ignore and do not update the result cache")
    crun.add_argument("--seed", type=int, default=config.DEFAULT_SEED)
    crun.add_argument("--fast", action="store_true",
                      help="~4x shorter simulated durations")
    crun.add_argument("--timeout-s", type=float, default=300.0,
                      help="per-task timeout (seconds)")
    crun.add_argument("--retries", type=int, default=2,
                      help="re-attempts per failed or timed-out task")
    crun.add_argument("--results-dir", default=None,
                      help="artifact directory (default benchmarks/results)")
    crun.add_argument("--resume", action="store_true",
                      help="replay this campaign's journal and re-execute "
                           "only its unfinished tasks")
    crun.add_argument("--shard", default=None, metavar="i/N",
                      help="run the i-th of N deterministic partitions of "
                           "the task grid (reassemble with `campaign merge`)")
    crun.add_argument("--no-journal", action="store_true",
                      help="skip the crash-safe journal (no --resume later)")
    crun.add_argument("--backoff-s", type=float, default=0.5,
                      help="base retry backoff, doubled per attempt with "
                           "seeded jitter (0 disables; default 0.5)")
    # test/CI hook: make the named figure's (or scenario's) tasks raise
    crun.add_argument("--fail-tasks", default=None, help=argparse.SUPPRESS)
    cmerge = casub.add_parser(
        "merge",
        help="reassemble a sharded campaign's artifacts from its journals")
    cmerge.add_argument("--shards", type=int, required=True, metavar="N",
                        help="total shard count the campaign was split into")
    cmerge.add_argument("--figures", default=None,
                        help="comma-separated figure names (default: all)")
    cmerge.add_argument("--seed", type=int, default=config.DEFAULT_SEED)
    cmerge.add_argument("--fast", action="store_true",
                        help="the shards were run with --fast")
    cmerge.add_argument("--no-cache", action="store_true",
                        help="do not fall back to the result cache for "
                             "tasks missing from the journals")
    cmerge.add_argument("--results-dir", default=None,
                        help="artifact directory (default benchmarks/results)")
    cst = casub.add_parser(
        "status", help="show the last campaign summary and cache stats")
    cst.add_argument("--results-dir", default=None)
    tf = sub.add_parser(
        "traffic",
        help="trace-driven traffic tools (docs/TRAFFIC.md)")
    tfsub = tf.add_subparsers(dest="traffic_cmd", required=True)
    tgen = tfsub.add_parser(
        "generate",
        help="materialize a shipped trace spec into a trace file")
    tgen.add_argument("name",
                      help="generator name (see `repro traffic generate "
                           "--list` in docs/TRAFFIC.md: benign, http-flood, "
                           "microburst-ddos, slow-drip, steady-background)")
    tgen.add_argument("--out", default=None,
                      help="output path; .gz compresses "
                           "(default <name>.trace.jsonl.gz)")
    tgen.add_argument("--seed", type=int, default=config.DEFAULT_SEED)
    tgen.add_argument("--duration-ms", type=int, default=100,
                      help="trace length in milliseconds (default 100)")
    tdesc = tfsub.add_parser(
        "describe", help="summarize a trace file (phases, rates, sha256)")
    tdesc.add_argument("path")
    tval = tfsub.add_parser(
        "validate", help="schema-validate a trace file; exit 2 when invalid")
    tval.add_argument("path")
    be = sub.add_parser(
        "bench",
        help="performance microbenchmarks; emits BENCH_perf.json")
    be.add_argument("--quick", action="store_true",
                    help="shorter runs for CI smoke (~15s total)")
    be.add_argument("--out", default="BENCH_perf.json",
                    help="output JSON path (default BENCH_perf.json)")
    be.add_argument("--check", default=None, metavar="BASELINE",
                    help="gate against a committed baseline JSON; exit 1 "
                         "on >20% speedup regression or a floor miss")
    be.add_argument("--skip-figures", action="store_true",
                    help="skip the whole-figure wall-clock timings")
    qs = [p for p in sub.choices.values()]
    for p in qs:
        if p.prog.endswith("quickstart"):
            p.add_argument("--seed", type=int, default=config.DEFAULT_SEED)
            p.add_argument("--fast", action="store_true")
    return parser


def main(argv: List[str] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "list":
        print("available experiments:")
        for name in sorted(EXPERIMENTS):
            print(f"  {name}")
        return 0
    scale = FAST_SCALE if getattr(args, "fast", False) else 1.0
    seed = getattr(args, "seed", config.DEFAULT_SEED)
    if args.command == "validate":
        from repro.harness.validate import run_validation

        print("validating headline claims (abbreviated runs)...")
        failures = run_validation()
        print("all claims hold" if failures == 0
              else f"{failures} claim(s) FAILED")
        return 1 if failures else 0
    if args.command == "trace":
        return _trace_cmd(args)
    if args.command == "chaos":
        return _chaos_cmd(args)
    if args.command == "check":
        return _check_cmd(args)
    if args.command == "campaign":
        return _campaign_cmd(args)
    if args.command == "traffic":
        return _traffic_cmd(args)
    if args.command == "bench":
        return _bench_cmd(args)
    if args.command == "lint":
        from repro.lint.main import main as lint_main

        return lint_main(args)
    if args.command == "quickstart":
        print(_quickstart(scale, seed))
        return 0
    print(EXPERIMENTS[args.experiment](scale, seed))
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
