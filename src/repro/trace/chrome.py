"""Chrome trace-event JSON export (Perfetto / ``chrome://tracing``).

The exporter maps the simulation onto the trace-event model:

* each **core** becomes a process (``pid`` = core index) so Perfetto
  shows one swim-lane group per core;
* each **thread** becomes a thread track inside its core's process
  (``tid`` = KThread tid);
* core-scoped events (hrtimer arm/fire/cancel) land on a reserved
  ``tid`` 0 "hrtimers" track of their core;
* queue-scoped events (TX flushes) land on a synthetic "nic" process
  (``pid`` = :data:`NIC_PID`) with one track per queue.

Timestamps are emitted in microseconds (the trace-event unit) as exact
fractions of the integer-ns clock, and span events use ``B``/``E``
pairs so drains and sleeps render as nested slices.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List

from repro.trace.tracer import Tracer

#: synthetic "process" hosting queue-scoped (non-CPU) tracks
NIC_PID = 999

#: reserved per-core tid for hrtimer events (KThread tids start at 1)
TIMER_TID = 0

#: the phases this exporter emits (subset of the trace-event spec)
VALID_PHASES = ("B", "E", "i", "M")


def chrome_trace_dict(tracer: Tracer) -> Dict[str, Any]:
    """Build the trace-event JSON object for ``tracer``'s events."""
    trace_events: List[Dict[str, Any]] = []
    seen_cores: Dict[int, bool] = {}
    seen_threads: Dict[int, str] = {}
    seen_queues: Dict[int, bool] = {}

    for ev in tracer.events:
        if ev.tid is not None:
            pid, tid = ev.core, ev.tid
            seen_threads.setdefault(ev.tid, ev.thread or f"tid {ev.tid}")
            seen_cores.setdefault(ev.core, True)
        elif ev.core is not None:
            pid, tid = ev.core, TIMER_TID
            seen_cores.setdefault(ev.core, True)
        else:
            queue = ev.args.get("queue", 0)
            pid, tid = NIC_PID, queue
            seen_queues.setdefault(queue, True)
        record: Dict[str, Any] = {
            "name": ev.name,
            "cat": ev.name.split(".", 1)[0],
            "ph": ev.phase if ev.phase in ("B", "E") else "i",
            "ts": ev.ts / 1e3,
            "pid": pid,
            "tid": tid,
        }
        if ev.phase == "i":
            record["s"] = "t"  # instant scope: thread
        if ev.args:
            record["args"] = dict(ev.args)
        trace_events.append(record)

    meta: List[Dict[str, Any]] = []
    for core in sorted(seen_cores):
        meta.append(_meta("process_name", core, args={"name": f"core {core}"}))
        meta.append(_meta("thread_name", core, tid=TIMER_TID,
                          args={"name": "hrtimers"}))
    for tid, name in sorted(seen_threads.items()):
        for core in sorted(seen_cores):
            # a thread is pinned: name its track on the core it appears on
            if any(e.tid == tid and e.core == core for e in tracer.events):
                meta.append(_meta("thread_name", core, tid=tid,
                                  args={"name": name}))
                break
    if seen_queues:
        meta.append(_meta("process_name", NIC_PID, args={"name": "nic"}))
        for q in sorted(seen_queues):
            meta.append(_meta("thread_name", NIC_PID, tid=q,
                              args={"name": f"rxq{q} tx"}))

    return {
        "traceEvents": meta + trace_events,
        "displayTimeUnit": "ns",
        "otherData": {"clock": "simulated-ns", "events": len(trace_events)},
    }


def _meta(name: str, pid: int, tid: int = 0, args: Dict[str, Any] = None) -> Dict:
    return {"name": name, "ph": "M", "pid": pid, "tid": tid,
            "ts": 0, "args": args or {}}


def write_chrome_trace(tracer: Tracer, path: str) -> int:
    """Serialize to ``path``; returns the number of trace events."""
    doc = chrome_trace_dict(tracer)
    with open(path, "w") as fh:
        json.dump(doc, fh)
    return doc["otherData"]["events"]


def validate_chrome_trace(doc: Dict[str, Any]) -> List[str]:
    """Check ``doc`` against the trace-event schema we rely on.

    Returns a list of problems (empty = valid).  Used by the golden
    tests and by ``repro trace`` as a self-check after export.
    """
    problems: List[str] = []
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        return ["traceEvents missing or not a list"]
    for i, ev in enumerate(events):
        for key in ("name", "ph", "pid", "tid", "ts"):
            if key not in ev:
                problems.append(f"event {i}: missing {key!r}")
        ph = ev.get("ph")
        if ph not in VALID_PHASES:
            problems.append(f"event {i}: bad phase {ph!r}")
        if not isinstance(ev.get("ts", 0), (int, float)) or ev.get("ts", 0) < 0:
            problems.append(f"event {i}: bad ts {ev.get('ts')!r}")
    # B/E spans must balance per (pid, tid)
    depth: Dict[tuple, int] = {}
    for ev in events:
        key = (ev.get("pid"), ev.get("tid"))
        if ev.get("ph") == "B":
            depth[key] = depth.get(key, 0) + 1
        elif ev.get("ph") == "E":
            depth[key] = depth.get(key, 0) - 1
            if depth[key] < 0:
                problems.append(f"unbalanced E on track {key}")
                depth[key] = 0
    try:
        json.dumps(doc)
    except (TypeError, ValueError) as exc:
        problems.append(f"not JSON-serializable: {exc}")
    return problems
