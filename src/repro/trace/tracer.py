"""The event tracer: typed, nanosecond-stamped simulation events.

Every event is a :class:`TraceEvent` carrying the simulated timestamp,
a dotted event name (``thread.wake``, ``timer.fire``, ``drain.begin``,
...), a phase (instant / span-begin / span-end), and the core/thread it
belongs to.  Emission is append-only into a Python list — no I/O, no
RNG, no simulator callbacks — so enabling tracing never perturbs a run.

The :class:`NullTracer` has the same surface with every emitter compiled
to a no-op and ``enabled = False``; instrumentation points check the
flag first, so a disabled tracer costs one attribute load per site.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional


class TraceEvent:
    """One recorded occurrence.

    Attributes:
        ts: simulated time in integer nanoseconds.
        name: dotted event name (see the taxonomy in docs/TRACING.md).
        phase: ``"i"`` instant, ``"B"`` span begin, ``"E"`` span end.
        core: core index the event belongs to (None for queue-scoped).
        tid: thread id (None for core- or queue-scoped events).
        thread: thread name at emission time (None when not thread-scoped).
        args: free-form payload (packet counts, expiry times, outcomes).
    """

    __slots__ = ("ts", "name", "phase", "core", "tid", "thread", "args")

    def __init__(
        self,
        ts: int,
        name: str,
        phase: str = "i",
        core: Optional[int] = None,
        tid: Optional[int] = None,
        thread: Optional[str] = None,
        args: Optional[Dict[str, Any]] = None,
    ):
        self.ts = ts
        self.name = name
        self.phase = phase
        self.core = core
        self.tid = tid
        self.thread = thread
        self.args = args or {}

    def __repr__(self) -> str:
        who = self.thread or (f"core{self.core}" if self.core is not None else "-")
        return f"<TraceEvent {self.ts}ns {self.name} [{who}] {self.args}>"


class Tracer:
    """Collects :class:`TraceEvent` records against a simulator clock."""

    enabled = True

    def __init__(self, sim: "Simulator"):  # noqa: F821 - duck-typed: needs .now
        self.sim = sim
        self.events: List[TraceEvent] = []

    # ------------------------------------------------------------------ #
    # generic emission
    # ------------------------------------------------------------------ #

    def emit(
        self,
        name: str,
        phase: str = "i",
        core: Optional[int] = None,
        tid: Optional[int] = None,
        thread: Optional[str] = None,
        **args: Any,
    ) -> None:
        self.events.append(
            TraceEvent(self.sim.now, name, phase, core, tid, thread, args)
        )

    def __len__(self) -> int:
        return len(self.events)

    def clear(self) -> None:
        self.events.clear()

    def named(self, name: str) -> List[TraceEvent]:
        """All events with the given dotted name, in emission order."""
        return [e for e in self.events if e.name == name]

    # ------------------------------------------------------------------ #
    # typed emitters — scheduler
    # ------------------------------------------------------------------ #

    def thread_wake(self, thread) -> None:
        """A SLEEPING thread became RUNNABLE (timer/IRQ/notification)."""
        self.emit("thread.wake", core=thread.core.index,
                  tid=thread.tid, thread=thread.name)

    def thread_sleep(self, thread) -> None:
        """The thread suspended (left the CPU awaiting a wake)."""
        self.emit("thread.sleep", core=thread.core.index,
                  tid=thread.tid, thread=thread.name)

    def thread_preempt(self, thread) -> None:
        """The running thread was preempted (tick or wakeup preemption)."""
        self.emit("thread.preempt", core=thread.core.index,
                  tid=thread.tid, thread=thread.name)

    def thread_dispatch(self, thread, wait_ns: int) -> None:
        """The thread went RUNNABLE→RUNNING after ``wait_ns`` on the rq."""
        self.emit("thread.dispatch", core=thread.core.index,
                  tid=thread.tid, thread=thread.name, wait_ns=wait_ns)

    def thread_exit(self, thread) -> None:
        self.emit("thread.exit", core=thread.core.index,
                  tid=thread.tid, thread=thread.name)

    # ------------------------------------------------------------------ #
    # typed emitters — hrtimers
    # ------------------------------------------------------------------ #

    def timer_arm(self, core_index: int, expiry: int) -> None:
        self.emit("timer.arm", core=core_index, expiry=expiry)

    def timer_fire(self, core_index: int, expiry: int, idle: bool) -> None:
        """The hardware interrupt landed; lateness = now − programmed
        expiry (IRQ pipeline latency, plus C-state exit when idle)."""
        self.emit("timer.fire", core=core_index, expiry=expiry,
                  lateness_ns=self.sim.now - expiry, idle=idle)

    def timer_cancel(self, core_index: int, expiry: int) -> None:
        """A timer was disarmed before firing (never emitted for a timer
        whose callback already ran — see Handle.fired)."""
        self.emit("timer.cancel", core=core_index, expiry=expiry)

    # ------------------------------------------------------------------ #
    # typed emitters — sleep services (Figure 1 stages)
    # ------------------------------------------------------------------ #

    def sleep_enter(self, thread, requested_ns: int, service: str) -> None:
        self.emit("sleep.enter", phase="B", core=thread.core.index,
                  tid=thread.tid, thread=thread.name,
                  requested_ns=requested_ns, service=service)

    def sleep_armed(self, thread, expiry: int) -> None:
        """Preamble done; the hrtimer is programmed for ``expiry``."""
        self.emit("sleep.armed", core=thread.core.index,
                  tid=thread.tid, thread=thread.name, expiry=expiry)

    def sleep_return(self, thread, immediate: bool = False) -> None:
        """Back in user space (postamble + syscall exit done)."""
        self.emit("sleep.return", phase="E", core=thread.core.index,
                  tid=thread.tid, thread=thread.name, immediate=immediate)

    # ------------------------------------------------------------------ #
    # typed emitters — trylock / drain / TX
    # ------------------------------------------------------------------ #

    def trylock(self, thread, lock_name: str, acquired: bool) -> None:
        """One trylock attempt: acquired, or contended (a busy try)."""
        self.emit("trylock.acquire" if acquired else "trylock.contended",
                  core=thread.core.index, tid=thread.tid,
                  thread=thread.name, lock=lock_name)

    def drain_begin(self, thread, queue_index: int, backlog: int) -> None:
        self.emit("drain.begin", phase="B", core=thread.core.index,
                  tid=thread.tid, thread=thread.name,
                  queue=queue_index, backlog=backlog)

    def drain_end(self, thread, queue_index: int, packets: int) -> None:
        self.emit("drain.end", phase="E", core=thread.core.index,
                  tid=thread.tid, thread=thread.name,
                  queue=queue_index, packets=packets)

    def tx_flush(self, queue_index: int, packets: int) -> None:
        self.emit("tx.flush", queue=queue_index, packets=packets)

    # ------------------------------------------------------------------ #
    # typed emitters — fault injection / graceful degradation
    # ------------------------------------------------------------------ #

    def fault_begin(self, kind: str, core: Optional[int] = None,
                    **args: Any) -> None:
        """A fault episode opened (``fault.<kind>`` span begin)."""
        self.emit(f"fault.{kind}", phase="B", core=core, **args)

    def fault_end(self, kind: str, core: Optional[int] = None,
                  **args: Any) -> None:
        """The fault episode closed."""
        self.emit(f"fault.{kind}", phase="E", core=core, **args)

    def fault_event(self, kind: str, core: Optional[int] = None,
                    **args: Any) -> None:
        """One discrete injected fault (a dropped wakeup, a stretched
        timer fire, one SMI stall)."""
        self.emit(f"fault.{kind}.hit", core=core, **args)

    def watchdog_escalate(self, queue_index: int, age_ns: int,
                          occupancy: int, woken: int) -> None:
        """The starvation watchdog tripped on a queue and early-woke
        ``woken`` sleeping threads."""
        self.emit("watchdog.escalate", queue=queue_index, age_ns=age_ns,
                  occupancy=occupancy, woken=woken)

    def watchdog_clear(self, engaged_ns: int) -> None:
        """All queues back under their bounds; escalation lifted."""
        self.emit("watchdog.clear", engaged_ns=engaged_ns)

    def tuner_overload(self, entered: bool, rho: float) -> None:
        """The adaptive tuner crossed its overload hysteresis boundary."""
        self.emit("tuner.overload", entered=entered, rho=rho)


def _noop(self, *args: Any, **kwargs: Any) -> None:
    return None


class NullTracer:
    """Disabled tracer: same surface as :class:`Tracer`, every emitter a
    no-op.  Shared process-wide as :data:`NULL_TRACER`."""

    enabled = False
    events: List[TraceEvent] = []

    def __len__(self) -> int:
        return 0

    def named(self, name: str) -> List[TraceEvent]:
        return []


for _name, _member in list(vars(Tracer).items()):
    if callable(_member) and not _name.startswith("_") and _name != "named":
        setattr(NullTracer, _name, _noop)
del _name, _member

NULL_TRACER = NullTracer()
