"""Nanosecond-resolution event tracing (the paper's Figure 1 anatomy).

The tracing layer has three parts:

* :mod:`repro.trace.tracer` — the :class:`Tracer` itself: typed events
  (thread wake/sleep/preempt, timer arm/fire, trylock outcomes,
  busy-drain spans, TX flushes) recorded with the simulator's integer-ns
  timestamps.  The :data:`NULL_TRACER` singleton is installed on every
  :class:`~repro.kernel.machine.Machine` by default; every
  instrumentation point guards on ``tracer.enabled``, so tracing is
  zero-cost (and zero-perturbation: no RNG draws, no simulator events)
  when disabled.
* :mod:`repro.trace.chrome` — a Chrome trace-event JSON exporter; the
  file loads in Perfetto / ``chrome://tracing`` with one track per core
  and per thread.
* :mod:`repro.trace.anatomy` — the wake-latency anatomy report: each
  sleep→wake→first-poll cycle decomposed into the paper's Figure 1
  stages (preamble+arm, expiry→wake, dispatch, postamble, return→poll).
"""

from repro.trace.anatomy import anatomy_report, wake_anatomy
from repro.trace.chrome import chrome_trace_dict, write_chrome_trace
from repro.trace.tracer import NULL_TRACER, NullTracer, TraceEvent, Tracer

__all__ = [
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "TraceEvent",
    "chrome_trace_dict",
    "write_chrome_trace",
    "wake_anatomy",
    "anatomy_report",
]
