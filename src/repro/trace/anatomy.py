"""Wake-latency anatomy: the paper's Figure 1 decomposed per cycle.

The paper's §3.1 argument is that a sleep call's imprecision is the sum
of distinct stages; this module reconstructs those stages for every
completed sleep→wake→first-poll cycle from the trace:

``arm``
    ``sleep.enter`` → ``sleep.armed``: syscall entry + preamble
    (copy_from_user / ktime conversion for nanosleep), including any
    preemption suffered before the timer was programmed.
``expiry_to_wake``
    programmed expiry → ``thread.wake``: hardware timer IRQ latency,
    C-state exit when the core was idle, handler time — plus, for
    nanosleep, the timer-slack the range timer added to the expiry
    itself (visible as the requested-vs-expiry gap, reported
    separately as ``slack``).
``dispatch``
    ``thread.wake`` → ``thread.dispatch``: scheduler latency (runqueue
    wait, context switch, wakeup-preemption outcome).
``postamble``
    ``thread.dispatch`` → ``sleep.return``: kernel exit path back to
    user space.
``return_to_poll``
    ``sleep.return`` → first ``trylock.*``/``drain.begin``: the loop
    top until the first queue poll.
``oversleep``
    requested duration vs. what the caller actually got
    (``sleep.return`` − ``sleep.enter`` − requested).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.metrics.latency import LatencyStats
from repro.trace.tracer import Tracer

#: report row order
STAGES = ("arm", "slack", "expiry_to_wake", "dispatch", "postamble",
          "return_to_poll", "oversleep")

_POLL_EVENTS = ("trylock.acquire", "trylock.contended", "drain.begin")


class _Cycle:
    __slots__ = ("enter", "requested", "armed", "expiry", "wake",
                 "dispatch", "ret")

    def __init__(self, enter: int, requested: int):
        self.enter = enter
        self.requested = requested
        self.armed: Optional[int] = None
        self.expiry: Optional[int] = None
        self.wake: Optional[int] = None
        self.dispatch: Optional[int] = None
        self.ret: Optional[int] = None


def wake_anatomy(tracer: Tracer) -> Dict[str, LatencyStats]:
    """Aggregate per-stage latencies over all completed sleep cycles.

    Only cycles that armed a timer are decomposed (the §5.4 immediate
    paths have no wake pipeline); a cycle completes when the thread's
    first poll after ``sleep.return`` is seen.
    """
    stats = {stage: LatencyStats() for stage in STAGES}
    open_cycles: Dict[int, _Cycle] = {}      # tid -> cycle being built
    awaiting_poll: Dict[int, _Cycle] = {}    # tid -> returned, needs poll

    for ev in tracer.events:
        tid = ev.tid
        if tid is None:
            continue
        if ev.name == "sleep.enter":
            open_cycles[tid] = _Cycle(ev.ts, ev.args.get("requested_ns", 0))
            awaiting_poll.pop(tid, None)
        elif ev.name == "sleep.armed":
            cyc = open_cycles.get(tid)
            if cyc is not None:
                cyc.armed = ev.ts
                cyc.expiry = ev.args.get("expiry")
        elif ev.name == "thread.wake":
            cyc = open_cycles.get(tid)
            if cyc is not None and cyc.armed is not None and cyc.wake is None:
                cyc.wake = ev.ts
        elif ev.name == "thread.dispatch":
            cyc = open_cycles.get(tid)
            if cyc is not None and cyc.wake is not None and cyc.dispatch is None:
                cyc.dispatch = ev.ts
        elif ev.name == "sleep.return":
            cyc = open_cycles.pop(tid, None)
            if cyc is not None and cyc.armed is not None:
                cyc.ret = ev.ts
                awaiting_poll[tid] = cyc
        elif ev.name in _POLL_EVENTS:
            cyc = awaiting_poll.pop(tid, None)
            if cyc is not None:
                _commit(stats, cyc, ev.ts)
    return stats


def _commit(stats: Dict[str, LatencyStats], cyc: _Cycle, poll_ts: int) -> None:
    if cyc.armed is None or cyc.ret is None:
        return
    stats["arm"].add(cyc.armed - cyc.enter)
    if cyc.expiry is not None:
        # slack: how far past "armed + requested" the expiry was set
        stats["slack"].add(max(0, cyc.expiry - cyc.armed - cyc.requested))
        if cyc.wake is not None:
            stats["expiry_to_wake"].add(max(0, cyc.wake - cyc.expiry))
    if cyc.wake is not None and cyc.dispatch is not None:
        stats["dispatch"].add(cyc.dispatch - cyc.wake)
        stats["postamble"].add(cyc.ret - cyc.dispatch)
    stats["return_to_poll"].add(poll_ts - cyc.ret)
    stats["oversleep"].add(max(0, cyc.ret - cyc.enter - cyc.requested))


def anatomy_report(tracer: Tracer, title: str = "wake-latency anatomy") -> str:
    """Plain-text per-stage table (count, mean/p50/p99/max in us)."""
    from repro.harness.report import render_table

    stats = wake_anatomy(tracer)
    rows: List[tuple] = []
    for stage in STAGES:
        st = stats[stage]
        if st.count == 0:
            rows.append((stage, 0, "-", "-", "-", "-"))
            continue
        rows.append((
            stage,
            st.count,
            f"{st.mean() / 1e3:.3f}",
            f"{st.percentile(50) / 1e3:.3f}",
            f"{st.percentile(99) / 1e3:.3f}",
            f"{st.percentile(100) / 1e3:.3f}",
        ))
    return render_table(
        title,
        ["stage", "cycles", "mean us", "p50 us", "p99 us", "max us"],
        rows,
        note="stages per Figure 1: enter→arm→expiry→wake→dispatch→return→poll",
    )
