"""Uniform runners for the three systems under study.

Each runner builds a fresh :class:`~repro.kernel.machine.Machine`, wires
traffic → queues → application → system, runs for a simulated duration,
and returns a result record with the metrics the paper reports: loss,
CPU utilization (100% = one core), latency distribution, throughput,
and — for Metronome — renewal-cycle statistics and controller state.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional

from repro import config
from repro.core.metronome import MetronomeGroup, WatchdogConfig
from repro.core.tuning import AdaptiveTuner, TunerBase
from repro.dpdk.app import PacketApp
from repro.dpdk.lcore import PollModeLcore
from repro.faults.plan import TRAFFIC_KINDS, FaultPlan
from repro.kernel.machine import Machine
from repro.metrics.latency import LatencyStats
from repro.nic.device import NicPort
from repro.nic.flows import FlowSet
from repro.nic.rxqueue import RxQueue
from repro.nic.topology import rss_shard
from repro.nic.traffic import ArrivalProcess, CbrProcess, FaultableProcess
from repro.sim.snapshot import MachineState
from repro.sim.units import MS, SEC, US


def default_app() -> PacketApp:
    """The default workload: l3fwd with the standard flow population."""
    from repro.apps.l3fwd import L3FwdApp

    return L3FwdApp(flows=FlowSet())


def as_arrival_process(rate: object) -> ArrivalProcess:
    """Coerce a pps count into CBR traffic; processes pass through."""
    return rate if isinstance(rate, ArrivalProcess) else CbrProcess(int(rate))


@dataclass
class BaseRunResult:
    """Metrics common to every system."""

    duration_ns: int
    offered: int
    delivered: int
    drops: int
    cpu_utilization: float
    energy_j: float
    latency: LatencyStats

    @property
    def loss_fraction(self) -> float:
        return self.drops / self.offered if self.offered else 0.0

    @property
    def throughput_mpps(self) -> float:
        return self.delivered / (self.duration_ns / SEC) / 1e6

    @property
    def tracer(self):
        """The machine's event tracer (NULL_TRACER unless ``trace=True``)."""
        machine = getattr(self, "machine", None)
        return machine.tracer if machine is not None else None


@dataclass
class MetronomeRunResult(BaseRunResult):
    mean_vacation_us: float = 0.0
    mean_busy_us: float = 0.0
    mean_n_vacation: float = 0.0
    cycles: int = 0
    busy_tries: int = 0
    wake_rounds: int = 0
    rho: float = 0.0
    ts_us: float = 0.0
    group: Optional[MetronomeGroup] = field(default=None, repr=False)
    machine: Optional[Machine] = field(default=None, repr=False)
    checkpoint: Optional[MachineState] = field(default=None, repr=False)

    @property
    def busy_try_fraction(self) -> float:
        return self.busy_tries / self.wake_rounds if self.wake_rounds else 0.0


@dataclass
class DpdkRunResult(BaseRunResult):
    lcore: Optional[PollModeLcore] = field(default=None, repr=False)
    machine: Optional[Machine] = field(default=None, repr=False)
    checkpoint: Optional[MachineState] = field(default=None, repr=False)


@dataclass
class XdpRunResult(BaseRunResult):
    irqs: int = 0
    machine: Optional[Machine] = field(default=None, repr=False)
    checkpoint: Optional[MachineState] = field(default=None, repr=False)


def _run_with_checkpoint(
    machine: Machine,
    until: int,
    checkpoint_at_ns: Optional[int],
    at_checkpoint: Optional[Callable[[Machine, MachineState], None]],
    label: str,
    prior: Optional[MachineState] = None,
) -> Optional[MachineState]:
    """Advance to ``until``, pausing once at ``checkpoint_at_ns``.

    The pause takes a :meth:`Machine.snapshot` (pure, so the run's
    results are unchanged) and hands ``(machine, state)`` to
    ``at_checkpoint``.  The hook is the fork-into-variant-futures seam:
    it may mutate the live machine (retune the controller, inject an
    extra workload, ...) so the remainder of the run explores a variant
    future sharing the snapshot's verified prefix.  ``prior`` threads an
    already-taken checkpoint through multi-phase runs (warmup, then the
    measured window) so the snapshot is taken exactly once.
    """
    if (prior is None and checkpoint_at_ns is not None
            and machine.now <= checkpoint_at_ns <= until):
        machine.run(until=checkpoint_at_ns)
        prior = machine.snapshot(label=label)
        if at_checkpoint is not None:
            at_checkpoint(machine, prior)
    machine.run(until=until)
    return prior


def _make_queue(
    machine: Machine,
    rate: ArrivalProcess,
    ring_size: int,
    sample_every: int,
    flows: Optional[FlowSet] = None,
) -> RxQueue:
    return RxQueue(
        machine.sim,
        rate,
        flows=flows or FlowSet(),
        ring_size=ring_size,
        sample_every=sample_every,
    )


def run_metronome(
    rate: object,
    duration_ms: int = 100,
    app: Optional[PacketApp] = None,
    cfg: Optional[config.SimConfig] = None,
    tuner: Optional[TunerBase] = None,
    sleep_service: str = "hr_sleep",
    num_threads: Optional[int] = None,
    cores: Optional[List[int]] = None,
    ring_size: Optional[int] = None,
    tx_batch: Optional[int] = None,
    nice: int = 0,
    flush_before_sleep: bool = False,
    setup_hook: Optional[Callable[[Machine, MetronomeGroup], None]] = None,
    warmup_ms: int = 0,
    trace: bool = False,
    fault_plan: Optional[FaultPlan] = None,
    watchdog: Optional[WatchdogConfig] = None,
    rotate_scan: bool = True,
    checks: bool = False,
    checkpoint_at_ns: Optional[int] = None,
    at_checkpoint: Optional[Callable[[Machine, MachineState], None]] = None,
) -> MetronomeRunResult:
    """Run Metronome over one shared Rx queue.

    ``rate`` is either a pps int (CBR traffic) or a ready
    :class:`ArrivalProcess`.  ``setup_hook`` runs after the group starts
    (e.g. to add interference workloads or samplers).  ``trace=True``
    enables nanosecond event tracing (see :mod:`repro.trace`) without
    perturbing the run; read it back via ``result.tracer``.

    ``fault_plan`` installs a :class:`~repro.faults.FaultEngine` before
    the workload is built (traffic-side faults wrap the arrival process
    in a :class:`~repro.nic.traffic.FaultableProcess`); ``watchdog``
    enables the group's starvation watchdog — together they form the
    chaos harness's adversarial setup (see :mod:`repro.faults.chaos`).

    ``checks=True`` enables the :mod:`repro.check` invariant monitors
    (zero-perturbation, like tracing) and runs their quiesce pass after
    the run; read violations back via ``result.machine.checks``.

    ``checkpoint_at_ns`` pauses the run once at that absolute virtual
    time to take a pure :meth:`Machine.snapshot` (returned as
    ``result.checkpoint``); ``at_checkpoint(machine, state)`` may then
    mutate the live machine to fork a variant future off the verified
    prefix (see :mod:`repro.sim.snapshot`).
    """
    cfg = cfg or config.SimConfig()
    machine = Machine(cfg)
    if trace:
        machine.enable_tracing()
    if checks:
        machine.enable_checks()
    process = as_arrival_process(rate)
    if fault_plan is not None:
        engine = machine.install_faults(fault_plan)
        if any(s.kind in TRAFFIC_KINDS for s in fault_plan.specs):
            process = FaultableProcess(process)
            engine.register_process(process)
    queue = _make_queue(
        machine,
        process,
        ring_size or cfg.rx_ring_size,
        cfg.latency_sample_every,
    )
    app = app or default_app()
    m = num_threads if num_threads is not None else cfg.num_threads
    # seed the adaptive controller mid-range so early cycles are sane
    tuner = tuner or AdaptiveTuner(
        vbar_ns=cfg.vbar_ns, tl_ns=cfg.tl_ns, m=m, alpha=cfg.alpha,
        initial_rho=0.5,
    )
    group = MetronomeGroup(
        machine,
        [queue],
        app,
        tuner=tuner,
        sleep_service=sleep_service,
        num_threads=m,
        cores=cores,
        nice=nice,
        tx_batch=tx_batch,
        flush_before_sleep=flush_before_sleep,
        rotate_scan=rotate_scan,
        watchdog=watchdog,
    )
    group.start()
    if setup_hook is not None:
        setup_hook(machine, group)
    # warmup lets the controller settle before measuring
    t_start = warmup_ms * MS
    ckpt = None
    if t_start:
        ckpt = _run_with_checkpoint(
            machine, t_start, checkpoint_at_ns, at_checkpoint, "metronome"
        )

    def exec_busy() -> int:
        return sum(
            machine.cores[c].total_busy_ns() - machine.cores[c].exit_stall_ns
            for c in group.cores
        )

    busy0 = exec_busy()
    e0 = machine.energy_joules()
    ckpt = _run_with_checkpoint(
        machine, t_start + duration_ms * MS, checkpoint_at_ns, at_checkpoint,
        "metronome", prior=ckpt,
    )
    busy1 = exec_busy()

    queue.sync()
    if machine.checks is not None:
        machine.checks.quiesce(consumed=group.total_packets)
    cs = group.cycle_stats()
    duration = duration_ms * MS
    return MetronomeRunResult(
        duration_ns=duration,
        offered=queue.arrived_total,
        delivered=group.total_packets,
        drops=queue.drops,
        cpu_utilization=(busy1 - busy0) / duration,
        energy_j=machine.energy_joules() - e0,
        latency=group.latency,
        mean_vacation_us=cs.mean_vacation_ns() / US if cs.count else 0.0,
        mean_busy_us=cs.mean_busy_ns() / US if cs.count else 0.0,
        mean_n_vacation=cs.mean_n_vacation() if cs.count else 0.0,
        cycles=cs.count,
        busy_tries=group.busy_tries,
        wake_rounds=group.total_iterations,
        rho=group.tuner.rho,
        ts_us=group.tuner.ts_ns() / US,
        group=group,
        machine=machine,
        checkpoint=ckpt,
    )


def run_dpdk(
    rate: object,
    duration_ms: int = 100,
    app: Optional[PacketApp] = None,
    cfg: Optional[config.SimConfig] = None,
    core: int = 0,
    nice: int = 0,
    ring_size: Optional[int] = None,
    setup_hook: Optional[Callable[[Machine, PollModeLcore], None]] = None,
    trace: bool = False,
    checks: bool = False,
    checkpoint_at_ns: Optional[int] = None,
    at_checkpoint: Optional[Callable[[Machine, MachineState], None]] = None,
) -> DpdkRunResult:
    """Run the static continuous-polling DPDK baseline (one lcore)."""
    cfg = cfg or config.SimConfig()
    machine = Machine(cfg)
    if trace:
        machine.enable_tracing()
    if checks:
        machine.enable_checks()
    process = as_arrival_process(rate)
    queue = _make_queue(
        machine, process, ring_size or cfg.rx_ring_size, cfg.latency_sample_every
    )
    app = app or default_app()
    latency = LatencyStats()
    lcore = PollModeLcore(machine, [queue], app, core=core, nice=nice)
    lcore.tx_buffers[0].on_tx = lambda pkt: latency.add(pkt.latency_ns)
    lcore.start()
    if setup_hook is not None:
        setup_hook(machine, lcore)
    e0 = machine.energy_joules()
    ckpt = _run_with_checkpoint(
        machine, duration_ms * MS, checkpoint_at_ns, at_checkpoint, "dpdk"
    )
    queue.sync()
    if machine.checks is not None:
        machine.checks.quiesce(consumed=lcore.rx_packets)
    return DpdkRunResult(
        duration_ns=duration_ms * MS,
        offered=queue.arrived_total,
        delivered=lcore.rx_packets,
        drops=queue.drops,
        cpu_utilization=machine.cpu_utilization([core]),
        energy_j=machine.energy_joules() - e0,
        latency=latency,
        lcore=lcore,
        machine=machine,
        checkpoint=ckpt,
    )


def run_xdp(
    rate_pps: int,
    duration_ms: int = 100,
    app: Optional[PacketApp] = None,
    cfg: Optional[config.SimConfig] = None,
    num_queues: int = 1,
    cores: Optional[List[int]] = None,
    ring_size: Optional[int] = None,
    prewarmed: bool = True,
    setup_hook: Optional[Callable[[Machine, "XdpDriver"], None]] = None,
    trace: bool = False,
    checks: bool = False,
    checkpoint_at_ns: Optional[int] = None,
    at_checkpoint: Optional[Callable[[Machine, MachineState], None]] = None,
) -> XdpRunResult:
    """Run the XDP baseline: ``num_queues`` queues, 1:1 queue-to-core.

    Traffic is split evenly across the queues (the paper's ethtool flow
    steering).  ``rate_pps`` may also be a ready
    :class:`ArrivalProcess` (e.g. trace replay): a schedule-backed
    process (trace replay) is RSS flow-sharded across the queues via
    the Toeplitz redirection table
    (:func:`repro.nic.topology.rss_shard`), conserving the master
    schedule exactly; a synthetic stateful process without a fixed
    schedule still requires ``num_queues=1``.  ``prewarmed=False``
    starts with a cold page pool, for the burst-reactivity experiment.
    """
    from repro.xdp.driver import XdpDriver

    cfg = cfg or config.SimConfig()
    machine = Machine(cfg)
    if trace:
        machine.enable_tracing()
    if checks:
        machine.enable_checks()
    flows = None
    if isinstance(rate_pps, ArrivalProcess):
        if num_queues == 1:
            processes = [rate_pps]
        else:
            # the shard mapping and the Rx tagger must resolve flow ids
            # through the same population, so share one FlowSet
            flows = FlowSet()
            processes = rss_shard(rate_pps, num_queues, flows=flows)
    else:
        per_queue = int(rate_pps) // num_queues
        processes = [CbrProcess(per_queue) for _ in range(num_queues)]
    port = NicPort(
        machine.sim,
        processes,
        flows=flows,
        ring_size=ring_size or cfg.rx_ring_size,
        sample_every=cfg.latency_sample_every,
    )
    if app is None:
        # same functional workload, XDP-calibrated per-packet cost
        # (page handling + eBPF program + DMA sync; see config)
        app = default_app()
        app.per_packet_ns = config.XDP_PKT_NS
    driver = XdpDriver(machine, port, app, cores=cores)
    if prewarmed:
        for q in driver.queues:
            q._warm_remaining = 0
            q._last_active_ns = 0
    driver.start()
    if setup_hook is not None:
        setup_hook(machine, driver)
    e0 = machine.energy_joules()
    ckpt = _run_with_checkpoint(
        machine, duration_ms * MS, checkpoint_at_ns, at_checkpoint, "xdp"
    )
    if machine.checks is not None:
        for q in driver.queues:
            q.queue.sync()
        machine.checks.quiesce()
    return XdpRunResult(
        duration_ns=duration_ms * MS,
        offered=port.total_arrived(),
        delivered=driver.total_packets,
        drops=port.total_drops(),
        cpu_utilization=driver.cpu_utilization(),
        energy_j=machine.energy_joules() - e0,
        latency=driver.latency,
        irqs=driver.total_irqs,
        machine=machine,
        checkpoint=ckpt,
    )
