"""The paper's published numbers, transcribed for paper-vs-measured output.

Sources are the tables of Faltelli et al., CoNEXT 2020, plus figure
values the text states explicitly.  Figures we can only read
qualitatively carry shape descriptions used in EXPERIMENTS.md.
"""

# Table 1: measured sleep period lengths (us) — (mean, 99p)
TABLE1 = {
    ("nanosleep", 1): (58.95, 69.91),
    ("nanosleep", 5): (62.45, 66.75),
    ("nanosleep", 10): (67.59, 76.15),
    ("nanosleep", 50): (107.75, 115.69),
    ("nanosleep", 100): (158.26, 165.54),
    ("nanosleep", 200): (258.1, 269.97),
    ("hr_sleep", 1): (3.803, 3.920),
    ("hr_sleep", 5): (8.642, 9.00),
    ("hr_sleep", 10): (14.76, 15.13),
    ("hr_sleep", 50): (57.72, 68.87),
    ("hr_sleep", 100): (107.89, 115.64),
    ("hr_sleep", 200): (208.39, 215.35),
}

# Table 2: target V (us) -> (measured V us, measured B us, N_V, loss permille)
TABLE2 = {
    5: (11.67, 13.40, 172.39, 0.0),
    10: (19.55, 20.24, 287.77, 0.0),
    12: (21.99, 22.86, 326.30, 0.0037),
    15: (26.23, 27.25, 385.18, 0.023),
    20: (33.28, 38.32, 494.39, 1.180),
}

# Table 3: (ring size, target V us) -> nanosleep-in-Metronome loss %
TABLE3 = {
    (1024, 10): 6.166,
    (2048, 10): 4.08,
    (4096, 10): 3.893,
    (4096, 1): 0.845,
}

# Table 4: throughput (Mpps) when sharing cores with ferret
TABLE4 = {
    "dpdk_static_shared": 7.31,    # one core, shared with ferret
    "metronome_shared": 14.88,     # 3 cores shared: "no packet loss"
}

# §5 scalar statements
LINE_RATE_MPPS = 14.88
BIDIR_MPPS_PER_PORT = 11.61
IPSEC_MAX_MPPS = 5.61
XDP_MAX_MPPS = 13.57
DPDK_MIN_LATENCY_US = 6.83
METRONOME_TUNED_LATENCY_US = 7.21
METRONOME_CPU_AT_LINE_RATE = 0.60    # "40% CPU saving even under line-rate"
METRONOME_CPU_AT_05GBPS = 0.186      # "around 18.6% CPU usage at 0.5Gbps"
METRONOME_CPU_NO_TRAFFIC = 0.20      # Figure 11b: "about 20% with no traffic"
FERRET_SLOWDOWN_WITH_POLLING = 3.0   # "almost triple its duration"
FERRET_SLOWDOWN_WITH_METRONOME = 1.1  # "only causes a 10% increase"
ONDEMAND_MAX_POWER_SAVING = 0.27     # "around 27%" at no traffic

# Figure 12b (read from the bars, approximate): total CPU utilization
FIG12B_CPU = {
    # gbps: (metronome, dpdk, xdp)   100% = one core
    0.5: (0.186, 1.0, 0.34),
    1.0: (0.25, 1.0, 0.52),
    5.0: (0.45, 1.0, 2.2),
    10.0: (0.60, 1.0, 4.0),
}

# Figure 15 (read from the lines, approximate): CPU at line rate
FIG15_IPSEC_CPU_LINE_RATE = 1.05     # one thread pinned busy + backups
FIG15_FLOWATCHER_CPU_GAIN = 0.5      # "50% gain even under line rate"
