"""100G many-queue scale-out runner and figures (ROADMAP item 2).

The paper validates Metronome at 10 GbE with 2 queues and a handful of
threads; production NICs are 100G with 16–64 RSS queues spread across
NUMA sockets.  :func:`run_metronome_scaled` builds that machine: a
multi-queue :class:`~repro.nic.topology.NicDevice` with per-queue NUMA
placement, dozens of Metronome threads over the flattened queue list,
and the cross-socket wake/memory penalties of
:mod:`repro.kernel.machine` / :mod:`repro.core.metronome` active
whenever ``numa_nodes > 1``.

Two scenario functions feed the campaign registry:

* :func:`scale_queue_count` — loss/latency/CPU as the queue count grows
  2→64 at fixed 100G offered load and a fixed thread:queue ratio;
* :func:`scale_thread_ratio` — the same machine at 16 queues while the
  thread:queue ratio sweeps 0.5→3, probing whether the adaptive T_S
  rule still converges at 8× the paper's core count and whether
  cross-socket wake latency breaks the ε-bound of eq. 7 (the ``V̄
  err %`` column).
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro import config
from repro.core.metronome import MetronomeGroup
from repro.core.tuning import AdaptiveTuner, TunerBase
from repro.dpdk.app import PacketApp
from repro.harness.experiment import MetronomeRunResult, default_app
from repro.kernel.machine import Machine
from repro.nic.flows import FlowSet
from repro.nic.rss import RssSteering
from repro.nic.topology import NicDevice, PortSpec
from repro.nic.traffic import CbrProcess, gbps_to_pps
from repro.sim.units import MS, US


def queue_node_map(num_queues: int, numa_nodes: int) -> List[int]:
    """Contiguous-block queue→node placement, mirroring
    :class:`~repro.kernel.cpu.Core`'s core→node formula so queue ``i``
    and core ``i`` land on the same socket at a 1:1 thread ratio."""
    nn = max(1, numa_nodes)
    return [i * nn // max(1, num_queues) for i in range(num_queues)]


def run_metronome_scaled(
    num_queues: int,
    num_threads: int,
    gbps: float = 100.0,
    frame_len: int = 64,
    duration_ms: int = 24,
    numa_nodes: int = 2,
    cfg: Optional[config.SimConfig] = None,
    tuner: Optional[TunerBase] = None,
    app: Optional[PacketApp] = None,
    checks: bool = False,
    seed: int = config.DEFAULT_SEED,
) -> MetronomeRunResult:
    """Run Metronome over a many-queue, multi-socket 100G device.

    The offered ``gbps`` (at ``frame_len`` serialization timing) is
    split evenly across ``num_queues`` CBR processes — the aggregate is
    exact: the integer remainder is spread one pps over the first
    queues.  Queues and cores are both placed on ``numa_nodes`` sockets
    in contiguous blocks, so remote-socket penalties engage exactly for
    the cross-block (thread, queue) pairs.  ``cfg`` overrides the
    machine config wholesale (its ``num_cores``/``numa_nodes`` must
    accommodate the requested scale).
    """
    if num_queues < 1 or num_threads < 1:
        raise ValueError("need at least one queue and one thread")
    if cfg is None:
        nn = max(1, min(numa_nodes, num_threads))
        cfg = config.SimConfig(
            seed=seed, num_cores=num_threads, numa_nodes=nn,
        )
    machine = Machine(cfg)
    if checks:
        machine.enable_checks()
    total_pps = gbps_to_pps(gbps, frame_len)
    base, rem = divmod(total_pps, num_queues)
    processes = [
        CbrProcess(base + (1 if i < rem else 0)) for i in range(num_queues)
    ]
    flows = FlowSet()
    device = NicDevice(
        machine.sim,
        [
            PortSpec(
                processes,
                node=0,
                queue_nodes=queue_node_map(num_queues, machine.numa_nodes),
                flows=flows,
                rss=RssSteering(num_queues),
            )
        ],
        ring_size=cfg.rx_ring_size,
        sample_every=cfg.latency_sample_every,
    )
    tuner = tuner or AdaptiveTuner(
        vbar_ns=cfg.vbar_ns, tl_ns=cfg.tl_ns, m=num_threads,
        alpha=cfg.alpha, initial_rho=0.5,
    )
    group = MetronomeGroup(
        machine,
        device.queues,
        app or default_app(),
        tuner=tuner,
        num_threads=num_threads,
        cores=list(range(num_threads)),
    )
    group.start()

    def exec_busy() -> int:
        return sum(
            machine.cores[c].total_busy_ns() - machine.cores[c].exit_stall_ns
            for c in group.cores
        )

    busy0 = exec_busy()
    e0 = machine.energy_joules()
    machine.run(until=duration_ms * MS)
    busy1 = exec_busy()
    offered = device.total_arrived()  # syncs every queue
    if machine.checks is not None:
        machine.checks.quiesce(consumed=group.total_packets)
    cs = group.cycle_stats()
    duration = duration_ms * MS
    return MetronomeRunResult(
        duration_ns=duration,
        offered=offered,
        delivered=group.total_packets,
        drops=device.total_drops(),
        cpu_utilization=(busy1 - busy0) / duration,
        energy_j=machine.energy_joules() - e0,
        latency=group.latency,
        mean_vacation_us=cs.mean_vacation_ns() / US if cs.count else 0.0,
        mean_busy_us=cs.mean_busy_ns() / US if cs.count else 0.0,
        mean_n_vacation=cs.mean_n_vacation() if cs.count else 0.0,
        cycles=cs.count,
        busy_tries=group.busy_tries,
        wake_rounds=group.total_iterations,
        rho=group.tuner.rho,
        ts_us=group.tuner.ts_ns() / US,
        group=group,
        machine=machine,
    )


def _vbar_err_pct(res: MetronomeRunResult, vbar_ns: int) -> float:
    """Relative error of the measured V̄ against the eq.-7 target, in
    percent; -1.0 when the run produced no renewal cycles to measure."""
    if res.cycles == 0:
        return -1.0
    return round((res.mean_vacation_us - vbar_ns / US) / (vbar_ns / US) * 100,
                 4)


def scale_queue_count(
    num_queues_values: Sequence[int] = (2, 4, 8, 16, 32, 64),
    duration_ms: int = 24,
    gbps: float = 100.0,
    threads_per_queue: float = 0.5,
    numa_nodes: int = 2,
    seed: int = config.DEFAULT_SEED,
) -> List[Tuple]:
    """Rows: (queues, threads, loss %, mean us, p99 us, cpu, ts us,
    V̄ err %).

    Fixed aggregate 100G/64B offered load, thread count scaling with
    the queue count (floor 3 — the paper's minimum M — cap 48).  Loss
    falls as queues and threads grow because the fixed aggregate splits
    into ever-lighter per-queue streams; the last two columns are the
    headline: does adaptive T_S still land near the V̄ target at 8× the
    paper's core count.
    """
    rows: List[Tuple] = []
    for nq in num_queues_values:
        threads = max(3, min(48, round(nq * threads_per_queue)))
        res = run_metronome_scaled(
            nq, threads, gbps=gbps, duration_ms=duration_ms,
            numa_nodes=numa_nodes, seed=seed,
        )
        rows.append((
            nq,
            threads,
            round(res.loss_fraction * 100, 4),
            round(res.latency.mean() / 1e3, 3),
            round(res.latency.percentile(99) / 1e3, 3),
            round(res.cpu_utilization, 4),
            round(res.ts_us, 3),
            _vbar_err_pct(res, res.machine.cfg.vbar_ns),
        ))
    return rows


def scale_thread_ratio(
    ratios: Sequence[float] = (0.5, 1.0, 2.0, 3.0),
    num_queues: int = 16,
    duration_ms: int = 24,
    gbps: float = 100.0,
    numa_nodes: int = 2,
    seed: int = config.DEFAULT_SEED,
) -> List[Tuple]:
    """Rows: (ratio, threads, loss %, mean us, p99 us, cpu,
    busy-try frac, V̄ err %).

    16 queues at 100G while the thread:queue ratio sweeps — under-
    provisioned (0.5) through heavily over-provisioned (3.0).  The
    busy-try fraction is the §3.2 trylock-diversity metric: it should
    rise with the ratio as more threads race for the same queues.
    """
    rows: List[Tuple] = []
    for ratio in ratios:
        threads = max(1, min(48, int(num_queues * ratio)))
        res = run_metronome_scaled(
            num_queues, threads, gbps=gbps, duration_ms=duration_ms,
            numa_nodes=numa_nodes, seed=seed,
        )
        rows.append((
            ratio,
            threads,
            round(res.loss_fraction * 100, 4),
            round(res.latency.mean() / 1e3, 3),
            round(res.latency.percentile(99) / 1e3, 3),
            round(res.cpu_utilization, 4),
            round(res.busy_try_fraction, 4),
            _vbar_err_pct(res, res.machine.cfg.vbar_ns),
        ))
    return rows
