"""One scenario function per paper table/figure (DESIGN.md §3).

Every function returns plain data (lists of row tuples or dataclasses)
that the corresponding bench renders next to the paper's numbers.
Durations are parameterized so tests can run abbreviated versions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Sequence, Tuple

from repro import config
from repro.core.model import pdf_vacation
from repro.core.tuning import FixedTuner
from repro.harness.experiment import (
    run_dpdk,
    run_metronome,
    run_xdp,
)
from repro.kernel.machine import Machine
from repro.kernel.thread import Exit
from repro.metrics.cpu import CpuSampler
from repro.metrics.latency import LatencyStats
from repro.metrics.recorder import TimeSeries
from repro.nic.traffic import CbrProcess, gbps_to_pps, triangle_ramp
from repro.sim.units import MS, SEC, US

LINE = config.LINE_RATE_PPS


# ---------------------------------------------------------------------- #
# Table 1 — sleep precision
# ---------------------------------------------------------------------- #

def table1_sleep_precision(
    samples: int = 10_000,
    targets_us: Sequence[int] = (1, 5, 10, 50, 100, 200),
    services: Sequence[str] = ("nanosleep", "hr_sleep"),
    seed: int = config.DEFAULT_SEED,
) -> List[Tuple[str, int, float, float]]:
    """Rows: (service, target_us, mean_us, p99_us).

    Method mirrors §3.3.1: a SCHED_OTHER thread on an isolated core
    timestamps around each sleep call.
    """
    rows: List[Tuple[str, int, float, float]] = []
    for service_name in services:
        for target in targets_us:
            cfg = config.SimConfig(num_cores=2, seed=seed, os_noise=False)
            machine = Machine(cfg)
            stats = LatencyStats()

            def body(kt, machine=machine, stats=stats,
                     service_name=service_name, target=target):
                service = machine.sleep_service(service_name)
                for _ in range(samples):
                    t0 = machine.sim.now
                    yield from service.call(kt, target * US)
                    stats.add(machine.sim.now - t0)
                yield Exit()

            machine.spawn(body, name=f"{service_name}-{target}us", core=0)
            machine.run()
            rows.append(
                (service_name, target,
                 stats.mean() / 1e3, stats.percentile(99) / 1e3)
            )
    return rows


# ---------------------------------------------------------------------- #
# Figure 2 — CPU and energy of 1M-iteration Metronome loops, no traffic
# ---------------------------------------------------------------------- #

@dataclass
class Fig2Point:
    service: str
    timeout_us: int
    threads: int
    cpu_seconds: float          # getrusage-style total thread CPU time
    energy_j: float
    wall_seconds: float


def fig2_cpu_energy(
    iterations: int = 20_000,
    timeouts_us: Sequence[int] = (20, 100),
    thread_counts: Sequence[int] = (1, 2, 3, 4, 5, 6),
    seed: int = config.DEFAULT_SEED,
) -> List[Fig2Point]:
    """§3.3.2/.3: Metronome loop with fixed timeout, zero traffic.

    Each thread runs ``iterations`` loop iterations, then exits; CPU is
    read getrusage-style around the slaves' execution, energy via RAPL.
    """
    from repro.core.metronome import MetronomeGroup
    from repro.dpdk.app import CountingApp
    from repro.nic.rxqueue import RxQueue

    points: List[Fig2Point] = []
    for service_name in ("nanosleep", "hr_sleep"):
        for timeout in timeouts_us:
            for m in thread_counts:
                cfg = config.SimConfig(
                    num_cores=max(6, m), seed=seed, os_noise=False
                )
                machine = Machine(cfg)
                queue = RxQueue(machine.sim, CbrProcess(0))
                group = MetronomeGroup(
                    machine,
                    [queue],
                    CountingApp(),
                    tuner=FixedTuner(ts_ns=timeout * US, tl_ns=timeout * US),
                    sleep_service=service_name,
                    num_threads=m,
                    cores=list(range(m)),
                    iterations=iterations,
                )
                group.start()
                e0 = machine.energy_joules()
                done = machine.sim.event()
                remaining = {"n": m}

                def _one_done(_ev, remaining=remaining, done=done):
                    remaining["n"] -= 1
                    if remaining["n"] == 0:
                        done.succeed()

                for t in group.threads:
                    t.exited.add_callback(_one_done)
                # generous bound: iterations * (timeout + worst overhead)
                bound = iterations * (timeout + 80) * US * 2 + 10 * MS
                machine.run_until_event(done, hard_limit=bound)
                if not group.all_done():
                    raise RuntimeError("fig2 run did not finish; raise bound")
                points.append(
                    Fig2Point(
                        service=service_name,
                        timeout_us=timeout,
                        threads=m,
                        cpu_seconds=group.cpu_time_ns() / SEC,
                        energy_j=machine.energy_joules() - e0,
                        wall_seconds=machine.sim.now / SEC,
                    )
                )
    return points


# ---------------------------------------------------------------------- #
# Table 2 — V̄ sweep at line rate
# ---------------------------------------------------------------------- #

def table2_vbar_sweep(
    vbars_us: Sequence[int] = (5, 10, 12, 15, 20),
    duration_ms: int = 100,
    seed: int = config.DEFAULT_SEED,
) -> List[Tuple[int, float, float, float, float]]:
    """Rows: (target V us, measured V us, measured B us, N_V, loss permille)."""
    rows = []
    for vbar in vbars_us:
        cfg = config.SimConfig(seed=seed, vbar_ns=vbar * US)
        res = run_metronome(LINE, duration_ms=duration_ms, cfg=cfg)
        rows.append(
            (vbar, res.mean_vacation_us, res.mean_busy_us,
             res.mean_n_vacation, res.loss_fraction * 1e3)
        )
    return rows


# ---------------------------------------------------------------------- #
# Figure 5 — vacation PDF, analysis vs experiment (T_S = T_L)
# ---------------------------------------------------------------------- #

@dataclass
class Fig5Series:
    m: int
    bin_centers_us: List[float]
    empirical_density: List[float]   # per-us density
    model_density: List[float]
    beyond_tl_fraction: float        # rare OS-delay tail (paper's comment)


def fig5_vacation_pdf(
    m_values: Sequence[int] = (2, 3, 5),
    timeout_us: int = 50,
    rate_pps: int = None,
    duration_ms: int = 300,
    bins: int = 25,
    seed: int = config.DEFAULT_SEED,
) -> List[Fig5Series]:
    """§4.2.4: histogram of measured V against eq. (9), T_S = T_L = 50 us.

    Traffic is Poisson: the decorrelation assumption rests on *random
    service durations* de-synchronizing the threads (§4.2.2); perfectly
    deterministic CBR lets wake phases lock instead of mixing, which is
    a real (if lab-exotic) phenomenon the model does not describe.
    """
    from repro.nic.traffic import PoissonProcess
    from repro.sim.rng import RandomStreams

    rate = rate_pps if rate_pps is not None else config.LINE_RATE_PPS
    out: List[Fig5Series] = []
    for m in m_values:
        cfg = config.SimConfig(seed=seed, num_cores=max(6, m))
        tuner = FixedTuner(ts_ns=timeout_us * US, tl_ns=timeout_us * US)
        process = PoissonProcess(
            rate, RandomStreams(seed).numpy_stream(f"fig5-m{m}")
        )
        res = run_metronome(
            process, duration_ms=duration_ms, cfg=cfg, tuner=tuner,
            num_threads=m, cores=list(range(m)),
        )
        vacations = [v / US for v in res.group.cycle_stats().vacations_ns()]
        if not vacations:
            raise RuntimeError("no vacation samples collected")
        hi = timeout_us * 1.0
        width = hi / bins
        counts = [0] * bins
        beyond = 0
        for v in vacations:
            idx = int(v / width)
            if idx < bins:
                counts[idx] += 1
            elif v > timeout_us * 1.5:
                beyond += 1
        total = len(vacations)
        centers = [(i + 0.5) * width for i in range(bins)]
        empirical = [c / total / width for c in counts]
        model = [
            pdf_vacation(x, timeout_us, timeout_us, m) for x in centers
        ]
        out.append(
            Fig5Series(
                m=m,
                bin_centers_us=centers,
                empirical_density=empirical,
                model_density=model,
                beyond_tl_fraction=beyond / total,
            )
        )
    return out


# ---------------------------------------------------------------------- #
# Figure 6 — latency & CPU vs target V̄
# ---------------------------------------------------------------------- #

def fig6_latency_cpu(
    vbars_us: Sequence[int] = (5, 10, 15, 20),
    rates_gbps: Sequence[float] = (1.0, 5.0, 10.0),
    duration_ms: int = 60,
    seed: int = config.DEFAULT_SEED,
) -> List[Tuple[float, int, float, float, float]]:
    """Rows: (gbps, vbar_us, mean latency us, p99 us, cpu)."""
    rows = []
    for gbps in rates_gbps:
        for vbar in vbars_us:
            cfg = config.SimConfig(seed=seed, vbar_ns=vbar * US)
            res = run_metronome(
                gbps_to_pps(gbps), duration_ms=duration_ms, cfg=cfg
            )
            rows.append(
                (gbps, vbar, res.latency.mean() / 1e3,
                 res.latency.percentile(99) / 1e3, res.cpu_utilization)
            )
    return rows


# ---------------------------------------------------------------------- #
# Figure 7 — busy tries and CPU vs T_L
# ---------------------------------------------------------------------- #

def fig7_tl_sweep(
    tls_us: Sequence[int] = (100, 200, 300, 400, 500, 600, 700),
    duration_ms: int = 60,
    seed: int = config.DEFAULT_SEED,
) -> List[Tuple[int, float, float]]:
    """Rows: (T_L us, busy-try fraction, cpu).  Line rate, V̄ = 10 us."""
    rows = []
    for tl in tls_us:
        cfg = config.SimConfig(seed=seed, tl_ns=tl * US)
        res = run_metronome(LINE, duration_ms=duration_ms, cfg=cfg)
        rows.append((tl, res.busy_try_fraction, res.cpu_utilization))
    return rows


# ---------------------------------------------------------------------- #
# Figure 8 — busy tries and CPU vs M
# ---------------------------------------------------------------------- #

def fig8_m_sweep(
    m_values: Sequence[int] = (2, 3, 4, 5, 6, 7, 8),
    duration_ms: int = 60,
    seed: int = config.DEFAULT_SEED,
) -> List[Tuple[int, float, float]]:
    """Rows: (M, busy-try fraction, cpu).  Line rate, defaults otherwise."""
    rows = []
    for m in m_values:
        cfg = config.SimConfig(seed=seed, num_cores=max(6, m))
        res = run_metronome(
            LINE, duration_ms=duration_ms, cfg=cfg,
            num_threads=m, cores=list(range(m)),
        )
        rows.append((m, res.busy_try_fraction, res.cpu_utilization))
    return rows


# ---------------------------------------------------------------------- #
# Figure 9 — latency vs M
# ---------------------------------------------------------------------- #

def fig9_latency_vs_m(
    m_values: Sequence[int] = (2, 3, 5, 7),
    rates_mpps: Sequence[float] = (14.0, 1.0),
    duration_ms: int = 60,
    seed: int = config.DEFAULT_SEED,
) -> List[Tuple[float, int, dict]]:
    """Rows: (rate Mpps, M, boxplot stats dict of latency us)."""
    rows = []
    for rate in rates_mpps:
        for m in m_values:
            cfg = config.SimConfig(seed=seed, num_cores=max(6, m))
            res = run_metronome(
                int(rate * 1e6), duration_ms=duration_ms, cfg=cfg,
                num_threads=m, cores=list(range(m)),
            )
            b = res.latency.boxplot()
            rows.append(
                (rate, m, {
                    "mean": b.mean / 1e3, "median": b.median / 1e3,
                    "q1": b.q1 / 1e3, "q3": b.q3 / 1e3,
                    "p99": res.latency.percentile(99) / 1e3,
                    "std": b.std / 1e3,
                })
            )
    return rows


# ---------------------------------------------------------------------- #
# Table 3 — nanosleep-in-Metronome packet loss
# ---------------------------------------------------------------------- #

def table3_nanosleep_loss(
    cases: Sequence[Tuple[int, int]] = ((1024, 10), (2048, 10), (4096, 10), (4096, 1)),
    duration_ms: int = 100,
    seed: int = config.DEFAULT_SEED,
) -> List[Tuple[int, int, float, float]]:
    """Rows: (ring, vbar_us, nanosleep loss %, hr_sleep loss %)."""
    rows = []
    for ring, vbar in cases:
        losses = {}
        for service in ("nanosleep", "hr_sleep"):
            cfg = config.SimConfig(seed=seed, vbar_ns=vbar * US, rx_ring_size=ring)
            res = run_metronome(
                LINE, duration_ms=duration_ms, cfg=cfg, sleep_service=service
            )
            losses[service] = res.loss_fraction * 100
        rows.append((ring, vbar, losses["nanosleep"], losses["hr_sleep"]))
    return rows


# ---------------------------------------------------------------------- #
# Figure 10 — latency boxplots, hr_sleep vs nanosleep
# ---------------------------------------------------------------------- #

def fig10_latency_boxplots(
    rates_gbps: Sequence[float] = (1.0, 5.0, 10.0),
    vbars_us: Sequence[int] = (1, 10),
    duration_ms: int = 60,
    seed: int = config.DEFAULT_SEED,
) -> List[Tuple[str, float, int, dict]]:
    """Rows: (service, gbps, vbar_us, latency boxplot us).

    Following the paper's footnote, the nanosleep runs use the 4096 ring
    so loss does not contaminate the latency comparison.
    """
    rows = []
    for service in ("hr_sleep", "nanosleep"):
        ring = 4096 if service == "nanosleep" else config.DEFAULT_RX_RING
        for gbps in rates_gbps:
            for vbar in vbars_us:
                cfg = config.SimConfig(
                    seed=seed, vbar_ns=vbar * US, rx_ring_size=ring
                )
                res = run_metronome(
                    gbps_to_pps(gbps), duration_ms=duration_ms, cfg=cfg,
                    sleep_service=service,
                )
                b = res.latency.boxplot()
                rows.append(
                    (service, gbps, vbar, {
                        "mean": b.mean / 1e3, "median": b.median / 1e3,
                        "q1": b.q1 / 1e3, "q3": b.q3 / 1e3,
                        "whisk_hi": b.whisker_high / 1e3,
                    })
                )
    return rows


# ---------------------------------------------------------------------- #
# Figure 11 — adaptation to a varying offered load
# ---------------------------------------------------------------------- #

@dataclass
class Fig11Result:
    series: TimeSeries          # offered_mpps, delivered_mpps, ts_us, rho, cpu
    duration_ns: int
    total_offered: int
    total_delivered: int


def fig11_adaptation(
    duration_s: float = 3.0,
    peak_mpps: float = 14.0,
    window_ms: int = 50,
    seed: int = config.DEFAULT_SEED,
) -> Fig11Result:
    """§5.3: triangle CBR ramp; Metronome tracks rate, T_S, ρ, CPU.

    The paper runs 60 s; the profile here is time-compressed (same
    shape) to keep simulation cost sane — pass ``duration_s=60`` for the
    full-length run.
    """
    duration_ns = int(duration_s * SEC)
    profile = triangle_ramp(duration_ns, int(peak_mpps * 1e6), steps=15)
    cfg = config.SimConfig(seed=seed)
    series = TimeSeries()

    state = {"last_rx": 0, "last_offered": 0}

    def setup(machine: Machine, group) -> None:
        sampler = CpuSampler(machine, window_ms * MS, cores=group.cores)
        sampler.start()
        queue = group.shared[0].queue

        def snapshot() -> None:
            now = machine.sim.now
            queue.sync()
            offered = queue.arrived_total
            rx = group.total_packets
            window = window_ms * MS
            series.record("offered_mpps", now,
                          (offered - state["last_offered"]) / (window / SEC) / 1e6)
            series.record("delivered_mpps", now,
                          (rx - state["last_rx"]) / (window / SEC) / 1e6)
            series.record("ts_us", now, group.tuner.ts_ns() / US)
            series.record("rho", now, group.tuner.rho)
            if sampler.samples:
                series.record("cpu", now, sampler.samples[-1][1])
            state["last_offered"] = offered
            state["last_rx"] = rx
            machine.sim.call_after(window, snapshot)

        machine.sim.call_after(window_ms * MS, snapshot)

    res = run_metronome(
        profile, duration_ms=int(duration_s * 1000), cfg=cfg, setup_hook=setup
    )
    return Fig11Result(
        series=series,
        duration_ns=duration_ns,
        total_offered=res.offered,
        total_delivered=res.delivered,
    )


# ---------------------------------------------------------------------- #
# Figure 12 — Metronome vs DPDK vs XDP
# ---------------------------------------------------------------------- #

def fig12_compare(
    rates_gbps: Sequence[float] = (0.5, 1.0, 5.0, 10.0),
    duration_ms: int = 60,
    seed: int = config.DEFAULT_SEED,
) -> List[Tuple[str, float, float, float, float, float]]:
    """Rows: (system, gbps, mean latency us, p99 us, cpu, loss %).

    XDP core counts follow §5.5: 4 cores at 5/10 Gbps, 1 below; its
    10 Gbps offered rate is capped at the paper's measured 13.57 Mpps
    ceiling (they shaped traffic to avoid loss the same way).
    """
    rows = []
    for gbps in rates_gbps:
        pps = gbps_to_pps(gbps)
        cfg = config.SimConfig(seed=seed)
        met = run_metronome(pps, duration_ms=duration_ms, cfg=cfg)
        rows.append(("metronome", gbps, met.latency.mean() / 1e3,
                     met.latency.percentile(99) / 1e3,
                     met.cpu_utilization, met.loss_fraction * 100))
        cfg = config.SimConfig(seed=seed)
        dpdk = run_dpdk(pps, duration_ms=duration_ms, cfg=cfg)
        rows.append(("dpdk", gbps, dpdk.latency.mean() / 1e3,
                     dpdk.latency.percentile(99) / 1e3,
                     dpdk.cpu_utilization, dpdk.loss_fraction * 100))
        xdp_queues = 4 if gbps >= 5.0 else 1
        xdp_pps = min(pps, int(13.57e6))
        cfg = config.SimConfig(seed=seed)
        xdp = run_xdp(
            xdp_pps, duration_ms=duration_ms, cfg=cfg,
            num_queues=xdp_queues,
        )
        rows.append(("xdp", gbps, xdp.latency.mean() / 1e3,
                     xdp.latency.percentile(99) / 1e3,
                     xdp.cpu_utilization, xdp.loss_fraction * 100))
    return rows


# ---------------------------------------------------------------------- #
# Figure 13 — power vs rate under both governors
# ---------------------------------------------------------------------- #

def fig13_power_governors(
    rates_gbps: Sequence[float] = (0.0, 0.5, 1.0, 5.0, 10.0),
    governors: Sequence[str] = ("performance", "ondemand"),
    duration_ms: int = 80,
    seed: int = config.DEFAULT_SEED,
) -> List[Tuple[str, str, float, float, float]]:
    """Rows: (governor, system, gbps, watts, cpu)."""
    rows = []
    for governor in governors:
        for gbps in rates_gbps:
            pps = gbps_to_pps(gbps) if gbps else 0
            cfg = config.SimConfig(seed=seed, governor=governor)
            met = run_metronome(pps, duration_ms=duration_ms, cfg=cfg)
            watts = met.energy_j / (duration_ms * MS / SEC)
            rows.append((governor, "metronome", gbps, watts,
                         met.cpu_utilization))
            cfg = config.SimConfig(seed=seed, governor=governor)
            dpdk = run_dpdk(pps, duration_ms=duration_ms, cfg=cfg)
            watts = dpdk.energy_j / (duration_ms * MS / SEC)
            rows.append((governor, "dpdk", gbps, watts,
                         dpdk.cpu_utilization))
    return rows


# ---------------------------------------------------------------------- #
# Figure 14 + Table 4 — coexistence with ferret
# ---------------------------------------------------------------------- #

@dataclass
class CoexistenceResult:
    ferret_alone_ms: float
    ferret_with_dpdk_ms: float
    ferret_with_metronome_ms: float
    dpdk_shared_mpps: float
    metronome_shared_mpps: float
    metronome_shared_loss_pct: float


def ferret_coexistence(
    ferret_work_ms: int = 150,
    throughput_ms: int = 300,
    seed: int = config.DEFAULT_SEED,
) -> CoexistenceResult:
    """§5.6 (Figure 14 + Table 4).

    Completion-time runs (Figure 14):

    * ferret alone on one core (baseline);
    * ferret + static polling DPDK on the same core (both SCHED_OTHER
      nice 0 — a −20 poller would starve ferret outright under pure CFS;
      see EXPERIMENTS.md);
    * ferret (nice 19, three workers) + Metronome (nice −20) on the same
      three cores, line-rate traffic.

    Throughput runs (Table 4) use oversized ferret jobs so the sharing
    persists for the whole measurement window.
    """
    from repro.apps.ferret import FerretWorkload

    # -- baseline: ferret alone ---------------------------------------- #
    cfg = config.SimConfig(seed=seed)
    machine = Machine(cfg)
    ferret = FerretWorkload(machine, total_work_ms=ferret_work_ms,
                            num_workers=1, cores=[0], nice=0)
    ferret.start()
    machine.run(until=ferret_work_ms * 4 * MS)
    alone_ms = ferret.elapsed_ms()

    holder = {}

    def completion_bound() -> int:
        return ferret_work_ms * 10 * MS

    # -- Figure 14: ferret + static DPDK on one core -------------------- #
    def add_ferret_dpdk(machine: Machine, _lcore) -> None:
        w = FerretWorkload(machine, total_work_ms=ferret_work_ms,
                           num_workers=1, cores=[0], nice=0)
        w.start()
        holder["dpdk"] = w

    run_dpdk(LINE, duration_ms=completion_bound() // MS,
             cfg=config.SimConfig(seed=seed),
             core=0, nice=0, setup_hook=add_ferret_dpdk)
    with_dpdk_ms = holder["dpdk"].elapsed_ms()

    # -- Figure 14: ferret + Metronome on three shared cores ------------ #
    def add_ferret_met(machine: Machine, group) -> None:
        w = FerretWorkload(machine, total_work_ms=ferret_work_ms * 3,
                           num_workers=3, cores=[0, 1, 2], nice=19)
        w.start()
        holder["met"] = w

    run_metronome(LINE, duration_ms=completion_bound() // MS,
                  cfg=config.SimConfig(seed=seed),
                  nice=-20, setup_hook=add_ferret_met)
    with_met_ms = holder["met"].elapsed_ms()

    # -- Table 4: throughput while the cores stay shared ---------------- #
    oversized = throughput_ms * 3

    def add_hog_dpdk(machine: Machine, _lcore) -> None:
        FerretWorkload(machine, total_work_ms=oversized,
                       num_workers=1, cores=[0], nice=0).start()

    dpdk = run_dpdk(LINE, duration_ms=throughput_ms,
                    cfg=config.SimConfig(seed=seed),
                    core=0, nice=0, setup_hook=add_hog_dpdk)

    def add_hog_met(machine: Machine, group) -> None:
        FerretWorkload(machine, total_work_ms=oversized * 3,
                       num_workers=3, cores=[0, 1, 2], nice=19).start()

    met = run_metronome(LINE, duration_ms=throughput_ms,
                        cfg=config.SimConfig(seed=seed),
                        nice=-20, setup_hook=add_hog_met)

    return CoexistenceResult(
        ferret_alone_ms=alone_ms,
        ferret_with_dpdk_ms=with_dpdk_ms,
        ferret_with_metronome_ms=with_met_ms,
        dpdk_shared_mpps=dpdk.throughput_mpps,
        metronome_shared_mpps=met.throughput_mpps,
        metronome_shared_loss_pct=met.loss_fraction * 100,
    )


# ---------------------------------------------------------------------- #
# Figure 15 — IPsec gateway and FloWatcher CPU usage
# ---------------------------------------------------------------------- #

def fig15_apps(
    duration_ms: int = 60,
    seed: int = config.DEFAULT_SEED,
) -> List[Tuple[str, str, float, float, float]]:
    """Rows: (app, system, rate Mpps, cpu, throughput Mpps)."""
    from repro.apps.flowatcher import FloWatcherApp
    from repro.apps.ipsec import IpsecGatewayApp

    rows = []
    ipsec_rates = (1.4, 2.8, 5.61)
    for rate in ipsec_rates:
        pps = int(rate * 1e6)
        app = IpsecGatewayApp()
        app.protect_everything()
        met = run_metronome(pps, duration_ms=duration_ms, app=app,
                            cfg=config.SimConfig(seed=seed))
        rows.append(("ipsec", "metronome", rate, met.cpu_utilization,
                     met.throughput_mpps))
        app = IpsecGatewayApp()
        app.protect_everything()
        dpdk = run_dpdk(pps, duration_ms=duration_ms, app=app,
                        cfg=config.SimConfig(seed=seed))
        rows.append(("ipsec", "dpdk", rate, dpdk.cpu_utilization,
                     dpdk.throughput_mpps))

    flow_rates = (0.5, 5.0, 14.88)
    for rate in flow_rates:
        pps = int(rate * 1e6)
        met = run_metronome(pps, duration_ms=duration_ms, app=FloWatcherApp(),
                            cfg=config.SimConfig(seed=seed))
        rows.append(("flowatcher", "metronome", rate, met.cpu_utilization,
                     met.throughput_mpps))
        dpdk = run_dpdk(pps, duration_ms=duration_ms, app=FloWatcherApp(),
                        cfg=config.SimConfig(seed=seed))
        rows.append(("flowatcher", "dpdk", rate, dpdk.cpu_utilization,
                     dpdk.throughput_mpps))
    return rows


# ---------------------------------------------------------------------- #
# §5.4 — the tuned low-latency configuration
# ---------------------------------------------------------------------- #

def tuned_low_latency(
    rate_gbps: float = 1.0,
    duration_ms: int = 60,
    seed: int = config.DEFAULT_SEED,
) -> Dict[str, dict]:
    """§5.4's tuned variant: Tx batch 1 + sub-us hr_sleep immediate
    return, compared against default Metronome and static DPDK."""
    pps = gbps_to_pps(rate_gbps)
    out: Dict[str, dict] = {}

    cfg = config.SimConfig(seed=seed)
    met = run_metronome(pps, duration_ms=duration_ms, cfg=cfg)
    out["metronome_default"] = {
        "mean_us": met.latency.mean() / 1e3,
        "std_us": met.latency.std() / 1e3,
        "cpu": met.cpu_utilization,
    }

    cfg = config.SimConfig(seed=seed, vbar_ns=800, tx_batch=1)
    tuned = run_metronome(pps, duration_ms=duration_ms, cfg=cfg,
                          setup_hook=_enable_submicro)
    out["metronome_tuned"] = {
        "mean_us": tuned.latency.mean() / 1e3,
        "std_us": tuned.latency.std() / 1e3,
        "cpu": tuned.cpu_utilization,
    }

    cfg = config.SimConfig(seed=seed)
    dpdk = run_dpdk(pps, duration_ms=duration_ms, cfg=cfg)
    out["dpdk"] = {
        "mean_us": dpdk.latency.mean() / 1e3,
        "std_us": dpdk.latency.std() / 1e3,
        "cpu": dpdk.cpu_utilization,
    }
    return out


def _enable_submicro(_machine: Machine, group) -> None:
    group.service.immediate_below_ns = 1 * US


# ---------------------------------------------------------------------- #
# Chaos — Metronome under adversarial conditions (docs/FAULTS.md)
# ---------------------------------------------------------------------- #

@dataclass
class ChaosRow:
    """One (plan, seed) cell of the chaos suite."""

    plan: str
    seed: int
    ok: bool
    loss_pct: float
    max_head_age_us: float
    escalations: int
    recovery_us: float          # -1 when the watchdog never disengaged
    overload_entries: int
    violations: List[str]


def chaos_suite(
    plans: Sequence[str] = (),
    seeds: Sequence[int] = (7, 42, 2020),
    duration_ms: int = 40,
) -> List[ChaosRow]:
    """Run every named fault plan × seed and collect the verdicts.

    ``plans`` selects by name from
    :data:`~repro.faults.plan.SHIPPED_PLANS` (empty → all shipped
    plans).  Each cell asserts the plan's bounded-loss, no-starvation
    and recovery invariants; a row with ``ok=False`` lists what broke.
    """
    from repro.faults import SHIPPED_PLANS, run_chaos

    names = list(plans) if plans else list(SHIPPED_PLANS)
    rows: List[ChaosRow] = []
    for name in names:
        plan = SHIPPED_PLANS[name]
        for seed in seeds:
            r = run_chaos(plan, seed=seed, duration_ms=duration_ms)
            rows.append(
                ChaosRow(
                    plan=name,
                    seed=seed,
                    ok=r.ok,
                    loss_pct=r.loss_fraction * 100,
                    max_head_age_us=r.max_head_age_ns / 1e3,
                    escalations=r.escalations,
                    recovery_us=(
                        r.recovery_ns / 1e3 if r.recovery_ns is not None
                        else -1.0
                    ),
                    overload_entries=r.overload_entries,
                    violations=r.violations,
                )
            )
    return rows


# ---------------------------------------------------------------------- #
# Trace-driven figures (repro.traffic)
# ---------------------------------------------------------------------- #


class _PhaseProbe:
    """Per-phase metric capture at trace phase boundaries.

    Chains onto the system's Tx completion callbacks (the run-wide
    stats keep accumulating untouched) and closes one row per phase at
    its scaled end time: offered/delivered deltas, loss, the phase's
    own latency distribution, and — for Metronome — the T_S the
    controller had converged to by the phase end.
    """

    def __init__(self, system: str, phases):
        self.system = system
        self.phases = phases  # [(name, start_abs_ns, end_abs_ns)]
        self.rows: List[Tuple] = []
        self._stats = LatencyStats()
        self._last_offered = 0
        self._last_delivered = 0

    def install(self, machine, offered_fn, delivered_fn, txbufs, ts_fn):
        for tb in txbufs:
            prev = tb.on_tx

            def on_tx(pkt, prev=prev):
                if prev is not None:
                    prev(pkt)
                self._stats.add(pkt.latency_ns)

            tb.on_tx = on_tx
        for name, s, e in self.phases:
            machine.sim.call_at(
                e, self._close, name, s, e, offered_fn, delivered_fn, ts_fn
            )

    def _close(self, name, s, e, offered_fn, delivered_fn, ts_fn):
        offered = offered_fn()
        delivered = delivered_fn()
        d_off = offered - self._last_offered
        d_del = delivered - self._last_delivered
        self._last_offered, self._last_delivered = offered, delivered
        stats, self._stats = self._stats, LatencyStats()
        dur_ns = e - s
        loss = max(0.0, 100.0 * (d_off - d_del) / d_off) if d_off else 0.0
        self.rows.append((
            self.system,
            name,
            round(dur_ns / MS, 3),
            round(d_off / (dur_ns / SEC) / 1e6, 4),
            round(loss, 4),
            round(stats.mean() / 1e3, 3) if stats.count else 0.0,
            round(stats.percentile(99) / 1e3, 3) if stats.count else 0.0,
            round(ts_fn(), 3),
        ))


def trace_phase_tracking(
    systems: Sequence[str] = ("metronome", "dpdk", "xdp"),
    duration_ms: int = 100,
    seed: int = config.DEFAULT_SEED,
) -> List[Tuple]:
    """Rows: (system, phase, dur ms, offered Mpps, loss %, mean us,
    p99 us, ts_us at phase end).

    The headline trace-replay figure (ROADMAP item 3): all three
    systems replay the same benign phased trace — HTTP peak → DNS
    burst → stable SSH → light UDP — and the per-phase rows show how
    each one's service discipline tracks the abrupt load changes.  The
    ``ts_us`` column is the adaptive controller's converged sleep at
    each phase end (0 for the baselines, which have no controller).
    """
    from repro.traffic import TraceReplayProcess, benign_phased, generate

    trace = generate(benign_phased(duration_ms * MS), seed)
    rows: List[Tuple] = []
    for system in systems:
        process = TraceReplayProcess(trace)
        probe = _PhaseProbe(system, process.phases_abs())
        if system == "metronome":

            def setup_met(machine: Machine, group, probe=probe) -> None:
                queue = group.shared[0].queue

                def offered() -> int:
                    queue.sync()
                    return queue.arrived_total

                probe.install(
                    machine, offered, lambda: group.total_packets,
                    [sq.txbuf for sq in group.shared],
                    lambda: group.tuner.ts_ns() / US,
                )

            run_metronome(process, duration_ms=duration_ms,
                          cfg=config.SimConfig(seed=seed),
                          setup_hook=setup_met)
        elif system == "dpdk":

            def setup_dpdk(machine: Machine, lcore, probe=probe) -> None:
                queue = lcore.queues[0]

                def offered() -> int:
                    queue.sync()
                    return queue.arrived_total

                probe.install(
                    machine, offered, lambda: lcore.rx_packets,
                    lcore.tx_buffers, lambda: 0.0,
                )

            run_dpdk(process, duration_ms=duration_ms,
                     cfg=config.SimConfig(seed=seed),
                     setup_hook=setup_dpdk)
        elif system == "xdp":

            def setup_xdp(machine: Machine, driver, probe=probe) -> None:
                def offered() -> int:
                    for q in driver.queues:
                        q.queue.sync()
                    return sum(q.queue.arrived_total for q in driver.queues)

                probe.install(
                    machine, offered, lambda: driver.total_packets,
                    [q.txbuf for q in driver.queues], lambda: 0.0,
                )

            run_xdp(process, duration_ms=duration_ms,
                    cfg=config.SimConfig(seed=seed), num_queues=1,
                    setup_hook=setup_xdp)
        else:
            raise ValueError(f"unknown system {system!r}")
        rows.extend(probe.rows)
    return rows


def trace_adversary(
    modes: Sequence[str] = ("aware", "naive"),
    duration_ms: int = 100,
    attack_mpps: float = 12.0,
    duty: float = 0.1,
    background_mpps: float = 0.1,
    seed: int = config.DEFAULT_SEED,
) -> List[Tuple]:
    """Rows: (mode, offered Mpps, overlay Mpps, loss %, mean us, p99 us,
    strikes).

    The worst case for the paper's adaptation rule: a T_S-aware
    adversary rides a steady background trace and lands
    ``attack_mpps`` slugs sized to the *published* T_S, just after
    sleeps are armed, at a ``duty`` duty cycle.  The ``naive`` control
    arm spends the identical average packet budget
    (``attack_mpps * duty``) as a uniform flood.  Loss and tail
    latency between the two rows are the figure.
    """
    from repro.nic.traffic import FaultableProcess
    from repro.traffic import (
        TraceReplayProcess,
        TsAwareAdversary,
        constant_flood,
        generate,
        steady_background,
    )

    trace = generate(
        steady_background(duration_ms * MS, int(background_mpps * 1e6)), seed
    )
    attack_pps = int(attack_mpps * 1e6)
    rows: List[Tuple] = []
    for mode in modes:
        process = FaultableProcess(TraceReplayProcess(trace))
        holder: Dict[str, TsAwareAdversary] = {}

        def setup(machine: Machine, group, process=process, mode=mode,
                  holder=holder) -> None:
            if mode == "aware":
                adv = TsAwareAdversary(machine, group, process,
                                       attack_pps=attack_pps, duty=duty)
                adv.start()
                holder["adv"] = adv
            elif mode == "naive":
                constant_flood(process, int(attack_pps * duty))
            else:
                raise ValueError(f"unknown adversary mode {mode!r}")

        res = run_metronome(process, duration_ms=duration_ms,
                            cfg=config.SimConfig(seed=seed),
                            setup_hook=setup)
        adv = holder.get("adv")
        seconds = duration_ms * MS / SEC
        rows.append((
            mode,
            round(res.offered / seconds / 1e6, 4),
            round(process.burst_packets / seconds / 1e6, 4),
            round(res.loss_fraction * 100, 4),
            round(res.latency.mean() / 1e3, 3),
            round(res.latency.percentile(99) / 1e3, 3),
            adv.strikes if adv is not None else 0,
        ))
    return rows


# ---------------------------------------------------------------------- #
# Scenario registry
# ---------------------------------------------------------------------- #

from repro.check.oracle import check_oracle_point  # noqa: E402
from repro.harness.scale import (  # noqa: E402
    scale_queue_count,
    scale_thread_ratio,
)

#: every scenario by function name — the campaign engine
#: (:mod:`repro.campaign`) resolves task specs through this table, and
#: the result cache fingerprints each function's source individually.
SCENARIOS: Dict[str, Callable] = {
    fn.__name__: fn
    for fn in (
        table1_sleep_precision,
        fig2_cpu_energy,
        table2_vbar_sweep,
        fig5_vacation_pdf,
        fig6_latency_cpu,
        fig7_tl_sweep,
        fig8_m_sweep,
        fig9_latency_vs_m,
        table3_nanosleep_loss,
        fig10_latency_boxplots,
        fig11_adaptation,
        fig12_compare,
        fig13_power_governors,
        ferret_coexistence,
        fig15_apps,
        tuned_low_latency,
        chaos_suite,
        trace_phase_tracking,
        trace_adversary,
        scale_queue_count,
        scale_thread_ratio,
        check_oracle_point,
    )
}
