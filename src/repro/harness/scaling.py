"""Shared ``--fast`` clamping for experiment durations.

Every abbreviated run scales a base duration (or sample/iteration
count) by the same rule: multiply by the scale factor, truncate, and
never go below a floor that keeps the scenario statistically
meaningful.  The CLI and the campaign specs both go through
:func:`scaled` so the clamping cannot drift between the two surfaces.
"""

from __future__ import annotations

#: scale factor applied by ``--fast`` everywhere (~4x shorter runs)
FAST_SCALE = 0.25


def scaled(base: int, scale: float, floor: int) -> int:
    """``max(floor, int(base * scale))`` — the duration clamp."""
    return max(floor, int(base * scale))
