"""Plain-text table rendering for benches and examples.

Benches print the same rows the paper's tables/figures report, with the
paper's value alongside where one is available, so EXPERIMENTS.md can be
assembled straight from bench output.
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence


def _fmt(value) -> str:
    if isinstance(value, float):
        if math.isnan(value):
            return "n/a"
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        if abs(value) >= 10:
            return f"{value:.2f}"
        return f"{value:.3f}"
    return str(value)


def render_table(
    title: str,
    headers: Sequence[str],
    rows: Sequence[Sequence],
    note: Optional[str] = None,
) -> str:
    """Render an aligned ASCII table with a title rule."""
    cells: List[List[str]] = [[_fmt(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in cells:
        if len(row) != len(headers):
            raise ValueError("row width does not match headers")
        for i, c in enumerate(row):
            widths[i] = max(widths[i], len(c))
    sep = "-+-".join("-" * w for w in widths)
    lines = [f"== {title} =="]
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for row in cells:
        lines.append(" | ".join(c.rjust(w) for c, w in zip(row, widths)))
    if note:
        lines.append(f"note: {note}")
    return "\n".join(lines)


def render_metrics(registry, title: str = "metrics", prefix: str = "") -> str:
    """Render a :class:`~repro.metrics.registry.MetricsRegistry` snapshot.

    Histogram values (summary dicts) are flattened into one row per
    statistic; counters and gauges print as single rows.
    """
    rows = []
    for name, value in registry.snapshot(prefix=prefix).items():
        if isinstance(value, dict):
            for stat, v in value.items():
                rows.append((f"{name}.{stat}", v))
        else:
            rows.append((name, value))
    return render_table(title, ["metric", "value"], rows)
