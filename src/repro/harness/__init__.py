"""Experiment harness: scenario builders, runners, and report rendering.

* :mod:`repro.harness.experiment` — composable runners for the three
  systems under comparison (Metronome / static DPDK / XDP) returning
  uniform result records.
* :mod:`repro.harness.scenarios` — one function per paper table/figure,
  producing the same rows/series the paper reports.
* :mod:`repro.harness.paper_data` — the paper's published numbers, for
  side-by-side paper-vs-measured output.
* :mod:`repro.harness.report` — plain-text table renderer.
"""

from repro.harness.experiment import (
    DpdkRunResult,
    MetronomeRunResult,
    XdpRunResult,
    run_dpdk,
    run_metronome,
    run_xdp,
)
from repro.harness.report import render_table

__all__ = [
    "MetronomeRunResult",
    "DpdkRunResult",
    "XdpRunResult",
    "run_metronome",
    "run_dpdk",
    "run_xdp",
    "render_table",
]
