"""Extension and ablation scenarios beyond the paper's core figures.

These cover: the §5.1 bidirectional test, the §3.2 multi-queue (40GbE+)
motivation, the Figure-4 primary-role rotation, design-choice ablations
(timeout diversity, adaptivity, EWMA gain), the Appendix-B renewal-model
validation, and the §2 traffic-shaping extension.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro import config
from repro.core.metronome import MetronomeGroup
from repro.core.tuning import AdaptiveTuner, FixedTuner
from repro.dpdk.lcore import PollModeLcore
from repro.harness.experiment import default_app, run_metronome
from repro.kernel.machine import Machine
from repro.nic.rxqueue import RxQueue
from repro.nic.traffic import CbrProcess, gbps_to_pps, triangle_ramp
from repro.sim.units import MS, SEC, US

LINE = config.LINE_RATE_PPS


# ---------------------------------------------------------------------- #
# Figure 4 — primary-role rotation timeline
# ---------------------------------------------------------------------- #

@dataclass
class RotationResult:
    serving_spells: List[Tuple[str, int]]   # (thread, consecutive cycles)
    share_by_thread: Dict[str, float]
    switches: int
    cycles: int


def role_rotation(
    duration_ms: int = 80,
    m: int = 3,
    rate_pps: int = LINE,
    seed: int = config.DEFAULT_SEED,
) -> RotationResult:
    """§4.1/Figure 4: at high load one thread at a time serves the
    queue, 'randomly changing in the long term'."""
    cfg = config.SimConfig(seed=seed, num_cores=max(6, m))
    res = run_metronome(rate_pps, duration_ms=duration_ms, cfg=cfg,
                        num_threads=m, cores=list(range(m)))
    records = res.group.cycle_stats().records
    spells: List[Tuple[str, int]] = []
    counts: Dict[str, int] = {}
    switches = 0
    for rec in records:
        counts[rec.thread_name] = counts.get(rec.thread_name, 0) + 1
        if spells and spells[-1][0] == rec.thread_name:
            spells[-1] = (rec.thread_name, spells[-1][1] + 1)
        else:
            if spells:
                switches += 1
            spells.append((rec.thread_name, 1))
    total = sum(counts.values())
    return RotationResult(
        serving_spells=spells,
        share_by_thread={k: v / total for k, v in counts.items()},
        switches=switches,
        cycles=total,
    )


# ---------------------------------------------------------------------- #
# §5.1 — bidirectional throughput
# ---------------------------------------------------------------------- #

@dataclass
class BidirResult:
    metronome_mpps_per_port: float
    metronome_loss_pct: float
    metronome_cpu: float
    dpdk_mpps_per_port: float
    dpdk_loss_pct: float
    dpdk_cpu: float


def bidirectional_throughput(
    rate_pps: int = config.BIDIR_RATE_PPS,
    duration_ms: int = 60,
    seed: int = config.DEFAULT_SEED,
) -> BidirResult:
    """Two ports at the paper's bidirectional ceiling (11.61 Mpps each):
    Metronome with 3 threads per Rx queue matches the two dedicated
    polling lcores."""
    # Metronome: 3 threads per queue, 6 cores
    cfg = config.SimConfig(seed=seed, num_cores=8)
    machine = Machine(cfg)
    queues = [
        RxQueue(machine.sim, CbrProcess(rate_pps), sample_every=256, index=i)
        for i in range(2)
    ]
    groups = []
    for i, queue in enumerate(queues):
        tuner = AdaptiveTuner(vbar_ns=cfg.vbar_ns, tl_ns=cfg.tl_ns, m=3,
                              initial_rho=0.5)
        group = MetronomeGroup(machine, [queue], default_app(), tuner=tuner,
                               num_threads=3, cores=[3 * i, 3 * i + 1,
                                                     3 * i + 2],
                               name=f"met-p{i}")
        group.start()
        groups.append(group)
    machine.run(until=duration_ms * MS)
    for q in queues:
        q.sync()
    met_rx = sum(g.total_packets for g in groups)
    met_offered = sum(q.arrived_total for q in queues)
    met_drops = sum(q.drops for q in queues)
    met = BidirResult(
        metronome_mpps_per_port=met_rx / 2 / (duration_ms * MS / SEC) / 1e6,
        metronome_loss_pct=100 * met_drops / max(1, met_offered),
        metronome_cpu=machine.cpu_utilization(list(range(6))),
        dpdk_mpps_per_port=0.0, dpdk_loss_pct=0.0, dpdk_cpu=0.0,
    )

    # DPDK: one dedicated polling lcore per queue
    cfg = config.SimConfig(seed=seed, num_cores=4)
    machine = Machine(cfg)
    queues = [
        RxQueue(machine.sim, CbrProcess(rate_pps), sample_every=256, index=i)
        for i in range(2)
    ]
    lcores = [
        PollModeLcore(machine, [queues[i]], default_app(), core=i,
                      name=f"dpdk-p{i}")
        for i in range(2)
    ]
    for lc in lcores:
        lc.start()
    machine.run(until=duration_ms * MS)
    for q in queues:
        q.sync()
    dpdk_rx = sum(lc.rx_packets for lc in lcores)
    dpdk_offered = sum(q.arrived_total for q in queues)
    dpdk_drops = sum(q.drops for q in queues)
    met.dpdk_mpps_per_port = dpdk_rx / 2 / (duration_ms * MS / SEC) / 1e6
    met.dpdk_loss_pct = 100 * dpdk_drops / max(1, dpdk_offered)
    met.dpdk_cpu = machine.cpu_utilization([0, 1])
    return met


# ---------------------------------------------------------------------- #
# §3.2 — multi-queue (40 GbE-class) scaling
# ---------------------------------------------------------------------- #

def multiqueue_scaling(
    num_queues: int = 4,
    per_queue_pps: int = LINE,
    threads_per_queue: int = 3,
    duration_ms: int = 40,
    seed: int = config.DEFAULT_SEED,
) -> dict:
    """The §3.2 motivation scaled up: N line-rate queues (a 40GbE-class
    port with RSS), each shared by its own Metronome thread trio."""
    cores_needed = num_queues * threads_per_queue
    cfg = config.SimConfig(seed=seed, num_cores=cores_needed)
    machine = Machine(cfg)
    queues = [
        RxQueue(machine.sim, CbrProcess(per_queue_pps), sample_every=512,
                index=i)
        for i in range(num_queues)
    ]
    groups = []
    for i, queue in enumerate(queues):
        tuner = AdaptiveTuner(vbar_ns=cfg.vbar_ns, tl_ns=cfg.tl_ns,
                              m=threads_per_queue, initial_rho=0.5)
        base = i * threads_per_queue
        group = MetronomeGroup(
            machine, [queue], default_app(), tuner=tuner,
            num_threads=threads_per_queue,
            cores=list(range(base, base + threads_per_queue)),
            name=f"met-q{i}",
        )
        group.start()
        groups.append(group)
    machine.run(until=duration_ms * MS)
    for q in queues:
        q.sync()
    offered = sum(q.arrived_total for q in queues)
    delivered = sum(g.total_packets for g in groups)
    drops = sum(q.drops for q in queues)
    return {
        "num_queues": num_queues,
        "offered_mpps": offered / (duration_ms * MS / SEC) / 1e6,
        "delivered_mpps": delivered / (duration_ms * MS / SEC) / 1e6,
        "loss_pct": 100 * drops / max(1, offered),
        "cpu_total": machine.cpu_utilization(list(range(cores_needed))),
        "cpu_per_queue": machine.cpu_utilization(list(range(cores_needed)))
        / num_queues,
    }


# ---------------------------------------------------------------------- #
# Ablation: timeout diversity (primary/backup vs equal timeouts)
# ---------------------------------------------------------------------- #

def ablation_diversity(
    rate_pps: int = LINE,
    duration_ms: int = 50,
    seed: int = config.DEFAULT_SEED,
) -> Dict[str, dict]:
    """§4.1's motivating claim: equal timeouts degrade CPU at load."""
    out: Dict[str, dict] = {}
    for label, ts, tl in (
        ("equal", 10 * US, 10 * US),
        ("diverse", 10 * US, 500 * US),
    ):
        cfg = config.SimConfig(seed=seed)
        res = run_metronome(rate_pps, duration_ms=duration_ms, cfg=cfg,
                            tuner=FixedTuner(ts_ns=ts, tl_ns=tl))
        out[label] = {
            "cpu": res.cpu_utilization,
            "busy_tries": res.busy_tries,
            "busy_try_fraction": res.busy_try_fraction,
            "loss_pct": res.loss_fraction * 100,
            "mean_latency_us": res.latency.mean() / 1e3,
        }
    return out


# ---------------------------------------------------------------------- #
# Ablation: adaptive vs fixed T_S under a load ramp
# ---------------------------------------------------------------------- #

def ablation_adaptivity(
    duration_s: float = 1.0,
    seed: int = config.DEFAULT_SEED,
) -> Dict[str, dict]:
    """What the eq.-12 controller buys over any single fixed T_S when
    the load swings 0 → 14 Mpps → 0."""
    duration_ns = int(duration_s * SEC)
    out: Dict[str, dict] = {}
    configs = {
        "adaptive": None,
        "fixed_ts=10us": FixedTuner(ts_ns=10 * US, tl_ns=500 * US),
        "fixed_ts=30us": FixedTuner(ts_ns=30 * US, tl_ns=500 * US),
    }
    for label, tuner in configs.items():
        profile = triangle_ramp(duration_ns, int(14e6), steps=10)
        cfg = config.SimConfig(seed=seed)
        res = run_metronome(profile, duration_ms=int(duration_s * 1000),
                            cfg=cfg, tuner=tuner)
        out[label] = {
            "cpu": res.cpu_utilization,
            "loss_pct": res.loss_fraction * 100,
            "p99_latency_us": res.latency.percentile(99) / 1e3,
            "mean_latency_us": res.latency.mean() / 1e3,
        }
    return out


# ---------------------------------------------------------------------- #
# Ablation: EWMA gain α (eq. 10)
# ---------------------------------------------------------------------- #

def ablation_alpha(
    alphas: Sequence[float] = (0.03, 0.125, 0.5, 1.0),
    duration_ms: int = 300,
    seed: int = config.DEFAULT_SEED,
) -> List[Tuple[float, float, float]]:
    """Rows: (alpha, settling ms after a 1→13 Mpps step, steady-state
    rho ripple under Poisson traffic).

    The two halves of the classic gain trade-off are measured in the
    regimes where each is visible: settling on a deterministic load
    step; ripple under stochastic (Poisson) arrivals, since with CBR
    the per-cycle ρ samples are essentially noise-free and the residual
    variation is closed-loop drift rather than filter noise.
    """
    from repro.nic.traffic import PoissonProcess, RampProfile
    from repro.sim.rng import RandomStreams

    rows = []
    for alpha in alphas:
        # -- settling: deterministic step ------------------------------- #
        step_at = duration_ms // 2 * MS
        profile = RampProfile([(0, int(1e6)), (step_at, int(13e6))])
        cfg = config.SimConfig(seed=seed, alpha=alpha)
        tuner = AdaptiveTuner(vbar_ns=cfg.vbar_ns, tl_ns=cfg.tl_ns,
                              m=cfg.num_threads, alpha=alpha,
                              record_history=True)
        run_metronome(profile, duration_ms=duration_ms, cfg=cfg, tuner=tuner)
        history = tuner.history
        final = sum(r for _t, r, _ts in history[-50:]) / 50
        settle_ns = None
        for t, rho, _ts in history:
            if t > step_at and abs(rho - final) < 0.1 * max(final, 0.05):
                settle_ns = t - step_at
                break

        # -- ripple: steady Poisson load -------------------------------- #
        cfg = config.SimConfig(seed=seed, alpha=alpha)
        process = PoissonProcess(
            int(10e6), RandomStreams(seed).numpy_stream(f"alpha{alpha}")
        )
        tuner2 = AdaptiveTuner(vbar_ns=cfg.vbar_ns, tl_ns=cfg.tl_ns,
                               m=cfg.num_threads, alpha=alpha,
                               initial_rho=0.4, record_history=True)
        run_metronome(process, duration_ms=duration_ms // 2, cfg=cfg,
                      tuner=tuner2)
        tail = [r for _t, r, _ts in tuner2.history[-400:]]
        mean_tail = sum(tail) / len(tail)
        ripple = (sum((r - mean_tail) ** 2 for r in tail) / len(tail)) ** 0.5
        rows.append((alpha,
                     (settle_ns or duration_ms * MS) / MS,
                     ripple))
    return rows


# ---------------------------------------------------------------------- #
# Appendix B — renewal-model validation across loads
# ---------------------------------------------------------------------- #

def appendix_b_validation(
    rates_mpps: Sequence[float] = (2.0, 5.0, 8.0, 11.0, 14.0),
    duration_ms: int = 50,
    seed: int = config.DEFAULT_SEED,
) -> List[Tuple[float, float, float, float]]:
    """Rows: (rate Mpps, measured B us, eq.-3 predicted B us, N_V/λV).

    Validates E[B|V] = V·ρ/(1−ρ) and Little's N_V = λ·E[V] across the
    load range, per the Appendix-B constant-μ argument.
    """
    rows = []
    for mpps_rate in rates_mpps:
        cfg = config.SimConfig(seed=seed)
        res = run_metronome(int(mpps_rate * 1e6), duration_ms=duration_ms,
                            cfg=cfg)
        rho = res.rho
        predicted_b = res.mean_vacation_us * rho / (1 - rho) if rho < 1 else 0
        littles_ratio = (
            res.mean_n_vacation
            / (mpps_rate * res.mean_vacation_us)
        )
        rows.append((mpps_rate, res.mean_busy_us, predicted_b, littles_ratio))
    return rows


# ---------------------------------------------------------------------- #
# §1 extension — hyper-threading interference
# ---------------------------------------------------------------------- #

def smt_interference(
    job_work_ms: int = 60,
    rate_pps: int = None,
    seed: int = config.DEFAULT_SEED,
) -> Dict[str, float]:
    """The paper's §1 claim, quantified: "100% usage of computing units
    is not favorable to performance in scenarios where threads run on
    hyper-threaded machines".

    A fixed-work compute job runs on hardware thread 1; its SMT sibling
    (hardware thread 0) hosts either nothing, a polling DPDK lcore, or
    one of three Metronome threads.  Returns completion times (ms).
    """
    from repro.apps.ferret import FerretWorkload

    rate = rate_pps if rate_pps is not None else gbps_to_pps(1.0)
    results: Dict[str, float] = {}

    def run_job(machine: Machine) -> float:
        job = FerretWorkload(machine, total_work_ms=job_work_ms,
                             num_workers=1, cores=[1], nice=0, name="job")
        job.start()
        machine.run(until=job_work_ms * 20 * MS)
        return job.elapsed_ms()

    # -- alone ----------------------------------------------------------- #
    machine = Machine(config.SimConfig(seed=seed, num_cores=6,
                                       smt_pairs=[(0, 1)]))
    results["alone"] = run_job(machine)

    # -- polling DPDK on the sibling -------------------------------------- #
    machine = Machine(config.SimConfig(seed=seed, num_cores=6,
                                       smt_pairs=[(0, 1)]))
    queue = RxQueue(machine.sim, CbrProcess(rate), sample_every=256)
    PollModeLcore(machine, [queue], default_app(), core=0).start()
    results["dpdk_sibling"] = run_job(machine)

    # -- Metronome thread on the sibling ---------------------------------- #
    machine = Machine(config.SimConfig(seed=seed, num_cores=6,
                                       smt_pairs=[(0, 1)]))
    queue = RxQueue(machine.sim, CbrProcess(rate), sample_every=256)
    tuner = AdaptiveTuner(vbar_ns=machine.cfg.vbar_ns,
                          tl_ns=machine.cfg.tl_ns, m=3, initial_rho=0.3)
    MetronomeGroup(machine, [queue], default_app(), tuner=tuner,
                   num_threads=3, cores=[0, 2, 3]).start()
    results["metronome_sibling"] = run_job(machine)
    return results


# ---------------------------------------------------------------------- #
# §2 extension — sleep-based traffic shaping
# ---------------------------------------------------------------------- #

def pacing_comparison(
    rates_kpps: Sequence[int] = (1, 10, 50, 100),
    count: int = 400,
    seed: int = config.DEFAULT_SEED,
) -> List[Tuple[str, int, float, float, float]]:
    """Rows: (service, kpps, rate error, jitter us, gap compliance).

    Compliance is the honest shaping metric: absolute deadlines let an
    imprecise sleep hit the *mean* rate by bursting after oversleeps,
    but its inter-departure gaps stop resembling the target interval.
    """
    from repro.apps.pacer import SleepPacer

    rows = []
    for service in ("hr_sleep", "nanosleep"):
        for kpps in rates_kpps:
            cfg = config.SimConfig(seed=seed, num_cores=2, os_noise=False)
            machine = Machine(cfg)
            pacer = SleepPacer(machine, rate_pps=kpps * 1000, count=count,
                               sleep_service=service)
            pacer.start()
            machine.run(until=5 * SEC)
            rows.append((service, kpps, pacer.rate_error(),
                         pacer.jitter_ns() / 1e3, pacer.compliance()))
    return rows
