"""Quick reproduction self-check: `python -m repro validate`.

Runs abbreviated versions of the headline claims (seconds each) and
prints a pass/fail line per claim.  This is the 30-second answer to
"did the reproduction survive my change?" — the benchmarks remain the
full-fidelity regeneration.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List

from repro import config
from repro.harness.experiment import run_dpdk, run_metronome, run_xdp
from repro.kernel.machine import Machine
from repro.kernel.thread import Exit
from repro.nic.traffic import gbps_to_pps
from repro.sim.units import US

LINE = config.LINE_RATE_PPS


@dataclass
class Claim:
    name: str
    detail: str
    check: Callable[[], bool]


def _sleep_mean(service: str, target_us: int, n: int = 400) -> float:
    machine = Machine(config.SimConfig(num_cores=2, os_noise=False, seed=1))
    out: List[int] = []

    def body(kt):
        svc = machine.sleep_service(service)
        for _ in range(n):
            t0 = machine.sim.now
            yield from svc.call(kt, target_us * US)
            out.append(machine.sim.now - t0)
        yield Exit()

    machine.spawn(body, name="s", core=0)
    machine.run()
    return sum(out) / len(out) / 1e3


def build_claims(duration_ms: int = 20) -> List[Claim]:
    """The claim list, lazily evaluated (each check runs its own sim)."""

    def cfg(**kw):
        kw.setdefault("seed", 99)
        return config.SimConfig(**kw)

    def c1():
        hr = _sleep_mean("hr_sleep", 1)
        ns = _sleep_mean("nanosleep", 1)
        return hr < 6 and 50 < ns < 70

    def c2():
        res = run_metronome(LINE, duration_ms=duration_ms, cfg=cfg())
        return res.loss_fraction < 1e-3 and res.cpu_utilization < 0.75

    def c3():
        res = run_dpdk(LINE, duration_ms=duration_ms, cfg=cfg())
        return res.cpu_utilization > 0.99 and res.loss_fraction < 1e-6

    def c4():
        ns = run_metronome(LINE, duration_ms=duration_ms, cfg=cfg(),
                           sleep_service="nanosleep")
        return ns.loss_fraction > 0.005

    def c5():
        low = run_metronome(gbps_to_pps(0.5), duration_ms=duration_ms,
                            cfg=cfg())
        high = run_metronome(LINE, duration_ms=duration_ms, cfg=cfg())
        return (high.cpu_utilization > 2 * low.cpu_utilization
                and low.ts_us > 24 and high.ts_us < 20)

    def c6():
        xdp = run_xdp(gbps_to_pps(1), duration_ms=duration_ms, cfg=cfg())
        met = run_metronome(gbps_to_pps(1), duration_ms=duration_ms,
                            cfg=cfg())
        return xdp.cpu_utilization > met.cpu_utilization

    def c7():
        res = run_metronome(LINE, duration_ms=duration_ms, cfg=cfg())
        rho = res.mean_busy_us / (res.mean_vacation_us + res.mean_busy_us)
        predicted = res.mean_vacation_us * rho / (1 - rho)
        return abs(res.mean_busy_us - predicted) / res.mean_busy_us < 0.2

    def c8():
        met = run_metronome(gbps_to_pps(5), duration_ms=duration_ms,
                            cfg=cfg())
        dpdk = run_dpdk(gbps_to_pps(5), duration_ms=duration_ms, cfg=cfg())
        return dpdk.latency.mean() < met.latency.mean()

    return [
        Claim("table1", "hr_sleep ~4us vs nanosleep ~58us at 1us grain", c1),
        Claim("line-rate", "Metronome: no loss, <75% CPU at 14.88 Mpps", c2),
        Claim("dpdk-pin", "polling DPDK: 100% CPU, lossless", c3),
        Claim("table3", "nanosleep-Metronome loses packets at 10G", c4),
        Claim("eq12", "T_S adapts M·V̄ ↔ V̄ and CPU is proportional", c5),
        Claim("xdp-tax", "XDP CPU > Metronome CPU at 1 Gbps", c6),
        Claim("eq3", "B = V·ρ/(1−ρ) renewal identity", c7),
        Claim("latency-order", "DPDK latency < Metronome latency", c8),
    ]


def run_validation(duration_ms: int = 20) -> int:
    """Run all claims; prints one line each; returns #failures."""
    failures = 0
    for claim in build_claims(duration_ms):
        try:
            ok = claim.check()
        except Exception as exc:  # noqa: BLE001 - report, don't crash
            ok = False
            print(f"  ERROR {claim.name}: {exc!r}")
        status = "ok  " if ok else "FAIL"
        print(f"  [{status}] {claim.name:14s} {claim.detail}")
        failures += 0 if ok else 1
    return failures
