"""Terminal time-series rendering (sparklines and braille-free plots).

The adaptation experiment (§5.3) is inherently a time-series figure;
these helpers let the CLI and examples show its shape without any
plotting dependency.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

_SPARK_LEVELS = "▁▂▃▄▅▆▇█"


def sparkline(values: Sequence[float], lo: Optional[float] = None,
              hi: Optional[float] = None) -> str:
    """One-line sparkline of ``values`` (8 vertical levels)."""
    if not values:
        return ""
    lo = min(values) if lo is None else lo
    hi = max(values) if hi is None else hi
    span = hi - lo
    if span <= 0:
        return _SPARK_LEVELS[0] * len(values)
    out = []
    top = len(_SPARK_LEVELS) - 1
    for v in values:
        idx = int((v - lo) / span * top + 0.5)
        out.append(_SPARK_LEVELS[min(top, max(0, idx))])
    return "".join(out)


def line_chart(
    series: Sequence[Tuple[str, Sequence[float]]],
    width: int = 64,
    height: int = 12,
) -> str:
    """A multi-series ASCII chart; each series gets a distinct marker.

    Series are resampled to ``width`` columns; the y-axis is shared and
    annotated with min/max.  Intended for monotone-ish experiment
    trajectories, not publication graphics.
    """
    if not series or not any(vals for _n, vals in series):
        return "(no data)"
    markers = "*o+x#@%&"
    all_vals = [v for _n, vals in series for v in vals]
    lo, hi = min(all_vals), max(all_vals)
    span = (hi - lo) or 1.0
    grid = [[" "] * width for _ in range(height)]
    for s_index, (_name, vals) in enumerate(series):
        if not vals:
            continue
        marker = markers[s_index % len(markers)]
        for col in range(width):
            # resample by nearest index
            src = int(col * (len(vals) - 1) / max(1, width - 1))
            level = (vals[src] - lo) / span
            row = height - 1 - int(level * (height - 1) + 0.5)
            grid[row][col] = marker
    lines = []
    for i, row in enumerate(grid):
        label = f"{hi:10.2f} |" if i == 0 else (
            f"{lo:10.2f} |" if i == height - 1 else " " * 11 + "|")
        lines.append(label + "".join(row))
    lines.append(" " * 11 + "+" + "-" * width)
    legend = "   ".join(
        f"{markers[i % len(markers)]} {name}"
        for i, (name, _vals) in enumerate(series)
    )
    lines.append(" " * 12 + legend)
    return "\n".join(lines)


def resample(values: Sequence[float], n: int) -> List[float]:
    """Nearest-neighbour resample to exactly ``n`` points."""
    if n <= 0:
        raise ValueError("n must be positive")
    if not values:
        return []
    if len(values) == 1:
        return [values[0]] * n
    return [
        values[int(i * (len(values) - 1) / max(1, n - 1))]
        for i in range(n)
    ]
