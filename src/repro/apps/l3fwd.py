"""The L3 forwarder (DPDK's l3fwd sample, LPM mode).

The paper's workhorse application (§5.7): every packet's destination is
looked up in the LPM table, its MAC/TTL rewritten, and the packet sent
on the matching port.  We run real lookups on the tagged subset and
verify the result against the reference trie — misrouting is counted,
so a broken table would fail the experiments, not silently pass.
"""

from __future__ import annotations

from typing import List, Optional

from repro import config
from repro.apps.lpm import Dir24_8, LpmTrie
from repro.dpdk.app import PacketApp
from repro.nic.flows import FlowSet
from repro.nic.packet import TaggedPacket


class L3FwdApp(PacketApp):
    """Longest-prefix-match forwarder."""

    name = "l3fwd"
    per_packet_ns = config.L3FWD_PKT_NS

    def __init__(
        self,
        flows: Optional[FlowSet] = None,
        num_ports: int = 2,
        first_bits: int = 16,
    ):
        self.trie = LpmTrie()
        self.num_ports = max(1, num_ports)
        self.lookups = 0
        self.misses = 0
        self.ttl_expired = 0
        self.forwarded = [0] * self.num_ports
        self._hdr_cache: dict = {}
        if flows is not None:
            self.populate_from_flows(flows)
        self.table = Dir24_8.from_trie(self.trie, first_bits=first_bits)

    def populate_from_flows(self, flows: FlowSet) -> None:
        """Install one /24 route per destination subnet (like l3fwd's
        route array), spreading next hops across ports."""
        for i, net in enumerate(flows.all_destinations()):
            self.trie.insert(net, 24, i % self.num_ports)

    def add_route(self, addr: int, depth: int, port: int) -> None:
        """Install a route in both the trie and the compiled table."""
        self.trie.insert(addr, depth, port)
        self.table.insert(addr, depth, port)

    def handle(self, tagged: List[TaggedPacket]) -> None:
        from repro.nic import ipv4hdr

        cache = self._hdr_cache
        for pkt in tagged:
            self.lookups += 1
            port = self.table.lookup(pkt.header.dst_ip)
            if port is None:
                self.misses += 1
                continue
            # real forwarding work: build (cached per flow), verify,
            # TTL-decrement with incremental checksum (RFC 1624)
            raw = cache.get(pkt.header.flow_key)
            if raw is None:
                raw = ipv4hdr.build_header(pkt.header)
                cache[pkt.header.flow_key] = raw
            rewritten, alive = ipv4hdr.forward_rewrite(raw)
            if not alive or not ipv4hdr.verify(rewritten):
                self.ttl_expired += 1
                continue
            self.forwarded[port] += 1

    def stats(self) -> dict:
        return {
            "lookups": self.lookups,
            "misses": self.misses,
            "ttl_expired": self.ttl_expired,
            "forwarded": list(self.forwarded),
            "routes": self.table.size,
        }


class L3FwdEmApp(PacketApp):
    """The exact-match (EM) l3fwd mode: a cuckoo hash on the 5-tuple.

    The paper chose LPM for the evaluation ("the most
    computation-expensive" of the two); EM is provided for completeness
    and for the per-packet-cost ablation.  EM's per-packet cost is
    slightly lower than LPM's (one hash + at most two bucket probes vs.
    two dependent memory references and a rewrite).
    """

    name = "l3fwd-em"
    per_packet_ns = max(1, config.L3FWD_PKT_NS - 4)

    def __init__(self, flows: Optional[FlowSet] = None, num_ports: int = 2):
        from repro.apps.cuckoo import CuckooHash

        self.num_ports = max(1, num_ports)
        self.table = CuckooHash(capacity=8192)
        self.lookups = 0
        self.misses = 0
        self.forwarded = [0] * self.num_ports
        if flows is not None:
            self.populate_from_flows(flows)

    def populate_from_flows(self, flows: FlowSet) -> None:
        """Install one exact 5-tuple entry per flow."""
        for flow_id in range(flows.num_flows):
            header = flows.header_of_flow(flow_id)
            self.table.insert(header.flow_key, flow_id % self.num_ports)

    def add_flow(self, key: tuple, port: int) -> None:
        self.table.insert(key, port)

    def handle(self, tagged: List[TaggedPacket]) -> None:
        for pkt in tagged:
            self.lookups += 1
            port = self.table.get(pkt.header.flow_key)
            if port is None:
                self.misses += 1
            else:
                self.forwarded[port] += 1

    def stats(self) -> dict:
        return {
            "lookups": self.lookups,
            "misses": self.misses,
            "forwarded": list(self.forwarded),
            "flows": len(self.table),
        }
