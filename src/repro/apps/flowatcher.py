"""FloWatcher-DPDK: per-packet and per-flow traffic statistics (§5.7).

FloWatcher (Zhang et al., TNSM 2019) is a software traffic monitor with
tunable statistics granularity.  We implement its run-to-completion
mode: the receiving thread itself maintains

* exact per-flow packet counters (hash table on the 5-tuple),
* a count-min sketch (the memory-bounded alternative FloWatcher offers),
* flow-size distribution summaries (heavy hitters, percentiles).

Tagged packets update both structures; tests cross-validate sketch
estimates against the exact table (the sketch may only over-estimate).
"""

from __future__ import annotations

import hashlib
from typing import Dict, List, Tuple

from repro import config
from repro.dpdk.app import PacketApp
from repro.nic.packet import TaggedPacket

_MASK64 = (1 << 64) - 1


def _hash64(key: Tuple, salt: int) -> int:
    """Deterministic 64-bit hash of a flow key (FNV-1a over the fields).

    Fields are normally ints (the 5-tuple); other hashable values are
    folded in through their UTF-8 representation so the sketch stays
    usable with arbitrary keys.
    """
    h = (0xCBF29CE484222325 ^ salt) & _MASK64
    for part in key:
        if not isinstance(part, int):
            part = int.from_bytes(
                hashlib.blake2b(str(part).encode(), digest_size=8).digest(),
                "little",
            )
        h ^= part & _MASK64
        h = (h * 0x100000001B3) & _MASK64
    # FNV has no avalanche: without a finalizer, keys differing only in
    # bits above log2(width) would collide in *every* row.  SplitMix64
    # finalizer fixes the bucket distribution.
    h = ((h ^ (h >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    h = ((h ^ (h >> 27)) * 0x94D049BB133111EB) & _MASK64
    return h ^ (h >> 31)


class CountMinSketch:
    """Count-min sketch: ``depth`` rows of ``width`` counters."""

    def __init__(self, width: int = 2048, depth: int = 4):
        if width < 1 or depth < 1:
            raise ValueError("width and depth must be >= 1")
        self.width = width
        self.depth = depth
        self._rows: List[List[int]] = [[0] * width for _ in range(depth)]
        self.total = 0

    def add(self, key: Tuple, count: int = 1) -> None:
        if count < 0:
            raise ValueError("negative count")
        self.total += count
        for d in range(self.depth):
            self._rows[d][_hash64(key, d) % self.width] += count

    def estimate(self, key: Tuple) -> int:
        """Point estimate; never below the true count."""
        return min(
            self._rows[d][_hash64(key, d) % self.width]
            for d in range(self.depth)
        )


class FloWatcherApp(PacketApp):
    """Run-to-completion traffic monitor."""

    name = "flowatcher"
    per_packet_ns = config.FLOWATCHER_PKT_NS

    def __init__(self, sketch_width: int = 2048, sketch_depth: int = 4):
        self.flow_table: Dict[Tuple, int] = {}
        self.sketch = CountMinSketch(sketch_width, sketch_depth)
        self.packets = 0
        self.bytes = 0

    def handle(self, tagged: List[TaggedPacket]) -> None:
        table = self.flow_table
        for pkt in tagged:
            key = pkt.header.flow_key
            table[key] = table.get(key, 0) + 1
            self.sketch.add(key)
            self.packets += 1
            self.bytes += pkt.header.length

    # ------------------------------------------------------------------ #
    # statistics queries
    # ------------------------------------------------------------------ #

    @property
    def flow_count(self) -> int:
        return len(self.flow_table)

    def top_flows(self, k: int = 10) -> List[Tuple[Tuple, int]]:
        """The k heaviest flows by exact count."""
        return sorted(self.flow_table.items(), key=lambda kv: -kv[1])[:k]

    def flow_size_percentile(self, p: float) -> float:
        """Percentile of the flow-size distribution (exact table)."""
        if not self.flow_table:
            raise ValueError("no flows observed")
        if not 0 <= p <= 100:
            raise ValueError("percentile outside [0, 100]")
        sizes = sorted(self.flow_table.values())
        rank = (len(sizes) - 1) * p / 100.0
        lo = int(rank)
        hi = min(lo + 1, len(sizes) - 1)
        frac = rank - lo
        return sizes[lo] * (1 - frac) + sizes[hi] * frac

    def sketch_error(self, key: Tuple) -> int:
        """Sketch overestimate for a flow (0 = exact)."""
        return self.sketch.estimate(key) - self.flow_table.get(key, 0)

    def stats(self) -> dict:
        return {
            "packets": self.packets,
            "flows": self.flow_count,
            "bytes": self.bytes,
        }


class FloWatcherRxApp(PacketApp):
    """The receive half of FloWatcher's *pipeline* deployment.

    The paper (§5.7) notes FloWatcher can run run-to-completion — the
    mode evaluated there, and :class:`FloWatcherApp` here — or as a
    pipeline, with the Rx thread handing packets to a separate
    statistics thread over an rte_ring.  This class is the Rx half: it
    forwards tagged packets into an SPSC ring; per-packet Rx cost drops
    to near-l3fwd levels since the accounting moved off the hot thread.
    """

    name = "flowatcher-rx"
    per_packet_ns = config.L3FWD_PKT_NS

    def __init__(self, ring: "SpscRing"):  # noqa: F821
        self.ring = ring
        self.forwarded = 0
        self.ring_drops = 0

    def handle(self, tagged: List[TaggedPacket]) -> None:
        if not tagged:
            return
        accepted = self.ring.enqueue_burst(tagged)
        self.forwarded += accepted
        self.ring_drops += len(tagged) - accepted

    def stats(self) -> dict:
        return {"forwarded": self.forwarded, "ring_drops": self.ring_drops}


class FloWatcherStatsThread:
    """The consumer half of the pipeline: drains the ring into a
    :class:`FloWatcherApp`, sleeping (hr_sleep) when the ring runs dry
    — a second, smaller instance of the paper's sleep&wake idea."""

    #: per-item accounting cost on the stats core
    PER_ITEM_NS = 90
    #: sleep when the ring is empty
    IDLE_SLEEP_NS = 20_000

    def __init__(
        self,
        machine: "Machine",  # noqa: F821
        ring: "SpscRing",    # noqa: F821
        app: "FloWatcherApp",
        core: int,
        sleep_service: str = "hr_sleep",
        burst: int = 64,
    ):
        self.machine = machine
        self.ring = ring
        self.app = app
        self.core = core
        self.burst = burst
        self.service = machine.sleep_service(sleep_service)
        self.thread = None
        self.drained = 0

    def start(self):
        self.thread = self.machine.spawn(
            self._body, name="flowatcher-stats", core=self.core
        )
        return self.thread

    def _body(self, kt):
        from repro.kernel.thread import Compute

        while True:
            items = self.ring.dequeue_burst(self.burst)
            if items:
                yield Compute(len(items) * self.PER_ITEM_NS)
                self.app.handle(items)
                self.drained += len(items)
            else:
                yield from self.service.call(kt, self.IDLE_SLEEP_NS)
