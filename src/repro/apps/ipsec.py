"""The IPsec security gateway (DPDK ipsec-secgw sample, §5.7).

Outbound path: each packet is looked up in the Security Policy Database
(SPD, a prefix-based policy table), matched to a Security Association
(SA), ESP-encapsulated (SPI + sequence number + IV + padded ciphertext +
auth trailer) and sent on the unprotected port.

Tagged packets flow through the *real* pipeline — policy lookup, ESP
framing, genuine AES-128-CBC of a synthesized payload — and tests
round-trip them through :meth:`IpsecGatewayApp.decapsulate`.  The CPU
cost model charges the encap work but not the cipher, which the paper's
setup offloads to the NIC.
"""

from __future__ import annotations

import struct
from typing import Dict, List, Optional, Tuple

from repro import config
from repro.apps.aes import BLOCK_SIZE, AesCbc
from repro.apps.lpm import LpmTrie
from repro.dpdk.app import PacketApp
from repro.nic.packet import PacketHeader, TaggedPacket

ESP_HEADER = struct.Struct("!II")  # SPI, sequence number


class SecurityAssociation:
    """One ESP tunnel SA (cipher state + replay counter)."""

    def __init__(self, spi: int, key: bytes, tunnel_src: int, tunnel_dst: int):
        if not 0 < spi < 1 << 32:
            raise ValueError(f"bad SPI {spi}")
        self.spi = spi
        self.cipher = AesCbc(key)
        self.tunnel_src = tunnel_src
        self.tunnel_dst = tunnel_dst
        self.seq = 0

    def next_seq(self) -> int:
        self.seq += 1
        if self.seq >= 1 << 32:
            raise OverflowError("ESP sequence exhausted; rekey required")
        return self.seq


class IpsecGatewayApp(PacketApp):
    """Outbound ESP tunnel gateway."""

    name = "ipsec-secgw"
    per_packet_ns = config.IPSEC_PKT_NS

    def __init__(self, key: bytes = b"metronome-aescbc"):
        self.spd = LpmTrie()           # dst prefix -> SA index
        self.sas: List[SecurityAssociation] = []
        self._by_spi: Dict[int, SecurityAssociation] = {}
        self.default_sa: Optional[int] = None
        self.encapsulated = 0
        self.bypassed = 0
        self._default_key = key

    # ------------------------------------------------------------------ #
    # control plane
    # ------------------------------------------------------------------ #

    def add_sa(
        self,
        spi: int,
        key: Optional[bytes] = None,
        tunnel_src: int = 0x0A000001,
        tunnel_dst: int = 0xC0A80001,
    ) -> int:
        """Install an SA; returns its index for policy references."""
        if spi in self._by_spi:
            raise ValueError(f"duplicate SPI {spi}")
        sa = SecurityAssociation(spi, key or self._default_key, tunnel_src, tunnel_dst)
        self.sas.append(sa)
        self._by_spi[spi] = sa
        return len(self.sas) - 1

    def add_policy(self, addr: int, depth: int, sa_index: int) -> None:
        """Protect traffic to ``addr/depth`` with SA ``sa_index``."""
        if not 0 <= sa_index < len(self.sas):
            raise ValueError(f"no SA {sa_index}")
        self.spd.insert(addr, depth, sa_index)

    def protect_everything(self, spi: int = 5) -> None:
        """Convenience: one SA protecting 0.0.0.0/0 (the paper's test)."""
        idx = self.add_sa(spi)
        self.add_policy(0, 0, idx)

    # ------------------------------------------------------------------ #
    # data plane
    # ------------------------------------------------------------------ #

    @staticmethod
    def synth_payload(header: PacketHeader) -> bytes:
        """Deterministic payload standing in for the packet body."""
        return struct.pack(
            "!IIHHB",
            header.src_ip,
            header.dst_ip,
            header.src_port,
            header.dst_port,
            header.proto,
        ) + b"\x00" * max(0, header.length - 33)

    def _iv_for(self, sa: SecurityAssociation, seq: int) -> bytes:
        return struct.pack("!IIII", sa.spi, seq, sa.tunnel_src, sa.tunnel_dst)

    def encapsulate(self, header: PacketHeader) -> Optional[bytes]:
        """ESP-encapsulate one packet; None if no policy matches."""
        sa_index = self.spd.lookup(header.dst_ip)
        if sa_index is None:
            self.bypassed += 1
            return None
        sa = self.sas[sa_index]
        seq = sa.next_seq()
        iv = self._iv_for(sa, seq)
        ciphertext = sa.cipher.encrypt(self.synth_payload(header), iv)
        self.encapsulated += 1
        return ESP_HEADER.pack(sa.spi, seq) + iv + ciphertext

    def decapsulate(self, datagram: bytes) -> Tuple[int, bytes]:
        """Inverse of :meth:`encapsulate`: returns (SPI, plaintext)."""
        if len(datagram) < ESP_HEADER.size + BLOCK_SIZE:
            raise ValueError("short ESP datagram")
        spi, _seq = ESP_HEADER.unpack_from(datagram)
        sa = self._by_spi.get(spi)
        if sa is None:
            raise KeyError(f"unknown SPI {spi}")
        iv = datagram[ESP_HEADER.size : ESP_HEADER.size + BLOCK_SIZE]
        ciphertext = datagram[ESP_HEADER.size + BLOCK_SIZE :]
        return spi, sa.cipher.decrypt(ciphertext, iv)

    def handle(self, tagged: List[TaggedPacket]) -> None:
        for pkt in tagged:
            self.encapsulate(pkt.header)

    def stats(self) -> dict:
        return {
            "encapsulated": self.encapsulated,
            "bypassed": self.bypassed,
            "sas": len(self.sas),
        }


class IpsecInboundApp(PacketApp):
    """The inbound half of the gateway: ESP decapsulation + anti-replay.

    The paper's ipsec-secgw serves "both inbound and outbound network
    traffic"; this is the protected-port direction.  Tagged packets are
    mapped to real ESP datagrams (produced by a paired outbound
    gateway, keyed by flow), decrypted, integrity-checked against the
    expected plaintext, and run through the RFC 4303 anti-replay window.
    """

    name = "ipsec-inbound"
    per_packet_ns = config.IPSEC_PKT_NS
    REPLAY_WINDOW = 64

    def __init__(self, outbound: IpsecGatewayApp):
        self.outbound = outbound
        self.decapsulated = 0
        self.auth_failures = 0
        self.replays_rejected = 0
        #: highest sequence seen + bitmap window, per SPI
        self._replay: Dict[int, Tuple[int, int]] = {}
        #: pre-built datagram cache keyed by flow (fresh seq per build)
        self._datagram_cache: Dict[Tuple, bytes] = {}

    # ------------------------------------------------------------------ #

    def _datagram_for(self, pkt: TaggedPacket) -> Optional[bytes]:
        """Obtain the on-the-wire ESP datagram this packet represents."""
        key = pkt.header.flow_key
        datagram = self._datagram_cache.pop(key, None)
        if datagram is None:
            datagram = self.outbound.encapsulate(pkt.header)
        return datagram

    def check_replay(self, spi: int, seq: int) -> bool:
        """RFC 4303 sliding-window check; True if the packet is fresh."""
        top, bitmap = self._replay.get(spi, (0, 0))
        if seq > top:
            shift = seq - top
            bitmap = ((bitmap << shift) | 1) & ((1 << self.REPLAY_WINDOW) - 1)
            self._replay[spi] = (seq, bitmap)
            return True
        offset = top - seq
        if offset >= self.REPLAY_WINDOW:
            return False
        if bitmap & (1 << offset):
            return False
        self._replay[spi] = (top, bitmap | (1 << offset))
        return True

    def process_datagram(self, datagram: bytes, expected: bytes) -> bool:
        """Full inbound path for one ESP datagram."""
        spi, _seq = ESP_HEADER.unpack_from(datagram)
        seq = _seq
        try:
            got_spi, plaintext = self.outbound.decapsulate(datagram)
        except (KeyError, ValueError):
            self.auth_failures += 1
            return False
        if got_spi != spi or plaintext != expected:
            self.auth_failures += 1
            return False
        if not self.check_replay(spi, seq):
            self.replays_rejected += 1
            return False
        self.decapsulated += 1
        return True

    def handle(self, tagged: List[TaggedPacket]) -> None:
        for pkt in tagged:
            datagram = self._datagram_for(pkt)
            if datagram is None:
                self.auth_failures += 1
                continue
            self.process_datagram(
                datagram, self.outbound.synth_payload(pkt.header)
            )

    def stats(self) -> dict:
        return {
            "decapsulated": self.decapsulated,
            "auth_failures": self.auth_failures,
            "replays_rejected": self.replays_rejected,
        }
