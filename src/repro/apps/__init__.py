"""The paper's three DPDK applications, plus the interference workload.

* :mod:`repro.apps.lpm` — longest-prefix-match routing tables: a
  reference binary trie and a DPDK-style DIR-24-8 compiled table.
* :mod:`repro.apps.l3fwd` — the L3 forwarder (paper §5.7, used for all
  of §5's headline experiments).
* :mod:`repro.apps.aes` — AES-128 and CBC mode, from scratch (FIPS-197 /
  SP 800-38A), used by the IPsec gateway.
* :mod:`repro.apps.ipsec` — the IPsec security gateway (ESP tunnel
  encapsulation; §5.7).
* :mod:`repro.apps.flowatcher` — FloWatcher-DPDK per-flow traffic
  monitoring (§5.7), with an exact flow table and a count-min sketch.
* :mod:`repro.apps.ferret` — a PARSEC-ferret-like CPU-bound batch job
  used as co-located interference (§5.6).
"""

from repro.apps.aes import AES128, AesCbc
from repro.apps.cuckoo import CuckooHash
from repro.apps.ferret import FerretWorkload
from repro.apps.flowatcher import (
    CountMinSketch,
    FloWatcherApp,
    FloWatcherRxApp,
    FloWatcherStatsThread,
)
from repro.apps.ipsec import IpsecGatewayApp, IpsecInboundApp
from repro.apps.l3fwd import L3FwdApp, L3FwdEmApp
from repro.apps.lpm import Dir24_8, LpmTrie
from repro.apps.pacer import SleepPacer

__all__ = [
    "LpmTrie",
    "Dir24_8",
    "CuckooHash",
    "L3FwdApp",
    "L3FwdEmApp",
    "AES128",
    "AesCbc",
    "IpsecGatewayApp",
    "IpsecInboundApp",
    "FloWatcherApp",
    "FloWatcherRxApp",
    "FloWatcherStatsThread",
    "CountMinSketch",
    "FerretWorkload",
    "SleepPacer",
]
