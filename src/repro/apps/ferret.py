"""A PARSEC-ferret-like interference workload (§5.6).

ferret is a CPU-intensive image-similarity-search pipeline; for the
coexistence experiments all that matters is a SCHED_OTHER batch job with
a fixed amount of CPU work whose completion time stretches under
contention.  The workload splits its total work across ``num_workers``
threads (ferret's pipeline stages) in millisecond-scale quanta, so the
CFS scheduler interleaves it realistically with Metronome threads.
"""

from __future__ import annotations

from typing import List, Optional

from repro.kernel.machine import Machine
from repro.kernel.thread import Compute, Exit, KThread
from repro.sim.units import MS


class FerretWorkload:
    """Fixed-work batch job spread over worker threads."""

    def __init__(
        self,
        machine: Machine,
        total_work_ms: int = 2_000,
        num_workers: int = 1,
        cores: Optional[List[int]] = None,
        nice: int = 19,
        quantum_ns: int = 1 * MS,
        name: str = "ferret",
    ):
        if total_work_ms <= 0:
            raise ValueError("work must be positive")
        if num_workers < 1:
            raise ValueError("need at least one worker")
        self.machine = machine
        self.total_work_ns = total_work_ms * MS
        self.num_workers = num_workers
        self.cores = cores if cores is not None else list(range(num_workers))
        if len(self.cores) != num_workers:
            raise ValueError("one core per worker required")
        self.nice = nice
        self.quantum_ns = quantum_ns
        self.name = name
        self.threads: List[KThread] = []
        self.started_at: Optional[int] = None
        self.finished_at: Optional[int] = None
        self._remaining_workers = num_workers

    def start(self) -> None:
        if self.threads:
            raise RuntimeError("workload already started")
        self.started_at = self.machine.sim.now
        share = self.total_work_ns // self.num_workers
        for i in range(self.num_workers):
            thread = self.machine.spawn(
                lambda kt, work=share: self._body(kt, work),
                name=f"{self.name}-{i}",
                nice=self.nice,
                core=self.cores[i],
            )
            self.threads.append(thread)

    def _body(self, kt: KThread, work_ns: int):
        remaining = work_ns
        quantum = self.quantum_ns
        while remaining > 0:
            chunk = min(quantum, remaining)
            yield Compute(chunk)
            remaining -= chunk
        self._remaining_workers -= 1
        if self._remaining_workers == 0:
            self.finished_at = self.machine.sim.now
        yield Exit()

    @property
    def done(self) -> bool:
        return self.finished_at is not None

    def elapsed_ms(self) -> float:
        """Wall-clock completion time of the whole job."""
        if self.started_at is None or self.finished_at is None:
            raise RuntimeError("workload not finished")
        return (self.finished_at - self.started_at) / MS

    def slowdown_vs(self, baseline_ms: float) -> float:
        """Completion-time ratio against an uncontended run."""
        if baseline_ms <= 0:
            raise ValueError("baseline must be positive")
        return self.elapsed_ms() / baseline_ms
