"""AES-128 and CBC mode, from scratch (FIPS-197 / NIST SP 800-38A).

The IPsec gateway experiment (§5.7) encrypts traffic with AES-CBC
128-bit.  The paper offloads the cipher to the NIC; we implement the
cipher itself so the datapath is functionally real — tagged packets are
genuinely encrypted and round-trip-decrypted in tests against the NIST
vectors — while the *cost* of the (offloaded) cipher stays out of the
CPU model, exactly like the paper's setup.

This is a clarity-first implementation (table-based S-box, byte lists);
it is not constant-time and must not be used for actual security.
"""

from __future__ import annotations

from typing import List

_SBOX = [
    0x63, 0x7C, 0x77, 0x7B, 0xF2, 0x6B, 0x6F, 0xC5, 0x30, 0x01, 0x67, 0x2B,
    0xFE, 0xD7, 0xAB, 0x76, 0xCA, 0x82, 0xC9, 0x7D, 0xFA, 0x59, 0x47, 0xF0,
    0xAD, 0xD4, 0xA2, 0xAF, 0x9C, 0xA4, 0x72, 0xC0, 0xB7, 0xFD, 0x93, 0x26,
    0x36, 0x3F, 0xF7, 0xCC, 0x34, 0xA5, 0xE5, 0xF1, 0x71, 0xD8, 0x31, 0x15,
    0x04, 0xC7, 0x23, 0xC3, 0x18, 0x96, 0x05, 0x9A, 0x07, 0x12, 0x80, 0xE2,
    0xEB, 0x27, 0xB2, 0x75, 0x09, 0x83, 0x2C, 0x1A, 0x1B, 0x6E, 0x5A, 0xA0,
    0x52, 0x3B, 0xD6, 0xB3, 0x29, 0xE3, 0x2F, 0x84, 0x53, 0xD1, 0x00, 0xED,
    0x20, 0xFC, 0xB1, 0x5B, 0x6A, 0xCB, 0xBE, 0x39, 0x4A, 0x4C, 0x58, 0xCF,
    0xD0, 0xEF, 0xAA, 0xFB, 0x43, 0x4D, 0x33, 0x85, 0x45, 0xF9, 0x02, 0x7F,
    0x50, 0x3C, 0x9F, 0xA8, 0x51, 0xA3, 0x40, 0x8F, 0x92, 0x9D, 0x38, 0xF5,
    0xBC, 0xB6, 0xDA, 0x21, 0x10, 0xFF, 0xF3, 0xD2, 0xCD, 0x0C, 0x13, 0xEC,
    0x5F, 0x97, 0x44, 0x17, 0xC4, 0xA7, 0x7E, 0x3D, 0x64, 0x5D, 0x19, 0x73,
    0x60, 0x81, 0x4F, 0xDC, 0x22, 0x2A, 0x90, 0x88, 0x46, 0xEE, 0xB8, 0x14,
    0xDE, 0x5E, 0x0B, 0xDB, 0xE0, 0x32, 0x3A, 0x0A, 0x49, 0x06, 0x24, 0x5C,
    0xC2, 0xD3, 0xAC, 0x62, 0x91, 0x95, 0xE4, 0x79, 0xE7, 0xC8, 0x37, 0x6D,
    0x8D, 0xD5, 0x4E, 0xA9, 0x6C, 0x56, 0xF4, 0xEA, 0x65, 0x7A, 0xAE, 0x08,
    0xBA, 0x78, 0x25, 0x2E, 0x1C, 0xA6, 0xB4, 0xC6, 0xE8, 0xDD, 0x74, 0x1F,
    0x4B, 0xBD, 0x8B, 0x8A, 0x70, 0x3E, 0xB5, 0x66, 0x48, 0x03, 0xF6, 0x0E,
    0x61, 0x35, 0x57, 0xB9, 0x86, 0xC1, 0x1D, 0x9E, 0xE1, 0xF8, 0x98, 0x11,
    0x69, 0xD9, 0x8E, 0x94, 0x9B, 0x1E, 0x87, 0xE9, 0xCE, 0x55, 0x28, 0xDF,
    0x8C, 0xA1, 0x89, 0x0D, 0xBF, 0xE6, 0x42, 0x68, 0x41, 0x99, 0x2D, 0x0F,
    0xB0, 0x54, 0xBB, 0x16,
]

_INV_SBOX = [0] * 256
for _i, _v in enumerate(_SBOX):
    _INV_SBOX[_v] = _i

_RCON = [0x01, 0x02, 0x04, 0x08, 0x10, 0x20, 0x40, 0x80, 0x1B, 0x36]

BLOCK_SIZE = 16


def _xtime(a: int) -> int:
    """Multiply by x in GF(2^8) mod x^8+x^4+x^3+x+1."""
    a <<= 1
    if a & 0x100:
        a ^= 0x11B
    return a & 0xFF


def _gmul(a: int, b: int) -> int:
    """GF(2^8) multiplication (peasant's algorithm)."""
    result = 0
    while b:
        if b & 1:
            result ^= a
        a = _xtime(a)
        b >>= 1
    return result


def expand_key(key: bytes) -> List[List[int]]:
    """FIPS-197 key schedule: 11 round keys of 16 bytes for AES-128."""
    if len(key) != 16:
        raise ValueError("AES-128 needs a 16-byte key")
    words = [list(key[i : i + 4]) for i in range(0, 16, 4)]
    for i in range(4, 44):
        temp = list(words[i - 1])
        if i % 4 == 0:
            temp = temp[1:] + temp[:1]              # RotWord
            temp = [_SBOX[b] for b in temp]         # SubWord
            temp[0] ^= _RCON[i // 4 - 1]
        words.append([a ^ b for a, b in zip(words[i - 4], temp)])
    return [sum(words[4 * r : 4 * r + 4], []) for r in range(11)]


def _add_round_key(state: List[int], rk: List[int]) -> None:
    for i in range(16):
        state[i] ^= rk[i]


def _sub_bytes(state: List[int], box: List[int]) -> None:
    for i in range(16):
        state[i] = box[state[i]]


# state layout: column-major, state[4*c + r] = byte at row r, column c
_SHIFT = [0, 5, 10, 15, 4, 9, 14, 3, 8, 13, 2, 7, 12, 1, 6, 11]
_INV_SHIFT = [0, 13, 10, 7, 4, 1, 14, 11, 8, 5, 2, 15, 12, 9, 6, 3]


def _shift_rows(state: List[int], table: List[int]) -> List[int]:
    return [state[table[i]] for i in range(16)]


def _mix_columns(state: List[int], inverse: bool) -> None:
    if inverse:
        coeffs = (0x0E, 0x0B, 0x0D, 0x09)
    else:
        coeffs = (0x02, 0x03, 0x01, 0x01)
    for c in range(0, 16, 4):
        col = state[c : c + 4]
        for r in range(4):
            state[c + r] = (
                _gmul(col[0], coeffs[(0 - r) % 4])
                ^ _gmul(col[1], coeffs[(1 - r) % 4])
                ^ _gmul(col[2], coeffs[(2 - r) % 4])
                ^ _gmul(col[3], coeffs[(3 - r) % 4])
            )


class AES128:
    """The block cipher: 16-byte blocks, 10 rounds."""

    def __init__(self, key: bytes):
        self._round_keys = expand_key(key)

    def encrypt_block(self, block: bytes) -> bytes:
        if len(block) != BLOCK_SIZE:
            raise ValueError("block must be 16 bytes")
        state = list(block)
        _add_round_key(state, self._round_keys[0])
        for rnd in range(1, 10):
            _sub_bytes(state, _SBOX)
            state = _shift_rows(state, _SHIFT)
            _mix_columns(state, inverse=False)
            _add_round_key(state, self._round_keys[rnd])
        _sub_bytes(state, _SBOX)
        state = _shift_rows(state, _SHIFT)
        _add_round_key(state, self._round_keys[10])
        return bytes(state)

    def decrypt_block(self, block: bytes) -> bytes:
        if len(block) != BLOCK_SIZE:
            raise ValueError("block must be 16 bytes")
        state = list(block)
        _add_round_key(state, self._round_keys[10])
        for rnd in range(9, 0, -1):
            state = _shift_rows(state, _INV_SHIFT)
            _sub_bytes(state, _INV_SBOX)
            _add_round_key(state, self._round_keys[rnd])
            _mix_columns(state, inverse=True)
        state = _shift_rows(state, _INV_SHIFT)
        _sub_bytes(state, _INV_SBOX)
        _add_round_key(state, self._round_keys[0])
        return bytes(state)


def pkcs7_pad(data: bytes, block: int = BLOCK_SIZE) -> bytes:
    """Pad to a block multiple; always adds at least one byte."""
    n = block - len(data) % block
    return data + bytes([n]) * n


def pkcs7_unpad(data: bytes, block: int = BLOCK_SIZE) -> bytes:
    """Strip PKCS#7 padding, validating it."""
    if not data or len(data) % block:
        raise ValueError("bad padded length")
    n = data[-1]
    if not 1 <= n <= block or data[-n:] != bytes([n]) * n:
        raise ValueError("bad padding")
    return data[:-n]


class AesCbc:
    """CBC mode over :class:`AES128` with PKCS#7 padding."""

    def __init__(self, key: bytes):
        self._cipher = AES128(key)

    def encrypt(self, plaintext: bytes, iv: bytes) -> bytes:
        if len(iv) != BLOCK_SIZE:
            raise ValueError("IV must be 16 bytes")
        data = pkcs7_pad(plaintext)
        out = bytearray()
        prev = iv
        for i in range(0, len(data), BLOCK_SIZE):
            block = bytes(a ^ b for a, b in zip(data[i : i + BLOCK_SIZE], prev))
            prev = self._cipher.encrypt_block(block)
            out.extend(prev)
        return bytes(out)

    def decrypt(self, ciphertext: bytes, iv: bytes) -> bytes:
        if len(iv) != BLOCK_SIZE:
            raise ValueError("IV must be 16 bytes")
        if not ciphertext or len(ciphertext) % BLOCK_SIZE:
            raise ValueError("ciphertext must be a positive block multiple")
        out = bytearray()
        prev = iv
        for i in range(0, len(ciphertext), BLOCK_SIZE):
            block = ciphertext[i : i + BLOCK_SIZE]
            plain = self._cipher.decrypt_block(block)
            out.extend(a ^ b for a, b in zip(plain, prev))
            prev = block
        return pkcs7_unpad(bytes(out))

    def encrypt_raw(self, padded: bytes, iv: bytes) -> bytes:
        """CBC without padding (input must be block-aligned) — the NIST
        SP 800-38A vectors use exact-multiple inputs."""
        if not padded or len(padded) % BLOCK_SIZE:
            raise ValueError("input must be a positive block multiple")
        out = bytearray()
        prev = iv
        for i in range(0, len(padded), BLOCK_SIZE):
            block = bytes(a ^ b for a, b in zip(padded[i : i + BLOCK_SIZE], prev))
            prev = self._cipher.encrypt_block(block)
            out.extend(prev)
        return bytes(out)
