"""A two-choice cuckoo hash table (DPDK ``rte_hash`` style).

DPDK's exact-match l3fwd mode keys a cuckoo hash table on the 5-tuple;
this is the same design: two candidate buckets per key (the second
derived from the first plus the short signature), 8-entry buckets, and
BFS displacement on insertion.  Lookups probe at most two buckets —
constant time, the property the l3fwd EM datapath relies on.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Hashable, Iterator, List, Optional, Tuple

_MASK64 = (1 << 64) - 1


def _hash_key(key: Hashable) -> int:
    """Stable 64-bit hash of a key (tuple of ints in the fast path)."""
    if isinstance(key, tuple):
        h = 0xCBF29CE484222325
        for part in key:
            if not isinstance(part, int):
                part = hash(part)
            h ^= part & _MASK64
            h = (h * 0x100000001B3) & _MASK64
    else:
        h = hash(key) & _MASK64
    h = ((h ^ (h >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    h = ((h ^ (h >> 27)) * 0x94D049BB133111EB) & _MASK64
    return h ^ (h >> 31)


class _Entry:
    __slots__ = ("key", "value", "signature")

    def __init__(self, key: Hashable, value: Any, signature: int):
        self.key = key
        self.value = value
        self.signature = signature


class CuckooHash:
    """Fixed-capacity two-choice cuckoo table with 8-slot buckets."""

    BUCKET_SLOTS = 8
    MAX_DISPLACEMENTS = 200

    def __init__(self, capacity: int = 4096):
        if capacity < self.BUCKET_SLOTS:
            raise ValueError("capacity too small")
        # round buckets up to a power of two for mask indexing
        buckets = 1
        while buckets * self.BUCKET_SLOTS < capacity:
            buckets <<= 1
        self._mask = buckets - 1
        self._buckets: List[List[_Entry]] = [[] for _ in range(buckets)]
        self.size = 0
        self.capacity = buckets * self.BUCKET_SLOTS

    # ------------------------------------------------------------------ #

    def _positions(self, key: Hashable) -> Tuple[int, int, int]:
        h = _hash_key(key)
        sig = (h >> 48) & 0xFFFF or 1
        primary = h & self._mask
        # rte_hash: the alternative bucket is derived from the primary
        # index and the signature, so it is computable from either side
        secondary = (primary ^ (sig * 0x5BD1E995)) & self._mask
        return primary, secondary, sig

    def _find(self, key: Hashable) -> Optional[Tuple[int, int]]:
        primary, secondary, sig = self._positions(key)
        for b in (primary, secondary):
            bucket = self._buckets[b]
            for i, entry in enumerate(bucket):
                if entry.signature == sig and entry.key == key:
                    return b, i
        return None

    # ------------------------------------------------------------------ #

    def get(self, key: Hashable, default: Any = None) -> Any:
        """Constant-time lookup: probes at most two buckets."""
        pos = self._find(key)
        if pos is None:
            return default
        b, i = pos
        return self._buckets[b][i].value

    def __contains__(self, key: Hashable) -> bool:
        return self._find(key) is not None

    def __len__(self) -> int:
        return self.size

    def insert(self, key: Hashable, value: Any) -> None:
        """Insert or update.  Raises RuntimeError when the table cannot
        accommodate the key even after displacement (load too high)."""
        pos = self._find(key)
        if pos is not None:
            b, i = pos
            self._buckets[b][i].value = value
            return
        primary, secondary, sig = self._positions(key)
        entry = _Entry(key, value, sig)
        for b in (primary, secondary):
            if len(self._buckets[b]) < self.BUCKET_SLOTS:
                self._buckets[b].append(entry)
                self.size += 1
                return
        if self._displace(primary, entry):
            self.size += 1
            return
        raise RuntimeError(
            f"cuckoo table full (size={self.size}/{self.capacity})"
        )

    def _displace(self, start_bucket: int, entry: _Entry) -> bool:
        """BFS through displacement chains for a free slot."""
        # each queue item: (bucket, path) where path is [(bucket, slot)...]
        seen = {start_bucket}
        queue = deque([(start_bucket, [])])
        while queue:
            bucket_idx, path = queue.popleft()
            if len(path) > self.MAX_DISPLACEMENTS:
                break
            bucket = self._buckets[bucket_idx]
            for slot, victim in enumerate(bucket):
                _vp, vs, _sig = self._positions(victim.key)
                alt = vs if vs != bucket_idx else _vp
                if len(self._buckets[alt]) < self.BUCKET_SLOTS:
                    # free slot found: walk the path moving victims
                    self._buckets[alt].append(victim)
                    cursor = bucket
                    cursor.pop(slot)
                    for pb, ps in reversed(path):
                        moved = self._buckets[pb].pop(ps)
                        cursor.append(moved)
                        cursor = self._buckets[pb]
                    cursor.append(entry)
                    return True
                if alt not in seen:
                    seen.add(alt)
                    queue.append((alt, path + [(bucket_idx, slot)]))
        return False

    def delete(self, key: Hashable) -> bool:
        """Remove a key; True if it was present."""
        pos = self._find(key)
        if pos is None:
            return False
        b, i = pos
        self._buckets[b].pop(i)
        self.size -= 1
        return True

    def items(self) -> Iterator[Tuple[Hashable, Any]]:
        for bucket in self._buckets:
            for entry in bucket:
                yield entry.key, entry.value

    def load_factor(self) -> float:
        return self.size / self.capacity
