"""Longest-prefix-match routing tables.

Two implementations, mirroring how DPDK's ``librte_lpm`` is built:

* :class:`LpmTrie` — a plain binary trie; the readable reference with
  insert/delete/lookup.  All correctness is defined against it.
* :class:`Dir24_8` — the DPDK data structure: a direct-indexed first
  level covering the top 24 bits (one numpy ``uint32`` per index) and
  8-bit second-level groups for longer prefixes.  Lookups are O(1) with
  at most two memory references — this is what gives l3fwd its constant
  per-packet cost (our μ assumption, paper Appendix B).

The first-level width is parameterizable (``first_bits``) so tests can
exercise the full group-expansion logic without allocating the 2^24
table; 24 reproduces DPDK's layout exactly.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Tuple

import numpy as np

#: flag bit marking a first-level entry as a pointer to a group
_VALID_GROUP = 1 << 31
#: sentinel stored where no route exists
_NO_ROUTE = 0xFFFFFF  # 24-bit next-hop space, all-ones reserved


class _TrieNode:
    __slots__ = ("children", "next_hop")

    def __init__(self) -> None:
        self.children: List[Optional["_TrieNode"]] = [None, None]
        self.next_hop: Optional[int] = None


class LpmTrie:
    """Reference binary trie for IPv4 longest-prefix matching."""

    def __init__(self) -> None:
        self._root = _TrieNode()
        self.size = 0

    @staticmethod
    def _bits(addr: int, depth: int) -> Iterator[int]:
        for i in range(depth):
            yield (addr >> (31 - i)) & 1

    @staticmethod
    def _validate(addr: int, depth: int) -> None:
        if not 0 <= addr <= 0xFFFFFFFF:
            raise ValueError(f"bad IPv4 address {addr:#x}")
        if not 0 <= depth <= 32:
            raise ValueError(f"bad prefix length {depth}")
        if depth < 32 and addr & ((1 << (32 - depth)) - 1):
            raise ValueError(
                f"address {addr:#x} has host bits set for /{depth}"
            )

    def insert(self, addr: int, depth: int, next_hop: int) -> None:
        """Add (or replace) route ``addr/depth`` → ``next_hop``."""
        self._validate(addr, depth)
        if not 0 <= next_hop < _NO_ROUTE:
            raise ValueError(f"next hop {next_hop} out of range")
        node = self._root
        for bit in self._bits(addr, depth):
            if node.children[bit] is None:
                node.children[bit] = _TrieNode()
            node = node.children[bit]
        if node.next_hop is None:
            self.size += 1
        node.next_hop = next_hop

    def delete(self, addr: int, depth: int) -> bool:
        """Remove route ``addr/depth``; returns True if it existed."""
        self._validate(addr, depth)
        node = self._root
        for bit in self._bits(addr, depth):
            node = node.children[bit]
            if node is None:
                return False
        if node.next_hop is None:
            return False
        node.next_hop = None
        self.size -= 1
        return True

    def lookup(self, addr: int) -> Optional[int]:
        """Next hop of the longest matching prefix, or None."""
        if not 0 <= addr <= 0xFFFFFFFF:
            raise ValueError(f"bad IPv4 address {addr:#x}")
        node = self._root
        best = node.next_hop
        for i in range(32):
            node = node.children[(addr >> (31 - i)) & 1]
            if node is None:
                break
            if node.next_hop is not None:
                best = node.next_hop
        return best

    def routes(self) -> List[Tuple[int, int, int]]:
        """All (addr, depth, next_hop) routes, sorted."""
        out: List[Tuple[int, int, int]] = []

        def walk(node: _TrieNode, prefix: int, depth: int) -> None:
            if node.next_hop is not None:
                out.append((prefix << (32 - depth) if depth else 0, depth,
                            node.next_hop))
            for bit in (0, 1):
                child = node.children[bit]
                if child is not None:
                    walk(child, (prefix << 1) | bit, depth + 1)

        walk(self._root, 0, 0)
        out.sort()
        return out


class Dir24_8:
    """DPDK-style DIR-24-8 compiled LPM table.

    First level: ``2**first_bits`` direct-indexed entries.  An entry is
    either a next hop, the no-route sentinel, or (flagged) the index of
    an 8-bit second-level group holding routes longer than
    ``first_bits``.
    """

    GROUP_SIZE = 256

    def __init__(self, first_bits: int = 24):
        if not 8 <= first_bits <= 24:
            raise ValueError("first_bits must be in [8, 24]")
        self.first_bits = first_bits
        self._tbl1 = np.full(1 << first_bits, _NO_ROUTE, dtype=np.uint32)
        self._groups: List[np.ndarray] = []
        #: depth of the route currently painted on each tbl1 entry
        self._depth1 = np.zeros(1 << first_bits, dtype=np.uint8)
        self._group_depths: List[np.ndarray] = []
        self._routes: dict = {}

    # ------------------------------------------------------------------ #

    def insert(self, addr: int, depth: int, next_hop: int) -> None:
        """Add route ``addr/depth`` → ``next_hop`` (longest-match wins)."""
        LpmTrie._validate(addr, depth)
        if not 0 <= next_hop < _NO_ROUTE:
            raise ValueError(f"next hop {next_hop} out of range")
        fb = self.first_bits
        if depth > fb + 8:
            raise ValueError(
                f"/{depth} exceeds the {fb}+8 bits this table covers"
            )
        if depth <= fb:
            lo = addr >> (32 - fb)
            hi = lo + (1 << (fb - depth))
            self._paint_level1(lo, hi, depth, next_hop)
        else:
            index1 = addr >> (32 - fb)
            group = self._group_for(index1)
            shift = 32 - fb - 8
            sub = (addr >> shift) & 0xFF if shift >= 0 else (addr & 0xFF)
            span = 1 << (fb + 8 - depth)
            gd = self._group_depths[group]
            tbl = self._groups[group]
            for i in range(sub, sub + span):
                if depth >= gd[i]:
                    tbl[i] = next_hop
                    gd[i] = depth
        self._routes[(addr, depth)] = next_hop

    def _paint_level1(self, lo: int, hi: int, depth: int, next_hop: int) -> None:
        for i in range(lo, hi):
            entry = int(self._tbl1[i])
            if entry & _VALID_GROUP:
                # paint the group's shorter-depth cells
                group = entry & ~_VALID_GROUP
                gd = self._group_depths[group]
                tbl = self._groups[group]
                mask = gd <= depth
                tbl[mask] = next_hop
                gd[mask] = depth
            elif depth >= self._depth1[i]:
                self._tbl1[i] = next_hop
                self._depth1[i] = depth

    def _group_for(self, index1: int) -> int:
        entry = int(self._tbl1[index1])
        if entry & _VALID_GROUP:
            return entry & ~_VALID_GROUP
        # materialize a new group seeded with the covering short route
        group = len(self._groups)
        seed_hop = entry
        seed_depth = int(self._depth1[index1])
        self._groups.append(
            np.full(self.GROUP_SIZE, seed_hop, dtype=np.uint32)
        )
        self._group_depths.append(
            np.full(self.GROUP_SIZE, seed_depth, dtype=np.uint8)
        )
        self._tbl1[index1] = _VALID_GROUP | group
        return group

    # ------------------------------------------------------------------ #

    def lookup(self, addr: int) -> Optional[int]:
        """O(1): one or two table reads."""
        if not 0 <= addr <= 0xFFFFFFFF:
            raise ValueError(f"bad IPv4 address {addr:#x}")
        fb = self.first_bits
        entry = int(self._tbl1[addr >> (32 - fb)])
        if entry & _VALID_GROUP:
            group = entry & ~_VALID_GROUP
            shift = 32 - fb - 8
            sub = (addr >> shift) & 0xFF if shift >= 0 else (addr & 0xFF)
            entry = int(self._groups[group][sub])
        return None if entry == _NO_ROUTE else entry

    @property
    def size(self) -> int:
        """Number of distinct routes inserted."""
        return len(self._routes)

    @classmethod
    def from_trie(cls, trie: LpmTrie, first_bits: int = 24) -> "Dir24_8":
        """Compile a reference trie into the fast table."""
        table = cls(first_bits)
        # insert shortest-first so longest-match painting is correct
        for addr, depth, hop in sorted(trie.routes(), key=lambda r: r[1]):
            table.insert(addr, depth, hop)
        return table
