"""A sleep-based traffic pacer (the paper's §2 extension hook).

The related-work section notes that "the benefits coming from our
hr_sleep() could be also employed in solutions regarding traffic
shaping policies" (Carousel-style end-host pacing).  This module builds
that extension: a pacer thread releases packets at a target rate by
sleeping between departures, instead of busy-waiting like DPDK's
rate-limiting examples do.

The experiment the bench runs: pace a stream at N kpps with each sleep
service and measure the inter-departure time distribution.  With
``hr_sleep()`` the achieved rate tracks the target and jitter stays in
the low microseconds; with ``nanosleep()`` the ~58 us floor caps the
achievable rate near 1/(58us + gap) and smears the distribution — the
same Table-1 asymmetry, projected onto shaping.
"""

from __future__ import annotations

from typing import List, Optional

from repro.kernel.machine import Machine
from repro.kernel.thread import Compute, Exit, KThread
from repro.metrics.latency import LatencyStats
from repro.sim.units import SEC

#: CPU cost of releasing one paced packet (dequeue + Tx doorbell)
RELEASE_COST_NS = 120


class SleepPacer:
    """Releases ``count`` packets at ``rate_pps`` using timed sleeps.

    The pacer compensates for sleep overshoot the way real shapers do:
    each departure is scheduled against the *absolute* timeline
    (``t0 + k/rate``), and the thread sleeps only for the remaining gap,
    so a single late wakeup does not shift every later departure.
    """

    def __init__(
        self,
        machine: Machine,
        rate_pps: int,
        count: int,
        sleep_service: str = "hr_sleep",
        core: int = 0,
        name: Optional[str] = None,
    ):
        if rate_pps <= 0:
            raise ValueError("rate must be positive")
        if count <= 0:
            raise ValueError("count must be positive")
        self.machine = machine
        self.rate_pps = rate_pps
        self.count = count
        self.service = machine.sleep_service(sleep_service)
        self.core = core
        self.name = name or f"pacer-{sleep_service}"
        self.departures: List[int] = []
        self.gaps = LatencyStats()
        self.thread: Optional[KThread] = None

    def start(self) -> KThread:
        self.thread = self.machine.spawn(
            self._body, name=self.name, core=self.core
        )
        return self.thread

    def _body(self, kt: KThread):
        sim = self.machine.sim
        interval = SEC // self.rate_pps
        t0 = sim.now
        last = None
        for k in range(self.count):
            deadline = t0 + k * interval
            gap = deadline - sim.now
            if gap > 0:
                yield from self.service.call(kt, gap)
            yield Compute(RELEASE_COST_NS)
            now = sim.now
            self.departures.append(now)
            if last is not None:
                self.gaps.add(now - last)
            last = now
        yield Exit()

    # ------------------------------------------------------------------ #

    @property
    def done(self) -> bool:
        return self.thread is not None and not self.thread.is_alive()

    def achieved_rate_pps(self) -> float:
        """Mean departure rate over the run."""
        if len(self.departures) < 2:
            raise RuntimeError("pacer has not released enough packets")
        span = self.departures[-1] - self.departures[0]
        return (len(self.departures) - 1) / (span / SEC)

    def rate_error(self) -> float:
        """Relative error of the achieved rate vs the target."""
        return abs(self.achieved_rate_pps() - self.rate_pps) / self.rate_pps

    def jitter_ns(self) -> float:
        """Standard deviation of inter-departure gaps."""
        return self.gaps.std()

    def compliance(self, tolerance: float = 0.5) -> float:
        """Fraction of inter-departure gaps within ±tolerance of the
        ideal interval.

        This is the metric that distinguishes *pacing* from *bursting*:
        a shaper built on an imprecise sleep still hits the mean rate by
        releasing catch-up bursts after each oversleep (the absolute
        deadlines guarantee that), but its gap distribution collapses —
        long sleeps alternating with back-to-back releases.
        """
        if self.gaps.count == 0:
            raise RuntimeError("no gaps recorded")
        ideal = SEC / self.rate_pps
        lo = ideal * (1 - tolerance)
        hi = ideal * (1 + tolerance)
        ok = sum(1 for g in self.gaps.samples() if lo <= g <= hi)
        return ok / self.gaps.count
