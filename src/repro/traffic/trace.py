"""The compact, versioned packet-trace format.

A trace is the unit of exchange for trace-driven replay (ROADMAP item
3): a header describing named temporal *phases* plus one record per
packet — ``(t_ns, len, flow)`` — with nanosecond arrival offsets
relative to the trace start.  The on-disk form is JSONL: a single
header object followed by one compact ``[t_ns, len, flow]`` array per
record, optionally gzip-compressed (any path ending in ``.gz``).

Design contract:

* **versioned** — the header carries ``format``/``version``; loaders
  reject anything they do not understand rather than guessing;
* **deterministic identity** — :meth:`Trace.sha256` hashes the
  canonical serialization, so generators can be audited as pure
  functions of (spec, seed) and caches can key on content;
* **validated** — :meth:`Trace.validate` enforces monotonic arrival
  times, sane frame lengths, and ordered, non-overlapping phases, so
  every consumer (replay, figures, CLI) can assume a well-formed trace.
"""

from __future__ import annotations

import gzip
import hashlib
import io
import json
from bisect import bisect_left
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.sim.units import SEC

#: on-disk format name; loaders reject anything else
TRACE_FORMAT = "repro-trace"
#: bump when the header or record layout changes
TRACE_VERSION = 1
#: largest acceptable frame (jumbo); guards against corrupt records
MAX_FRAME_LEN = 9216

#: one packet record: (arrival offset ns, frame length, flow id)
Record = Tuple[int, int, int]


class TraceError(ValueError):
    """A trace failed schema validation or could not be parsed."""


@dataclass(frozen=True)
class Phase:
    """One named temporal phase: ``[start_ns, end_ns)`` within the trace."""

    name: str
    start_ns: int
    end_ns: int

    @property
    def duration_ns(self) -> int:
        return self.end_ns - self.start_ns

    def to_dict(self) -> Dict:
        return {"name": self.name, "start_ns": self.start_ns,
                "end_ns": self.end_ns}

    @classmethod
    def from_dict(cls, d: Dict) -> "Phase":
        return cls(name=d["name"], start_ns=int(d["start_ns"]),
                   end_ns=int(d["end_ns"]))


class Trace:
    """An ordered packet trace with named phases and JSON metadata."""

    def __init__(
        self,
        phases: Sequence[Phase] = (),
        records: Sequence[Record] = (),
        meta: Optional[Dict] = None,
    ):
        self.phases: List[Phase] = list(phases)
        self.records: List[Record] = [
            (int(t), int(length), int(flow)) for t, length, flow in records
        ]
        self.meta: Dict = dict(meta or {})

    # -- derived ---------------------------------------------------------- #

    @property
    def packet_count(self) -> int:
        return len(self.records)

    @property
    def byte_count(self) -> int:
        return sum(r[1] for r in self.records)

    @property
    def duration_ns(self) -> int:
        """Trace length: the later of the last record and last phase end."""
        last_rec = self.records[-1][0] if self.records else 0
        last_phase = self.phases[-1].end_ns if self.phases else 0
        return max(last_rec, last_phase)

    def mean_rate_pps(self) -> float:
        dur = self.duration_ns
        if dur <= 0:
            return 0.0
        return len(self.records) * SEC / dur

    def phase_slices(self) -> List[Tuple[Phase, int, int]]:
        """Each phase with its ``[first, last)`` record index range.

        Records exactly at a phase's ``end_ns`` belong to the next
        phase; the final phase's end is inclusive (it is the trace end).
        """
        times = [r[0] for r in self.records]
        out: List[Tuple[Phase, int, int]] = []
        for i, phase in enumerate(self.phases):
            lo = bisect_left(times, phase.start_ns)
            if i == len(self.phases) - 1:
                hi = len(times)
            else:
                hi = bisect_left(times, phase.end_ns)
            out.append((phase, lo, hi))
        return out

    # -- validation ------------------------------------------------------- #

    def validate(self) -> None:
        """Raise :exc:`TraceError` unless the trace is well-formed."""
        prev_t = 0
        for i, (t, length, flow) in enumerate(self.records):
            if t < 0:
                raise TraceError(f"record {i}: negative arrival time {t}")
            if t < prev_t:
                raise TraceError(
                    f"record {i}: arrival time {t} before previous {prev_t}"
                )
            if not 1 <= length <= MAX_FRAME_LEN:
                raise TraceError(f"record {i}: frame length {length} "
                                 f"outside [1, {MAX_FRAME_LEN}]")
            if flow < 0:
                raise TraceError(f"record {i}: negative flow id {flow}")
            prev_t = t
        prev_end = 0
        for i, phase in enumerate(self.phases):
            if not phase.name:
                raise TraceError(f"phase {i}: empty name")
            if phase.end_ns <= phase.start_ns:
                raise TraceError(
                    f"phase {phase.name!r}: end {phase.end_ns} <= "
                    f"start {phase.start_ns}"
                )
            if phase.start_ns < prev_end:
                raise TraceError(
                    f"phase {phase.name!r}: starts at {phase.start_ns}, "
                    f"overlapping the previous phase (ends {prev_end})"
                )
            prev_end = phase.end_ns
        if self.phases and self.records:
            if self.records[-1][0] > self.phases[-1].end_ns:
                raise TraceError(
                    f"last record at {self.records[-1][0]} lies past the "
                    f"final phase end {self.phases[-1].end_ns}"
                )

    # -- identity --------------------------------------------------------- #

    def sha256(self) -> str:
        """Content digest of the canonical serialization."""
        return hashlib.sha256(self.dumps().encode()).hexdigest()

    # -- serialization ---------------------------------------------------- #

    def _header(self) -> Dict:
        return {
            "format": TRACE_FORMAT,
            "version": TRACE_VERSION,
            "count": len(self.records),
            "duration_ns": self.duration_ns,
            "phases": [p.to_dict() for p in self.phases],
            "meta": self.meta,
        }

    def dumps(self) -> str:
        """Canonical JSONL text: header line, then one record per line."""
        out = io.StringIO()
        json.dump(self._header(), out, sort_keys=True,
                  separators=(",", ":"))
        out.write("\n")
        for t, length, flow in self.records:
            out.write(f"[{t},{length},{flow}]\n")
        return out.getvalue()

    @classmethod
    def loads(cls, text: str) -> "Trace":
        lines = text.splitlines()
        if not lines:
            raise TraceError("empty trace file")
        try:
            header = json.loads(lines[0])
        except json.JSONDecodeError as exc:
            raise TraceError(f"unparseable trace header: {exc}") from exc
        if not isinstance(header, dict):
            raise TraceError("trace header is not a JSON object")
        fmt = header.get("format")
        if fmt != TRACE_FORMAT:
            raise TraceError(f"not a {TRACE_FORMAT} file (format={fmt!r})")
        version = header.get("version")
        if version != TRACE_VERSION:
            raise TraceError(
                f"unsupported trace version {version!r} "
                f"(this build reads version {TRACE_VERSION})"
            )
        records: List[Record] = []
        for lineno, line in enumerate(lines[1:], start=2):
            if not line.strip():
                continue
            try:
                rec = json.loads(line)
            except json.JSONDecodeError as exc:
                raise TraceError(f"line {lineno}: bad record: {exc}") from exc
            if not (isinstance(rec, list) and len(rec) == 3):
                raise TraceError(f"line {lineno}: record is not [t,len,flow]")
            records.append((int(rec[0]), int(rec[1]), int(rec[2])))
        count = header.get("count")
        if count is not None and count != len(records):
            raise TraceError(
                f"header count {count} != {len(records)} records (truncated?)"
            )
        trace = cls(
            phases=[Phase.from_dict(p) for p in header.get("phases", [])],
            records=records,
            meta=header.get("meta", {}),
        )
        trace.validate()
        return trace

    def dump(self, path: str) -> None:
        """Write the trace to ``path`` (gzip when it ends in ``.gz``)."""
        data = self.dumps().encode()
        if path.endswith(".gz"):
            # mtime=0 and an empty embedded filename keep the gzip
            # bytes a pure function of the trace content
            with open(path, "wb") as fh:
                with gzip.GzipFile(filename="", mode="wb", fileobj=fh,
                                   mtime=0) as gz:
                    gz.write(data)
        else:
            with open(path, "wb") as fh:
                fh.write(data)

    @classmethod
    def load(cls, path: str) -> "Trace":
        if path.endswith(".gz"):
            with gzip.open(path, "rb") as fh:
                data = fh.read()
        else:
            with open(path, "rb") as fh:
                data = fh.read()
        return cls.loads(data.decode())

    # -- reporting -------------------------------------------------------- #

    def describe(self) -> str:
        """Human-readable summary (the ``repro traffic describe`` body)."""
        lines = [
            f"format: {TRACE_FORMAT} v{TRACE_VERSION}",
            f"packets: {len(self.records):,}  "
            f"bytes: {self.byte_count:,}  "
            f"duration: {self.duration_ns / 1e6:.3f} ms  "
            f"mean rate: {self.mean_rate_pps() / 1e6:.3f} Mpps",
            f"sha256: {self.sha256()}",
        ]
        if self.meta:
            meta = json.dumps(self.meta, sort_keys=True)
            lines.append(f"meta: {meta}")
        if self.phases:
            lines.append("phases:")
            for phase, lo, hi in self.phase_slices():
                n = hi - lo
                dur = phase.duration_ns
                rate = n * SEC / dur / 1e6 if dur else 0.0
                lines.append(
                    f"  {phase.name:<16} "
                    f"[{phase.start_ns / 1e6:9.3f}, {phase.end_ns / 1e6:9.3f}) ms  "
                    f"{n:>9,} pkts  {rate:7.3f} Mpps"
                )
        return "\n".join(lines)
