"""Trace-driven replay and adversarial traffic generation.

The subsystem has four parts (ROADMAP item 3):

* :mod:`repro.traffic.trace` — the compact, versioned JSONL trace
  format (named phases, schema validation, sha256 identity, gzip);
* :mod:`repro.traffic.replay` — :class:`TraceReplayProcess`, replaying
  a trace through the full :class:`~repro.nic.traffic.ArrivalProcess`
  interface with ``speedup=``/``loop=``/``jitter=`` knobs;
* :mod:`repro.traffic.generators` — seeded, pure-function generators
  for benign phased mixes and attack workloads;
* :mod:`repro.traffic.adversary` — the T_S-aware adaptive adversary
  and its rate-matched naive-flood control arm.
"""

from repro.traffic.adversary import TsAwareAdversary, constant_flood
from repro.traffic.generators import (
    ARRIVAL_KINDS,
    SHIPPED_TRACES,
    PhaseSpec,
    TraceSpec,
    benign_phased,
    generate,
    http_flood,
    microburst_ddos,
    slow_drip,
    steady_background,
)
from repro.traffic.replay import TraceReplayProcess
from repro.traffic.trace import (
    MAX_FRAME_LEN,
    TRACE_FORMAT,
    TRACE_VERSION,
    Phase,
    Trace,
    TraceError,
)

__all__ = [
    "ARRIVAL_KINDS",
    "MAX_FRAME_LEN",
    "SHIPPED_TRACES",
    "TRACE_FORMAT",
    "TRACE_VERSION",
    "Phase",
    "PhaseSpec",
    "Trace",
    "TraceError",
    "TraceReplayProcess",
    "TraceSpec",
    "TsAwareAdversary",
    "benign_phased",
    "constant_flood",
    "generate",
    "http_flood",
    "microburst_ddos",
    "slow_drip",
    "steady_background",
]
