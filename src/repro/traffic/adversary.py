"""The adaptive adversary: an attacker who knows the T_S rule.

Metronome's controller (paper eq. 10/12) estimates utilization from
renewal cycles and stretches the primary sleep T_S when load falls.
An attacker who can observe — or simply predict — that published T_S
trajectory has an obvious play:

1. **stay quiet** long enough for the EWMA ρ to decay, so the group
   arms *long* sleeps;
2. **strike** with a concentrated slug sized to the current T_S, so the
   burst lands while every thread is mid-sleep and must queue for the
   better part of a full vacation;
3. go quiet again before ρ recovers, and repeat.

:class:`TsAwareAdversary` drives a
:class:`~repro.nic.traffic.FaultableProcess` overlay with exactly that
schedule, re-reading ``group.tuner.ts_ns()`` at every strike so the
attack adapts as the controller does.  It is fully deterministic — the
decisions are functions of sim time and published tuner state, no RNG —
so adversary runs satisfy the same byte-identity contracts as every
other scenario.

The honest baseline is :func:`constant_flood`: the *same average
packet budget* spread uniformly, which the staggered thread wakes
absorb easily.  The gap between the two is the figure.
"""

from __future__ import annotations

from typing import List

from repro.nic.traffic import FaultableProcess
from repro.sim.units import US


class TsAwareAdversary:
    """Quiet/strike pulses phase-locked to the published T_S trajectory.

    ``attack_pps`` is the slug intensity; ``duty`` the long-run fraction
    of time the slug is on (so the mean overlay rate is
    ``attack_pps * duty``, the number a naive flood must be matched
    to); ``strike_fraction`` sizes each slug relative to the T_S read
    at strike time (> 1 guarantees the slug spans at least one full
    armed sleep).
    """

    def __init__(
        self,
        machine,
        group,
        process: FaultableProcess,
        attack_pps: int,
        duty: float = 0.1,
        strike_fraction: float = 1.5,
        min_strike_ns: int = 20 * US,
    ):
        if attack_pps <= 0:
            raise ValueError("attack_pps must be positive")
        if not 0.0 < duty < 1.0:
            raise ValueError("duty must be in (0, 1)")
        if strike_fraction <= 0:
            raise ValueError("strike_fraction must be positive")
        self.machine = machine
        self.group = group
        self.process = process
        self.attack_pps = attack_pps
        self.duty = duty
        self.strike_fraction = strike_fraction
        self.min_strike_ns = min_strike_ns
        #: observation log: (strike time, T_S read, slug length)
        self.strike_log: List[tuple] = []
        self._started = False

    @property
    def strikes(self) -> int:
        return len(self.strike_log)

    def mean_overlay_pps(self) -> int:
        """The rate a naive flood must run at to match this adversary."""
        return int(self.attack_pps * self.duty)

    # -- schedule --------------------------------------------------------- #

    def _quiet_ns(self, strike_ns: int) -> int:
        """Silence after a slug so the long-run duty cycle holds exactly."""
        return max(1, int(strike_ns * (1.0 - self.duty) / self.duty))

    def start(self) -> None:
        """Arm the first strike (one settling period of quiet first)."""
        if self._started:
            raise RuntimeError("adversary already started")
        self._started = True
        first_strike = self._slug_ns()
        self.machine.sim.call_after(self._quiet_ns(first_strike),
                                    self._strike_on)

    def _slug_ns(self) -> int:
        ts = self.group.tuner.ts_ns()
        return max(self.min_strike_ns, int(self.strike_fraction * ts))

    def _strike_on(self) -> None:
        now = self.machine.sim.now
        ts = self.group.tuner.ts_ns()
        slug = self._slug_ns()
        self.strike_log.append((now, ts, slug))
        self.process.checkpoint(now)
        self.process.set_burst(self.attack_pps)
        self.machine.sim.call_after(slug, self._strike_off, slug)

    def _strike_off(self, slug: int) -> None:
        now = self.machine.sim.now
        self.process.checkpoint(now)
        self.process.set_burst(0)
        self.machine.sim.call_after(self._quiet_ns(slug), self._strike_on)


def constant_flood(process: FaultableProcess, rate_pps: int,
                   now: int = 0) -> None:
    """The rate-matched naive baseline: a constant uniform overlay.

    Same average packet budget as a :class:`TsAwareAdversary` with
    ``rate_pps == adversary.mean_overlay_pps()``, but spread evenly —
    the control arm of the adversary figure.
    """
    if rate_pps < 0:
        raise ValueError("negative flood rate")
    process.checkpoint(now)
    process.set_burst(rate_pps)


__all__ = ["TsAwareAdversary", "constant_flood"]
