"""Timestamp-faithful trace replay as an :class:`ArrivalProcess`.

:class:`TraceReplayProcess` turns a :class:`~repro.traffic.trace.Trace`
into the lazy monotonic counter the NIC layer consumes, reproducing the
DPDK PCAP sender v2 knob set (SNIPPETS.md §1):

* ``speedup=`` divides every inter-packet gap (2.0 → twice as fast);
* ``jitter=`` multiplies each gap by ``U(1-j, 1+j)`` drawn from a
  dedicated ``traffic.jitter`` RNG stream, so adding jitter never
  perturbs any other stochastic component;
* ``loop=`` repeats the trace end-to-end with exact cycle arithmetic.

The schedule is fixed at construction (one pass over the records), so
``advance`` is a cursor walk, ``next_arrival_after`` is a binary
search, and ``time_for_count`` is exact index arithmetic — same
complexity class as the synthetic processes.  Because the schedule is
immutable after construction, a replayed run re-derives it identically,
which is what makes mid-trace :mod:`repro.sim.snapshot` checkpoints
verify byte-for-byte.
"""

from __future__ import annotations

import random
from bisect import bisect_right
from typing import List, Optional, Tuple

from repro.nic.traffic import ArrivalProcess
from repro.sim.units import SEC
from repro.traffic.trace import Trace


class TraceReplayProcess(ArrivalProcess):
    """Replay a trace's packet schedule through the ArrivalProcess API."""

    def __init__(
        self,
        trace: Trace,
        speedup: float = 1.0,
        loop: bool = False,
        jitter: float = 0.0,
        jitter_rng: Optional[random.Random] = None,
        start: int = 0,
    ):
        if speedup <= 0:
            raise ValueError("speedup must be positive")
        if not 0.0 <= jitter < 1.0:
            raise ValueError("jitter must be in [0, 1)")
        if jitter > 0 and jitter_rng is None:
            raise ValueError(
                "jitter requires a dedicated RNG stream "
                "(streams.stream('traffic.jitter'))"
            )
        trace.validate()
        self.trace = trace
        self.trace_sha = trace.sha256()
        self.speedup = speedup
        self.loop = loop
        self.jitter = jitter
        self.start = start
        self.last_t = start
        self.total = 0

        # one construction-time pass fixes the whole schedule: scaled,
        # jittered offsets relative to `start`, non-decreasing, >= 1 so
        # the first packet is countable (arrivals live in (start, t])
        times: List[int] = []
        self._flows: List[int] = []
        self._lens: List[int] = []
        t_f = 0.0
        prev_rec = 0
        prev_out = 1
        for t_ns, length, flow in trace.records:
            gap = (t_ns - prev_rec) / speedup
            if jitter > 0:
                gap *= 1.0 + jitter * (2.0 * jitter_rng.random() - 1.0)
            t_f += gap
            prev_rec = t_ns
            prev_out = max(prev_out, int(t_f))
            times.append(prev_out)
            self._flows.append(flow)
            self._lens.append(length)
        self._times = times
        self._n = len(times)
        scaled_dur = int(trace.duration_ns / speedup)
        self._cycle = max(scaled_dur, (times[-1] + 1) if times else 1)
        self._phase_windows = self._build_phase_windows()

    # -- phase bookkeeping ------------------------------------------------ #

    def _build_phase_windows(self) -> List[Tuple[int, int, float]]:
        """Scaled ``(start, end, nominal_pps)`` windows for rate_at()."""
        windows: List[Tuple[int, int, float]] = []
        if self.trace.phases:
            for phase, lo, hi in self.trace.phase_slices():
                s = int(phase.start_ns / self.speedup)
                e = max(s + 1, int(phase.end_ns / self.speedup))
                pps = (hi - lo) * SEC / (e - s)
                windows.append((s, e, pps))
        elif self._n:
            windows.append((0, self._cycle, self._n * SEC / self._cycle))
        return windows

    def phases_abs(self) -> List[Tuple[str, int, int]]:
        """Scaled phase windows in absolute sim time (first pass only).

        ``(name, start_ns, end_ns)`` per phase — the hook figures use to
        place phase-boundary probes and mark transitions.
        """
        out: List[Tuple[str, int, int]] = []
        for phase in self.trace.phases:
            s = self.start + int(phase.start_ns / self.speedup)
            e = self.start + max(s - self.start + 1,
                                 int(phase.end_ns / self.speedup))
            out.append((phase.name, s, e))
        return out

    def phase_boundaries(self) -> List[Tuple[int, str]]:
        """Absolute ``(t_ns, phase name)`` transition marks."""
        return [(s, name) for name, s, _e in self.phases_abs()]

    # -- counting --------------------------------------------------------- #

    def _count_at(self, t: int) -> int:
        rel = t - self.start
        if rel <= 0 or self._n == 0:
            return 0
        if not self.loop:
            return bisect_right(self._times, rel)
        cycles, rem = divmod(rel, self._cycle)
        return cycles * self._n + bisect_right(self._times, rem)

    def advance(self, t1: int) -> int:
        if t1 < self.last_t:
            raise ValueError(f"advance moving backwards: {t1} < {self.last_t}")
        n = self._count_at(t1) - self.total
        self.total += n
        self.last_t = t1
        return n

    def next_arrival_after(self, t: int) -> Optional[int]:
        if self._n == 0:
            return None
        rel = t - self.start
        if rel < 0:
            return self.start + self._times[0]
        if not self.loop:
            idx = bisect_right(self._times, rel)
            if idx >= self._n:
                return None
            return self.start + self._times[idx]
        cycles, rem = divmod(rel, self._cycle)
        idx = bisect_right(self._times, rem)
        if idx < self._n:
            return self.start + cycles * self._cycle + self._times[idx]
        return self.start + (cycles + 1) * self._cycle + self._times[0]

    def rate_at(self, t: int) -> float:
        if self._n == 0:
            return 0.0
        rel = t - self.start
        if self.loop:
            rel %= self._cycle
        for s, e, pps in self._phase_windows:
            if s <= rel < e:
                return pps
        return 0.0

    def time_for_count(self, t: int, k: int) -> Optional[int]:
        """Exact: the arrival time of the k-th packet after ``t``."""
        if k <= 0:
            return t
        if self._n == 0:
            return None
        idx = self._count_at(t) + k - 1
        if not self.loop:
            if idx >= self._n:
                return None
            return self.start + self._times[idx]
        cycles, j = divmod(idx, self._n)
        return self.start + cycles * self._cycle + self._times[j]

    # -- schedule access (read-only; RSS sharding) ------------------------- #

    @property
    def schedule_times(self) -> List[int]:
        """The fixed arrival-offset schedule (relative to ``start``).

        Read-only view for consumers that partition the replay across
        RSS queues (:func:`repro.nic.topology.rss_shard`); mutating the
        returned list breaks the replay contract.
        """
        return self._times

    @property
    def schedule_flows(self) -> List[int]:
        """Per-arrival flow ids aligned with :attr:`schedule_times`."""
        return self._flows

    @property
    def schedule_lens(self) -> List[int]:
        """Per-arrival frame lengths aligned with :attr:`schedule_times`."""
        return self._lens

    @property
    def cycle_ns(self) -> int:
        """Length of one loop cycle in scaled nanoseconds."""
        return self._cycle

    # -- flow plumbing ---------------------------------------------------- #

    def flow_of(self, seq: int) -> Optional[int]:
        """The trace-supplied flow id of arrival ``seq`` (None past end)."""
        if self._n == 0:
            return None
        if self.loop:
            return self._flows[seq % self._n]
        if seq >= self._n:
            return None
        return self._flows[seq]

    def len_of(self, seq: int) -> Optional[int]:
        """The trace-supplied frame length of arrival ``seq``."""
        if self._n == 0:
            return None
        if self.loop:
            return self._lens[seq % self._n]
        if seq >= self._n:
            return None
        return self._lens[seq]

    # -- checkpointing ---------------------------------------------------- #

    def snapshot_state(self) -> dict:
        """Exact replay-cursor state for :mod:`repro.sim.snapshot`.

        The schedule itself is pinned by the trace content digest plus
        the replay knobs; the dynamic state is just the two counters.
        """
        return {
            "kind": "trace-replay",
            "trace_sha": self.trace_sha[:16],
            "n": self._n,
            "speedup": self.speedup,
            "loop": self.loop,
            "jitter": self.jitter,
            "start": self.start,
            "total": self.total,
            "last_t": self.last_t,
        }
