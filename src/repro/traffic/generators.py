"""Seeded trace generators: benign phased mixes and attack workloads.

Every generator is a **pure function of (spec, seed)**: the same spec
and seed always produce a byte-identical trace (same sha256), because
all randomness is drawn from per-phase named streams of a private
:class:`~repro.sim.rng.RandomStreams` factory.  That makes generated
traces cacheable, auditable, and safe to regenerate inside campaign
workers.

The catalogue mirrors the Waterclau benign/attack generator split
(ROADMAP item 3):

* :func:`benign_phased` — the temporal mix the phase-tracking figure
  replays: HTTP peak → DNS burst → stable SSH → light UDP;
* :func:`http_flood` — probe, then a sustained line-rate-order flood;
* :func:`microburst_ddos` — ultra-short saturating bursts over a low
  duty cycle (mean rate is modest; the slugs are not);
* :func:`slow_drip` — low-and-slow trickle across a huge flow space
  (flow-table pressure, not bandwidth).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Tuple

from repro.sim.rng import RandomStreams
from repro.sim.units import MS, SEC
from repro.traffic.trace import Phase, Trace

#: arrival models a PhaseSpec may request
ARRIVAL_KINDS = ("cbr", "poisson")


@dataclass(frozen=True)
class PhaseSpec:
    """One generated phase: a rate, an arrival model, and a flow space.

    ``burst_ns``/``gap_ns`` carve the phase into on/off microbursts:
    traffic runs at ``rate_pps`` for ``burst_ns``, is silent for
    ``gap_ns``, and repeats — the DDoS slug shape.  Both zero means the
    phase is continuous.
    """

    name: str
    duration_ns: int
    rate_pps: int
    arrival: str = "poisson"
    frame_len: int = 64
    flows: int = 256
    burst_ns: int = 0
    gap_ns: int = 0

    def __post_init__(self):
        if self.duration_ns <= 0:
            raise ValueError(f"phase {self.name!r}: non-positive duration")
        if self.rate_pps < 0:
            raise ValueError(f"phase {self.name!r}: negative rate")
        if self.arrival not in ARRIVAL_KINDS:
            raise ValueError(
                f"phase {self.name!r}: unknown arrival {self.arrival!r} "
                f"(known: {', '.join(ARRIVAL_KINDS)})"
            )
        if self.flows <= 0:
            raise ValueError(f"phase {self.name!r}: flows must be positive")
        if (self.burst_ns > 0) != (self.gap_ns > 0):
            raise ValueError(
                f"phase {self.name!r}: burst_ns and gap_ns go together"
            )

    def to_dict(self) -> Dict:
        return {
            "name": self.name,
            "duration_ns": self.duration_ns,
            "rate_pps": self.rate_pps,
            "arrival": self.arrival,
            "frame_len": self.frame_len,
            "flows": self.flows,
            "burst_ns": self.burst_ns,
            "gap_ns": self.gap_ns,
        }

    @classmethod
    def from_dict(cls, d: Dict) -> "PhaseSpec":
        return cls(**d)


@dataclass(frozen=True)
class TraceSpec:
    """A whole generated trace: named, described, phase by phase."""

    name: str
    phases: Tuple[PhaseSpec, ...] = ()
    description: str = ""

    def __post_init__(self):
        if not self.name:
            raise ValueError("trace spec needs a name")
        if not self.phases:
            raise ValueError(f"trace spec {self.name!r} has no phases")
        object.__setattr__(self, "phases", tuple(self.phases))

    @property
    def duration_ns(self) -> int:
        return sum(p.duration_ns for p in self.phases)

    def to_dict(self) -> Dict:
        return {
            "name": self.name,
            "description": self.description,
            "phases": [p.to_dict() for p in self.phases],
        }

    @classmethod
    def from_dict(cls, d: Dict) -> "TraceSpec":
        return cls(
            name=d["name"],
            description=d.get("description", ""),
            phases=tuple(PhaseSpec.from_dict(p) for p in d.get("phases", ())),
        )


def _gen_window(rng, spec: PhaseSpec, w_start: int, w_end: int,
                records: List[Tuple[int, int, int]]) -> None:
    """Emit one continuous traffic window of ``spec`` into ``records``."""
    rate = spec.rate_pps
    if rate <= 0:
        return
    if spec.arrival == "cbr":
        # exact integer spacing: packet k at w_start + ceil((k+1)/rate)
        k = 0
        while True:
            t = w_start + ((k + 1) * SEC + rate - 1) // rate
            if t > w_end:
                break
            records.append((t, spec.frame_len, rng.randrange(spec.flows)))
            k += 1
    else:  # poisson
        lam = rate / SEC  # packets per ns
        t = w_start
        while True:
            t += max(1, int(rng.expovariate(lam)))
            if t > w_end:
                break
            records.append((t, spec.frame_len, rng.randrange(spec.flows)))


def generate(spec: TraceSpec, seed: int) -> Trace:
    """Materialize ``spec`` into a validated trace.  Pure in (spec, seed)."""
    streams = RandomStreams(seed)
    records: List[Tuple[int, int, int]] = []
    phases: List[Phase] = []
    cursor = 0
    for index, ph in enumerate(spec.phases):
        rng = streams.stream(f"traffic.gen.{spec.name}.{index}.{ph.name}")
        p_start, p_end = cursor, cursor + ph.duration_ns
        phases.append(Phase(ph.name, p_start, p_end))
        if ph.burst_ns > 0:
            w = p_start
            while w < p_end:
                _gen_window(rng, ph, w, min(w + ph.burst_ns, p_end), records)
                w += ph.burst_ns + ph.gap_ns
        else:
            _gen_window(rng, ph, p_start, p_end, records)
        cursor = p_end
    trace = Trace(
        phases=phases,
        records=records,
        meta={"generator": spec.name, "seed": seed,
              "description": spec.description},
    )
    trace.validate()
    return trace


# --------------------------------------------------------------------- #
# catalogue
# --------------------------------------------------------------------- #


def _split(duration_ns: int, weights: Tuple[int, ...]) -> List[int]:
    """Partition a duration proportionally; remainders go to the last."""
    total = sum(weights)
    parts = [duration_ns * w // total for w in weights[:-1]]
    parts.append(duration_ns - sum(parts))
    return parts


def benign_phased(duration_ns: int = 200 * MS, scale: float = 1.0) -> TraceSpec:
    """The benign temporal mix: HTTP peak → DNS burst → SSH → light UDP."""
    d = _split(duration_ns, (30, 15, 35, 20))

    def r(pps: int) -> int:
        return max(0, int(pps * scale))

    return TraceSpec(
        name="benign",
        description="benign phased mix: HTTP peak, DNS burst, stable SSH, "
                    "light UDP",
        phases=(
            PhaseSpec("http_peak", d[0], r(3_000_000), "poisson",
                      frame_len=512, flows=2048),
            PhaseSpec("dns_burst", d[1], r(6_000_000), "poisson",
                      frame_len=96, flows=4096),
            PhaseSpec("ssh_steady", d[2], r(800_000), "cbr",
                      frame_len=160, flows=64),
            PhaseSpec("udp_light", d[3], r(200_000), "poisson",
                      frame_len=256, flows=128),
        ),
    )


def http_flood(duration_ns: int = 200 * MS,
               peak_pps: int = 8_000_000) -> TraceSpec:
    """Volumetric HTTP flood: a probe, the flood, then a relent."""
    d = _split(duration_ns, (20, 60, 20))
    return TraceSpec(
        name="http-flood",
        description="volumetric HTTP flood with probe and relent phases",
        phases=(
            PhaseSpec("probe", d[0], 400_000, "poisson",
                      frame_len=512, flows=1024),
            PhaseSpec("flood", d[1], peak_pps, "cbr",
                      frame_len=64, flows=8192),
            PhaseSpec("relent", d[2], 800_000, "poisson",
                      frame_len=512, flows=1024),
        ),
    )


def microburst_ddos(duration_ns: int = 200 * MS,
                    burst_pps: int = 12_000_000) -> TraceSpec:
    """Saturating 50 µs slugs at a 5% duty cycle: low mean, brutal peaks."""
    return TraceSpec(
        name="microburst-ddos",
        description="12 Mpps 50us microbursts every 1 ms (5% duty cycle)",
        phases=(
            PhaseSpec("microbursts", duration_ns, burst_pps, "cbr",
                      frame_len=64, flows=4096,
                      burst_ns=50_000, gap_ns=950_000),
        ),
    )


def slow_drip(duration_ns: int = 200 * MS,
              rate_pps: int = 50_000) -> TraceSpec:
    """Low-and-slow trickle across a huge flow space (table pressure)."""
    return TraceSpec(
        name="slow-drip",
        description="low-rate drip across 65536 flows — state pressure, "
                    "not bandwidth",
        phases=(
            PhaseSpec("drip", duration_ns, rate_pps, "poisson",
                      frame_len=64, flows=65536),
        ),
    )


def steady_background(duration_ns: int = 200 * MS,
                      rate_pps: int = 1_500_000) -> TraceSpec:
    """A single steady Poisson phase — the adversary figure's backdrop."""
    return TraceSpec(
        name="steady-background",
        description="steady Poisson background traffic",
        phases=(
            PhaseSpec("steady", duration_ns, rate_pps, "poisson",
                      frame_len=64, flows=512),
        ),
    )


#: the shipped generator catalogue (CLI ``repro traffic generate <name>``)
SHIPPED_TRACES: Dict[str, Callable[..., TraceSpec]] = {
    "benign": benign_phased,
    "http-flood": http_flood,
    "microburst-ddos": microburst_ddos,
    "slow-drip": slow_drip,
    "steady-background": steady_background,
}
