#!/usr/bin/env python
"""Dependency-free line-coverage measurement for the repro package.

CI uses pytest-cov; this tool exists for environments without it (the
development container bakes in numpy/pytest/hypothesis only).  It
installs a ``sys.settrace`` hook that records executed lines in
``src/repro``, runs pytest in-process, and reports per-file and total
line coverage against the executable-line denominators derived from
each module's compiled code objects (``co_lines``).

Usage:

    python tools/coverage.py [--fail-under PCT] [pytest args...]

Examples:

    python tools/coverage.py -q tests/core
    python tools/coverage.py --fail-under 85 -q

Expect a several-fold slowdown over a plain pytest run — settrace
coverage traces every Python line.  The numbers agree with pytest-cov
to within a fraction of a percent (both count executable source lines;
docstrings and blank lines are excluded by compilation).
"""

from __future__ import annotations

import argparse
import os
import sys
import threading

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SRC = os.path.join(REPO, "src")
PKG = os.path.join(SRC, "repro")


def executable_lines(path: str) -> set:
    """All line numbers the compiler marks executable, incl. nested
    functions/classes (recursing through co_consts)."""
    with open(path, "r", encoding="utf-8") as fh:
        source = fh.read()
    lines: set = set()
    todo = [compile(source, path, "exec")]
    while todo:
        code = todo.pop()
        for _start, _end, lineno in code.co_lines():
            if lineno is not None:
                lines.add(lineno)
        for const in code.co_consts:
            if hasattr(const, "co_lines"):
                todo.append(const)
    # the module code object reports its docstring/first statement;
    # compilation already skips comments and blanks
    return lines


def iter_modules():
    for root, _dirs, files in os.walk(PKG):
        for name in sorted(files):
            if name.endswith(".py"):
                yield os.path.join(root, name)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--fail-under", type=float, default=None,
                        metavar="PCT",
                        help="exit 2 if total coverage is below PCT")
    args, pytest_args = parser.parse_known_args(argv)

    hit: dict = {}

    def tracer(frame, event, arg):
        if event == "call":
            fn = frame.f_code.co_filename
            if not fn.startswith(PKG):
                return None  # don't trace foreign frames at all
            return tracer
        if event == "line":
            hit.setdefault(frame.f_code.co_filename, set()).add(
                frame.f_lineno)
        return tracer

    sys.path.insert(0, SRC)
    import pytest  # noqa: E402 — after the path tweak, like PYTHONPATH=src

    threading.settrace(tracer)
    sys.settrace(tracer)
    try:
        rc = pytest.main(pytest_args or ["-q"])
    finally:
        sys.settrace(None)
        threading.settrace(None)

    rows = []
    total_exec = total_hit = 0
    for path in iter_modules():
        want = executable_lines(path)
        if not want:
            continue
        got = len(want & hit.get(path, set()))
        total_exec += len(want)
        total_hit += got
        rows.append((os.path.relpath(path, SRC), got, len(want)))

    width = max(len(r[0]) for r in rows)
    print(f"\n{'file':{width}s}  covered  total      %")
    for name, got, want in rows:
        print(f"{name:{width}s}  {got:7d}  {want:5d}  {100 * got / want:5.1f}")
    pct = 100.0 * total_hit / total_exec if total_exec else 0.0
    print(f"{'TOTAL':{width}s}  {total_hit:7d}  {total_exec:5d}  {pct:5.1f}")

    if rc != 0:
        return rc
    if args.fail_under is not None and pct < args.fail_under:
        print(f"coverage {pct:.1f}% below --fail-under "
              f"{args.fail_under:.1f}%", file=sys.stderr)
        return 2
    return 0


if __name__ == "__main__":
    sys.exit(main())
