"""Unit tests for the XDP/NAPI interrupt-driven baseline."""

from repro import config
from repro.dpdk.app import CountingApp
from repro.nic.device import NicPort
from repro.nic.traffic import CbrProcess, RampProfile
from repro.sim.units import MS, SEC
from repro.xdp.driver import XdpDriver

from tests.conftest import make_machine


def build(machine, rates, prewarmed=True, **kwargs):
    port = NicPort(machine.sim, [CbrProcess(r) for r in rates],
                   sample_every=64)
    app = CountingApp(per_packet_ns=config.XDP_PKT_NS)
    driver = XdpDriver(machine, port, app,
                       cores=list(range(len(rates))), **kwargs)
    if prewarmed:
        for q in driver.queues:
            q._warm_remaining = 0
    driver.start()
    return port, driver


def test_zero_cpu_with_no_traffic():
    m = make_machine(num_cores=2)
    _port, driver = build(m, [0])
    m.run(until=50 * MS)
    assert driver.cpu_utilization() == 0.0
    assert driver.total_irqs == 0


def test_delivers_all_packets_at_moderate_rate():
    m = make_machine(num_cores=2)
    port, driver = build(m, [1_000_000])
    m.run(until=20 * MS)
    assert port.total_drops() == 0
    assert driver.total_packets >= port.total_arrived() - config.NAPI_BUDGET


def test_interrupt_moderation_caps_irq_rate():
    m = make_machine(num_cores=2)
    _port, driver = build(m, [1_000_000])
    m.run(until=20 * MS)
    # at most one IRQ per ITR interval
    max_irqs = (20 * MS) // config.XDP_ITR_NS + 2
    assert driver.total_irqs <= max_irqs
    assert driver.total_irqs > 0


def test_cpu_proportional_to_load():
    m1 = make_machine(num_cores=2)
    _p1, d1 = build(m1, [500_000])
    m1.run(until=20 * MS)
    m2 = make_machine(num_cores=2)
    _p2, d2 = build(m2, [2_000_000])
    m2.run(until=20 * MS)
    assert d2.cpu_utilization() > 1.5 * d1.cpu_utilization()


def test_napi_polling_mode_under_saturation():
    """At line-rate-per-core the driver saturates: CPU ~100%, and the
    per-packet ceiling (~3.4 Mpps/core) binds throughput."""
    m = make_machine(num_cores=2)
    port, driver = build(m, [5_000_000])
    m.run(until=20 * MS)
    assert driver.cpu_utilization() > 0.95
    mpps = driver.total_packets / (m.now / SEC) / 1e6
    assert 3.0 < mpps < 3.8
    assert port.total_drops() > 0


def test_cold_page_pool_loses_burst():
    """§5.5: a cold burst at XDP's sustainable rate loses tens of
    thousands of packets before the page pool warms."""
    m = make_machine(num_cores=6)
    # the paper's shaped rate (13.57 Mpps ceiling), minus a margin
    rate = int(13.0e6) // 4
    port = NicPort(m.sim, [CbrProcess(rate) for _ in range(4)],
                   sample_every=256)
    app = CountingApp(per_packet_ns=config.XDP_PKT_NS)
    driver = XdpDriver(m, port, app, cores=[0, 1, 2, 3])
    driver.start()   # cold: warm_remaining = XDP_WARM_PKTS
    m.run(until=40 * MS)
    cold_drops = port.total_drops()
    assert cold_drops > 10_000

    # same setup, prewarmed: (almost) no loss
    m2 = make_machine(num_cores=6)
    port2, _driver2 = build(m2, [rate] * 4)
    m2.run(until=40 * MS)
    assert port2.total_drops() < cold_drops / 20


def test_line_rate_exceeds_xdp_ceiling():
    """Unshaped 14.88 Mpps exceeds XDP's ~13.6 Mpps ceiling: sustained
    loss even when warm (why the paper shaped its XDP traffic)."""
    m = make_machine(num_cores=6)
    rate = config.LINE_RATE_PPS // 4
    port2, driver = build(m, [rate] * 4)
    m.run(until=30 * MS)
    mpps = driver.total_packets / (m.now / SEC) / 1e6
    assert 12.5 < mpps < 14.2
    assert port2.total_drops() > 0


def test_queue_core_binding_enforced():
    m = make_machine(num_cores=2)
    port = NicPort(m.sim, [CbrProcess(1000), CbrProcess(1000)])
    import pytest

    with pytest.raises(ValueError):
        XdpDriver(m, port, CountingApp(), cores=[0])


def test_latency_includes_moderation_delay():
    m = make_machine(num_cores=2)
    _port, driver = build(m, [1_000_000])
    m.run(until=20 * MS)
    assert driver.latency.count > 10
    mean_us = driver.latency.mean() / 1e3
    # floor (5.1us) + up to one ITR interval of moderation
    assert 5.0 < mean_us < 45.0


def test_traffic_resuming_after_idle_reraises_irq():
    m = make_machine(num_cores=2)
    profile = RampProfile([(0, 1_000_000), (5 * MS, 0), (15 * MS, 1_000_000)])
    port = NicPort(m.sim, [profile], sample_every=64)
    app = CountingApp(per_packet_ns=config.XDP_PKT_NS)
    driver = XdpDriver(m, port, app, cores=[0])
    driver.queues[0]._warm_remaining = 0
    driver.start()
    m.run(until=25 * MS)
    port.queues[0].sync()
    # packets from both active segments were delivered
    assert driver.total_packets >= port.queues[0].arrived_total - 2 * config.NAPI_BUDGET


def test_custom_itr_reduces_interrupts():
    m1 = make_machine(num_cores=2)
    port1 = NicPort(m1.sim, [CbrProcess(1_000_000)], sample_every=64)
    app1 = CountingApp(per_packet_ns=config.XDP_PKT_NS)
    d1 = XdpDriver(m1, port1, app1, cores=[0], itr_ns=5_000)
    for q in d1.queues:
        q._warm_remaining = 0
    d1.start()
    m1.run(until=20 * MS)

    m2 = make_machine(num_cores=2)
    port2 = NicPort(m2.sim, [CbrProcess(1_000_000)], sample_every=64)
    app2 = CountingApp(per_packet_ns=config.XDP_PKT_NS)
    d2 = XdpDriver(m2, port2, app2, cores=[0], itr_ns=80_000)
    for q in d2.queues:
        q._warm_remaining = 0
    d2.start()
    m2.run(until=20 * MS)

    assert d1.total_irqs > 2 * d2.total_irqs
    # longer moderation -> higher latency, lower (or equal) CPU
    assert d2.latency.mean() > d1.latency.mean()
    assert d2.cpu_utilization() <= d1.cpu_utilization() + 0.02
