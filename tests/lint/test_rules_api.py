"""True-positive / true-negative / suppression cases for A001–A003."""

from __future__ import annotations

from tests.lint.conftest import assert_clean, assert_flags, lint_source, only

# ---------------------------------------------------------------------- #
# A001 — Handle reuse after cancel()
# ---------------------------------------------------------------------- #


def test_a001_flags_use_after_cancel():
    found = assert_flags(
        """
        def stop(handle):
            handle.cancel()
            return handle.time
        """,
        "A001", count=1,
    )
    assert "handle.time" in found[0].message


def test_a001_flags_attribute_rooted_handles():
    assert_flags(
        """
        class Timer:
            def disarm(self):
                self._handle.cancel()
                self._expiry = self._handle.time
        """,
        "A001", count=1,
    )


def test_a001_allows_status_reads_after_cancel():
    assert_clean(
        """
        def stop(handle):
            handle.cancel()
            assert handle.cancelled or handle.fired
            handle.cancel()  # idempotent
        """,
        "A001",
    )


def test_a001_allows_rebinding_after_cancel():
    assert_clean(
        """
        def rearm(sim, handle, when):
            handle.cancel()
            handle = sim.call_at(when, noop)
            return handle.time
        """,
        "A001",
    )


def test_a001_use_before_cancel_is_clean():
    assert_clean(
        """
        def stop(handle):
            when = handle.time
            handle.cancel()
            return when
        """,
        "A001",
    )


def test_a001_suppression():
    active, suppressed = lint_source(
        """
        def audit(handle):
            handle.cancel()
            # repro: allow[A001] post-mortem inspection in a debug dump
            return handle.time
        """,
    )
    assert not only(active, "A001")
    assert only(suppressed, "A001")


# ---------------------------------------------------------------------- #
# A002 — ad-hoc tracer=/checks= objects
# ---------------------------------------------------------------------- #


def test_a002_flags_fresh_tracer_at_call_site():
    assert_flags(
        """
        def make_lock(name):
            return TryLock(name, tracer=Tracer(capacity=100))
        """,
        "A002", count=1,
    )


def test_a002_flags_fresh_checks_registry():
    assert_flags(
        """
        def make_lock(name, machine):
            return TryLock(name, checks=CheckRegistry())
        """,
        "A002", count=1,
    )


def test_a002_allows_threaded_machine_state():
    assert_clean(
        """
        def make_lock(name, machine):
            return TryLock(name, tracer=machine.tracer,
                           checks=machine.checks)
        """,
        "A002",
    )


def test_a002_allows_none():
    assert_clean(
        """
        def make_lock(name):
            return TryLock(name, tracer=None, checks=None)
        """,
        "A002",
    )


def test_a002_suppression():
    active, suppressed = lint_source(
        """
        def bench_lock(name):
            # repro: allow[A002] microbenchmark isolates one lock with a
            # private tracer on purpose
            return TryLock(name, tracer=Tracer(capacity=10))
        """,
    )
    assert not only(active, "A002")
    assert only(suppressed, "A002")


# ---------------------------------------------------------------------- #
# A003 — bare except
# ---------------------------------------------------------------------- #


def test_a003_flags_bare_except():
    assert_flags(
        """
        def guard(cb):
            try:
                cb()
            except:
                pass
        """,
        "A003", count=1,
    )


def test_a003_allows_narrow_except():
    assert_clean(
        """
        def guard(cb):
            try:
                cb()
            except ValueError:
                pass
        """,
        "A003",
    )


def test_a003_suppression():
    active, suppressed = lint_source(
        """
        def last_ditch(cb):
            try:
                cb()
            except:  # repro: allow[A003] crash shield around user plugin
                pass
        """,
    )
    assert not only(active, "A003")
    assert only(suppressed, "A003")
