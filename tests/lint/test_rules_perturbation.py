"""True-positive / true-negative / suppression cases for P001–P002."""

from __future__ import annotations

from tests.lint.conftest import assert_clean, assert_flags, lint_source, only

OBSERVER = "src/repro/trace/fixture.py"
METRICS = "src/repro/metrics/fixture.py"
CHECK = "src/repro/check/fixture.py"


def test_p001_flags_write_through_parameter():
    found = assert_flags(
        """
        class Spy:
            def on_fire(self, timer, machine):
                timer.expiry = 0
        """,
        "P001", path=OBSERVER, count=1,
    )
    assert "`timer`" in found[0].message


def test_p001_flags_augmented_and_subscript_writes():
    assert_flags(
        """
        def on_ring(registry, ring):
            ring.stats["seen"] += 1
        """,
        "P001", path=CHECK, count=1,
    )


def test_p001_allows_observer_own_state():
    assert_clean(
        """
        class Monitor:
            def on_pick(self, thread):
                self.picks += 1
                self.last = thread.name
        """,
        "P001", path=METRICS,
    )


def test_p001_only_applies_to_observer_modules():
    assert_clean(
        """
        def tune(tuner, record):
            tuner.ts_ns = record.vacation_ns
        """,
        "P001", path="src/repro/core/fixture.py",
    )


def test_p001_suppression():
    active, suppressed = lint_source(
        """
        class Exporter:
            def finish(self, report):
                # repro: allow[P001] report is this exporter's own output
                # object, handed in only to be filled
                report.done = True
        """,
        path=OBSERVER,
    )
    assert not only(active, "P001")
    assert only(suppressed, "P001")


def test_p002_flags_stream_calls_in_observers():
    assert_flags(
        """
        def sample(machine):
            return machine.streams.stream("spy").random()
        """,
        "P002", path=OBSERVER, count=1,
    )


def test_p002_flags_numpy_stream_in_check():
    assert_flags(
        """
        def sample(streams):
            return streams.numpy_stream("oracle")
        """,
        "P002", path=CHECK, count=1,
    )


def test_p002_allows_streams_outside_observers():
    assert_clean(
        """
        def traffic(machine):
            return machine.streams.numpy_stream("nic")
        """,
        "P002", path="src/repro/nic/fixture.py",
    )


def test_p002_suppression():
    active, suppressed = lint_source(
        """
        def driver(seed, streams):
            # repro: allow[P002] workload driver, not an observer
            return streams.numpy_stream("check")
        """,
        path=CHECK,
    )
    assert not only(active, "P002")
    assert only(suppressed, "P002")
