"""Summary-cache semantics: content/config keying, corruption safety,
and cold/warm run equivalence."""

from __future__ import annotations

import json
import os
import textwrap

from repro.lint.cache import SummaryCache
from repro.lint.engine import LintConfig, run_lint

ENTRY = {"findings": [], "suppressions": [], "facts": None}


def test_roundtrip_and_keying(tmp_path):
    cache = SummaryCache(str(tmp_path / "c"))
    cache.store("src/a.py", "x = 1\n", "cfg1", ENTRY)
    assert cache.load("src/a.py", "x = 1\n", "cfg1") == ENTRY
    # content change misses
    assert cache.load("src/a.py", "x = 2\n", "cfg1") is None
    # config change misses
    assert cache.load("src/a.py", "x = 1\n", "cfg2") is None
    # different path never aliases (hashed filenames)
    assert cache.load("src/b.py", "x = 1\n", "cfg1") is None
    assert cache.hits == 1 and cache.misses == 3


def test_corrupt_entry_is_a_miss(tmp_path):
    cache = SummaryCache(str(tmp_path / "c"))
    cache.store("src/a.py", "x = 1\n", "cfg", ENTRY)
    (path,) = [os.path.join(cache.directory, n)
               for n in os.listdir(cache.directory)]
    with open(path, "w") as fh:
        fh.write("{not json")
    assert cache.load("src/a.py", "x = 1\n", "cfg") is None
    # a wrong-shape but valid-JSON document is also rejected
    with open(path, "w") as fh:
        json.dump({"path": "src/a.py"}, fh)
    assert cache.load("src/a.py", "x = 1\n", "cfg") is None


def _tree(tmp_path):
    f = tmp_path / "src" / "repro" / "kernel" / "mod.py"
    f.parent.mkdir(parents=True)
    f.write_text(textwrap.dedent("""
        import time

        def tick():
            return time.time()
    """))
    return LintConfig(root=str(tmp_path))


def test_cold_and_warm_runs_agree(tmp_path):
    cfg = _tree(tmp_path)
    cache = SummaryCache(str(tmp_path / "cache"))
    cold = run_lint(cfg, cache=cache)
    assert cold.cache_hits == 0 and cold.cache_misses == 1

    cache = SummaryCache(str(tmp_path / "cache"))
    warm = run_lint(cfg, cache=cache)
    assert warm.cache_hits == 1 and warm.cache_misses == 0
    assert [(f.rule_id, f.path, f.line) for f in cold.findings] == \
        [(f.rule_id, f.path, f.line) for f in warm.findings]
    assert any(f.rule_id == "D002" for f in warm.findings)


def test_edited_file_reanalyzed(tmp_path):
    cfg = _tree(tmp_path)
    cache = SummaryCache(str(tmp_path / "cache"))
    first = run_lint(cfg, cache=cache)
    assert any(f.rule_id == "D002" for f in first.findings)

    mod = tmp_path / "src" / "repro" / "kernel" / "mod.py"
    mod.write_text("def tick():\n    return 0\n")
    cache = SummaryCache(str(tmp_path / "cache"))
    second = run_lint(cfg, cache=cache)
    assert second.cache_misses == 1
    assert not any(f.rule_id == "D002" for f in second.findings)
